/**
 * @file
 * Prefetcher shootout across the full server suite.
 *
 * Runs every workload with every prefetcher (including the
 * discontinuity-prefetcher extension) through the functional engine
 * and prints a miss-ratio matrix plus accuracy statistics.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "sim/trace_engine.hh"
#include "sim/workloads.hh"

using namespace pifetch;

int
main()
{
    const SystemConfig cfg;
    const InstCount warmup = 1'000'000;
    const InstCount measure = 3'000'000;

    const std::vector<PrefetcherKind> kinds = {
        PrefetcherKind::None,
        PrefetcherKind::NextLine,
        PrefetcherKind::Discontinuity,
        PrefetcherKind::Tifs,
        PrefetcherKind::Pif,
    };

    std::printf("%-10s", "L1-I miss%");
    for (PrefetcherKind k : kinds)
        std::printf(" %13s", prefetcherName(k).c_str());
    std::printf("\n");

    for (ServerWorkload w : allServerWorkloads()) {
        const Program prog = buildWorkloadProgram(w);
        std::printf("%-10s", workloadName(w).c_str());
        for (PrefetcherKind k : kinds) {
            TraceEngine engine(cfg, prog, executorConfigFor(w),
                               makePrefetcher(k, cfg));
            const TraceRunResult r = engine.run(warmup, measure);
            std::printf(" %12.3f%%", 100.0 * r.missRatio());
        }
        std::printf("\n");
    }

    std::printf("\nprefetch accuracy (useful fills / fills), "
                "measured per workload:\n");
    std::printf("%-10s", "");
    for (PrefetcherKind k : kinds) {
        if (k == PrefetcherKind::None)
            continue;
        std::printf(" %13s", prefetcherName(k).c_str());
    }
    std::printf("\n");
    for (ServerWorkload w : allServerWorkloads()) {
        const Program prog = buildWorkloadProgram(w);
        std::printf("%-10s", workloadName(w).c_str());
        for (PrefetcherKind k : kinds) {
            if (k == PrefetcherKind::None)
                continue;
            TraceEngine engine(cfg, prog, executorConfigFor(w),
                               makePrefetcher(k, cfg));
            const TraceRunResult r = engine.run(warmup, measure);
            const double acc = r.prefetchFills == 0 ? 0.0
                : static_cast<double>(r.usefulPrefetches) /
                  static_cast<double>(r.prefetchFills);
            std::printf(" %12.2f%%", 100.0 * acc);
        }
        std::printf("\n");
    }
    return 0;
}
