/**
 * @file
 * pifetch_sim: command-line front door to the whole library.
 *
 * Usage:
 *   pifetch_sim [options]
 *     --workload N|name   0..5 or db2|oracle|qry2|qry17|apache|zeus
 *     --prefetcher name   none|nextline|discontinuity|tifs|pif|perfect
 *     --engine name       trace|cycle
 *     --cores N           per-core instances to average (default 1)
 *     --warmup N          warmup instructions (default 1500000)
 *     --measure N         measured instructions (default 6000000)
 *     --history N         PIF history buffer regions
 *     --stats             dump raw cache counters after the run
 *
 * Examples:
 *   pifetch_sim --workload apache --prefetcher pif --engine cycle
 *   pifetch_sim --workload 0 --prefetcher tifs --cores 4 --stats
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "sim/multicore.hh"

using namespace pifetch;

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--workload W] [--prefetcher P] "
                 "[--engine trace|cycle]\n"
                 "          [--cores N] [--warmup N] [--measure N] "
                 "[--history N] [--stats]\n",
                 argv0);
    std::exit(1);
}

ServerWorkload
parseWorkload(const std::string &s)
{
    // Shared parser with the pifetch CLI (trace/server_suite.hh).
    if (const auto w = workloadFromName(s))
        return *w;
    std::fprintf(stderr, "unknown workload '%s'\n", s.c_str());
    std::exit(1);
}

PrefetcherKind
parsePrefetcher(const std::string &s)
{
    if (s == "none") return PrefetcherKind::None;
    if (s == "nextline") return PrefetcherKind::NextLine;
    if (s == "discontinuity") return PrefetcherKind::Discontinuity;
    if (s == "tifs") return PrefetcherKind::Tifs;
    if (s == "pif") return PrefetcherKind::Pif;
    if (s == "perfect") return PrefetcherKind::Perfect;
    std::fprintf(stderr, "unknown prefetcher '%s'\n", s.c_str());
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    ServerWorkload workload = ServerWorkload::OltpDb2;
    PrefetcherKind prefetcher = PrefetcherKind::Pif;
    std::string engine = "trace";
    unsigned cores = 1;
    InstCount warmup = 1'500'000;
    InstCount measure = 6'000'000;
    std::uint64_t history = 0;  // 0 = keep default
    bool dump_stats = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--workload") {
            workload = parseWorkload(next());
        } else if (arg == "--prefetcher") {
            prefetcher = parsePrefetcher(next());
        } else if (arg == "--engine") {
            engine = next();
        } else if (arg == "--cores") {
            cores = static_cast<unsigned>(std::atoi(next().c_str()));
        } else if (arg == "--warmup") {
            warmup = static_cast<InstCount>(std::atoll(next().c_str()));
        } else if (arg == "--measure") {
            measure = static_cast<InstCount>(std::atoll(next().c_str()));
        } else if (arg == "--history") {
            history = static_cast<std::uint64_t>(
                std::atoll(next().c_str()));
        } else if (arg == "--stats") {
            dump_stats = true;
        } else {
            usage(argv[0]);
        }
    }
    if (cores == 0 || (engine != "trace" && engine != "cycle"))
        usage(argv[0]);

    SystemConfig cfg;
    if (history > 0)
        cfg.pif.historyRegions = history;

    std::printf("workload=%s prefetcher=%s engine=%s cores=%u "
                "warmup=%llu measure=%llu\n",
                workloadName(workload).c_str(),
                prefetcherName(prefetcher).c_str(), engine.c_str(),
                cores, static_cast<unsigned long long>(warmup),
                static_cast<unsigned long long>(measure));

    if (engine == "trace") {
        const MulticoreTraceResult res = runMulticoreTrace(
            workload, prefetcher, cores, warmup, measure, cfg);
        for (std::size_t c = 0; c < res.perCore.size(); ++c) {
            const TraceRunResult &r = res.perCore[c];
            std::printf("core %zu: fetches %llu  misses %llu  "
                        "miss ratio %.3f%%  pif coverage %.2f%%\n",
                        c,
                        static_cast<unsigned long long>(r.accesses),
                        static_cast<unsigned long long>(r.misses),
                        100.0 * r.missRatio(), 100.0 * r.pifCoverage);
        }
        std::printf("mean miss ratio %.3f%%  total misses %llu\n",
                    100.0 * res.meanMissRatio(),
                    static_cast<unsigned long long>(res.totalMisses()));
    } else {
        const MulticoreCycleResult res = runMulticoreCycle(
            workload, prefetcher, cores, warmup, measure, cfg);
        for (std::size_t c = 0; c < res.perCore.size(); ++c) {
            const CycleRunResult &r = res.perCore[c];
            std::printf("core %zu: cycles %llu  UIPC %.4f  "
                        "fetch-stall cycles %llu  misses %llu\n",
                        c, static_cast<unsigned long long>(r.cycles),
                        r.uipc,
                        static_cast<unsigned long long>(
                            r.fetchStallCycles),
                        static_cast<unsigned long long>(r.demandMisses));
        }
        std::printf("mean UIPC %.4f over %llu user instructions\n",
                    res.meanUipc(),
                    static_cast<unsigned long long>(
                        res.totalUserInstrs()));
    }

    if (dump_stats && engine == "trace" && cores == 1) {
        // Re-run a single engine to expose the raw counters.
        const Program prog = buildWorkloadProgram(workload);
        TraceEngine eng(cfg, prog, executorConfigFor(workload),
                        makePrefetcher(prefetcher, cfg));
        eng.run(warmup, measure);
        eng.l1i().stats().dump(std::cout);
    }
    return 0;
}
