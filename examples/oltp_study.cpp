/**
 * @file
 * OLTP deep-dive: the workload class the paper's introduction motivates.
 *
 * Runs both OLTP workloads (TPC-C on DB2 and Oracle) through the
 * functional engine with each prefetcher, then through the cycle-level
 * engine, reporting miss elimination and UIPC speedups side by side —
 * a miniature of the paper's Section 5.5/5.6 story.
 */

#include <cstdio>
#include <vector>

#include "sim/cycle_engine.hh"
#include "sim/experiment.hh"
#include "sim/workloads.hh"

using namespace pifetch;

int
main()
{
    const SystemConfig cfg;
    ExperimentBudget budget;
    budget.warmup = 1'000'000;
    budget.measure = 4'000'000;

    const std::vector<ServerWorkload> oltp = {
        ServerWorkload::OltpDb2,
        ServerWorkload::OltpOracle,
    };

    for (ServerWorkload w : oltp) {
        std::printf("=== OLTP %s ===\n", workloadName(w).c_str());

        const auto coverage = runFig10Coverage(w, budget, cfg);
        std::printf("  baseline L1-I misses: %llu\n",
                    static_cast<unsigned long long>(
                        coverage.front().baselineMisses));
        for (const auto &p : coverage) {
            std::printf("  %-12s miss coverage %6.2f%%  (%llu left)\n",
                        prefetcherName(p.kind).c_str(),
                        100.0 * p.missCoverage,
                        static_cast<unsigned long long>(
                            p.remainingMisses));
        }

        const auto speedups = runFig10Speedup(w, budget, cfg);
        for (const auto &p : speedups) {
            std::printf("  %-12s UIPC %.4f  speedup %.3fx\n",
                        prefetcherName(p.kind).c_str(), p.uipc,
                        p.speedup);
        }
        std::printf("\n");
    }
    return 0;
}
