/**
 * @file
 * OLTP deep-dive: the workload class the paper's introduction motivates.
 *
 * Runs both OLTP workloads (TPC-C on DB2 and Oracle) through the
 * functional engine with each prefetcher, then through the cycle-level
 * engine, reporting miss elimination and UIPC speedups side by side —
 * a miniature of the paper's Section 5.5/5.6 story.
 */

#include <chrono>
#include <cstdio>
#include <vector>

#include "common/parallel.hh"
#include "sim/cycle_engine.hh"
#include "sim/experiment.hh"
#include "sim/multicore.hh"
#include "sim/workloads.hh"

using namespace pifetch;

int
main()
{
    // threads == 0 resolves to PIFETCH_THREADS or the hardware count;
    // every simulated core runs on its own worker with identical
    // results at any thread count.
    const SystemConfig cfg;
    std::printf("host worker threads: %u "
                "(override with PIFETCH_THREADS)\n\n",
                resolveThreads(cfg.threads));
    ExperimentBudget budget;
    budget.warmup = 1'000'000;
    budget.measure = 4'000'000;

    const std::vector<ServerWorkload> oltp = {
        ServerWorkload::OltpDb2,
        ServerWorkload::OltpOracle,
    };

    for (ServerWorkload w : oltp) {
        std::printf("=== OLTP %s ===\n", workloadName(w).c_str());

        const auto coverage = runFig10Coverage(w, budget, cfg);
        std::printf("  baseline L1-I misses: %llu\n",
                    static_cast<unsigned long long>(
                        coverage.front().baselineMisses));
        for (const auto &p : coverage) {
            std::printf("  %-12s miss coverage %6.2f%%  (%llu left)\n",
                        prefetcherName(p.kind).c_str(),
                        100.0 * p.missCoverage,
                        static_cast<unsigned long long>(
                            p.remainingMisses));
        }

        const auto speedups = runFig10Speedup(w, budget, cfg);
        for (const auto &p : speedups) {
            std::printf("  %-12s UIPC %.4f  speedup %.3fx\n",
                        prefetcherName(p.kind).c_str(), p.uipc,
                        p.speedup);
        }
        std::printf("\n");
    }

    // The paper's actual methodology: a 16-core CMP, results averaged
    // across the cores. Each core is an independent engine, so the
    // multicore runner spreads them over the worker pool.
    std::printf("=== 16-core CMP (PIF, DB2), parallel runner ===\n");
    // lint:allow(D-clock): demo prints wall-clock speed, not results
    const auto t0 = std::chrono::steady_clock::now();
    const auto mc = runMulticoreTrace(ServerWorkload::OltpDb2,
                                      PrefetcherKind::Pif,
                                      cfg.numCores, 250'000, 1'000'000,
                                      cfg);
    const double ms = std::chrono::duration<double, std::milli>(
        // lint:allow(D-clock): demo prints wall-clock speed, not results
        std::chrono::steady_clock::now() - t0).count();
    std::printf("  mean miss ratio %.4f, mean PIF coverage %.2f%%, "
                "%llu total misses\n",
                mc.meanMissRatio(), 100.0 * mc.meanPifCoverage(),
                static_cast<unsigned long long>(mc.totalMisses()));
    std::printf("  %u cores on %u threads in %.0f ms\n",
                cfg.numCores, resolveThreads(cfg.threads), ms);
    return 0;
}
