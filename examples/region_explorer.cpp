/**
 * @file
 * Spatial-region exploration over any workload (Section 3 hands-on).
 *
 * Usage: region_explorer [workload-index 0..5] [million-instrs]
 *
 * Prints region density, discontinuous-group counts, and the
 * trigger-offset profile — the data behind Figures 3 and 8 (left) —
 * for one workload, so users can see why 2-before/5-after is the
 * right production geometry.
 */

#include <cstdio>
#include <cstdlib>

#include "pif/region_analyzer.hh"
#include "sim/workloads.hh"

using namespace pifetch;

int
main(int argc, char **argv)
{
    unsigned widx = 0;
    InstCount millions = 4;
    if (argc > 1)
        widx = static_cast<unsigned>(std::atoi(argv[1])) % 6;
    if (argc > 2)
        millions = static_cast<InstCount>(std::atol(argv[2]));

    const ServerWorkload w = allServerWorkloads()[widx];
    std::printf("workload: %s %s, %llu M instructions\n",
                workloadGroup(w).c_str(), workloadName(w).c_str(),
                static_cast<unsigned long long>(millions));

    const Program prog = buildWorkloadProgram(w);
    Executor exec(prog, executorConfigFor(w));
    RegionAnalyzer wide(4, 27);   // density / groups (32-block window)
    RegionAnalyzer offsets(4, 12);  // Fig. 8 left window

    const InstCount n = millions * 1'000'000;
    for (InstCount i = 0; i < n; ++i) {
        const Addr pc = exec.next().pc;
        wide.observe(pc);
        offsets.observe(pc);
    }
    wide.finish();
    offsets.finish();

    std::printf("\nregions observed: %llu\n",
                static_cast<unsigned long long>(wide.regions()));

    std::printf("\nregion density (unique blocks accessed):\n");
    for (unsigned r = 0; r < wide.density().ranges(); ++r) {
        std::printf("  %-6s %6.2f%%\n",
                    wide.density().labelAt(r).c_str(),
                    100.0 * wide.density().fractionAt(r));
    }

    std::printf("\ncontiguous groups per region:\n");
    for (unsigned r = 0; r < wide.groups().ranges(); ++r) {
        std::printf("  %-6s %6.2f%%\n", wide.groups().labelAt(r).c_str(),
                    100.0 * wide.groups().fractionAt(r));
    }

    std::printf("\naccesses by distance from trigger (-4..+12):\n");
    for (int off = offsets.offsets().lo();
         off <= offsets.offsets().hi(); ++off) {
        if (off == 0)
            continue;
        std::printf("  %+3d %6.2f%%\n", off,
                    100.0 * offsets.offsets().fractionAt(off));
    }
    return 0;
}
