/**
 * @file
 * Trace capture and replay through the trace-file API.
 *
 * Captures a retire-order trace of a workload to disk, reads it back,
 * and drives PIF's recording pipeline directly from the file — the
 * workflow a user with real hardware traces would follow.
 */

#include <chrono>
#include <cstdio>
#include <vector>

#include "pif/pif_prefetcher.hh"
#include "sim/workloads.hh"
#include "trace/trace_io.hh"

using namespace pifetch;

int
main()
{
    const ServerWorkload w = ServerWorkload::WebApache;
    const Program prog = buildWorkloadProgram(w);
    Executor exec(prog, executorConfigFor(w));

    // 1. Capture one million retired instructions.
    std::vector<RetiredInstr> trace;
    trace.reserve(1'000'000);
    exec.run(1'000'000,
             [&](const RetiredInstr &r) { trace.push_back(r); });

    const std::string path = "/tmp/pifetch_apache.trace";
    // lint:allow(D-clock): demo prints wall-clock I/O timing, not results
    auto t0 = std::chrono::steady_clock::now();
    if (!writeTrace(path, trace)) {
        std::fprintf(stderr, "failed to write %s\n", path.c_str());
        return 1;
    }
    auto elapsed_ms = [&t0] {
        return std::chrono::duration<double, std::milli>(
            // lint:allow(D-clock): demo prints wall-clock I/O timing
            std::chrono::steady_clock::now() - t0).count();
    };
    std::printf("captured %zu instructions to %s in %.1f ms "
                "(chunked writer)\n",
                trace.size(), path.c_str(), elapsed_ms());

    // 2. Read it back and verify.
    std::vector<RetiredInstr> replay;
    // lint:allow(D-clock): demo prints wall-clock I/O timing, not results
    t0 = std::chrono::steady_clock::now();
    if (!readTrace(path, replay) || replay.size() != trace.size()) {
        std::fprintf(stderr, "trace read-back failed\n");
        return 1;
    }
    std::printf("read back %zu instructions in %.1f ms\n",
                replay.size(), elapsed_ms());

    // 3. Feed the trace straight into PIF's recording path and report
    // the compaction it achieves (Section 3's storage argument).
    PifConfig pc;
    PifPrefetcher pif(pc);
    std::uint64_t block_accesses = 0;
    Addr last_block = invalidAddr;
    for (const RetiredInstr &r : replay) {
        if (blockAddr(r.pc) != last_block) {
            last_block = blockAddr(r.pc);
            ++block_accesses;
        }
        pif.onRetire(r, true);
    }

    const std::uint64_t regions = pif.regionsRecorded();
    std::printf("\nblock-granularity accesses: %llu\n",
                static_cast<unsigned long long>(block_accesses));
    std::printf("history records after compaction: %llu "
                "(%.2fx reduction)\n",
                static_cast<unsigned long long>(regions),
                regions == 0 ? 0.0
                             : static_cast<double>(block_accesses) /
                               static_cast<double>(regions));
    return 0;
}
