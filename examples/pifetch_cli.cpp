/**
 * @file
 * pifetch: the unified experiment CLI over the registry.
 *
 * Commands:
 *   pifetch list
 *       Enumerate every registered experiment.
 *   pifetch run <experiment> [options]
 *       Run one experiment; print the human report and optionally
 *       write structured output.
 *   pifetch sweep <experiment> --param key=v1,v2[,...] [options]
 *       Fan a parameter grid (cartesian product) over the worker
 *       pool; one experiment run per grid point.
 *   pifetch golden [--list | <experiment>]
 *       Canonical golden-fixture JSON (see scripts/regold.sh).
 *   pifetch perf [--list | options]
 *       Time the simulator's hot kernels (docs/performance.md) and
 *       emit a BENCH_*.json document for scripts/perf_compare.py.
 *   pifetch check [options]
 *       Fuzz randomized scenarios through the differential and
 *       metamorphic oracle battery (docs/validation.md); failing
 *       scenarios shrink to a minimal replayable JSON repro.
 *   pifetch query [options]
 *       Record one run into the columnar event store (or reload a
 *       saved event dump) and answer select/where/group-by/window
 *       queries over it without re-simulating (docs/query.md).
 *   pifetch lint [paths...] [options]
 *       Run the project static-analysis rules (docs/linting.md)
 *       over the source tree and report violations as canonical
 *       JSON; exits 1 on any unsuppressed error.
 *
 * Options (run and sweep):
 *   --workload W       restrict to workload W (repeatable);
 *                      a server preset (db2|oracle|qry2|qry17|
 *                      apache|zeus or 0..5) or a workload-zoo spec
 *                      name (see `pifetch list`)
 *   --workload-file F  load a JSON workload spec file (repeatable);
 *                      see docs/workloads.md for the schema
 *   --json FILE|-      write the result document as JSON
 *                      ("-" = stdout, which suppresses the report)
 *   --csv FILE|-       write the result tables as CSV
 *   --threads N        worker threads (0 = auto / PIFETCH_THREADS)
 *   --warmup N         warmup instructions
 *   --measure N        measured instructions
 *   --seed N           master seed
 *   --set key=value    configuration override (repeatable);
 *                      see `pifetch list` for the supported keys
 *   --quiet            suppress the human-readable report
 *
 * The JSON document layout is documented in docs/cli.md and
 * src/sim/registry.hh.
 */

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "check/checker.hh"
#include "common/parallel.hh"
#include "lint/driver.hh"
#include "perf/kernels.hh"
#include "query/event_store.hh"
#include "query/query.hh"
#include "sim/cycle_engine.hh"
#include "sim/registry.hh"
#include "sim/trace_engine.hh"
#include "sweep/runner.hh"
#include "trace/trace_io.hh"
#include "trace/trace_v2.hh"

using namespace pifetch;

namespace {

int
usage(std::FILE *out)
{
    std::fputs(
        "usage: pifetch <command> [options]\n"
        "\n"
        "commands:\n"
        "  list                      enumerate registered experiments\n"
        "  run <experiment>          run one experiment\n"
        "  sweep <experiment> --param key=v1,v2,...\n"
        "                            run a parameter grid\n"
        "  trace pack|unpack|info    convert/inspect trace files\n"
        "  golden [--list|<exp>]     emit canonical golden JSON\n"
        "  perf [--list|options]     time the hot kernels\n"
        "  check [options]           fuzz + differential validation\n"
        "  query [options]           event-store recording + queries\n"
        "  lint [paths...] [options] project static-analysis rules\n"
        "  help                      this message\n"
        "\n"
        "run/sweep options:\n"
        "  --workload W   a server preset (db2|oracle|qry2|qry17|\n"
        "                 apache|zeus or 0..5) or a zoo spec name\n"
        "                 (repeatable; default: the experiment's set)\n"
        "  --workload-file F  load a JSON workload spec (repeatable;\n"
        "                 schema in docs/workloads.md)\n"
        "  --json FILE|-  write the JSON document (- = stdout,\n"
        "                 suppressing the human report)\n"
        "  --csv FILE|-   write the tables as CSV\n"
        "  --threads N    worker threads (0 = auto)\n"
        "  --warmup N     warmup instructions\n"
        "  --measure N    measured instructions\n"
        "  --seed N       master seed\n"
        "  --set k=v      config override (repeatable)\n"
        "  --quiet        no human-readable report\n"
        "\n"
        "sweep-only options (sharded service, docs/cli.md):\n"
        "  --shards N     partition the grid over N child processes\n"
        "                 (needs --dir; at most --threads run at once)\n"
        "  --dir D        sweep directory (manifest, per-shard point\n"
        "                 files + completion journal, merged.json)\n"
        "  --resume       skip journaled-complete points after a\n"
        "                 crash (same command line as the first run)\n"
        "  --shard K      worker mode: run one shard of an existing\n"
        "                 manifest (used by the scheduler)\n"
        "  --merge        assemble merged.json from completed shards\n"
        "                 without running anything\n"
        "\n"
        "trace verbs:\n"
        "  pack <in> <out>    convert a v1 (or v2) trace to v2\n"
        "                     (delta/varint chunks, ~5-10x smaller)\n"
        "  unpack <in> <out>  convert back to fixed-record v1\n"
        "  info <file> [--json FILE|-]  header/chunk-index summary\n"
        "\n"
        "perf options:\n"
        "  --list         enumerate the kernels and exit\n"
        "  --kernel K     run only kernel K (repeatable)\n"
        "  --reps N       timed repetitions per kernel (default 5)\n"
        "  --warmup-reps N untimed repetitions first (default 1)\n"
        "  --scale X      op-count multiplier, X > 0 (default 1.0)\n"
        "  --workload W   driving workload (default db2)\n"
        "  --seed N       stream-generation seed\n"
        "  --json/--csv/--quiet as above\n"
        "\n"
        "check options:\n"
        "  --seeds N      scenarios to fuzz (default 25)\n"
        "  --seed N       first fuzz seed (default 1)\n"
        "  --replay-seed N  run exactly one fuzz seed\n"
        "  --replay FILE  run the scenario in a repro JSON file\n"
        "  --repro FILE   failing-scenario JSON path\n"
        "                 (default pifetch-check-repro.json)\n"
        "  --threads N    worker lanes over scenarios (0 = auto)\n"
        "  --no-shrink    keep failing scenarios unshrunk\n"
        "  --inject-fault K  deliberate break for self-tests\n"
        "                 (degree-miscount | coverage-drop |\n"
        "                 window-miscount)\n"
        "  --workload-file F  run every fuzzed scenario over this\n"
        "                 JSON workload spec\n"
        "  --json/--quiet as above\n"
        "\n"
        "query options:\n"
        "  --workload W   record one run of this workload (a preset\n"
        "                 or zoo spec name, as for run)\n"
        "  --workload-file F  record one run of this JSON spec\n"
        "  --load FILE    query a saved event dump instead of\n"
        "                 recording a run (see --dump)\n"
        "  --prefetcher K prefetcher for the recorded run (none |\n"
        "                 nextline | tifs | discontinuity | pif |\n"
        "                 perfect; default pif)\n"
        "  --engine E     trace | cycle (default trace)\n"
        "  --warmup N     warmup instructions (default 50000)\n"
        "  --measure N    recorded instructions (default 200000)\n"
        "  --seed N / --set k=v  as above\n"
        "  --window N     counter-sample stride in retired\n"
        "                 instructions (default 4096)\n"
        "  --retires      also record one slice per retired\n"
        "                 instruction (large!)\n"
        "  --max-slices N slice-row cap; excess rows are dropped\n"
        "                 and counted (default 2^22)\n"
        "  --dump FILE|-  write the store as a reloadable JSON\n"
        "                 event dump (schema pifetch-events-v1)\n"
        "  --query Q      run one query (repeatable); grammar in\n"
        "                 docs/query.md\n"
        "  --streams      emit the Fig. 2-style miss-stream-length\n"
        "                 table\n"
        "  --json/--csv/--quiet as above\n"
        "\n"
        "lint options:\n"
        "  paths...       repo-relative path prefixes to scan\n"
        "                 (default: src bench examples tests)\n"
        "  --rule ID      run only rule ID (repeatable)\n"
        "  --root DIR     repository root (default: the checkout\n"
        "                 this binary was built from)\n"
        "  --list-rules   print the rule catalog and exit\n"
        "  --self-test    replay every rule's planted-violation\n"
        "                 fixture and exit\n"
        "  --json/--quiet as above\n",
        out);
    return out == stderr ? 2 : 0;
}

struct CliOptions
{
    RunOptions run;
    std::string jsonPath;
    std::string csvPath;
    bool quiet = false;
    /** --seed or --set appeared (invalid for analysis-only specs). */
    bool configTouched = false;
    /** sweep only: key -> list of values. */
    std::vector<std::pair<std::string, std::vector<std::string>>> grid;
};

bool
parseU64Arg(const char *s, std::uint64_t &out)
{
    return parseU64Value(s, out);  // registry's strict parser
}

/** Every accepted --workload name: presets first, then the zoo. */
std::string
knownWorkloadNames()
{
    std::string out;
    for (ServerWorkload w : allServerWorkloads()) {
        if (!out.empty())
            out += ", ";
        out += workloadKey(w);
    }
    for (const WorkloadZooEntry &e : workloadZoo()) {
        if (!out.empty())
            out += ", ";
        out += e.key;
    }
    return out;
}

/** Every accepted --inject-fault name, in declaration order. */
std::string
knownFaultNames()
{
    std::string out;
    for (FaultInjection f : allFaultInjections()) {
        if (!out.empty())
            out += ", ";
        out += faultKey(f);
    }
    return out;
}

/**
 * Resolve a --workload name: server preset, else zoo spec key.
 * Prints its own diagnostic (with the full list of valid names for
 * the unknown-name case) and returns nullopt on failure.
 */
std::optional<WorkloadRef>
resolveWorkload(const char *name, const char *prog)
{
    if (const std::optional<ServerWorkload> w = workloadFromName(name))
        return WorkloadRef(*w);
    if (const auto entry = findZooEntry(name)) {
        std::string err;
        auto spec = loadWorkloadSpecFile(entry->path, &err);
        if (!spec) {
            std::fprintf(stderr, "%s: %s\n", prog, err.c_str());
            return std::nullopt;
        }
        return workloadRefFromSpec(std::move(*spec));
    }
    std::fprintf(stderr,
                 "%s: unknown workload '%s' (known: %s)\n", prog, name,
                 knownWorkloadNames().c_str());
    return std::nullopt;
}

/** Load a --workload-file spec (diagnostic printed on failure). */
std::optional<WorkloadRef>
loadWorkloadFile(const char *path, const char *prog)
{
    std::string err;
    auto spec = loadWorkloadSpecFile(path, &err);
    if (!spec) {
        std::fprintf(stderr, "%s: %s\n", prog, err.c_str());
        return std::nullopt;
    }
    return workloadRefFromSpec(std::move(*spec));
}

/** Parse run/sweep options from argv[from..). Returns false on error. */
bool
parseOptions(int argc, char **argv, int from, bool allow_param,
             CliOptions &opts)
{
    ExperimentBudget budget;
    bool budget_set = false;
    if (opts.run.budget) {
        budget = *opts.run.budget;
        budget_set = true;
    }

    for (int i = from; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "pifetch: %s needs a value\n",
                             arg.c_str());
                return nullptr;
            }
            return argv[++i];
        };

        const auto badValue = [&](const char *v) {
            std::fprintf(stderr,
                         "pifetch: bad value '%s' for %s\n",
                         v ? v : "<missing>", arg.c_str());
            return false;
        };

        if (arg == "--workload") {
            const char *v = next();
            if (!v)
                return false;
            const auto w = resolveWorkload(v, "pifetch");
            if (!w)
                return false;
            opts.run.workloads.push_back(*w);
        } else if (arg == "--workload-file") {
            const char *v = next();
            if (!v)
                return false;
            const auto w = loadWorkloadFile(v, "pifetch");
            if (!w)
                return false;
            opts.run.workloads.push_back(*w);
        } else if (arg == "--json") {
            const char *v = next();
            if (!v)
                return false;
            opts.jsonPath = v;
        } else if (arg == "--csv") {
            const char *v = next();
            if (!v)
                return false;
            opts.csvPath = v;
        } else if (arg == "--threads") {
            const char *v = next();
            std::uint64_t n = 0;
            if (!v || !parseU64Arg(v, n))
                return badValue(v);
            opts.run.cfg.threads = static_cast<unsigned>(n);
        } else if (arg == "--warmup") {
            const char *v = next();
            std::uint64_t n = 0;
            if (!v || !parseU64Arg(v, n))
                return badValue(v);
            budget.warmup = n;
            budget_set = true;
        } else if (arg == "--measure") {
            const char *v = next();
            std::uint64_t n = 0;
            if (!v || !parseU64Arg(v, n))
                return badValue(v);
            budget.measure = n;
            budget_set = true;
        } else if (arg == "--seed") {
            const char *v = next();
            std::uint64_t n = 0;
            if (!v || !parseU64Arg(v, n))
                return badValue(v);
            opts.run.cfg.seed = n;
            opts.configTouched = true;
        } else if (arg == "--set") {
            const char *v = next();
            if (!v)
                return false;
            const char *eq = std::strchr(v, '=');
            if (!eq) {
                std::fprintf(stderr,
                             "pifetch: --set expects key=value\n");
                return false;
            }
            const std::string key(v, eq);
            if (!applyConfigOverride(opts.run.cfg, key, eq + 1)) {
                std::fprintf(stderr,
                             "pifetch: bad override '%s' (see "
                             "`pifetch list` for keys)\n", v);
                return false;
            }
            opts.configTouched = true;
        } else if (allow_param && arg == "--param") {
            const char *v = next();
            if (!v)
                return false;
            const char *eq = std::strchr(v, '=');
            if (!eq || eq[1] == '\0') {
                std::fprintf(stderr,
                             "pifetch: --param expects "
                             "key=v1,v2,...\n");
                return false;
            }
            std::vector<std::string> values;
            std::string cur;
            for (const char *p = eq + 1;; ++p) {
                if (*p == ',' || *p == '\0') {
                    values.push_back(cur);
                    cur.clear();
                    if (*p == '\0')
                        break;
                } else {
                    cur += *p;
                }
            }
            opts.grid.emplace_back(std::string(v, eq),
                                   std::move(values));
        } else if (arg == "--quiet") {
            opts.quiet = true;
        } else {
            std::fprintf(stderr, "pifetch: unknown option '%s'\n",
                         arg.c_str());
            return false;
        }
    }
    if (budget_set)
        opts.run.budget = budget;
    if (opts.jsonPath == "-" && opts.csvPath == "-") {
        std::fprintf(stderr,
                     "pifetch: --json - and --csv - would interleave "
                     "on stdout; write at least one to a file\n");
        return false;
    }
    return true;
}

/** Write @p text to @p path, or stdout when path is "-". */
bool
writeOutput(const std::string &path, const std::string &text)
{
    if (path == "-") {
        std::fputs(text.c_str(), stdout);
        return true;
    }
    std::ofstream os(path, std::ios::binary);
    os << text;
    os.close();
    if (!os) {
        std::fprintf(stderr, "pifetch: cannot write %s\n",
                     path.c_str());
        return false;
    }
    return true;
}

/** Human report wanted? Not when structured output owns stdout. */
bool
wantReport(const CliOptions &opts)
{
    return !opts.quiet && opts.jsonPath != "-" && opts.csvPath != "-";
}

bool
emitOutputs(const CliOptions &opts, const ResultValue &doc)
{
    if (wantReport(opts))
        std::fputs(renderText(doc).c_str(), stdout);
    if (!opts.jsonPath.empty() &&
        !writeOutput(opts.jsonPath, toJson(doc, 2) + "\n"))
        return false;
    if (!opts.csvPath.empty() && !writeOutput(opts.csvPath, toCsv(doc)))
        return false;
    return true;
}

int
cmdList()
{
    std::printf("%-16s %s\n", "name", "description");
    for (const ExperimentSpec &spec : experimentRegistry())
        std::printf("%-16s %s\n", spec.name.c_str(),
                    spec.description.c_str());
    std::printf("\nworkloads (--workload):\n");
    for (ServerWorkload w : allServerWorkloads())
        std::printf("  %-22s %s (%s preset)\n", workloadKey(w).c_str(),
                    workloadName(w).c_str(), workloadGroup(w).c_str());
    const std::vector<WorkloadZooEntry> zoo = workloadZoo();
    for (const WorkloadZooEntry &e : zoo)
        std::printf("  %-22s %s%s%s\n", e.key.c_str(), e.title.c_str(),
                    e.description.empty() ? "" : " -- ",
                    e.description.c_str());
    if (zoo.empty()) {
        std::printf("  (no zoo specs found under %s)\n",
                    workloadZooDir().c_str());
    }
    std::printf("\nconfig override keys (--set / --param):\n ");
    for (const std::string &k : configOverrideKeys())
        std::printf(" %s", k.c_str());
    std::printf("\n");
    return 0;
}

int
cmdRun(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(stderr, "pifetch run: missing experiment name\n");
        return 2;
    }
    const ExperimentSpec *spec = findExperiment(argv[2]);
    if (!spec) {
        std::fprintf(stderr,
                     "pifetch: unknown experiment '%s' "
                     "(try `pifetch list`)\n", argv[2]);
        return 2;
    }
    CliOptions opts;
    // Seed from the experiment's own defaults so a lone --warmup or
    // --measure adjusts one half without resetting the other.
    opts.run.budget = spec->defaultBudget;
    if (!parseOptions(argc, argv, 3, false, opts))
        return 2;
    if (!spec->usesConfig && opts.configTouched) {
        std::fprintf(stderr,
                     "pifetch: '%s' is an analysis-only study; "
                     "--seed/--set have no effect on it\n",
                     spec->name.c_str());
        return 2;
    }
    const ResultValue doc = runExperiment(*spec, opts.run);
    return emitOutputs(opts, doc) ? 0 : 1;
}

/** Sweep-service options split off before the common option parser. */
struct SweepServiceOptions
{
    std::string dir;
    std::uint64_t shards = 0;
    bool shardsSet = false;
    std::uint64_t shard = 0;
    bool shardSet = false;
    bool resume = false;
    bool merge = false;
    /** CLI-form base inputs captured for the manifest. */
    std::vector<SweepWorkloadRef> workloads;
    std::vector<std::pair<std::string, std::string>> overrides;
    std::optional<std::uint64_t> warmup;
    std::optional<std::uint64_t> measure;
};

/** Options of the common parser that consume a value. */
bool
sweepValueOption(const std::string &arg)
{
    return arg == "--workload" || arg == "--workload-file" ||
           arg == "--json" || arg == "--csv" || arg == "--threads" ||
           arg == "--warmup" || arg == "--measure" ||
           arg == "--seed" || arg == "--set" || arg == "--param";
}

/** Per-point report for an assembled sweep document. */
void
printSweepReport(const ResultValue &doc)
{
    const ResultValue *runs = doc.find("runs");
    if (!runs)
        return;
    for (std::size_t p = 0; p < runs->size(); ++p) {
        std::printf("--- point %zu/%zu:", p + 1, runs->size());
        const ResultValue *params = runs->at(p).find("params");
        for (std::size_t j = 0; params && j < params->size(); ++j) {
            const auto &[key, value] = params->member(j);
            std::printf(" %s=%s", key.c_str(), value.str().c_str());
        }
        std::printf(" ---\n");
        if (const ResultValue *result = runs->at(p).find("result"))
            std::fputs(renderText(*result).c_str(), stdout);
    }
}

/** Emit the merged/in-process sweep document per the CLI options. */
int
emitSweepDoc(const CliOptions &opts, const ResultValue &doc)
{
    if (wantReport(opts))
        printSweepReport(doc);
    if (!opts.jsonPath.empty() &&
        !writeOutput(opts.jsonPath, toJson(doc, 2) + "\n"))
        return 1;
    return 0;
}

int
cmdSweep(int argc, char **argv)
{
    // Split the sweep-service options (--dir/--shards/--shard/
    // --resume/--merge) from the common run options, capturing the
    // raw workload / override / budget inputs for the manifest as
    // they pass through.
    SweepServiceOptions svc;
    std::vector<char *> rest = {argv[0], argv[1]};
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "pifetch sweep: %s needs a value\n",
                             arg.c_str());
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--dir") {
            const char *v = next();
            if (!v)
                return 2;
            svc.dir = v;
        } else if (arg == "--shards" || arg == "--shard") {
            const char *v = next();
            std::uint64_t n = 0;
            if (!v || !parseU64Arg(v, n)) {
                std::fprintf(stderr,
                             "pifetch sweep: bad value '%s' for %s\n",
                             v ? v : "<missing>", arg.c_str());
                return 2;
            }
            if (arg == "--shards") {
                svc.shards = n;
                svc.shardsSet = true;
            } else {
                svc.shard = n;
                svc.shardSet = true;
            }
        } else if (arg == "--resume") {
            svc.resume = true;
        } else if (arg == "--merge") {
            svc.merge = true;
        } else if (sweepValueOption(arg)) {
            const char *v = next();
            if (!v)
                return 2;
            if (arg == "--workload") {
                svc.workloads.push_back({v, false});
            } else if (arg == "--workload-file") {
                svc.workloads.push_back({v, true});
            } else if (arg == "--seed") {
                svc.overrides.emplace_back("seed", v);
            } else if (arg == "--set") {
                if (const char *eq = std::strchr(v, '='))
                    svc.overrides.emplace_back(std::string(v, eq),
                                               eq + 1);
            } else if (arg == "--warmup" || arg == "--measure") {
                std::uint64_t n = 0;
                if (parseU64Arg(v, n))
                    (arg == "--warmup" ? svc.warmup
                                       : svc.measure) = n;
            }
            rest.push_back(argv[i - 1]);
            rest.push_back(argv[i]);
        } else {
            rest.push_back(argv[i]);
        }
    }
    const int restc = static_cast<int>(rest.size());

    if (svc.shardsSet && svc.shards == 0) {
        std::fprintf(stderr, "pifetch sweep: --shards must be >= 1\n");
        return 2;
    }
    if ((svc.shardsSet || svc.shardSet || svc.merge) &&
        svc.dir.empty()) {
        std::fprintf(stderr,
                     "pifetch sweep: --shards/--shard/--merge need "
                     "--dir\n");
        return 2;
    }

    // Worker mode: everything comes from the on-disk manifest; only
    // the shard ordinal (and --resume) arrive on the command line.
    if (svc.shardSet) {
        if (restc > 2 || svc.shardsSet || svc.merge) {
            std::fprintf(stderr,
                         "pifetch sweep: --shard takes only --dir "
                         "and --resume\n");
            return 2;
        }
        std::string err;
        const auto m = loadManifest(sweepManifestPath(svc.dir), &err);
        if (!m) {
            std::fprintf(stderr, "pifetch sweep: %s\n", err.c_str());
            return 2;
        }
        if (!runSweepShard(svc.dir, *m,
                           static_cast<unsigned>(svc.shard),
                           svc.resume, &err)) {
            std::fprintf(stderr, "pifetch sweep: %s\n", err.c_str());
            return 1;
        }
        return 0;
    }

    // Merge mode: assemble <dir>/merged.json from completed shards
    // without running anything.
    if (svc.merge) {
        CliOptions opts;
        if (!parseOptions(restc, rest.data(), 2, false, opts))
            return 2;
        std::string err;
        const auto m = loadManifest(sweepManifestPath(svc.dir), &err);
        if (!m) {
            std::fprintf(stderr, "pifetch sweep: %s\n", err.c_str());
            return 2;
        }
        const auto doc = mergeShardedSweep(svc.dir, *m, &err);
        if (!doc) {
            std::fprintf(stderr, "pifetch sweep: %s\n", err.c_str());
            return 1;
        }
        if (!writeOutput(sweepMergedPath(svc.dir),
                         toJson(*doc, 2) + "\n"))
            return 1;
        return emitSweepDoc(opts, *doc);
    }

    if (restc < 3) {
        std::fprintf(stderr,
                     "pifetch sweep: missing experiment name\n");
        return 2;
    }
    const ExperimentSpec *spec = findExperiment(rest[2]);
    if (!spec) {
        std::fprintf(stderr,
                     "pifetch: unknown experiment '%s' "
                     "(try `pifetch list`)\n", rest[2]);
        return 2;
    }
    CliOptions opts;
    opts.run.budget = spec->defaultBudget;
    if (!parseOptions(restc, rest.data(), 3, true, opts))
        return 2;
    if (opts.grid.empty()) {
        std::fprintf(stderr,
                     "pifetch sweep: need at least one --param\n");
        return 2;
    }
    if (!spec->usesConfig) {
        // Every sweepable parameter is a config override, and this
        // runner never reads the config — the grid would rerun the
        // identical study labeled as varied.
        std::fprintf(stderr,
                     "pifetch sweep: '%s' is an analysis-only study "
                     "that ignores configuration parameters\n",
                     spec->name.c_str());
        return 2;
    }
    if (!opts.csvPath.empty()) {
        std::fprintf(stderr,
                     "pifetch sweep: --csv is not supported; use "
                     "--json\n");
        return 2;
    }

    // Validate every grid value against a scratch config up front so
    // a typo fails before hours of simulation.
    for (const auto &[key, values] : opts.grid) {
        if (key == "threads") {
            // Results are thread-invariant and each grid point is
            // pinned serial — a threads axis would only oversubscribe.
            std::fprintf(stderr,
                         "pifetch sweep: 'threads' is not sweepable "
                         "(results are thread-invariant); use "
                         "--threads for the fan-out width\n");
            return 2;
        }
        for (const std::string &v : values) {
            SystemConfig scratch = opts.run.cfg;
            if (!applyConfigOverride(scratch, key, v)) {
                std::fprintf(stderr,
                             "pifetch sweep: bad --param %s=%s\n",
                             key.c_str(), v.c_str());
                return 2;
            }
        }
    }

    // The manifest pins the whole sweep; in-process and sharded runs
    // both execute through it (runSweepPoint / assembleSweepDoc), so
    // their documents agree byte for byte.
    SweepManifest manifest;
    manifest.experiment = spec->name;
    for (const auto &[key, values] : opts.grid)
        manifest.axes.push_back(SweepAxis{key, values});
    manifest.shards = svc.shardsSet
                          ? static_cast<unsigned>(svc.shards)
                          : 1;
    manifest.workloads = svc.workloads;
    manifest.overrides = svc.overrides;
    manifest.warmup = svc.warmup;
    manifest.measure = svc.measure;

    std::string err;
    const std::uint64_t points = sweepPointCount(manifest);

    if (svc.shardsSet) {
        if (svc.resume) {
            // A resume must be the same sweep: the command line is
            // re-pinned and compared byte for byte against the
            // manifest the crashed run wrote.
            const auto on_disk =
                loadManifest(sweepManifestPath(svc.dir), &err);
            if (!on_disk) {
                std::fprintf(stderr, "pifetch sweep: %s (run without "
                             "--resume to start fresh)\n",
                             err.c_str());
                return 2;
            }
            if (manifestJson(*on_disk) != manifestJson(manifest)) {
                std::fprintf(stderr,
                             "pifetch sweep: %s pins a different "
                             "sweep than this command line; --resume "
                             "needs the original arguments\n",
                             sweepManifestPath(svc.dir).c_str());
                return 2;
            }
        } else if (!initSweepDir(svc.dir, manifest, &err)) {
            std::fprintf(stderr, "pifetch sweep: %s\n", err.c_str());
            return 1;
        }
        const std::string exe = selfExePath();
        if (exe.empty()) {
            std::fprintf(stderr,
                         "pifetch sweep: cannot resolve own "
                         "executable path for shard workers\n");
            return 1;
        }
        if (!runShardedSweep(svc.dir, manifest, exe,
                             opts.run.cfg.threads, svc.resume,
                             &err)) {
            std::fprintf(stderr, "pifetch sweep: %s\n", err.c_str());
            return 1;
        }
        const auto doc = mergeShardedSweep(svc.dir, manifest, &err);
        if (!doc) {
            std::fprintf(stderr, "pifetch sweep: %s\n", err.c_str());
            return 1;
        }
        if (!writeOutput(sweepMergedPath(svc.dir),
                         toJson(*doc, 2) + "\n"))
            return 1;
        return emitSweepDoc(opts, *doc);
    }

    // In-process: grid points fan over the worker pool; each point
    // runs serially inside (threads = 1) so the fan-out is the only
    // parallelism.
    const auto base = sweepBaseOptions(*spec, manifest, &err);
    if (!base) {
        std::fprintf(stderr, "pifetch sweep: %s\n", err.c_str());
        return 2;
    }
    std::vector<ResultValue> docs(points);
    parallelFor(opts.run.cfg.threads, points, [&](std::uint64_t p) {
        docs[p] = runSweepPoint(*spec, *base, manifest, p);
    });
    const ResultValue doc = assembleSweepDoc(manifest,
                                             std::move(docs));
    return emitSweepDoc(opts, doc);
}

/** `pifetch trace info` document for one trace file. */
std::optional<ResultValue>
traceInfoDoc(const std::string &path, std::string *err)
{
    const auto format = probeTraceFile(path, err);
    if (!format)
        return std::nullopt;
    ResultValue doc = ResultValue::object();
    doc.set("path", path);
    if (*format == TraceFileFormat::V1) {
        std::vector<RetiredInstr> records;
        if (!readTrace(path, records)) {
            if (err)
                *err = path + ": invalid v1 trace";
            return std::nullopt;
        }
        doc.set("format", "pifetch-trace-v1");
        doc.set("records", records.size());
        const std::uint64_t bytes = 16 + 24 * records.size();
        doc.set("fileBytes", bytes);
        if (!records.empty())
            doc.set("bytesPerRecord",
                    static_cast<double>(bytes) /
                        static_cast<double>(records.size()));
        return doc;
    }
    const auto info = traceV2Info(path, err);
    if (!info)
        return std::nullopt;
    doc.set("format", "pifetch-trace-v2");
    doc.set("records", info->count);
    doc.set("fileBytes", info->fileBytes);
    doc.set("chunks", info->chunks.size());
    doc.set("indexOffset", info->indexOffset);
    if (info->count > 0) {
        doc.set("bytesPerRecord",
                static_cast<double>(info->fileBytes) /
                    static_cast<double>(info->count));
        const double v1_bytes =
            16.0 + 24.0 * static_cast<double>(info->count);
        doc.set("v1Ratio",
                v1_bytes / static_cast<double>(info->fileBytes));
    }
    return doc;
}

int
cmdTrace(int argc, char **argv)
{
    const auto fail = [](const std::string &msg) {
        std::fprintf(stderr, "pifetch trace: %s\n", msg.c_str());
        return 1;
    };
    if (argc < 3) {
        std::fprintf(stderr,
                     "pifetch trace: expected pack|unpack|info\n");
        return 2;
    }
    const std::string verb = argv[2];
    std::string err;

    if (verb == "info") {
        if (argc < 4) {
            std::fprintf(stderr,
                         "pifetch trace info: missing file\n");
            return 2;
        }
        std::string json_path;
        for (int i = 5; i < argc; i += 2) {
            if (std::strcmp(argv[i - 1], "--json") == 0) {
                json_path = argv[i];
            } else {
                std::fprintf(stderr,
                             "pifetch trace info: unknown option "
                             "'%s'\n", argv[i - 1]);
                return 2;
            }
        }
        const auto doc = traceInfoDoc(argv[3], &err);
        if (!doc)
            return fail(err);
        if (json_path.empty() || json_path != "-") {
            for (std::size_t i = 0; i < doc->size(); ++i) {
                const auto &[key, value] = doc->member(i);
                std::printf("%-14s %s\n", key.c_str(),
                            toJson(value, 0).c_str());
            }
        }
        if (!json_path.empty() &&
            !writeOutput(json_path, toJson(*doc, 2) + "\n"))
            return 1;
        return 0;
    }

    if (verb != "pack" && verb != "unpack") {
        std::fprintf(stderr,
                     "pifetch trace: unknown verb '%s' (expected "
                     "pack|unpack|info)\n", verb.c_str());
        return 2;
    }
    if (argc != 5) {
        std::fprintf(stderr,
                     "pifetch trace %s: expected <in> <out>\n",
                     verb.c_str());
        return 2;
    }
    const std::string in = argv[3];
    const std::string out = argv[4];
    const auto format = probeTraceFile(in, &err);
    if (!format)
        return fail(err);

    // Both directions stream chunk by chunk through RecordBatch
    // columns, so repacking a multi-gigabyte corpus holds one chunk.
    RecordBatch batch;
    if (verb == "pack") {
        TraceV2Writer writer;
        if (!writer.open(out))
            return fail(writer.error());
        if (*format == TraceFileFormat::V1) {
            TraceBatchReader reader;
            if (!reader.open(in))
                return fail(in + ": invalid v1 trace");
            while (reader.next(batch, traceV2ChunkRecords))
                writer.addBatch(batch);
            if (reader.failed())
                return fail(in + ": read error mid-stream");
        } else {
            TraceV2Reader reader;
            if (!reader.open(in))
                return fail(reader.error());
            while (reader.next(batch))
                writer.addBatch(batch);
            if (reader.failed())
                return fail(reader.error());
        }
        if (!writer.finish())
            return fail(writer.error());
        std::printf("packed %llu records to %s\n",
                    static_cast<unsigned long long>(writer.count()),
                    out.c_str());
        return 0;
    }

    TraceWriter writer;
    if (!writer.open(out))
        return fail(writer.error());
    if (*format == TraceFileFormat::V2) {
        TraceV2Reader reader;
        if (!reader.open(in))
            return fail(reader.error());
        while (reader.next(batch))
            writer.addBatch(batch);
        if (reader.failed())
            return fail(reader.error());
    } else {
        TraceBatchReader reader;
        if (!reader.open(in))
            return fail(in + ": invalid v1 trace");
        while (reader.next(batch, traceV2ChunkRecords))
            writer.addBatch(batch);
        if (reader.failed())
            return fail(in + ": read error mid-stream");
    }
    if (!writer.finish())
        return fail(writer.error());
    std::printf("unpacked %llu records to %s\n",
                static_cast<unsigned long long>(writer.count()),
                out.c_str());
    return 0;
}

int
cmdGolden(int argc, char **argv)
{
    if (argc >= 3 && std::strcmp(argv[2], "--list") == 0) {
        for (const GoldenEntry &e : goldenSuite())
            std::printf("%s\n", goldenFixtureName(e).c_str());
        return 0;
    }
    if (argc < 3) {
        std::fprintf(stderr,
                     "pifetch golden: expected --list or a "
                     "fixture name\n");
        return 2;
    }
    for (const GoldenEntry &e : goldenSuite()) {
        if (goldenFixtureName(e) == argv[2]) {
            std::fputs(goldenJson(e).c_str(), stdout);
            return 0;
        }
    }
    std::fprintf(stderr,
                 "pifetch golden: '%s' is not in the golden suite "
                 "(see --list)\n", argv[2]);
    return 2;
}

int
cmdPerf(int argc, char **argv)
{
    if (argc >= 3 && std::strcmp(argv[2], "--list") == 0) {
        std::printf("%-20s %s\n", "kernel", "description");
        for (const PerfKernelSpec &k : perfKernels())
            std::printf("%-20s %s\n", k.name.c_str(),
                        k.description.c_str());
        return 0;
    }

    PerfOptions opts;
    CliOptions out;  // only jsonPath/csvPath/quiet are used
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "pifetch perf: %s needs a value\n",
                             arg.c_str());
                return nullptr;
            }
            return argv[++i];
        };
        const auto badValue = [&](const char *v) {
            std::fprintf(stderr, "pifetch perf: bad value '%s' for %s\n",
                         v ? v : "<missing>", arg.c_str());
            return 2;
        };

        if (arg == "--kernel") {
            const char *v = next();
            if (!v)
                return 2;
            if (!findPerfKernel(v)) {
                std::fprintf(stderr,
                             "pifetch perf: unknown kernel '%s' "
                             "(try `pifetch perf --list`)\n", v);
                return 2;
            }
            opts.kernels.push_back(v);
        } else if (arg == "--reps" || arg == "--warmup-reps" ||
                   arg == "--seed") {
            const char *v = next();
            std::uint64_t n = 0;
            if (!v || !parseU64Arg(v, n))
                return badValue(v);
            if (arg == "--reps") {
                if (n == 0 || n > 1000) {
                    std::fprintf(stderr,
                                 "pifetch perf: --reps must be in "
                                 "1..1000\n");
                    return 2;
                }
                opts.protocol.reps = static_cast<unsigned>(n);
            } else if (arg == "--warmup-reps") {
                if (n > 1000) {
                    std::fprintf(stderr,
                                 "pifetch perf: --warmup-reps must "
                                 "be <= 1000\n");
                    return 2;
                }
                opts.protocol.warmupReps = static_cast<unsigned>(n);
            } else {
                opts.seed = n;
            }
        } else if (arg == "--scale") {
            const char *v = next();
            if (!v)
                return 2;
            char *end = nullptr;
            const double s = std::strtod(v, &end);
            // Finite and bounded: "inf"/1e300 would overflow the op
            // counts (UB on the uint64 cast downstream).
            if (!end || *end != '\0' || !(s > 0.0) || !(s <= 1e6))
                return badValue(v);
            opts.scale = s;
        } else if (arg == "--workload") {
            const char *v = next();
            if (!v)
                return 2;
            const std::optional<ServerWorkload> w = workloadFromName(v);
            if (!w) {
                std::fprintf(stderr,
                             "pifetch perf: unknown workload '%s'\n", v);
                return 2;
            }
            opts.workload = *w;
        } else if (arg == "--json") {
            const char *v = next();
            if (!v)
                return 2;
            out.jsonPath = v;
        } else if (arg == "--csv") {
            const char *v = next();
            if (!v)
                return 2;
            out.csvPath = v;
        } else if (arg == "--quiet") {
            out.quiet = true;
        } else {
            std::fprintf(stderr, "pifetch perf: unknown option '%s'\n",
                         arg.c_str());
            return 2;
        }
    }
    if (out.jsonPath == "-" && out.csvPath == "-") {
        std::fprintf(stderr,
                     "pifetch: --json - and --csv - would interleave "
                     "on stdout; write at least one to a file\n");
        return 2;
    }

    return emitOutputs(out, runPerfSuite(opts)) ? 0 : 1;
}

/** Print one failing scenario of a check report. */
void
printCheckFailure(const ScenarioReport &r)
{
    std::printf("FAIL seed %llu:\n",
                static_cast<unsigned long long>(r.scenario.seed));
    for (const CheckFailure &f : r.failures)
        std::printf("  [%s] %s\n", f.invariant.c_str(),
                    f.detail.c_str());
    if (r.shrunkValid) {
        std::printf("  shrunk in %u steps to: workload '%s', kind %s, "
                    "warmup %llu, measure %llu\n",
                    r.shrinkSteps, r.shrunk.params.name.c_str(),
                    prefetcherKey(r.shrunk.kind).c_str(),
                    static_cast<unsigned long long>(r.shrunk.warmup),
                    static_cast<unsigned long long>(r.shrunk.measure));
    }
}

int
cmdCheck(int argc, char **argv)
{
    CheckOptions opts;
    std::string jsonPath;
    std::string reproPath = "pifetch-check-repro.json";
    bool reproExplicit = false;
    std::string replayPath;
    bool haveReplaySeed = false;
    std::uint64_t replaySeed = 0;
    bool quiet = false;
    /** Last fuzz-only option seen, for the replay-conflict check. */
    std::string fuzzOnlyOption;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "pifetch check: %s needs a value\n",
                             arg.c_str());
                return nullptr;
            }
            return argv[++i];
        };
        const auto badValue = [&](const char *v) {
            std::fprintf(stderr,
                         "pifetch check: bad value '%s' for %s\n",
                         v ? v : "<missing>", arg.c_str());
            return 2;
        };

        if (arg == "--seeds" || arg == "--seed" ||
            arg == "--replay-seed" || arg == "--threads") {
            const char *v = next();
            std::uint64_t n = 0;
            if (!v || !parseU64Arg(v, n))
                return badValue(v);
            if (arg == "--seeds") {
                if (n == 0 || n > 100'000) {
                    std::fprintf(stderr,
                                 "pifetch check: --seeds must be in "
                                 "1..100000\n");
                    return 2;
                }
                opts.seeds = static_cast<unsigned>(n);
                fuzzOnlyOption = arg;
            } else if (arg == "--seed") {
                opts.baseSeed = n;
                fuzzOnlyOption = arg;
            } else if (arg == "--replay-seed") {
                haveReplaySeed = true;
                replaySeed = n;
            } else {
                if (n > 256) {
                    // Truncating would silently turn e.g. 2^32 into 0
                    // ("auto"); resolveThreads caps at 256 anyway.
                    std::fprintf(stderr,
                                 "pifetch check: --threads must be "
                                 "<= 256\n");
                    return 2;
                }
                opts.threads = static_cast<unsigned>(n);
                // Replay runs one scenario whose fan-out shape is the
                // scenario's own `threads` field, not this option.
                fuzzOnlyOption = arg;
            }
        } else if (arg == "--replay") {
            const char *v = next();
            if (!v)
                return 2;
            replayPath = v;
        } else if (arg == "--repro") {
            const char *v = next();
            if (!v)
                return 2;
            reproPath = v;
            reproExplicit = true;
        } else if (arg == "--inject-fault") {
            const char *v = next();
            if (!v)
                return 2;
            const auto fault = faultFromKey(v);
            if (!fault) {
                std::fprintf(stderr,
                             "pifetch check: unknown fault '%s' "
                             "(known: %s)\n", v,
                             knownFaultNames().c_str());
                return 2;
            }
            opts.inject = *fault;
        } else if (arg == "--workload-file") {
            const char *v = next();
            if (!v)
                return 2;
            std::string err;
            auto spec = loadWorkloadSpecFile(v, &err);
            if (!spec) {
                std::fprintf(stderr, "pifetch check: %s\n",
                             err.c_str());
                return 2;
            }
            opts.spec =
                std::make_shared<const WorkloadSpec>(std::move(*spec));
            // Replay runs the repro's own recorded workload.
            fuzzOnlyOption = arg;
        } else if (arg == "--no-shrink") {
            opts.shrink = false;
            fuzzOnlyOption = arg;
        } else if (arg == "--json") {
            const char *v = next();
            if (!v)
                return 2;
            jsonPath = v;
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            std::fprintf(stderr,
                         "pifetch check: unknown option '%s'\n",
                         arg.c_str());
            return 2;
        }
    }
    if (!replayPath.empty() && haveReplaySeed) {
        std::fprintf(stderr,
                     "pifetch check: --replay and --replay-seed are "
                     "mutually exclusive\n");
        return 2;
    }
    if ((!replayPath.empty() || haveReplaySeed) &&
        !fuzzOnlyOption.empty()) {
        // Accepting-and-ignoring would let "--replay x --seeds 100"
        // report success for a sweep that never ran.
        std::fprintf(stderr,
                     "pifetch check: %s has no effect in replay mode\n",
                     fuzzOnlyOption.c_str());
        return 2;
    }
    if (!replayPath.empty()) {
        // Replaying must never clobber the repro being replayed (the
        // rewritten file would lose the shrunk scenario); only write
        // one when explicitly asked to, somewhere else.
        if (!reproExplicit)
            reproPath.clear();
        else if (reproPath == replayPath) {
            std::fprintf(stderr,
                         "pifetch check: --repro would overwrite the "
                         "--replay input; pick another path\n");
            return 2;
        }
    }

    CheckReport report;
    if (!replayPath.empty() || haveReplaySeed) {
        // Replay mode: exactly one scenario, from a repro file or a
        // fuzz seed.
        Scenario scenario;
        if (haveReplaySeed) {
            scenario = scenarioFromSeed(replaySeed);
        } else {
            std::ifstream is(replayPath, std::ios::binary);
            std::ostringstream text;
            text << is.rdbuf();
            if (!is) {
                std::fprintf(stderr,
                             "pifetch check: cannot read %s\n",
                             replayPath.c_str());
                return 2;
            }
            std::string err;
            const auto doc = parseJson(text.str(), &err);
            if (!doc) {
                std::fprintf(stderr,
                             "pifetch check: %s: %s\n",
                             replayPath.c_str(), err.c_str());
                return 2;
            }
            const auto parsed = scenarioFromResult(*doc, &err);
            if (!parsed) {
                std::fprintf(stderr,
                             "pifetch check: %s: %s\n",
                             replayPath.c_str(), err.c_str());
                return 2;
            }
            scenario = *parsed;
        }
        report.baseSeed = scenario.seed;
        report.seedsRun = 1;
        std::vector<CheckFailure> failures =
            runScenario(scenario, opts.inject);
        if (!failures.empty()) {
            ScenarioReport entry;
            entry.scenario = scenario;
            entry.failures = std::move(failures);
            entry.shrunk = scenario;
            report.failures.push_back(std::move(entry));
        }
    } else {
        report = runCheck(opts);
    }

    const ResultValue doc = toResult(report);
    if (!quiet && jsonPath != "-") {
        for (const ScenarioReport &r : report.failures)
            printCheckFailure(r);
        std::printf("check: %u scenario%s, %zu failed%s\n",
                    report.seedsRun, report.seedsRun == 1 ? "" : "s",
                    report.failures.size(),
                    report.passed() ? " -- all invariants hold" : "");
    }
    // The repro is the artifact CI needs most, so it is written
    // before (and regardless of) the report, and an I/O error never
    // masks a violation verdict: "invariants broken" stays exit 1.
    bool io_failed = false;
    if (!report.passed() && !reproPath.empty()) {
        // Ship the first failure (shrunk when available) as a
        // self-contained repro for `pifetch check --replay`; same
        // schema as one entry of the report's "failures" array.
        if (writeOutput(reproPath,
                        toJson(toResult(report.failures.front()), 2) +
                            "\n")) {
            // Keep a `--json -` stdout stream pure JSON: route the
            // notice to stderr there, like run/sweep keep their
            // reports off it.
            if (!quiet) {
                std::fprintf(jsonPath == "-" ? stderr : stdout,
                             "repro written to %s\n",
                             reproPath.c_str());
            }
        } else {
            io_failed = true;
        }
    }
    if (!jsonPath.empty() &&
        !writeOutput(jsonPath, toJson(doc, 2) + "\n"))
        io_failed = true;
    // Exit contract (docs/cli.md): 2 is reserved for usage errors;
    // output-write failures report 1, matching run/sweep.
    return (!report.passed() || io_failed) ? 1 : 0;
}

int
cmdQuery(int argc, char **argv)
{
    std::optional<WorkloadRef> workload;
    std::string loadPath;
    PrefetcherKind kind = PrefetcherKind::Pif;
    bool engineCycle = false;
    std::uint64_t warmup = 50'000;
    std::uint64_t measure = 200'000;
    SystemConfig cfg;
    EventStoreOptions storeOpts;
    std::string dumpPath;
    bool streams = false;
    std::vector<Query> queries;
    CliOptions out;  // only jsonPath/csvPath/quiet are used
    /** Last record-only option seen, for the --load conflict check. */
    std::string recordOnlyOption;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "pifetch query: %s needs a value\n",
                             arg.c_str());
                return nullptr;
            }
            return argv[++i];
        };
        const auto badValue = [&](const char *v) {
            std::fprintf(stderr,
                         "pifetch query: bad value '%s' for %s\n",
                         v ? v : "<missing>", arg.c_str());
            return 2;
        };
        const auto oneSource = [&]() {
            if (!workload && loadPath.empty())
                return true;
            std::fprintf(stderr,
                         "pifetch query: multiple sources; pass "
                         "exactly one of --workload, --workload-file "
                         "or --load\n");
            return false;
        };

        if (arg == "--workload") {
            const char *v = next();
            if (!v || !oneSource())
                return 2;
            const auto w = resolveWorkload(v, "pifetch query");
            if (!w)
                return 2;
            workload = *w;
        } else if (arg == "--workload-file") {
            const char *v = next();
            if (!v || !oneSource())
                return 2;
            const auto w = loadWorkloadFile(v, "pifetch query");
            if (!w)
                return 2;
            workload = *w;
        } else if (arg == "--load") {
            const char *v = next();
            if (!v || !oneSource())
                return 2;
            loadPath = v;
        } else if (arg == "--prefetcher") {
            const char *v = next();
            if (!v)
                return 2;
            const auto k = prefetcherFromKey(v);
            if (!k) {
                std::string known;
                for (PrefetcherKind p :
                     {PrefetcherKind::None, PrefetcherKind::NextLine,
                      PrefetcherKind::Tifs,
                      PrefetcherKind::Discontinuity,
                      PrefetcherKind::Pif, PrefetcherKind::Perfect}) {
                    if (!known.empty())
                        known += ", ";
                    known += prefetcherKey(p);
                }
                std::fprintf(stderr,
                             "pifetch query: unknown prefetcher '%s' "
                             "(known: %s)\n", v, known.c_str());
                return 2;
            }
            kind = *k;
            recordOnlyOption = arg;
        } else if (arg == "--engine") {
            const char *v = next();
            if (!v)
                return 2;
            if (std::strcmp(v, "trace") == 0)
                engineCycle = false;
            else if (std::strcmp(v, "cycle") == 0)
                engineCycle = true;
            else
                return badValue(v);
            recordOnlyOption = arg;
        } else if (arg == "--warmup" || arg == "--measure" ||
                   arg == "--seed" || arg == "--window" ||
                   arg == "--max-slices") {
            const char *v = next();
            std::uint64_t n = 0;
            if (!v || !parseU64Arg(v, n))
                return badValue(v);
            if (arg == "--warmup") {
                warmup = n;
            } else if (arg == "--measure") {
                measure = n;
            } else if (arg == "--seed") {
                cfg.seed = n;
            } else if (arg == "--window") {
                if (n == 0) {
                    // 0 is the "sampling disabled" encoding in
                    // EventStoreOptions; as a CLI request it would
                    // silently empty the counters table.
                    std::fprintf(stderr,
                                 "pifetch query: --window must be "
                                 ">= 1\n");
                    return 2;
                }
                storeOpts.counterWindow = n;
            } else {
                storeOpts.maxSlices = n;
            }
            recordOnlyOption = arg;
        } else if (arg == "--set") {
            const char *v = next();
            if (!v)
                return 2;
            const char *eq = std::strchr(v, '=');
            if (!eq ||
                !applyConfigOverride(cfg, std::string(v, eq), eq + 1)) {
                std::fprintf(stderr,
                             "pifetch query: bad override '%s' (see "
                             "`pifetch list` for keys)\n", v);
                return 2;
            }
            recordOnlyOption = arg;
        } else if (arg == "--retires") {
            storeOpts.recordRetires = true;
            recordOnlyOption = arg;
        } else if (arg == "--dump") {
            const char *v = next();
            if (!v)
                return 2;
            dumpPath = v;
            recordOnlyOption = arg;
        } else if (arg == "--streams") {
            streams = true;
        } else if (arg == "--query") {
            const char *v = next();
            if (!v)
                return 2;
            std::string err;
            const auto q = parseQuery(v, &err);
            if (!q) {
                std::fprintf(stderr, "pifetch query: %s\n",
                             err.c_str());
                return 2;
            }
            queries.push_back(*q);
        } else if (arg == "--json") {
            const char *v = next();
            if (!v)
                return 2;
            out.jsonPath = v;
        } else if (arg == "--csv") {
            const char *v = next();
            if (!v)
                return 2;
            out.csvPath = v;
        } else if (arg == "--quiet") {
            out.quiet = true;
        } else {
            std::fprintf(stderr,
                         "pifetch query: unknown option '%s'\n",
                         arg.c_str());
            return 2;
        }
    }
    if (!workload && loadPath.empty()) {
        std::fprintf(stderr,
                     "pifetch query: need a source: --workload, "
                     "--workload-file or --load\n");
        return 2;
    }
    if (!loadPath.empty() && !recordOnlyOption.empty()) {
        // A dump is immutable data: accepting-and-ignoring run knobs
        // would report results for a run that never happened.
        std::fprintf(stderr,
                     "pifetch query: %s has no effect with --load\n",
                     recordOnlyOption.c_str());
        return 2;
    }
    if (queries.empty() && !streams && dumpPath.empty()) {
        std::fprintf(stderr,
                     "pifetch query: nothing to do; pass --query, "
                     "--streams and/or --dump\n");
        return 2;
    }
    int dashes = dumpPath == "-" ? 1 : 0;
    dashes += out.jsonPath == "-" ? 1 : 0;
    dashes += out.csvPath == "-" ? 1 : 0;
    if (dashes > 1) {
        std::fprintf(stderr,
                     "pifetch query: only one of --dump/--json/--csv "
                     "may write to stdout\n");
        return 2;
    }
    if (dumpPath == "-")
        out.quiet = true;  // keep the stdout dump pure JSON

    EventStore store(storeOpts);
    ResultValue meta = ResultValue::object();
    if (!loadPath.empty()) {
        std::ifstream is(loadPath, std::ios::binary);
        std::ostringstream text;
        text << is.rdbuf();
        if (!is) {
            std::fprintf(stderr, "pifetch query: cannot read %s\n",
                         loadPath.c_str());
            return 2;
        }
        std::string err;
        const auto doc = parseJson(text.str(), &err);
        if (!doc) {
            std::fprintf(stderr, "pifetch query: %s: %s\n",
                         loadPath.c_str(), err.c_str());
            return 2;
        }
        auto loaded = eventStoreFromResult(*doc, &err);
        if (!loaded) {
            std::fprintf(stderr, "pifetch query: %s: %s\n",
                         loadPath.c_str(), err.c_str());
            return 2;
        }
        store = std::move(*loaded);
        meta.set("load", loadPath);
    } else {
        const Program prog = workload->buildProgram();
        const ExecutorConfig exec = workload->executorConfig();
        ObserverConfig obs;
        obs.events = &store;
        if (engineCycle) {
            CycleEngine engine(cfg, prog, exec, kind);
            engine.attachObservers(obs);
            engine.run(warmup, measure);
        } else {
            TraceEngine engine(cfg, prog, exec,
                               makePrefetcher(kind, cfg));
            engine.attachObservers(obs);
            engine.run(warmup, measure);
        }
        meta.set("workload", workload->key());
        meta.set("prefetcher", prefetcherKey(kind));
        meta.set("engine", engineCycle ? "cycle" : "trace");
        meta.set("warmup", warmup);
        meta.set("measure", measure);
        meta.set("seed", cfg.seed);
    }
    meta.set("slices", store.sliceCount());
    meta.set("counters", store.counterCount());
    meta.set("dropped_slices", store.droppedSlices());
    std::uint64_t retired = 0;
    for (unsigned c = 0; c < store.coresSeen(); ++c)
        retired += store.retired(c);
    meta.set("retired", retired);
    meta.set("cores", store.coresSeen());

    ResultValue tables = ResultValue::array();
    for (const Query &q : queries) {
        std::string err;
        auto table = runQuery(store, q, &err);
        if (!table) {
            std::fprintf(stderr, "pifetch query: %s\n", err.c_str());
            return 2;
        }
        tables.push(std::move(*table));
    }
    if (streams)
        tables.push(missStreamLengthTable(store));

    ResultValue doc = ResultValue::object();
    doc.set("experiment", "query");
    doc.set("description", "columnar event-store queries");
    doc.set("meta", std::move(meta));
    doc.set("tables", std::move(tables));

    bool ok = true;
    if (!dumpPath.empty() &&
        !writeOutput(dumpPath, toJson(toResult(store), 2) + "\n"))
        ok = false;
    if (!emitOutputs(out, doc))
        ok = false;
    return ok ? 0 : 1;
}

int
cmdLint(int argc, char **argv)
{
    lint::LintOptions opts;
    std::string jsonPath;
    bool quiet = false;
    bool listRules = false;
    bool selfTest = false;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "pifetch lint: %s needs a value\n",
                             arg.c_str());
                return nullptr;
            }
            return argv[++i];
        };

        if (arg == "--rule") {
            const char *v = next();
            if (!v)
                return 2;
            if (!lint::findRule(v)) {
                std::fprintf(stderr,
                             "pifetch lint: unknown rule '%s' "
                             "(try `pifetch lint --list-rules`)\n", v);
                return 2;
            }
            opts.rules.push_back(v);
        } else if (arg == "--root") {
            const char *v = next();
            if (!v)
                return 2;
            opts.root = v;
        } else if (arg == "--json") {
            const char *v = next();
            if (!v)
                return 2;
            jsonPath = v;
        } else if (arg == "--list-rules") {
            listRules = true;
        } else if (arg == "--self-test") {
            selfTest = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr,
                         "pifetch lint: unknown option '%s'\n",
                         arg.c_str());
            return 2;
        } else {
            opts.paths.push_back(arg);
        }
    }

    if (listRules) {
        std::printf("%-24s %-12s %-8s %s\n", "rule", "class",
                    "severity", "summary");
        for (const lint::Rule &r : lint::ruleCatalog())
            std::printf("%-24s %-12s %-8s %s\n", r.id.c_str(),
                        r.category.c_str(),
                        lint::severityKey(r.severity).c_str(),
                        r.summary.c_str());
        return 0;
    }

    if (selfTest) {
        const std::vector<std::string> failures =
            lint::runRuleSelfTest();
        for (const std::string &f : failures)
            std::fprintf(stderr, "pifetch lint: self-test: %s\n",
                         f.c_str());
        if (!quiet) {
            std::printf("lint self-test: %zu rules, %zu failure%s\n",
                        lint::ruleCatalog().size(), failures.size(),
                        failures.size() == 1 ? "" : "s");
        }
        return failures.empty() ? 0 : 1;
    }

    std::string err;
    const lint::LintReport report = lint::runLint(opts, &err);
    if (!err.empty()) {
        std::fprintf(stderr, "pifetch lint: %s\n", err.c_str());
        return 2;
    }

    const std::string root =
        opts.root.empty() ? lint::defaultRoot() : opts.root;
    if (!quiet && jsonPath != "-") {
        for (const lint::Finding &f : report.findings) {
            if (f.suppressed)
                continue;
            std::printf("%s:%u: [%s] %s: %s\n", f.file.c_str(),
                        f.violation.line,
                        lint::severityKey(f.violation.severity)
                            .c_str(),
                        f.violation.rule.c_str(),
                        f.violation.message.c_str());
        }
        std::printf("lint: %u files, %u error%s, %u warning%s "
                    "(%u suppressed)\n",
                    report.filesScanned, report.errors(),
                    report.errors() == 1 ? "" : "s",
                    report.warnings(),
                    report.warnings() == 1 ? "" : "s",
                    report.suppressedCount());
    }
    if (!jsonPath.empty() &&
        !writeOutput(jsonPath,
                     toJson(lint::toResult(report, root), 2) + "\n"))
        return 1;
    return report.clean() ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(stderr);
    const std::string cmd = argv[1];
    if (cmd == "list")
        return cmdList();
    if (cmd == "run")
        return cmdRun(argc, argv);
    if (cmd == "sweep")
        return cmdSweep(argc, argv);
    if (cmd == "trace")
        return cmdTrace(argc, argv);
    if (cmd == "golden")
        return cmdGolden(argc, argv);
    if (cmd == "perf")
        return cmdPerf(argc, argv);
    if (cmd == "check")
        return cmdCheck(argc, argv);
    if (cmd == "query")
        return cmdQuery(argc, argv);
    if (cmd == "lint")
        return cmdLint(argc, argv);
    if (cmd == "help" || cmd == "--help" || cmd == "-h")
        return usage(stdout);
    std::fprintf(stderr, "pifetch: unknown command '%s'\n",
                 cmd.c_str());
    return usage(stderr);
}
