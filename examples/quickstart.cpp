/**
 * @file
 * Quickstart: build a server workload, attach PIF, measure the L1-I.
 *
 * Demonstrates the minimal public-API path:
 *   workload params -> Program -> TraceEngine with a PifPrefetcher ->
 *   miss-rate and coverage report.
 */

#include <cstdio>
#include <memory>

#include "common/config.hh"
#include "pif/pif_prefetcher.hh"
#include "sim/trace_engine.hh"
#include "sim/workloads.hh"

using namespace pifetch;

int
main()
{
    // 1. Pick a workload (OLTP on DB2) and the Table I system config.
    const ServerWorkload workload = ServerWorkload::OltpDb2;
    const SystemConfig cfg;
    const Program prog = buildWorkloadProgram(workload);

    std::printf("workload: %s (%s)\n", workloadName(workload).c_str(),
                workloadGroup(workload).c_str());
    std::printf("code footprint: %.2f MB in %llu blocks, %zu functions\n",
                static_cast<double>(prog.footprintBytes()) / (1 << 20),
                static_cast<unsigned long long>(prog.footprintBlocks()),
                prog.functions.size());

    // 2. Baseline: no prefetching.
    TraceRunResult base;
    {
        TraceEngine engine(cfg, prog, executorConfigFor(workload),
                           std::make_unique<NullPrefetcher>());
        base = engine.run(1'000'000, 4'000'000);
    }

    // 3. The same run with Proactive Instruction Fetch attached.
    auto pif = std::make_unique<PifPrefetcher>(cfg.pif);
    TraceEngine engine(cfg, prog, executorConfigFor(workload),
                       std::move(pif));
    const TraceRunResult res = engine.run(1'000'000, 4'000'000);

    // 4. Report.
    std::printf("\n%-28s %12s %12s\n", "", "baseline", "with PIF");
    std::printf("%-28s %12llu %12llu\n", "correct-path fetches",
                static_cast<unsigned long long>(base.accesses),
                static_cast<unsigned long long>(res.accesses));
    std::printf("%-28s %12llu %12llu\n", "correct-path misses",
                static_cast<unsigned long long>(base.misses),
                static_cast<unsigned long long>(res.misses));
    std::printf("%-28s %11.2f%% %11.2f%%\n", "L1-I miss ratio",
                100.0 * base.missRatio(), 100.0 * res.missRatio());
    std::printf("%-28s %12s %11.2f%%\n", "PIF predictor coverage", "-",
                100.0 * res.pifCoverage);
    std::printf("%-28s %12s %12llu\n", "prefetch fills", "-",
                static_cast<unsigned long long>(res.prefetchFills));

    const double eliminated = base.misses == 0 ? 0.0
        : 1.0 - static_cast<double>(res.misses) /
                static_cast<double>(base.misses);
    std::printf("\nPIF eliminated %.2f%% of L1-I misses "
                "(paper: ~99%% with unbounded history).\n",
                100.0 * eliminated);
    return 0;
}
