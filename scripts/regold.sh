#!/usr/bin/env bash
# Regenerate the golden-snapshot fixtures in tests/golden/.
#
# Run this ONLY when a simulator behavior change is intentional; the
# golden suite (tests/test_golden.cc) exists so that unintentional
# numeric drift fails CI. Commit the regenerated fixtures together
# with the change that moved the numbers and explain the delta in the
# commit message.
#
# The fixtures are canonical JSON from `pifetch golden <fixture>`:
# pinned small budgets, pinned metadata, no git/thread/host fields.
# Results are bit-identical at any PIFETCH_THREADS, so the regold
# output does not depend on this machine's core count. The zoo-*
# fixtures additionally load their workload spec from workloads/
# (see docs/workloads.md), so spec edits there require a regold too.
set -euo pipefail

cd "$(dirname "$0")/.."

BIN=build/pifetch

cmake -B build -S . -DPIFETCH_BUILD_EXAMPLES=ON
cmake --build build -j --target pifetch_cli

# Never regenerate fixtures from a missing or stale binary: goldens
# minted by an old build would lock in behavior the current sources
# do not have, and the mismatch would surface as a confusing CI
# failure on someone else's machine.
if [[ ! -x "${BIN}" ]]; then
    echo "regold: error: ${BIN} is missing after the build." >&2
    echo "regold: the pifetch_cli target did not produce it; check" >&2
    echo "regold: the CMake output above (is the build tree" >&2
    echo "regold: configured with -DPIFETCH_BUILD_EXAMPLES=ON?)." >&2
    exit 1
fi
# Only compile inputs of the binary count: library sources and the
# CLI translation unit (stray editor files, tests and the other
# examples do not feed pifetch_cli and must not trip the check; a
# newer .cc/.hh always triggers a relink, so a fresh successful build
# always passes). `|| true` guards the SIGPIPE that head can hand the
# find under pipefail.
stale=$( { find src examples/pifetch_cli.cpp -type f \
               \( -name '*.cc' -o -name '*.hh' -o -name '*.cpp' \) \
               -newer "${BIN}" 2>/dev/null | head -n 3; } || true)
if [[ -n "${stale}" ]]; then
    echo "regold: error: ${BIN} is stale — newer sources exist:" >&2
    while IFS= read -r f; do
        echo "regold:   ${f}" >&2
    done <<< "${stale}"
    echo "regold: rebuild it first:" >&2
    echo "regold:   cmake --build build -j --target pifetch_cli" >&2
    exit 1
fi

mkdir -p tests/golden
for exp in $("${BIN}" golden --list); do
    echo "regold: ${exp}"
    "${BIN}" golden "${exp}" > "tests/golden/${exp}.json"
done

echo "regenerated $(ls tests/golden/*.json | wc -l) fixtures;" \
     "review the diff before committing:"
git --no-pager diff --stat -- tests/golden || true
