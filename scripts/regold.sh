#!/usr/bin/env bash
# Regenerate the golden-snapshot fixtures in tests/golden/.
#
# Run this ONLY when a simulator behavior change is intentional; the
# golden suite (tests/test_golden.cc) exists so that unintentional
# numeric drift fails CI. Commit the regenerated fixtures together
# with the change that moved the numbers and explain the delta in the
# commit message.
#
# The fixtures are canonical JSON from `pifetch golden <experiment>`:
# pinned small budgets, pinned metadata, no git/thread/host fields.
# Results are bit-identical at any PIFETCH_THREADS, so the regold
# output does not depend on this machine's core count.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -S . -DPIFETCH_BUILD_EXAMPLES=ON
cmake --build build -j --target pifetch_cli

mkdir -p tests/golden
for exp in $(./build/pifetch golden --list); do
    echo "regold: ${exp}"
    ./build/pifetch golden "${exp}" > "tests/golden/${exp}.json"
done

echo "regenerated $(ls tests/golden/*.json | wc -l) fixtures;" \
     "review the diff before committing:"
git --no-pager diff --stat -- tests/golden || true
