#!/usr/bin/env python3
"""Compare two pifetch BENCH_*.json documents and gate on regressions.

Usage:
    perf_compare.py BASELINE.json CURRENT.json [--tolerance 0.40]

Both files are `pifetch perf --json` output. Kernels are matched by
name and compared on ops_per_sec (median-of-N throughput). The gate
fails (exit 1) only when a kernel's throughput drops by more than
--tolerance relative to the baseline — 40% by default, loose enough
to tolerate shared-runner noise while catching real hot-path
regressions — or when a baseline kernel is missing from the current
run (a silently dropped kernel must not read as a pass). Kernels new
in the current run are reported but never gate.

On failure the offending kernels are named everywhere a human will
look: per-kernel lines on stderr, the final summary line, and (when
running under GitHub Actions) one ::error:: workflow annotation per
kernel so the PR checks UI shows "kernel 'X' regressed ..." without
opening the job log.

Exit codes: 0 ok, 1 regression/missing kernel, 2 usage or bad input.
"""

import argparse
import json
import os
import sys


def die(message):
    """Bad input / usage: exit 2, distinct from a regression's 1."""
    print(f"perf_compare: {message}", file=sys.stderr)
    sys.exit(2)


def load_doc(path):
    """(kernel name -> ops_per_sec, meta) from a BENCH_*.json file."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        die(f"cannot read {path}: {e}")
    kernels = doc.get("kernels")
    if not isinstance(kernels, list) or not kernels:
        die(f"{path} has no 'kernels' array")
    out = {}
    for k in kernels:
        name = k.get("name")
        ops_per_sec = k.get("ops_per_sec")
        if not isinstance(name, str) or \
                not isinstance(ops_per_sec, (int, float)):
            die(f"{path}: malformed kernel entry {k!r}")
        out[name] = float(ops_per_sec)
    meta = doc.get("meta")
    return out, meta if isinstance(meta, dict) else {}


def main():
    parser = argparse.ArgumentParser(
        description="Gate pifetch perf results against a baseline.")
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("current", help="current BENCH_*.json")
    parser.add_argument(
        "--tolerance", type=float, default=0.40,
        help="allowed fractional throughput drop (default 0.40)")
    args = parser.parse_args()
    if not 0.0 <= args.tolerance < 1.0:
        parser.error("--tolerance must be in [0, 1)")

    base, base_meta = load_doc(args.baseline)
    cur, cur_meta = load_doc(args.current)

    # A run at a different scale or workload measures different work
    # per repetition (setup amortizes differently), so its ops/sec is
    # not comparable to the baseline — refuse rather than report a
    # regression that is really a protocol mismatch.
    for key in ("scale", "workload"):
        b, c = base_meta.get(key), cur_meta.get(key)
        if b is not None and c is not None and b != c:
            die(f"{key} mismatch (baseline {b!r}, current {c!r}); "
                f"rerun `pifetch perf` with the baseline's {key} "
                f"to compare")

    failures = []  # (kernel name, reason) pairs
    print(f"{'kernel':<22} {'base Mops/s':>12} {'cur Mops/s':>12} "
          f"{'ratio':>7}  status")
    for name, base_ops in base.items():
        if name not in cur:
            failures.append(
                (name, f"kernel '{name}' missing from current run"))
            print(f"{name:<22} {base_ops / 1e6:>12.2f} {'-':>12} "
                  f"{'-':>7}  MISSING")
            continue
        cur_ops = cur[name]
        if base_ops <= 0.0:
            print(f"{name:<22} {base_ops / 1e6:>12.2f} "
                  f"{cur_ops / 1e6:>12.2f} {'-':>7}  skipped "
                  f"(zero baseline)")
            continue
        ratio = cur_ops / base_ops
        regressed = ratio < 1.0 - args.tolerance
        status = "REGRESSED" if regressed else "ok"
        print(f"{name:<22} {base_ops / 1e6:>12.2f} "
              f"{cur_ops / 1e6:>12.2f} {ratio:>6.2f}x  {status}")
        if regressed:
            failures.append(
                (name,
                 f"kernel '{name}' regressed to {ratio:.2f}x of "
                 f"baseline ({base_ops / 1e6:.2f} -> "
                 f"{cur_ops / 1e6:.2f} Mops/s; gate: >= "
                 f"{1.0 - args.tolerance:.2f}x)"))
    for name in cur:
        if name not in base:
            print(f"{name:<22} {'-':>12} {cur[name] / 1e6:>12.2f} "
                  f"{'-':>7}  new (not gated)")

    if failures:
        names = ", ".join(name for name, _ in failures)
        print(f"\nperf_compare: FAIL — {len(failures)} kernel(s) "
              f"out of tolerance: {names}", file=sys.stderr)
        for _, reason in failures:
            print(f"  - {reason}", file=sys.stderr)
        if os.environ.get("GITHUB_ACTIONS") == "true":
            # One workflow annotation per kernel, so the PR checks UI
            # names the culprit without a trip into the job log.
            for _, reason in failures:
                print(f"::error title=perf gate::{reason}")
        sys.exit(1)
    print("\nperf_compare: ok (tolerance "
          f"{args.tolerance:.0%} drop)")


if __name__ == "__main__":
    main()
