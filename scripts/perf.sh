#!/usr/bin/env bash
# One-shot perf check, mirroring scripts/check.sh and the CI
# perf-smoke job: build the Release CLI, run the kernel suite, and
# gate the result against the committed baseline.
#
# Extra arguments are forwarded to `pifetch perf` (e.g. --reps 9 or
# --kernel trace-replay). To refresh the committed baseline after an
# intentional perf-relevant change, run on a quiet machine:
#   ./build/pifetch perf --json bench/baseline/BENCH_baseline.json --quiet
# and commit the diff together with the change that moved the numbers.
set -euo pipefail

cd "$(dirname "$0")/.."

# A dedicated Release tree: gating an unoptimized build against the
# Release baseline would report a phantom regression, and forcing a
# build type onto the shared build/ tree would silently flip it for
# every later check.sh/regold.sh run.
cmake -B build-perf -S . -DCMAKE_BUILD_TYPE=Release \
    -DPIFETCH_BUILD_EXAMPLES=ON -DPIFETCH_BUILD_TESTS=OFF \
    -DPIFETCH_BUILD_BENCH=OFF
cmake --build build-perf -j --target pifetch_cli

./build-perf/pifetch perf --json BENCH_local.json "$@"
python3 scripts/perf_compare.py \
    bench/baseline/BENCH_baseline.json BENCH_local.json
