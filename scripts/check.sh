#!/usr/bin/env bash
# One-shot tier-1 verify, exactly as ROADMAP.md states it:
#   cmake -B build -S . && cmake --build build -j && \
#   cd build && ctest --output-on-failure -j
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -S . && cmake --build build -j && cd build && \
    ctest --output-on-failure -j
