#!/usr/bin/env bash
# One-shot tier-1 verify, exactly as ROADMAP.md states it:
#   cmake -B build -S . && cmake --build build -j && \
#   cd build && ctest --output-on-failure -j
# plus a smoke of the pifetch experiment CLI.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -S . -DPIFETCH_BUILD_EXAMPLES=ON && \
    cmake --build build -j && cd build && \
    ctest --output-on-failure -j

# The CLI must enumerate the experiment registry.
./pifetch list

# A quick pass of the scenario-fuzzing oracle battery
# (docs/validation.md); CI runs 25 seeds, the full bar is 100.
./pifetch check --seeds 5

# Project static analysis (docs/linting.md): the rule self-test
# proves every rule still fires, then the tree itself must come
# back with zero unsuppressed violations.
./pifetch lint --self-test --quiet
./pifetch lint

# Formatting is advisory (clang-format is not a repo dependency);
# format.sh exits 0 with a notice when the tool is absent.
../scripts/format.sh --check
