#!/usr/bin/env bash
# Format (or verify formatting of) the first-party C++ sources with
# clang-format and the committed .clang-format style.
#
#   scripts/format.sh            rewrite files in place
#   scripts/format.sh --check    exit 1 if any file needs reformat
#
# clang-format is NOT a build dependency: when the tool is absent
# this script prints a notice and exits 0, so scripts/check.sh and
# developer machines without LLVM keep working. CI runs the check
# as an advisory job for the same reason (docs/linting.md).
set -euo pipefail

cd "$(dirname "$0")/.."

mode="fix"
if [[ "${1:-}" == "--check" ]]; then
    mode="check"
elif [[ $# -gt 0 ]]; then
    echo "usage: scripts/format.sh [--check]" >&2
    exit 2
fi

fmt="${CLANG_FORMAT:-clang-format}"
if ! command -v "${fmt}" >/dev/null 2>&1; then
    echo "format.sh: ${fmt} not found; skipping (formatting is advisory)"
    exit 0
fi

# Same scan set as `pifetch lint`: first-party sources only, no
# third-party trees (tests/minitest is vendored).
mapfile -t files < <(
    find src bench examples tests \
        \( -path tests/minitest -o -path 'tests/minitest/*' \) -prune \
        -o -type f \( -name '*.cc' -o -name '*.cpp' \
                      -o -name '*.hh' -o -name '*.h' \) -print |
        sort
)

if [[ "${mode}" == "check" ]]; then
    bad=0
    for f in "${files[@]}"; do
        if ! "${fmt}" --dry-run --Werror "${f}" >/dev/null 2>&1; then
            echo "needs format: ${f}"
            bad=1
        fi
    done
    if [[ "${bad}" -ne 0 ]]; then
        echo "format.sh: run scripts/format.sh to fix" >&2
        exit 1
    fi
    echo "format.sh: ${#files[@]} files clean"
else
    "${fmt}" -i "${files[@]}"
    echo "format.sh: formatted ${#files[@]} files"
fi
