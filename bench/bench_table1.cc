/**
 * @file
 * Table I reproduction: thin wrapper over the `table1` registry
 * experiment, plus program-generation/executor microbenchmarks.
 */

#include "bench_common.hh"
#include "sim/workloads.hh"

using namespace pifetch;

namespace {

void
BM_ProgramGeneration(benchmark::State &state)
{
    const ServerWorkload w = allServerWorkloads()[
        static_cast<std::size_t>(state.range(0))];
    for (auto _ : state) {
        Program prog = buildWorkloadProgram(w);
        benchmark::DoNotOptimize(prog.codeEnd);
    }
    state.SetLabel(workloadName(w));
}
BENCHMARK(BM_ProgramGeneration)->DenseRange(0, 5);

void
BM_ExecutorThroughput(benchmark::State &state)
{
    const Program prog = buildWorkloadProgram(ServerWorkload::OltpDb2);
    Executor exec(prog, executorConfigFor(ServerWorkload::OltpDb2));
    for (auto _ : state) {
        benchmark::DoNotOptimize(exec.next().pc);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations()));
}
BENCHMARK(BM_ExecutorThroughput);

} // namespace

int
main(int argc, char **argv)
{
    benchutil::printExperiment("table1");
    return benchutil::runMicrobenchmarks(argc, argv);
}
