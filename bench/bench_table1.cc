/**
 * @file
 * Table I reproduction: system and application parameters.
 *
 * Prints the resolved simulated-machine configuration and, per
 * workload, the application parameters the generator realizes
 * (footprint, function counts, transaction mix, interrupt rate) —
 * the reproduction of Table I's two columns. Microbenchmarks cover
 * program generation throughput.
 */

#include <cinttypes>
#include <iostream>

#include "bench_common.hh"
#include "common/config.hh"
#include "pif/storage.hh"
#include "sim/workloads.hh"

using namespace pifetch;

namespace {

void
printTable1()
{
    benchutil::banner("Table I (left): system parameters");
    printSystemConfig(benchutil::systemConfig(), std::cout);

    benchutil::banner("Predictor storage (Section 5.4 trade-off)");
    {
        const SystemConfig cfg;
        const PifStorage s = computePifStorage(cfg.pif);
        std::printf("PIF:  history %.1f KiB, index %.1f KiB, SABs "
                    "%.2f KiB, compactors %.2f KiB -> total %.1f KiB\n",
                    s.historyBits / 8192.0, s.indexBits / 8192.0,
                    s.sabBits / 8192.0, s.compactorBits / 8192.0,
                    s.totalKiB());
        std::printf("TIFS (equal stream capacity): %.1f KiB\n",
                    tifsStorageBits(cfg.tifs) / 8192.0);
    }

    benchutil::banner("Table I (right): application parameters "
                      "(synthetic equivalents)");
    std::printf("%-8s %-6s %10s %8s %8s %6s %12s\n", "workload", "group",
                "footprint", "app fns", "lib fns", "tx", "intr rate");
    for (ServerWorkload w : allServerWorkloads()) {
        const WorkloadParams p = workloadParams(w);
        const Program prog = buildWorkloadProgram(w);
        std::printf("%-8s %-6s %7.2f MB %8u %8u %6u %12.1e\n",
                    workloadName(w).c_str(), workloadGroup(w).c_str(),
                    static_cast<double>(prog.footprintBytes()) /
                        (1 << 20),
                    p.appFunctions, p.libFunctions, p.transactions,
                    p.interruptRate);
    }
}

void
BM_ProgramGeneration(benchmark::State &state)
{
    const ServerWorkload w = allServerWorkloads()[
        static_cast<std::size_t>(state.range(0))];
    for (auto _ : state) {
        Program prog = buildWorkloadProgram(w);
        benchmark::DoNotOptimize(prog.codeEnd);
    }
    state.SetLabel(workloadName(w));
}
BENCHMARK(BM_ProgramGeneration)->DenseRange(0, 5);

void
BM_ExecutorThroughput(benchmark::State &state)
{
    const Program prog = buildWorkloadProgram(ServerWorkload::OltpDb2);
    Executor exec(prog, executorConfigFor(ServerWorkload::OltpDb2));
    for (auto _ : state) {
        benchmark::DoNotOptimize(exec.next().pc);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations()));
}
BENCHMARK(BM_ExecutorThroughput);

} // namespace

int
main(int argc, char **argv)
{
    printTable1();
    return benchutil::runMicrobenchmarks(argc, argv);
}
