/**
 * @file
 * Shared helpers for the figure-reproduction bench binaries.
 *
 * Every bench binary prints its table/figure reproduction first — a
 * thin wrapper over the experiment registry (sim/registry.hh) — then
 * runs its google-benchmark microbenchmarks of the machinery
 * involved. Instruction budgets can be scaled with the
 * PIFETCH_BENCH_SCALE environment variable (default 1.0).
 */

#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "common/parallel.hh"
#include "sim/experiment.hh"
#include "sim/registry.hh"

namespace pifetch {
namespace benchutil {

/** Scale factor from PIFETCH_BENCH_SCALE (default 1.0). */
inline double
scale()
{
    const char *s = std::getenv("PIFETCH_BENCH_SCALE");
    if (!s)
        return 1.0;
    const double v = std::atof(s);
    return v > 0.0 ? v : 1.0;
}

/** Standard budget for figure reproduction runs. */
inline ExperimentBudget
budget()
{
    ExperimentBudget b;
    b.warmup = static_cast<InstCount>(1'500'000 * scale());
    b.measure = static_cast<InstCount>(6'000'000 * scale());
    return b;
}

/** Instruction count for single-pass (analysis-only) studies. */
inline InstCount
analysisInstrs()
{
    return static_cast<InstCount>(6'000'000 * scale());
}

/**
 * Worker threads for the figure reproductions: PIFETCH_THREADS if
 * set, otherwise hardware concurrency. Purely wall-clock — the rows
 * printed are bit-identical at any value.
 */
inline unsigned
threads()
{
    return defaultThreads();
}

/** SystemConfig with the thread knob resolved for this bench run. */
inline SystemConfig
systemConfig()
{
    SystemConfig cfg;
    cfg.threads = threads();
    return cfg;
}

/** Print a section banner. */
inline void
banner(const char *title)
{
    std::printf("\n================================================"
                "====================\n%s\n"
                "================================================"
                "====================\n",
                title);
}

/**
 * Run one registry experiment with the bench budget/threads and print
 * its human-readable report — the whole figure-reproduction main.
 */
inline void
printExperiment(const char *name)
{
    const ExperimentSpec *spec = findExperiment(name);
    if (!spec) {
        std::fprintf(stderr, "unknown experiment: %s\n", name);
        std::exit(1);
    }
    std::printf("\n(%u worker threads; override with "
                "PIFETCH_THREADS)\n", threads());
    RunOptions opts;
    opts.budget = budget();
    opts.cfg = systemConfig();
    std::fputs(renderText(runExperiment(*spec, opts)).c_str(), stdout);
}

/** Run the registered google-benchmark microbenchmarks. */
inline int
runMicrobenchmarks(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

} // namespace benchutil
} // namespace pifetch
