/**
 * @file
 * Ablation studies beyond the paper's figures (DESIGN.md extensions):
 *  - temporal compactor depth (0 disables loop filtering),
 *  - SAB count and window size (footnote 2's 4 x 7 choice),
 *  - trap-level separation on/off (the Retire vs RetireSep delta
 *    realized in hardware),
 *  - next-line prefetch degree.
 */

#include <iostream>

#include "bench_common.hh"
#include "pif/pif_prefetcher.hh"
#include "prefetch/next_line.hh"
#include "sim/multicore.hh"
#include "sim/trace_engine.hh"
#include "sim/workloads.hh"

using namespace pifetch;

namespace {

constexpr ServerWorkload kWorkload = ServerWorkload::OltpDb2;

TraceRunResult
runPif(const SystemConfig &cfg, const Program &prog)
{
    const ExperimentBudget budget = benchutil::budget();
    TraceEngine engine(cfg, prog, executorConfigFor(kWorkload),
                       std::make_unique<PifPrefetcher>(cfg.pif));
    return engine.run(budget.warmup, budget.measure);
}

void
printAblations()
{
    const Program prog = buildWorkloadProgram(kWorkload);
    const SystemConfig base;

    benchutil::banner("Ablation: temporal compactor depth "
                      "(OLTP DB2, PIF coverage / prefetch issue rate)");
    std::printf("%-10s %10s %14s %14s\n", "entries", "coverage",
                "issued/1Kinst", "miss ratio");
    for (unsigned entries : {1u, 2u, 4u, 8u, 16u}) {
        SystemConfig cfg = base;
        cfg.pif.temporalEntries = entries;
        const TraceRunResult r = runPif(cfg, prog);
        std::printf("%-10u %9.2f%% %14.1f %13.3f%%\n", entries,
                    100.0 * r.pifCoverage,
                    static_cast<double>(r.prefetchIssued) * 1000.0 /
                        static_cast<double>(r.instrs),
                    100.0 * r.missRatio());
    }

    benchutil::banner("Ablation: SAB count x window "
                      "(paper: 4 SABs x 7 regions)");
    std::printf("%-12s %10s %13s\n", "sabs x win", "coverage",
                "miss ratio");
    for (unsigned sabs : {1u, 2u, 4u, 8u}) {
        for (unsigned window : {3u, 7u, 15u}) {
            SystemConfig cfg = base;
            cfg.pif.numSabs = sabs;
            cfg.pif.sabWindowRegions = window;
            const TraceRunResult r = runPif(cfg, prog);
            std::printf("%2u x %-7u %9.2f%% %12.3f%%\n", sabs, window,
                        100.0 * r.pifCoverage, 100.0 * r.missRatio());
        }
    }

    benchutil::banner("Ablation: trap-level stream separation");
    for (bool separate : {false, true}) {
        SystemConfig cfg = base;
        cfg.pif.separateTrapLevels = separate;
        const TraceRunResult r = runPif(cfg, prog);
        std::printf("separate=%-5s coverage %6.2f%%  miss ratio "
                    "%6.3f%%\n",
                    separate ? "on" : "off", 100.0 * r.pifCoverage,
                    100.0 * r.missRatio());
    }

    benchutil::banner("Extension: shared vs private PIF storage "
                      "(4 cores, same binary; Section 4's deferred "
                      "optimization)");
    {
        const ExperimentBudget b = benchutil::budget();
        std::printf("%-14s %12s %12s\n", "total regions",
                    "private", "shared");
        for (std::uint64_t total : {8192ull, 32768ull}) {
            const SharedPifStudyResult r = runSharedPifStudy(
                kWorkload, 4, total, b.warmup / 2, b.measure / 2);
            std::printf("%-14llu %11.2f%% %11.2f%%   (coverage)\n",
                        static_cast<unsigned long long>(total),
                        100.0 * r.privateCoverage,
                        100.0 * r.sharedCoverage);
            std::printf("%-14s %11.3f%% %11.3f%%   (miss ratio)\n", "",
                        100.0 * r.privateMissRatio,
                        100.0 * r.sharedMissRatio);
        }
    }

    benchutil::banner("Ablation: next-line degree");
    std::printf("%-8s %13s %16s\n", "degree", "miss ratio",
                "useful/fills");
    const ExperimentBudget budget = benchutil::budget();
    for (unsigned degree : {1u, 2u, 4u, 8u}) {
        SystemConfig cfg = base;
        cfg.nextLine.degree = degree;
        TraceEngine engine(
            cfg, prog, executorConfigFor(kWorkload),
            std::make_unique<NextLinePrefetcher>(cfg.nextLine));
        const TraceRunResult r = engine.run(budget.warmup,
                                            budget.measure);
        const double acc = r.prefetchFills == 0 ? 0.0
            : static_cast<double>(r.usefulPrefetches) /
              static_cast<double>(r.prefetchFills);
        std::printf("%-8u %12.3f%% %15.2f%%\n", degree,
                    100.0 * r.missRatio(), 100.0 * acc);
    }
}

void
BM_TraceEnginePif(benchmark::State &state)
{
    const SystemConfig cfg;
    const Program prog = buildWorkloadProgram(kWorkload);
    for (auto _ : state) {
        TraceEngine engine(cfg, prog, executorConfigFor(kWorkload),
                           std::make_unique<PifPrefetcher>(cfg.pif));
        const TraceRunResult r = engine.run(0, 50'000);
        benchmark::DoNotOptimize(r.misses);
    }
    state.SetItemsProcessed(state.iterations() * 50'000);
    state.SetLabel("instructions simulated");
}
BENCHMARK(BM_TraceEnginePif)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    printAblations();
    return benchutil::runMicrobenchmarks(argc, argv);
}
