/**
 * @file
 * Ablation studies beyond the paper's figures: thin wrapper over the
 * `ablation` registry experiment (temporal compactor depth, SAB
 * grid, trap-level separation, shared-vs-private storage, next-line
 * degree), plus trace-engine microbenchmarks.
 */

#include "bench_common.hh"
#include "pif/pif_prefetcher.hh"
#include "sim/workloads.hh"

using namespace pifetch;

namespace {

void
BM_TraceEnginePif(benchmark::State &state)
{
    const SystemConfig cfg;
    const Program prog = buildWorkloadProgram(ServerWorkload::OltpDb2);
    for (auto _ : state) {
        TraceEngine engine(cfg, prog,
                           executorConfigFor(ServerWorkload::OltpDb2),
                           std::make_unique<PifPrefetcher>(cfg.pif));
        const TraceRunResult r = engine.run(0, 50'000);
        benchmark::DoNotOptimize(r.misses);
    }
    state.SetItemsProcessed(state.iterations() * 50'000);
    state.SetLabel("instructions simulated");
}
BENCHMARK(BM_TraceEnginePif)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    benchutil::printExperiment("ablation");
    return benchutil::runMicrobenchmarks(argc, argv);
}
