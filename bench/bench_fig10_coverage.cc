/**
 * @file
 * Figure 10 (left) reproduction: thin wrapper over the
 * `fig10-coverage` registry experiment, plus PIF retire-stream
 * microbenchmarks.
 */

#include "bench_common.hh"
#include "pif/pif_prefetcher.hh"

using namespace pifetch;

namespace {

void
BM_PifOnRetireStream(benchmark::State &state)
{
    PifConfig cfg;
    PifPrefetcher pif(cfg);
    std::uint64_t x = 11;
    RetiredInstr r;
    for (auto _ : state) {
        x = x * 6364136223846793005ull + 1;
        r.pc = blockBase((x >> 52) % 8192) + ((x >> 45) & 0x3c);
        pif.onRetire(r, true);
        benchmark::DoNotOptimize(pif.regionsRecorded());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations()));
}
BENCHMARK(BM_PifOnRetireStream);

} // namespace

int
main(int argc, char **argv)
{
    benchutil::printExperiment("fig10-coverage");
    return benchutil::runMicrobenchmarks(argc, argv);
}
