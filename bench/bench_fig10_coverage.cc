/**
 * @file
 * Figure 10 (left) reproduction: L1-I miss coverage of Next-Line,
 * TIFS and PIF without storage limitations.
 */

#include <iostream>

#include "bench_common.hh"
#include "pif/pif_prefetcher.hh"

using namespace pifetch;

namespace {

void
printFig10Left()
{
    benchutil::banner("Figure 10 (left): L1 miss coverage (%), "
                      "no storage limitation");
    const ExperimentBudget budget = benchutil::budget();
    const SystemConfig cfg = benchutil::systemConfig();
    std::printf("(%u worker threads; override with PIFETCH_THREADS)\n",
                benchutil::threads());
    std::printf("%-6s %-8s %10s %10s %10s %14s\n", "group", "workload",
                "Next-Line", "TIFS", "PIF", "(base misses)");
    for (ServerWorkload w : allServerWorkloads()) {
        const auto points = runFig10Coverage(w, budget, cfg);
        double nl = 0.0;
        double tifs = 0.0;
        double pif = 0.0;
        std::uint64_t base = 0;
        for (const auto &p : points) {
            base = p.baselineMisses;
            if (p.kind == PrefetcherKind::NextLine)
                nl = p.missCoverage;
            if (p.kind == PrefetcherKind::Tifs)
                tifs = p.missCoverage;
            if (p.kind == PrefetcherKind::Pif)
                pif = p.missCoverage;
        }
        std::printf("%-6s %-8s %9.2f%% %9.2f%% %9.2f%% %14llu\n",
                    workloadGroup(w).c_str(), workloadName(w).c_str(),
                    100.0 * nl, 100.0 * tifs, 100.0 * pif,
                    static_cast<unsigned long long>(base));
    }
    std::printf("\npaper shape: PIF nearly perfect across all "
                "workloads; TIFS 65-90%%;\nnext-line below TIFS.\n");
}

void
BM_PifOnRetireStream(benchmark::State &state)
{
    PifConfig cfg;
    PifPrefetcher pif(cfg);
    std::uint64_t x = 11;
    RetiredInstr r;
    for (auto _ : state) {
        x = x * 6364136223846793005ull + 1;
        r.pc = blockBase((x >> 52) % 8192) + ((x >> 45) & 0x3c);
        pif.onRetire(r, true);
        benchmark::DoNotOptimize(pif.regionsRecorded());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations()));
}
BENCHMARK(BM_PifOnRetireStream);

} // namespace

int
main(int argc, char **argv)
{
    printFig10Left();
    return benchutil::runMicrobenchmarks(argc, argv);
}
