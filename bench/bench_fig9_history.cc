/**
 * @file
 * Figure 9 reproduction: temporal stream length contribution (left)
 * and history buffer size sensitivity (right).
 */

#include <iostream>

#include "bench_common.hh"
#include "streams/stream_length.hh"

using namespace pifetch;

namespace {

void
printFig9Left()
{
    benchutil::banner("Figure 9 (left): correct predictions by stream "
                      "length (cumulative %, log2 regions)");
    const InstCount n = benchutil::analysisInstrs();

    std::vector<Log2Histogram> hists;
    unsigned max_bucket = 1;
    for (ServerWorkload w : allServerWorkloads()) {
        hists.push_back(runFig9Left(w, n));
        max_bucket = std::max(max_bucket, hists.back().highestBucket());
    }
    if (max_bucket > 21)
        max_bucket = 21;

    std::printf("%-8s", "log2");
    for (ServerWorkload w : allServerWorkloads())
        std::printf(" %8s", workloadName(w).c_str());
    std::printf("\n");
    for (unsigned b = 1; b <= max_bucket; b += 2) {
        std::printf("%-8u", b);
        for (const Log2Histogram &h : hists)
            std::printf(" %7.2f%%", 100.0 * h.cumulativeAt(b));
        std::printf("\n");
    }
    std::printf("\npaper shape: medium and long streams contribute more "
                "correct predictions\nthan short streams.\n");
}

void
printFig9Right()
{
    benchutil::banner("Figure 9 (right): PIF predictor coverage vs "
                      "history size (regions)");
    const ExperimentBudget budget = benchutil::budget();
    const std::vector<std::uint64_t> sizes = {
        2 * 1024, 8 * 1024, 32 * 1024, 128 * 1024, 512 * 1024,
    };

    std::printf("%-10s", "regions");
    for (ServerWorkload w : allServerWorkloads())
        std::printf(" %8s", workloadName(w).c_str());
    std::printf("\n");

    std::vector<std::vector<Fig9RightPoint>> all;
    for (ServerWorkload w : allServerWorkloads())
        all.push_back(runFig9Right(w, budget, sizes));
    for (std::size_t s = 0; s < sizes.size(); ++s) {
        std::printf("%-10llu",
                    static_cast<unsigned long long>(sizes[s]));
        for (const auto &points : all)
            std::printf(" %7.2f%%", 100.0 * points[s].coverage);
        std::printf("\n");
    }
    std::printf("\npaper shape: coverage rises monotonically with "
                "storage; little justification\nfor growing beyond 32K "
                "regions.\n");
}

void
BM_StreamLengthStudy(benchmark::State &state)
{
    StreamLengthStudy study;
    std::uint64_t x = 5;
    for (auto _ : state) {
        x = x * 6364136223846793005ull + 1;
        study.observe((x >> 53) % 1024);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations()));
}
BENCHMARK(BM_StreamLengthStudy);

} // namespace

int
main(int argc, char **argv)
{
    printFig9Left();
    printFig9Right();
    return benchutil::runMicrobenchmarks(argc, argv);
}
