/**
 * @file
 * Figure 9 reproduction: thin wrapper over the `fig9-streamlen`
 * (left) and `fig9-history` (right) registry experiments, plus
 * stream-length-study microbenchmarks.
 */

#include "bench_common.hh"
#include "streams/stream_length.hh"

using namespace pifetch;

namespace {

void
BM_StreamLengthStudy(benchmark::State &state)
{
    StreamLengthStudy study;
    std::uint64_t x = 5;
    for (auto _ : state) {
        x = x * 6364136223846793005ull + 1;
        study.observe((x >> 53) % 1024);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations()));
}
BENCHMARK(BM_StreamLengthStudy);

} // namespace

int
main(int argc, char **argv)
{
    benchutil::printExperiment("fig9-streamlen");
    benchutil::printExperiment("fig9-history");
    return benchutil::runMicrobenchmarks(argc, argv);
}
