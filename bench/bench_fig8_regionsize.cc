/**
 * @file
 * Figure 8 reproduction: distribution of accesses around the trigger
 * block (left) and spatial region size sensitivity at TL0/TL1 (right).
 */

#include <iostream>

#include "bench_common.hh"

using namespace pifetch;

namespace {

void
printFig8Left()
{
    benchutil::banner("Figure 8 (left): references within spatial "
                      "regions by distance from trigger (%)");
    const InstCount n = benchutil::analysisInstrs();

    // The paper aggregates by workload class.
    struct GroupAccum
    {
        std::string name;
        std::vector<ServerWorkload> members;
    };
    const std::vector<GroupAccum> groups = {
        {"OLTP", {ServerWorkload::OltpDb2, ServerWorkload::OltpOracle}},
        {"DSS", {ServerWorkload::DssQry2, ServerWorkload::DssQry17}},
        {"Web", {ServerWorkload::WebApache, ServerWorkload::WebZeus}},
    };

    std::printf("%-6s", "dist");
    for (const auto &g : groups)
        std::printf(" %8s", g.name.c_str());
    std::printf("\n");

    std::vector<std::vector<double>> fracs;
    for (const auto &g : groups) {
        LinearHistogram sum(-4, 12);
        for (ServerWorkload w : g.members) {
            const LinearHistogram h = runFig8Left(w, n);
            for (int off = -4; off <= 12; ++off) {
                if (off != 0)
                    sum.add(off, h.weightAt(off));
            }
        }
        std::vector<double> f;
        for (int off = -4; off <= 12; ++off)
            f.push_back(off == 0 ? 0.0 : sum.fractionAt(off));
        fracs.push_back(std::move(f));
    }
    for (int off = -4; off <= 12; ++off) {
        if (off == 0)
            continue;
        std::printf("%+-6d", off);
        for (const auto &f : fracs)
            std::printf(" %7.2f%%", 100.0 * f[static_cast<size_t>(
                off + 4)]);
        std::printf("\n");
    }
    std::printf("paper shape: +1/+2 dominate; frequency decays with "
                "distance;\nbackward (-1, -2) accesses occur with "
                "significant frequency.\n");
}

void
printFig8Right()
{
    benchutil::banner("Figure 8 (right): PIF coverage vs spatial "
                      "region size (TL0 / TL1)");
    const ExperimentBudget budget = benchutil::budget();
    std::printf("%-6s %-8s %6s %8s %8s %8s %8s %8s\n", "group",
                "workload", "TL", "1", "2", "4", "6", "8");
    for (ServerWorkload w : allServerWorkloads()) {
        const auto points = runFig8Right(w, budget);
        std::printf("%-6s %-8s %6s", workloadGroup(w).c_str(),
                    workloadName(w).c_str(), "TL0");
        for (const auto &p : points)
            std::printf(" %7.2f%%", 100.0 * p.tl0Coverage);
        std::printf("\n%-6s %-8s %6s", "", "", "TL1");
        for (const auto &p : points)
            std::printf(" %7.2f%%", 100.0 * p.tl1Coverage);
        std::printf("\n");
    }
    std::printf("paper shape: TL0 grows slightly with region size; TL1 "
                "improves significantly.\n");
}

void
BM_Fig8RightSweep(benchmark::State &state)
{
    ExperimentBudget tiny;
    tiny.warmup = 50'000;
    tiny.measure = 100'000;
    for (auto _ : state) {
        const auto points =
            runFig8Right(ServerWorkload::OltpDb2, tiny);
        benchmark::DoNotOptimize(points.size());
    }
}
BENCHMARK(BM_Fig8RightSweep)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    printFig8Left();
    printFig8Right();
    return benchutil::runMicrobenchmarks(argc, argv);
}
