/**
 * @file
 * Figure 8 reproduction: thin wrapper over the `fig8-offsets` (left)
 * and `fig8-regionsize` (right) registry experiments, plus a sweep
 * microbenchmark.
 */

#include "bench_common.hh"

using namespace pifetch;

namespace {

void
BM_Fig8RightSweep(benchmark::State &state)
{
    ExperimentBudget tiny;
    tiny.warmup = 50'000;
    tiny.measure = 100'000;
    for (auto _ : state) {
        const auto points =
            runFig8Right(ServerWorkload::OltpDb2, tiny);
        benchmark::DoNotOptimize(points.size());
    }
}
BENCHMARK(BM_Fig8RightSweep)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    benchutil::printExperiment("fig8-offsets");
    benchutil::printExperiment("fig8-regionsize");
    return benchutil::runMicrobenchmarks(argc, argv);
}
