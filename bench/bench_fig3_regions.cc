/**
 * @file
 * Figure 3 reproduction: spatial region density (left) and
 * discontinuous accesses within regions (right).
 */

#include <iostream>

#include "bench_common.hh"
#include "pif/spatial_compactor.hh"
#include "sim/workloads.hh"

using namespace pifetch;

namespace {

void
printFig3()
{
    const InstCount n = benchutil::analysisInstrs();

    benchutil::banner("Figure 3 (left): references to spatial regions "
                      "by density (unique blocks)");
    std::printf("%-6s %-8s", "group", "workload");
    Fig3Result sample = runFig3(ServerWorkload::OltpDb2, 1000);
    for (unsigned i = 0; i < sample.density.ranges(); ++i)
        std::printf(" %7s", sample.density.labelAt(i).c_str());
    std::printf("\n");

    std::vector<Fig3Result> results;
    for (ServerWorkload w : allServerWorkloads()) {
        results.push_back(runFig3(w, n));
        const Fig3Result &r = results.back();
        std::printf("%-6s %-8s", workloadGroup(w).c_str(),
                    workloadName(w).c_str());
        for (unsigned i = 0; i < r.density.ranges(); ++i)
            std::printf(" %6.2f%%", 100.0 * r.density.fractionAt(i));
        std::printf("\n");
    }
    std::printf("paper shape: >50%% of regions access more than one "
                "block.\n");

    benchutil::banner("Figure 3 (right): discontinuous (non-next-line) "
                      "access groups within regions");
    std::printf("%-6s %-8s", "group", "workload");
    for (unsigned i = 0; i < sample.groups.ranges(); ++i)
        std::printf(" %7s", sample.groups.labelAt(i).c_str());
    std::printf("\n");
    for (std::size_t k = 0; k < results.size(); ++k) {
        const ServerWorkload w = allServerWorkloads()[k];
        const Fig3Result &r = results[k];
        std::printf("%-6s %-8s", workloadGroup(w).c_str(),
                    workloadName(w).c_str());
        for (unsigned i = 0; i < r.groups.ranges(); ++i)
            std::printf(" %6.2f%%", 100.0 * r.groups.fractionAt(i));
        std::printf("\n");
    }
    std::printf("paper shape: roughly one fifth of regions observe "
                "discontinuous accesses.\n");
}

void
BM_SpatialCompactor(benchmark::State &state)
{
    SpatialCompactor compactor(2, 5);
    std::uint64_t x = 7;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        x = x * 6364136223846793005ull + 1;
        const Addr pc = blockBase(1000 + (x >> 56)) | ((x >> 50) & 0x3c);
        if (compactor.observe(pc, true, 0))
            ++sink;
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations()));
}
BENCHMARK(BM_SpatialCompactor);

} // namespace

int
main(int argc, char **argv)
{
    printFig3();
    return benchutil::runMicrobenchmarks(argc, argv);
}
