/**
 * @file
 * Figure 3 reproduction: thin wrapper over the `fig3-regions`
 * registry experiment, plus spatial-compactor microbenchmarks.
 */

#include "bench_common.hh"
#include "pif/spatial_compactor.hh"

using namespace pifetch;

namespace {

void
BM_SpatialCompactor(benchmark::State &state)
{
    SpatialCompactor compactor(2, 5);
    std::uint64_t x = 7;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        x = x * 6364136223846793005ull + 1;
        const Addr pc = blockBase(1000 + (x >> 56)) | ((x >> 50) & 0x3c);
        if (compactor.observe(pc, true, 0))
            ++sink;
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations()));
}
BENCHMARK(BM_SpatialCompactor);

} // namespace

int
main(int argc, char **argv)
{
    benchutil::printExperiment("fig3-regions");
    return benchutil::runMicrobenchmarks(argc, argv);
}
