/**
 * @file
 * Figure 10 (right) reproduction: thin wrapper over the
 * `fig10-speedup` registry experiment, plus cycle-engine
 * microbenchmarks.
 */

#include "bench_common.hh"
#include "sim/cycle_engine.hh"
#include "sim/workloads.hh"

using namespace pifetch;

namespace {

void
BM_CycleEngineStep(benchmark::State &state)
{
    const SystemConfig cfg;
    const Program prog = buildWorkloadProgram(ServerWorkload::OltpDb2);
    CycleEngine engine(cfg, prog,
                       executorConfigFor(ServerWorkload::OltpDb2),
                       PrefetcherKind::Pif);
    for (auto _ : state) {
        state.PauseTiming();
        state.ResumeTiming();
        engine.run(0, 10'000);
    }
    state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_CycleEngineStep)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    benchutil::printExperiment("fig10-speedup");
    return benchutil::runMicrobenchmarks(argc, argv);
}
