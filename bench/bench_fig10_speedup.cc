/**
 * @file
 * Figure 10 (right) reproduction: UIPC speedup over the no-prefetch
 * baseline for Next-Line, TIFS, PIF and the perfect-latency L1-I.
 */

#include <iostream>

#include "bench_common.hh"
#include "sim/cycle_engine.hh"
#include "sim/workloads.hh"

using namespace pifetch;

namespace {

void
printFig10Right()
{
    benchutil::banner("Figure 10 (right): speedup over no-prefetch "
                      "baseline (UIPC)");
    const ExperimentBudget budget = benchutil::budget();
    const SystemConfig cfg = benchutil::systemConfig();
    std::printf("(%u worker threads; override with PIFETCH_THREADS)\n",
                benchutil::threads());
    std::printf("%-6s %-8s %10s %10s %10s %10s %12s\n", "group",
                "workload", "Next-Line", "TIFS", "PIF", "Perfect",
                "(base UIPC)");

    double geo_pif = 1.0;
    double geo_perfect = 1.0;
    unsigned count = 0;
    for (ServerWorkload w : allServerWorkloads()) {
        const auto points = runFig10Speedup(w, budget, cfg);
        double base_uipc = 0.0;
        double nl = 0.0;
        double tifs = 0.0;
        double pif = 0.0;
        double perfect = 0.0;
        for (const auto &p : points) {
            switch (p.kind) {
              case PrefetcherKind::None:     base_uipc = p.uipc; break;
              case PrefetcherKind::NextLine: nl = p.speedup; break;
              case PrefetcherKind::Tifs:     tifs = p.speedup; break;
              case PrefetcherKind::Pif:      pif = p.speedup; break;
              case PrefetcherKind::Perfect:  perfect = p.speedup; break;
              default: break;
            }
        }
        std::printf("%-6s %-8s %9.3fx %9.3fx %9.3fx %9.3fx %12.4f\n",
                    workloadGroup(w).c_str(), workloadName(w).c_str(),
                    nl, tifs, pif, perfect, base_uipc);
        geo_pif *= pif;
        geo_perfect *= perfect;
        ++count;
    }
    std::printf("\ngeomean speedup: PIF %.3fx, Perfect %.3fx\n",
                std::pow(geo_pif, 1.0 / count),
                std::pow(geo_perfect, 1.0 / count));
    std::printf("paper shape: Next-Line < TIFS < PIF ~= Perfect "
                "(paper: PIF +27%% avg, perfect +29%%).\n");
}

void
BM_CycleEngineStep(benchmark::State &state)
{
    const SystemConfig cfg;
    const Program prog = buildWorkloadProgram(ServerWorkload::OltpDb2);
    CycleEngine engine(cfg, prog,
                       executorConfigFor(ServerWorkload::OltpDb2),
                       PrefetcherKind::Pif);
    for (auto _ : state) {
        state.PauseTiming();
        state.ResumeTiming();
        engine.run(0, 10'000);
    }
    state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_CycleEngineStep)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    printFig10Right();
    return benchutil::runMicrobenchmarks(argc, argv);
}
