/**
 * @file
 * Figure 7 reproduction: thin wrapper over the `fig7-jumpdist`
 * registry experiment, plus jump-distance-study microbenchmarks.
 */

#include "bench_common.hh"
#include "streams/jump_distance.hh"

using namespace pifetch;

namespace {

void
BM_JumpDistanceStudy(benchmark::State &state)
{
    JumpDistanceStudy study;
    std::uint64_t x = 3;
    for (auto _ : state) {
        x = x * 6364136223846793005ull + 1;
        study.observe((x >> 52) % 2048);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations()));
}
BENCHMARK(BM_JumpDistanceStudy);

} // namespace

int
main(int argc, char **argv)
{
    benchutil::printExperiment("fig7-jumpdist");
    return benchutil::runMicrobenchmarks(argc, argv);
}
