/**
 * @file
 * Figure 7 reproduction: cumulative jump distance in history,
 * weighted by correct predictions — the deep-history argument.
 */

#include <iostream>

#include "bench_common.hh"
#include "streams/jump_distance.hh"

using namespace pifetch;

namespace {

void
printFig7()
{
    benchutil::banner("Figure 7: weighted jump distance in history "
                      "(cumulative %, by log2 distance)");
    const InstCount n = benchutil::analysisInstrs();

    std::vector<Log2Histogram> hists;
    unsigned max_bucket = 1;
    for (ServerWorkload w : allServerWorkloads()) {
        hists.push_back(runFig7(w, n));
        max_bucket = std::max(max_bucket, hists.back().highestBucket());
    }
    if (max_bucket > 25)
        max_bucket = 25;

    std::printf("%-8s", "log2");
    for (ServerWorkload w : allServerWorkloads())
        std::printf(" %8s", workloadName(w).c_str());
    std::printf("\n");
    for (unsigned b = 1; b <= max_bucket; b += 2) {
        std::printf("%-8u", b);
        for (const Log2Histogram &h : hists)
            std::printf(" %7.2f%%", 100.0 * h.cumulativeAt(b));
        std::printf("\n");
    }
    std::printf("\npaper shape: medium-aged and old streams contribute "
                "as many correct\npredictions as recent streams "
                "(cumulative curve rises gradually).\n");
}

void
BM_JumpDistanceStudy(benchmark::State &state)
{
    JumpDistanceStudy study;
    std::uint64_t x = 3;
    for (auto _ : state) {
        x = x * 6364136223846793005ull + 1;
        study.observe((x >> 52) % 2048);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations()));
}
BENCHMARK(BM_JumpDistanceStudy);

} // namespace

int
main(int argc, char **argv)
{
    printFig7();
    return benchutil::runMicrobenchmarks(argc, argv);
}
