/**
 * @file
 * Figure 2 reproduction: percentage of correctly predicted
 * correct-path L1-I misses when recording/replaying temporal streams
 * at four observation points (Miss, Access, Retire, RetireSep).
 */

#include <cinttypes>
#include <iostream>

#include "bench_common.hh"
#include "streams/temporal_predictor.hh"

using namespace pifetch;

namespace {

void
printFig2()
{
    benchutil::banner("Figure 2: correctly predicted correct-path "
                      "L1-I misses (%)");
    std::printf("%-6s %-8s %8s %8s %8s %10s %12s\n", "group", "workload",
                "Miss", "Access", "Retire", "RetireSep", "(misses)");
    const ExperimentBudget budget = benchutil::budget();
    for (ServerWorkload w : allServerWorkloads()) {
        const Fig2Result r = runFig2(w, budget);
        std::printf("%-6s %-8s %7.2f%% %7.2f%% %7.2f%% %9.2f%% %12" PRIu64
                    "\n",
                    workloadGroup(w).c_str(), workloadName(w).c_str(),
                    100.0 * r.missCoverage, 100.0 * r.accessCoverage,
                    100.0 * r.retireCoverage,
                    100.0 * r.retireSepCoverage, r.correctPathMisses);
    }
    std::printf("\npaper shape: Miss < Access < Retire < RetireSep;\n"
                "largest Miss loss in Web, largest Access loss in "
                "Oracle, RetireSep near-perfect.\n");
}

void
BM_TemporalPredictorObserve(benchmark::State &state)
{
    TemporalPredictorConfig cfg;
    cfg.window = static_cast<unsigned>(state.range(0));
    TemporalStreamPredictor pred(cfg);
    // A repetitive stream with mild perturbation.
    std::uint64_t x = 1;
    Addr i = 0;
    for (auto _ : state) {
        x = x * 6364136223846793005ull + 1;
        const Addr a = (x >> 60) == 0 ? (x >> 40) : (i++ % 4096);
        benchmark::DoNotOptimize(pred.observe(a).predicted);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations()));
}
BENCHMARK(BM_TemporalPredictorObserve)->Arg(8)->Arg(16)->Arg(32);

} // namespace

int
main(int argc, char **argv)
{
    printFig2();
    return benchutil::runMicrobenchmarks(argc, argv);
}
