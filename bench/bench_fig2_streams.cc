/**
 * @file
 * Figure 2 reproduction: thin wrapper over the `fig2-streams`
 * registry experiment, plus temporal-predictor microbenchmarks.
 */

#include "bench_common.hh"
#include "streams/temporal_predictor.hh"

using namespace pifetch;

namespace {

void
BM_TemporalPredictorObserve(benchmark::State &state)
{
    TemporalPredictorConfig cfg;
    cfg.window = static_cast<unsigned>(state.range(0));
    TemporalStreamPredictor pred(cfg);
    // A repetitive stream with mild perturbation.
    std::uint64_t x = 1;
    Addr i = 0;
    for (auto _ : state) {
        x = x * 6364136223846793005ull + 1;
        const Addr a = (x >> 60) == 0 ? (x >> 40) : (i++ % 4096);
        benchmark::DoNotOptimize(pred.observe(a).predicted);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations()));
}
BENCHMARK(BM_TemporalPredictorObserve)->Arg(8)->Arg(16)->Arg(32);

} // namespace

int
main(int argc, char **argv)
{
    benchutil::printExperiment("fig2-streams");
    return benchutil::runMicrobenchmarks(argc, argv);
}
