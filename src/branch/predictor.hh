/**
 * @file
 * Branch direction predictor interface and shared helpers.
 *
 * The front-end model uses a Table I-style hybrid predictor (16K gshare
 * + 16K bimodal with a chooser) to decide, per conditional branch,
 * whether the fetch unit follows the correct path or wanders onto the
 * wrong path — the noise source of Section 2.2.
 */

#pragma once

#include <cstdint>

#include "common/types.hh"

namespace pifetch {

/** Two-bit saturating counter used by all direction predictors. */
class SatCounter2
{
  public:
    /** @param init Initial state in [0,3]; 2 = weakly taken. */
    explicit SatCounter2(std::uint8_t init = 2) : v_(init) {}

    /** Predicted direction. */
    bool taken() const { return v_ >= 2; }

    /** Train toward @p t. */
    void
    update(bool t)
    {
        if (t && v_ < 3)
            ++v_;
        else if (!t && v_ > 0)
            --v_;
    }

    std::uint8_t raw() const { return v_; }

  private:
    std::uint8_t v_;
};

/**
 * Direction predictor interface.
 *
 * predict() must not mutate primary state; speculative history (for
 * gshare) is updated via spec-update hooks so mispredictions can
 * restore it, mirroring real front-ends.
 */
class DirectionPredictor
{
  public:
    virtual ~DirectionPredictor() = default;

    /** Predict the direction of the conditional branch at @p pc. */
    virtual bool predict(Addr pc) = 0;

    /** Train with the resolved direction. */
    virtual void update(Addr pc, bool taken) = 0;

    /** Reset all state to power-on values. */
    virtual void reset() = 0;
};

} // namespace pifetch
