/**
 * @file
 * Gshare implementation.
 */

#include "branch/gshare.hh"

namespace pifetch {

GsharePredictor::GsharePredictor(unsigned entries, unsigned history_bits)
    : mask_(entries - 1),
      historyMask_((std::uint64_t{1} << history_bits) - 1),
      table_(entries)
{
    if (entries == 0 || (entries & (entries - 1)) != 0)
        fatalError("gshare predictor entries must be a power of two");
    if (history_bits == 0 || history_bits > 62)
        fatalError("gshare history bits out of range");
}

bool
GsharePredictor::predict(Addr pc)
{
    return table_[indexOf(pc)].taken();
}

void
GsharePredictor::update(Addr pc, bool taken)
{
    table_[indexOf(pc)].update(taken);
    history_ = ((history_ << 1) | (taken ? 1 : 0)) & historyMask_;
}

void
GsharePredictor::reset()
{
    for (auto &c : table_)
        c = SatCounter2();
    history_ = 0;
}

} // namespace pifetch
