/**
 * @file
 * Bimodal (PC-indexed) direction predictor.
 */

#pragma once

#include <vector>

#include "branch/predictor.hh"

namespace pifetch {

/**
 * Classic bimodal predictor: a table of 2-bit counters indexed by the
 * branch PC. Captures strongly biased branches (the majority in server
 * code) without history interference.
 */
class BimodalPredictor final : public DirectionPredictor
{
  public:
    /** @param entries Table size; must be a power of two. */
    explicit BimodalPredictor(unsigned entries);

    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;
    void reset() override;

  private:
    std::uint64_t indexOf(Addr pc) const
    {
        return (pc >> 2) & mask_;
    }

    std::uint64_t mask_;
    std::vector<SatCounter2> table_;
};

} // namespace pifetch
