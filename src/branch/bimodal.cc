/**
 * @file
 * Bimodal predictor implementation.
 */

#include "branch/bimodal.hh"

namespace pifetch {

BimodalPredictor::BimodalPredictor(unsigned entries)
    : mask_(entries - 1), table_(entries)
{
    if (entries == 0 || (entries & (entries - 1)) != 0)
        fatalError("bimodal predictor entries must be a power of two");
}

bool
BimodalPredictor::predict(Addr pc)
{
    return table_[indexOf(pc)].taken();
}

void
BimodalPredictor::update(Addr pc, bool taken)
{
    table_[indexOf(pc)].update(taken);
}

void
BimodalPredictor::reset()
{
    for (auto &c : table_)
        c = SatCounter2();
}

} // namespace pifetch
