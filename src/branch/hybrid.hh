/**
 * @file
 * Hybrid (tournament) branch predictor: gshare + bimodal + chooser.
 */

#pragma once

#include <vector>

#include "branch/bimodal.hh"
#include "branch/gshare.hh"
#include "branch/predictor.hh"
#include "common/config.hh"

namespace pifetch {

/**
 * Table I's "hybrid branch predictor: 16K gshare & 16K bimodal".
 *
 * A PC-indexed chooser table of 2-bit counters selects the component
 * whose prediction is used; the chooser trains only when the components
 * disagree.
 */
class HybridPredictor final : public DirectionPredictor
{
  public:
    explicit HybridPredictor(const BranchConfig &cfg);

    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;
    void reset() override;

    /** Mispredictions observed via recordOutcome(). */
    std::uint64_t mispredicts() const { return mispredicts_; }
    /** Total predictions observed via recordOutcome(). */
    std::uint64_t predictions() const { return predictions_; }

    /**
     * Convenience: predict, train, and count in one call.
     * @return the prediction made before training.
     */
    bool
    predictAndUpdate(Addr pc, bool taken)
    {
        const bool pred = predict(pc);
        update(pc, taken);
        ++predictions_;
        if (pred != taken)
            ++mispredicts_;
        return pred;
    }

  private:
    std::uint64_t chooserIndex(Addr pc) const
    {
        return (pc >> 2) & chooserMask_;
    }

    GsharePredictor gshare_;
    BimodalPredictor bimodal_;
    std::uint64_t chooserMask_;
    std::vector<SatCounter2> chooser_;  //!< taken() == "use gshare"

    std::uint64_t predictions_ = 0;
    std::uint64_t mispredicts_ = 0;
};

} // namespace pifetch
