/**
 * @file
 * Gshare direction predictor with explicit history management.
 */

#pragma once

#include <vector>

#include "branch/predictor.hh"

namespace pifetch {

/**
 * Gshare: 2-bit counters indexed by PC xor global branch history.
 *
 * History is updated non-speculatively in update(); the front-end model
 * resolves each branch before predicting the next one of the same
 * thread, so speculative-history repair is unnecessary here.
 */
class GsharePredictor final : public DirectionPredictor
{
  public:
    /**
     * @param entries Table size (power of two).
     * @param history_bits Global history length folded into the index.
     */
    GsharePredictor(unsigned entries, unsigned history_bits);

    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;
    void reset() override;

    /** Current global history register (tests). */
    std::uint64_t history() const { return history_; }

  private:
    std::uint64_t indexOf(Addr pc) const
    {
        return ((pc >> 2) ^ history_) & mask_;
    }

    std::uint64_t mask_;
    std::uint64_t historyMask_;
    std::uint64_t history_ = 0;
    std::vector<SatCounter2> table_;
};

} // namespace pifetch
