/**
 * @file
 * Return address stack implementation.
 */

#include "branch/ras.hh"

namespace pifetch {

ReturnAddressStack::ReturnAddressStack(unsigned entries)
    : capacity_(entries), stack_(entries, invalidAddr)
{
    if (entries == 0)
        fatalError("RAS needs at least one entry");
}

void
ReturnAddressStack::push(Addr ret_addr)
{
    topIdx_ = (topIdx_ + 1) % capacity_;
    stack_[topIdx_] = ret_addr;
    if (depth_ < capacity_)
        ++depth_;
}

Addr
ReturnAddressStack::pop()
{
    if (depth_ == 0)
        return invalidAddr;
    const Addr a = stack_[topIdx_];
    topIdx_ = (topIdx_ + capacity_ - 1) % capacity_;
    --depth_;
    return a;
}

Addr
ReturnAddressStack::top() const
{
    return depth_ == 0 ? invalidAddr : stack_[topIdx_];
}

void
ReturnAddressStack::reset()
{
    for (Addr &a : stack_)
        a = invalidAddr;
    topIdx_ = 0;
    depth_ = 0;
}

} // namespace pifetch
