/**
 * @file
 * BTB implementation.
 */

#include "branch/btb.hh"

namespace pifetch {

Btb::Btb(unsigned entries, unsigned assoc)
    : assoc_(assoc)
{
    if (entries == 0 || assoc == 0 || entries % assoc != 0)
        fatalError("BTB entries must be a nonzero multiple of assoc");
    const std::uint64_t sets = entries / assoc;
    if ((sets & (sets - 1)) != 0)
        fatalError("BTB set count must be a power of two");
    setMask_ = sets - 1;
    entries_.resize(entries);
}

Addr
Btb::lookup(Addr pc)
{
    ++lookups_;
    const std::uint64_t base = setOf(pc) * assoc_;
    for (unsigned w = 0; w < assoc_; ++w) {
        Entry &e = entries_[base + w];
        if (e.valid && e.tag == pc) {
            e.stamp = ++tick_;
            ++hits_;
            return e.target;
        }
    }
    return invalidAddr;
}

void
Btb::update(Addr pc, Addr target)
{
    const std::uint64_t base = setOf(pc) * assoc_;
    Entry *victim = nullptr;
    for (unsigned w = 0; w < assoc_; ++w) {
        Entry &e = entries_[base + w];
        if (e.valid && e.tag == pc) {
            e.target = target;
            e.stamp = ++tick_;
            return;
        }
        if (!e.valid) {
            if (!victim || victim->valid)
                victim = &e;
        } else if (!victim || (victim->valid && e.stamp < victim->stamp)) {
            victim = &e;
        }
    }
    victim->tag = pc;
    victim->target = target;
    victim->valid = true;
    victim->stamp = ++tick_;
}

void
Btb::reset()
{
    for (Entry &e : entries_)
        e = Entry{};
    tick_ = 0;
    hits_ = 0;
    lookups_ = 0;
}

} // namespace pifetch
