/**
 * @file
 * Return address stack.
 */

#pragma once

#include <vector>

#include "common/types.hh"

namespace pifetch {

/**
 * Circular return address stack.
 *
 * Overflow wraps (overwriting the oldest entry); underflow returns
 * invalidAddr, which the front-end treats as an unpredicted return
 * (sequential wrong-path fetch until resolution).
 */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(unsigned entries);

    /** Push a return address on a call. */
    void push(Addr ret_addr);

    /** Pop the predicted return address; invalidAddr on underflow. */
    Addr pop();

    /** Peek without popping; invalidAddr when empty. */
    Addr top() const;

    /** Number of live entries (saturates at capacity). */
    unsigned depth() const { return depth_; }

    unsigned capacity() const { return capacity_; }

    /** Drop all entries. */
    void reset();

  private:
    unsigned capacity_;
    unsigned topIdx_ = 0;
    unsigned depth_ = 0;
    std::vector<Addr> stack_;
};

} // namespace pifetch
