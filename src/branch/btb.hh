/**
 * @file
 * Branch target buffer.
 */

#pragma once

#include <vector>

#include "common/config.hh"
#include "common/types.hh"

namespace pifetch {

/**
 * Set-associative PC -> target mapping with LRU replacement.
 *
 * The front-end model consults the BTB for taken-branch targets; a BTB
 * miss on a taken branch forces sequential (wrong-path) fetch until
 * resolution, another source of access-stream noise.
 */
class Btb
{
  public:
    Btb(unsigned entries, unsigned assoc);

    /** Construct from the branch config. */
    explicit Btb(const BranchConfig &cfg) : Btb(cfg.btbEntries,
                                                cfg.btbAssoc) {}

    /**
     * Look up the target for the branch at @p pc.
     * @return the target, or invalidAddr on a BTB miss.
     */
    Addr lookup(Addr pc);

    /** Install or refresh the mapping pc -> target. */
    void update(Addr pc, Addr target);

    /** Drop all entries. */
    void reset();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t lookups() const { return lookups_; }

  private:
    struct Entry
    {
        Addr tag = invalidAddr;
        Addr target = invalidAddr;
        std::uint64_t stamp = 0;
        bool valid = false;
    };

    std::uint64_t setOf(Addr pc) const { return (pc >> 2) & setMask_; }

    unsigned assoc_;
    std::uint64_t setMask_;
    std::uint64_t tick_ = 0;
    std::vector<Entry> entries_;

    std::uint64_t hits_ = 0;
    std::uint64_t lookups_ = 0;
};

} // namespace pifetch
