/**
 * @file
 * Hybrid predictor implementation.
 */

#include "branch/hybrid.hh"

namespace pifetch {

HybridPredictor::HybridPredictor(const BranchConfig &cfg)
    : gshare_(cfg.gshareEntries, cfg.historyBits),
      bimodal_(cfg.bimodalEntries),
      chooserMask_(cfg.chooserEntries - 1),
      chooser_(cfg.chooserEntries)
{
    if (cfg.chooserEntries == 0 ||
        (cfg.chooserEntries & (cfg.chooserEntries - 1)) != 0) {
        fatalError("chooser entries must be a power of two");
    }
}

bool
HybridPredictor::predict(Addr pc)
{
    const bool use_gshare = chooser_[chooserIndex(pc)].taken();
    return use_gshare ? gshare_.predict(pc) : bimodal_.predict(pc);
}

void
HybridPredictor::update(Addr pc, bool taken)
{
    const bool g = gshare_.predict(pc);
    const bool b = bimodal_.predict(pc);
    if (g != b) {
        // Train the chooser toward the component that was right.
        chooser_[chooserIndex(pc)].update(g == taken);
    }
    gshare_.update(pc, taken);
    bimodal_.update(pc, taken);
}

void
HybridPredictor::reset()
{
    gshare_.reset();
    bimodal_.reset();
    for (auto &c : chooser_)
        c = SatCounter2();
    predictions_ = 0;
    mispredicts_ = 0;
}

} // namespace pifetch
