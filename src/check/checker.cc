/**
 * @file
 * Checker implementation: the oracle battery, the fuzz loop and the
 * shrinker.
 */

#include "check/checker.hh"

#include <algorithm>
#include <memory>
#include <set>
#include <type_traits>

#include "common/parallel.hh"
#include "pif/shared_pif.hh"
#include "sim/workloads.hh"

namespace pifetch {

std::vector<FaultInjection>
allFaultInjections()
{
    return {FaultInjection::None, FaultInjection::DegreeMiscount,
            FaultInjection::CoverageDrop, FaultInjection::WindowMiscount};
}

std::string
faultKey(FaultInjection fault)
{
    switch (fault) {
      case FaultInjection::None:           return "none";
      case FaultInjection::DegreeMiscount: return "degree-miscount";
      case FaultInjection::CoverageDrop:   return "coverage-drop";
      case FaultInjection::WindowMiscount: return "window-miscount";
    }
    panic("unknown fault injection");
}

std::optional<FaultInjection>
faultFromKey(const std::string &s)
{
    for (FaultInjection f : allFaultInjections()) {
        if (s == faultKey(f))
            return f;
    }
    return std::nullopt;
}

namespace {

/** One digest-enabled functional run (optionally event-recorded). */
TraceRunResult
traceRun(const Program &prog, const ExecutorConfig &exec,
         const SystemConfig &cfg, PrefetcherKind kind, InstCount warmup,
         InstCount measure, EventStore *events = nullptr)
{
    TraceEngine engine(cfg, prog, exec, makePrefetcher(kind, cfg));
    ObserverConfig obs;
    obs.digests = true;
    obs.events = events;
    engine.attachObservers(obs);
    return engine.run(warmup, measure);
}

/**
 * Event-store knobs for the step-1 windowed oracles: fetch slices
 * only (prefetch rows are timing-dependent, and excluding them keeps
 * the two engines' slice streams row-aligned under the overflow cap)
 * and a finer counter stride than the CLI default so even the
 * canonical shrunk scenario (measure floor 4000) takes several
 * samples.
 */
EventStoreOptions
oracleEventOptions()
{
    EventStoreOptions opts;
    opts.counterWindow = 1'024;
    opts.maxSlices = std::uint64_t{1} << 20;
    opts.recordRetires = false;
    opts.recordFetches = true;
    opts.recordPrefetches = false;
    return opts;
}

/** The params for simulated core @p core of a fuzzed scenario. */
WorkloadParams
coreParams(const WorkloadParams &base, unsigned core)
{
    WorkloadParams p = base;
    // Same role as workloadParams(w, seed_offset): each core runs its
    // own instance of the workload.
    p.seed = base.seed + core * 0x9e3779b9ull;
    return p;
}

/**
 * The scenario's lowered spec, or nullopt in plain-params mode.
 * Callers run after validateScenario, so lowering cannot panic.
 */
std::optional<LoweredWorkload>
loweredOf(const Scenario &sc)
{
    if (!sc.spec)
        return std::nullopt;
    return lowerWorkloadSpec(*sc.spec);
}

/**
 * The multicore differential: @p cores independent engines fanned
 * over @p threads lanes (the exact construction pattern of
 * runMulticoreTrace, but over arbitrary fuzzed params).
 */
std::vector<TraceRunResult>
multicoreRun(const Scenario &sc, unsigned threads)
{
    const std::optional<LoweredWorkload> lw = loweredOf(sc);
    std::vector<TraceRunResult> out(sc.cores);
    parallelFor(threads, sc.cores, [&](std::uint64_t core) {
        Program prog;
        ExecutorConfig exec;
        if (lw) {
            prog = lw->build(core);
            exec = executorConfigFor(*lw, core, core);
        } else {
            const WorkloadParams params =
                coreParams(sc.params, static_cast<unsigned>(core));
            prog = WorkloadGenerator::build(params);
            exec = executorConfigFor(params, core);
        }
        SystemConfig cfg = sc.cfg;
        cfg.seed = sc.cfg.seed + core * 7919;
        TraceEngine engine(cfg, prog, exec,
                           makePrefetcher(sc.kind, cfg));
        ObserverConfig obs;
        obs.digests = true;
        engine.attachObservers(obs);
        out[core] = engine.run(sc.warmup / 2, sc.measure / 2);
    });
    return out;
}

/** Counters observed from one shared-PIF interleaving. */
struct SharedPifRun
{
    std::vector<std::uint64_t> accesses;
    std::vector<std::uint64_t> misses;
    std::vector<double> coverage;
    std::uint64_t regionsRecorded = 0;
};

/**
 * Two cores of the same program interleaving through one shared PIF
 * storage pool (the Section 4 shared-storage path, serial by design).
 */
SharedPifRun
sharedPifRun(const Scenario &sc, const LoweredWorkload *lw,
             const Program &prog)
{
    constexpr unsigned cores = 2;
    auto storage = std::make_shared<SharedPifStorage>(sc.cfg.pif);

    std::vector<std::unique_ptr<TraceEngine>> engines;
    std::vector<SharedPifPrefetcher *> prefetchers;
    for (unsigned core = 0; core < cores; ++core) {
        auto pf = std::make_unique<SharedPifPrefetcher>(storage);
        prefetchers.push_back(pf.get());
        SystemConfig cfg = sc.cfg;
        cfg.seed = sc.cfg.seed + core * 7919;
        const ExecutorConfig exec =
            lw ? executorConfigFor(*lw, 0, core + 1)
               : executorConfigFor(sc.params, core + 1);
        engines.push_back(std::make_unique<TraceEngine>(
            cfg, prog, exec, std::move(pf)));
    }

    const InstCount total = (sc.warmup + sc.measure) / 2;
    constexpr InstCount chunk = 2'000;
    InstCount done = 0;
    while (done < total) {
        const InstCount step = std::min(chunk, total - done);
        for (auto &engine : engines)
            engine->advance(step);
        done += step;
    }

    SharedPifRun run;
    for (unsigned core = 0; core < cores; ++core) {
        run.accesses.push_back(
            engines[core]->frontend().correctPathFetches());
        run.misses.push_back(
            engines[core]->frontend().correctPathMisses());
        run.coverage.push_back(prefetchers[core]->coverage());
    }
    run.regionsRecorded = storage->regionsRecorded();
    return run;
}

} // namespace

std::vector<CheckFailure>
runScenario(const Scenario &sc, FaultInjection inject)
{
    std::vector<CheckFailure> out;
    if (const auto err = validateScenario(sc)) {
        out.push_back(CheckFailure{"scenario-valid", *err});
        return out;
    }

    // Spec scenarios lower onto the same pipeline: linked Program
    // plus a phase-scheduled executor config; every oracle below is
    // workload-agnostic.
    const std::optional<LoweredWorkload> lw = loweredOf(sc);
    const Program prog =
        lw ? lw->build() : WorkloadGenerator::build(sc.params);
    const ExecutorConfig exec =
        lw ? executorConfigFor(*lw) : executorConfigFor(sc.params);

    // 1. Differential oracle: same scenario through both engines —
    //    whole-run digests and counters, plus the windowed event-store
    //    oracles (src/query/), which localize any divergence to the
    //    first disagreeing instruction window.
    EventStore traceEvents(oracleEventOptions());
    const TraceRunResult trace = traceRun(prog, exec, sc.cfg, sc.kind,
                                          sc.warmup, sc.measure,
                                          &traceEvents);
    checkTraceSanity(trace, prefetcherKey(sc.kind),
                     sc.cfg.l1i.sizeBytes / blockBytes, out);
    {
        EventStore cycleEvents(oracleEventOptions());
        CycleEngine engine(sc.cfg, prog, exec, sc.kind);
        ObserverConfig obs;
        obs.digests = true;
        obs.events = &cycleEvents;
        engine.attachObservers(obs);
        const CycleRunResult cycle = engine.run(sc.warmup, sc.measure);
        const bool perfect = sc.kind == PrefetcherKind::Perfect;
        const bool instant = perfect || sc.kind == PrefetcherKind::None;
        checkCycleSanity(cycle, perfect, out);
        checkCrossEngine(trace, cycle, instant, out);
        if (inject == FaultInjection::WindowMiscount) {
            // Skew the second accesses sample: one interior window
            // disagrees, whole-run totals stay intact, and the fault
            // survives every shrink move down to the canonical floor
            // (4000 retires / stride 1024 still take three samples).
            cycleEvents.injectCounterSkew(EventCounter::Accesses, 1, 7);
        }
        checkWindowedCounters(traceEvents, cycleEvents, instant, out);
        if (instant)
            checkRegionMissProfile(traceEvents, cycleEvents, out);
    }

    // 2. Prefetcher-off baseline: zero activity, deterministic, and
    //    the fetch sequence matches the prefetching run. When the
    //    scenario itself runs kind None, step 1's run *is* the
    //    baseline (determinism below guarantees reuse is sound — and
    //    matters: the shrinker pins kind to None, so its probes
    //    always hit this path).
    const TraceRunResult off =
        sc.kind == PrefetcherKind::None
            ? trace
            : traceRun(prog, exec, sc.cfg, PrefetcherKind::None,
                       sc.warmup, sc.measure);
    checkPrefetchOff(off, out);
    checkTraceIdentical(off,
                        traceRun(prog, exec, sc.cfg,
                                 PrefetcherKind::None, sc.warmup,
                                 sc.measure),
                        "trace-determinism", out);

    // Full-budget PIF run: feeds the Fig. 9 oracle below, and stands
    // in as the prefetching side of the access-invariance comparison
    // when the scenario's own kind attaches no real prefetcher (None,
    // or Perfect's NullPrefetcher) — comparing `off` with `trace`
    // would then be a self-comparison that exercises nothing.
    const TraceRunResult pif_full =
        sc.kind == PrefetcherKind::Pif
            ? trace
            : traceRun(prog, exec, sc.cfg, PrefetcherKind::Pif,
                       sc.warmup, sc.measure);
    const bool kind_is_null = sc.kind == PrefetcherKind::None ||
                              sc.kind == PrefetcherKind::Perfect;
    checkAccessInvariance(off, kind_is_null ? pif_full : trace, out);

    // 3. Doubled measurement window extends the run as a prefix.
    checkLengthScaling(off,
                       traceRun(prog, exec, sc.cfg,
                                PrefetcherKind::None, sc.warmup,
                                sc.measure * 2),
                       out);

    // 4. Fig. 9: PIF coverage direction in the history budget.
    {
        SystemConfig small = sc.cfg;
        small.pif.historyRegions =
            std::max<std::uint64_t>(64, sc.cfg.pif.historyRegions / 4);
        const double cov_small =
            traceRun(prog, exec, small, PrefetcherKind::Pif, sc.warmup,
                     sc.measure).pifCoverage;
        double cov_large = pif_full.pifCoverage;
        if (inject == FaultInjection::CoverageDrop)
            cov_large = cov_small - 0.25;
        checkCoverageMonotone(cov_small, cov_large,
                              small.pif.historyRegions,
                              sc.cfg.pif.historyRegions, out);
    }

    // 5. Next-line degree ablation direction.
    {
        SystemConfig doubled = sc.cfg;
        doubled.nextLine.degree = sc.cfg.nextLine.degree * 2;
        // A kind-NextLine scenario already ran the base degree in
        // step 1 (determinism-checked reuse, as in steps 2 and 4).
        std::uint64_t issued_lo =
            sc.kind == PrefetcherKind::NextLine
                ? trace.prefetchIssued
                : traceRun(prog, exec, sc.cfg, PrefetcherKind::NextLine,
                           sc.warmup, sc.measure).prefetchIssued;
        const std::uint64_t issued_hi =
            traceRun(prog, exec, doubled, PrefetcherKind::NextLine,
                     sc.warmup, sc.measure).prefetchIssued;
        if (inject == FaultInjection::DegreeMiscount)
            issued_lo = issued_hi + issued_hi / 2 + 64;
        checkDegreeMonotone(issued_lo, issued_hi,
                            sc.cfg.nextLine.degree,
                            doubled.nextLine.degree, out);
    }

    // 6. Thread-count invariance of the multicore fan-out.
    {
        const std::vector<TraceRunResult> serial = multicoreRun(sc, 1);
        const std::vector<TraceRunResult> pooled =
            multicoreRun(sc, sc.threads);
        for (unsigned core = 0; core < sc.cores; ++core)
            checkTraceIdentical(serial[core], pooled[core],
                                "thread-invariance", out);
    }

    // 7. Shared-PIF interleaving determinism.
    {
        const LoweredWorkload *lwp = lw ? &*lw : nullptr;
        const SharedPifRun a = sharedPifRun(sc, lwp, prog);
        const SharedPifRun b = sharedPifRun(sc, lwp, prog);
        if (a.accesses != b.accesses || a.misses != b.misses ||
            a.coverage != b.coverage ||
            a.regionsRecorded != b.regionsRecorded) {
            out.push_back(CheckFailure{
                "shared-pif-determinism",
                "two identical shared-PIF interleavings diverged"});
        }
    }

    return out;
}

Scenario
shrinkScenario(const Scenario &failing,
               const std::function<bool(const Scenario &)> &stillFails,
               unsigned *steps)
{
    // Floors mirror scenarioFromSeed's minima, so a universally-
    // failing scenario shrinks to one canonical point (test_check
    // locks this).
    constexpr InstCount measureFloor = 4'000;

    Scenario cur = failing;
    unsigned accepted = 0;

    const auto attempt = [&](Scenario cand) {
        if (validateScenario(cand))
            return false;  // candidate left the simulable space
        if (!stillFails(cand))
            return false;
        cur = std::move(cand);
        ++accepted;
        return true;
    };

    /** Halve an integral dimension toward its floor. */
    const auto halve = [&](auto member, std::uint64_t floor) {
        Scenario cand = cur;
        auto &value = member(cand);
        const std::uint64_t now = static_cast<std::uint64_t>(value);
        if (now <= floor)
            return false;
        using T = std::decay_t<decltype(value)>;
        value = static_cast<T>(std::max<std::uint64_t>(floor, now / 2));
        return attempt(std::move(cand));
    };

    /** Set a dimension straight to its floor value. */
    const auto pin = [&](auto apply) {
        Scenario cand = cur;
        if (!apply(cand))
            return false;  // already there
        return attempt(std::move(cand));
    };

    /**
     * The workload params the engines actually consume: the spec's
     * surviving program in spec mode (cloned first — Scenario shares
     * its spec), else the scenario's own params. Lets every param
     * move below shrink spec scenarios in spec coordinates.
     */
    const auto mutableParams = [](Scenario &s) -> WorkloadParams & {
        if (!s.spec)
            return s.params;
        auto clone = std::make_shared<WorkloadSpec>(*s.spec);
        WorkloadParams &p = clone->programs.front().params;
        s.spec = std::move(clone);
        return p;
    };

    /** Clone-mutate-replace a spec dimension (no-op sans spec). */
    const auto specPin = [&](auto apply) {
        return pin([&](Scenario &s) {
            if (!s.spec)
                return false;
            auto clone = std::make_shared<WorkloadSpec>(*s.spec);
            if (!apply(*clone))
                return false;  // already at the floor
            s.spec = std::move(clone);
            return true;
        });
    };

    bool changed = true;
    for (int pass = 0; changed && pass < 12; ++pass) {
        changed = false;
        // Budget first: every later probe gets cheaper.
        changed |= halve([](Scenario &s) -> InstCount & {
            return s.measure; }, measureFloor);
        changed |= pin([](Scenario &s) {
            if (s.warmup == 0)
                return false;
            // Snap small warmups straight to zero so the floor is
            // reachable within the pass budget.
            s.warmup = s.warmup >= 2'000 ? s.warmup / 2 : 0;
            return true;
        });
        changed |= pin([](Scenario &s) {
            if (s.threads == 1 && s.cores == 1)
                return false;
            s.threads = 1;
            s.cores = 1;
            return true;
        });
        changed |= pin([](Scenario &s) {
            if (s.kind == PrefetcherKind::None)
                return false;
            s.kind = PrefetcherKind::None;
            return true;
        });
        // Spec coordinates before program knobs: collapsing the
        // schedule and program list first lets the param moves below
        // act on the single surviving program.
        changed |= specPin([](WorkloadSpec &spec) {
            if (spec.phases.empty())
                return false;
            spec.phases.clear();  // steady state (no schedule)
            return true;
        });
        changed |= specPin([](WorkloadSpec &spec) {
            if (spec.phases.size() <= 1)
                return false;
            spec.phases.resize(1);
            return true;
        });
        changed |= specPin([](WorkloadSpec &spec) {
            if (spec.programs.size() <= 1)
                return false;
            spec.programs.resize(1);
            // Mixes may reference dropped programs; uniform-over-one
            // is the canonical floor anyway.
            for (WorkloadSpecPhase &ph : spec.phases)
                ph.mix.clear();
            return true;
        });
        changed |= specPin([](WorkloadSpec &spec) {
            bool any = false;
            for (WorkloadSpecPhase &ph : spec.phases) {
                if (ph.instructions > specMinPhaseInstrs) {
                    ph.instructions = std::max(
                        specMinPhaseInstrs, ph.instructions / 2);
                    any = true;
                }
            }
            return any;
        });
        changed |= specPin([](WorkloadSpec &spec) {
            bool any = false;
            for (WorkloadSpecPhase &ph : spec.phases) {
                if (ph.interruptRate != 0.0 ||
                    ph.interruptRateEnd >= 0.0) {
                    ph.interruptRate = 0.0;   // explicit off, no ramp
                    ph.interruptRateEnd = -1.0;
                    any = true;
                }
            }
            return any;
        });
        changed |= halve([&](Scenario &s) -> unsigned & {
            return mutableParams(s).appFunctions; }, 40);
        changed |= halve([&](Scenario &s) -> unsigned & {
            return mutableParams(s).libFunctions; }, 8);
        changed |= halve([&](Scenario &s) -> unsigned & {
            return mutableParams(s).handlers; }, 4);
        changed |= halve([&](Scenario &s) -> unsigned & {
            return mutableParams(s).transactions; }, 2);
        changed |= pin([&](Scenario &s) {
            WorkloadParams &p = mutableParams(s);
            if (p.interruptRate == 0.0)
                return false;
            p.interruptRate = 0.0;
            return true;
        });
        changed |= pin([&](Scenario &s) {
            WorkloadParams &p = mutableParams(s);
            if (p.loopsPerFunction == 0.0)
                return false;
            p.loopsPerFunction = 0.0;
            return true;
        });
        changed |= halve([&](Scenario &s) -> unsigned & {
            return mutableParams(s).callLayers; }, 2);
        changed |= halve([&](Scenario &s) -> unsigned & {
            return mutableParams(s).maxCallDepth; }, 6);
        changed |= halve([](Scenario &s) -> std::uint64_t & {
            return s.cfg.pif.historyRegions; }, 512);
        changed |= halve([](Scenario &s) -> unsigned & {
            return s.cfg.pif.indexEntries; }, 1024);
        changed |= halve([](Scenario &s) -> unsigned & {
            return s.cfg.pif.numSabs; }, 1);
        changed |= halve([](Scenario &s) -> unsigned & {
            return s.cfg.pif.sabWindowRegions; }, 2);
        changed |= halve([](Scenario &s) -> unsigned & {
            return s.cfg.pif.temporalEntries; }, 1);
        changed |= pin([](Scenario &s) {
            if (s.cfg.pif.blocksBefore == 0)
                return false;
            s.cfg.pif.blocksBefore = 0;
            return true;
        });
        changed |= halve([](Scenario &s) -> unsigned & {
            return s.cfg.pif.blocksAfter; }, 1);
        changed |= halve([](Scenario &s) -> unsigned & {
            return s.cfg.nextLine.degree; }, 1);
        changed |= halve([](Scenario &s) -> std::uint64_t & {
            return s.cfg.l1i.sizeBytes; }, 16 * 1024);
        changed |= halve([](Scenario &s) -> unsigned & {
            return s.cfg.l1i.assoc; }, 1);
        changed |= halve([](Scenario &s) -> unsigned & {
            return s.cfg.l1i.mshrs; }, 8);
    }

    if (steps)
        *steps = accepted;
    return cur;
}

CheckReport
runCheck(const CheckOptions &opts)
{
    CheckReport report;
    report.baseSeed = opts.baseSeed;
    report.seedsRun = opts.seeds;

    std::vector<std::unique_ptr<ScenarioReport>> slots(opts.seeds);
    parallelFor(opts.threads, opts.seeds, [&](std::uint64_t i) {
        Scenario sc = scenarioFromSeed(opts.baseSeed + i);
        // Spec-space mode: the whole seed range sweeps prefetchers,
        // configs and budgets over the one supplied spec.
        if (opts.spec)
            sc.spec = opts.spec;
        std::vector<CheckFailure> failures = runScenario(sc, opts.inject);
        if (failures.empty())
            return;

        auto entry = std::make_unique<ScenarioReport>();
        entry->scenario = sc;
        entry->failures = std::move(failures);
        entry->shrunk = sc;
        if (opts.shrink) {
            // "Still fails" = at least one of the originally violated
            // invariants is still violated; this keeps the shrinker
            // from wandering onto unrelated failures.
            std::set<std::string> ids;
            for (const CheckFailure &f : entry->failures)
                ids.insert(f.invariant);
            const auto still = [&](const Scenario &cand) {
                for (const CheckFailure &f :
                     runScenario(cand, opts.inject)) {
                    if (ids.count(f.invariant))
                        return true;
                }
                return false;
            };
            entry->shrunk =
                shrinkScenario(sc, still, &entry->shrinkSteps);
            entry->shrunkValid = true;
        }
        slots[i] = std::move(entry);
    });

    for (auto &slot : slots) {
        if (slot)
            report.failures.push_back(std::move(*slot));
    }
    return report;
}

ResultValue
toResult(const ScenarioReport &report)
{
    ResultValue entry = ResultValue::object();
    entry.set("seed", report.scenario.seed);
    ResultValue violations = ResultValue::array();
    for (const CheckFailure &f : report.failures) {
        ResultValue v = ResultValue::object();
        v.set("invariant", f.invariant);
        v.set("detail", f.detail);
        violations.push(std::move(v));
    }
    entry.set("failures", std::move(violations));
    entry.set("scenario", toResult(report.scenario));
    if (report.shrunkValid) {
        entry.set("shrunk", toResult(report.shrunk));
        entry.set("shrinkSteps", report.shrinkSteps);
    }
    return entry;
}

ResultValue
toResult(const CheckReport &report)
{
    ResultValue failures = ResultValue::array();
    for (const ScenarioReport &r : report.failures)
        failures.push(toResult(r));

    ResultValue doc = ResultValue::object();
    doc.set("command", "check");
    doc.set("baseSeed", report.baseSeed);
    doc.set("seeds", report.seedsRun);
    doc.set("failed", report.failures.size());
    doc.set("passed", report.passed());
    doc.set("failures", std::move(failures));
    return doc;
}

} // namespace pifetch
