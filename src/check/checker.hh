/**
 * @file
 * Scenario fuzzing, differential validation and shrinking.
 *
 * The checker is the standing correctness harness behind
 * `pifetch check`: it derives randomized-but-valid scenarios from
 * consecutive seeds, runs each through a battery of differential and
 * metamorphic oracles (invariants.hh), and — when a scenario fails —
 * shrinks it to a minimal still-failing scenario that ships as a
 * replayable JSON repro. Every later scaling or performance PR must
 * keep this harness green; see docs/validation.md.
 */

#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "check/invariants.hh"
#include "check/scenario.hh"

namespace pifetch {

/**
 * Deliberate invariant breaks, used to prove the harness catches and
 * shrinks violations (tests, CI self-checks, PR demonstrations). Each
 * perturbs one measured statistic after the runs complete and before
 * the evaluators see it, so the simulator itself stays untouched.
 */
enum class FaultInjection {
    None,
    /** Mis-count the doubled-degree next-line ablation's issue stat. */
    DegreeMiscount,
    /** Depress the large-history PIF coverage below the small one. */
    CoverageDrop,
    /**
     * Skew one counter sample of the cycle engine's event store, so
     * exactly one instruction window disagrees across engines and the
     * windowed oracle must localize it (the whole-run totals stay
     * untouched).
     */
    WindowMiscount,
};

/** Every fault in declaration order (CLI listings, tests). */
std::vector<FaultInjection> allFaultInjections();

/** CLI/JSON token for a fault ("degree-miscount", ...). */
std::string faultKey(FaultInjection fault);

/** Parse a faultKey() token (exact match; nullopt otherwise). */
std::optional<FaultInjection> faultFromKey(const std::string &s);

/** Options for one `pifetch check` invocation. */
struct CheckOptions
{
    /** First fuzz seed; seeds baseSeed .. baseSeed+seeds-1 run. */
    std::uint64_t baseSeed = 1;
    /** Number of scenarios to fuzz. */
    unsigned seeds = 25;
    /**
     * When set, every fuzzed scenario swaps its workload for this
     * spec (`pifetch check --workload-file`): the oracle battery then
     * sweeps prefetchers, configs and budgets over one fixed spec
     * instead of fuzzed params.
     */
    std::shared_ptr<const WorkloadSpec> spec;
    /** Worker lanes fanning scenarios (0 = auto / PIFETCH_THREADS). */
    unsigned threads = 0;
    /** Shrink failing scenarios to minimal repros. */
    bool shrink = true;
    /** Deliberate break for harness self-tests. */
    FaultInjection inject = FaultInjection::None;
};

/** Everything recorded about one failing scenario. */
struct ScenarioReport
{
    Scenario scenario;                  //!< as fuzzed (or replayed)
    std::vector<CheckFailure> failures; //!< violations on `scenario`
    Scenario shrunk;                    //!< minimal still-failing point
    unsigned shrinkSteps = 0;           //!< accepted shrink moves
    bool shrunkValid = false;           //!< shrinking ran and converged
};

/** Aggregate outcome of a check run. */
struct CheckReport
{
    std::uint64_t baseSeed = 0;
    unsigned seedsRun = 0;
    std::vector<ScenarioReport> failures;  //!< failing scenarios only

    bool passed() const { return failures.empty(); }
};

/**
 * Run the full oracle battery on one scenario:
 *  1. functional + timed engine on the scenario's prefetcher, with
 *     stream digests, cross-checked stat for stat;
 *  2. prefetcher-off baseline (zero prefetch activity, determinism,
 *     access-sequence invariance vs the prefetching run);
 *  3. doubled measurement window (monotone counters, ~2x accesses);
 *  4. PIF coverage at a quarter vs the full history budget (Fig. 9
 *     monotonicity);
 *  5. next-line degree vs doubled degree (issue-count direction);
 *  6. multicore fan-out at 1 thread vs scenario.threads
 *     (bit-identical per-core results);
 *  7. shared-PIF two-core interleaving run twice (bit-identical).
 *
 * @return every violated invariant (empty = scenario passes).
 */
std::vector<CheckFailure>
runScenario(const Scenario &sc,
            FaultInjection inject = FaultInjection::None);

/**
 * Shrink @p failing toward a minimal scenario for which @p stillFails
 * holds, by repeatedly halving every dimension toward its floor
 * (budget first, so later probes get cheaper) and keeping each move
 * only if the failure persists. Deterministic: the same inputs always
 * shrink to the same scenario.
 *
 * @param steps When non-null, receives the number of accepted moves.
 */
Scenario
shrinkScenario(const Scenario &failing,
               const std::function<bool(const Scenario &)> &stillFails,
               unsigned *steps = nullptr);

/** Fuzz opts.seeds scenarios; shrink and record every failure. */
CheckReport runCheck(const CheckOptions &opts);

/**
 * Serialize one failing scenario: {seed, failures[], scenario,
 * shrunk?, shrinkSteps?}. This is both an entry of the full report's
 * "failures" array and the standalone repro document
 * `pifetch check --replay` accepts.
 */
ResultValue toResult(const ScenarioReport &report);

/** Serialize a report (the `pifetch check --json` document). */
ResultValue toResult(const CheckReport &report);

} // namespace pifetch
