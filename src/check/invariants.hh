/**
 * @file
 * The invariant catalog of the validation subsystem.
 *
 * Each evaluator is a pure function over engine result structs: it
 * appends a CheckFailure (stable kebab-case invariant id + a detail
 * string carrying the offending numbers) for every violated relation
 * and touches nothing else. The checker (checker.hh) decides which
 * evaluators apply to a scenario and what runs feed them; tests drive
 * the evaluators directly with hand-built results to lock their
 * semantics. docs/validation.md is the prose catalog.
 *
 * Differential invariants (cross-engine-*): the TraceEngine and the
 * CycleEngine drive the identical executor -> front-end pipeline, so
 * the retired-instruction stream, the fetch-access sequence and every
 * timing-independent counter must match exactly; only hit/miss
 * outcomes may differ, and only through prefetch fill timing.
 *
 * Metamorphic invariants: relations between runs of the same scenario
 * under a controlled change (prefetcher off, doubled trace length,
 * larger history budget per Fig. 9, doubled next-line degree) whose
 * direction the paper documents.
 */

#pragma once

#include <string>
#include <vector>

#include "query/event_store.hh"
#include "sim/cycle_engine.hh"
#include "sim/trace_engine.hh"

namespace pifetch {

/** One violated invariant. */
struct CheckFailure
{
    /** Stable id, e.g. "cross-engine-retire-digest". */
    std::string invariant;
    /** Human-readable detail with the offending numbers. */
    std::string detail;
};

/**
 * Internal-consistency relations of one functional run
 * ("trace-stat-sanity"): misses <= accesses, coverage ratios in
 * [0, 1], and the prefetch pipeline relations with their
 * measurement-window boundary slack — fills may exceed issued by at
 * most one full prefetch queue (candidates enqueued before the
 * boundary, drained after), and useful touches may exceed fills by at
 * most @p l1_blocks (prefetched lines resident in the cache when the
 * window opened).
 */
void checkTraceSanity(const TraceRunResult &r, const std::string &label,
                      std::uint64_t l1_blocks,
                      std::vector<CheckFailure> &out);

/**
 * Internal-consistency relations of one timed run
 * ("cycle-stat-sanity"): userInstrs <= instrs, UIPC consistent with
 * its components, misses <= accesses, demandMisses == frontend misses
 * (a Perfect run instead requires zero demand misses and stalls).
 */
void checkCycleSanity(const CycleRunResult &r, bool perfect,
                      std::vector<CheckFailure> &out);

/**
 * Differential oracle between the two engines on the same scenario
 * ("cross-engine-*"): retire/access digests and every
 * timing-independent counter must match; with @p fills_instant (no
 * prefetcher, or the perfect cache) the miss counts must match too.
 */
void checkCrossEngine(const TraceRunResult &trace,
                      const CycleRunResult &cycle, bool fills_instant,
                      std::vector<CheckFailure> &out);

/**
 * Windowed differential oracle ("windowed-counter-equality"): both
 * engines sampled their cumulative counters into event stores at the
 * same retired-instruction windows, so the sample schedules must
 * align row for row and every timing-independent sample must match
 * exactly — misses and prefetch fills only with @p fills_instant.
 * Unlike the whole-run counter oracle this reports just the FIRST
 * divergence, naming the earliest instruction window that disagrees,
 * so a shrunk repro localizes the bug in simulated time.
 */
void checkWindowedCounters(const EventStore &trace,
                           const EventStore &cycle, bool fills_instant,
                           std::vector<CheckFailure> &out);

/**
 * Per-region miss profile ("region-miss-profile"): with instant fills
 * the engines' correct-path miss streams coincide, so grouping the
 * missed fetch slices by 8-block spatial region must give identical
 * per-region miss counts. Evaluated through the query engine itself
 * (`select region, count() from slices where ... group by region`);
 * reports only the first region that differs.
 */
void checkRegionMissProfile(const EventStore &trace,
                            const EventStore &cycle,
                            std::vector<CheckFailure> &out);

/**
 * Shared counter-equality core over the RunCounters base both engine
 * result structs inherit: retired instructions, accesses, wrong-path
 * fetches, mispredicts, interrupts and both stream digests must be
 * bit-identical; @p include_misses adds the miss count (exclude it
 * when the compared runs may legitimately differ in fill timing or
 * cache configuration). Reported under @p invariant. Works across
 * engines — any TraceRunResult/CycleRunResult pair slices to its
 * counter base.
 */
void checkCountersIdentical(const RunCounters &a, const RunCounters &b,
                            const std::string &invariant,
                            bool include_misses,
                            std::vector<CheckFailure> &out);

/**
 * Bit-identity of two functional runs that must not differ at all
 * (thread-count invariance, determinism). Reported under
 * @p invariant. Counter base via checkCountersIdentical(), plus the
 * trace-specific prefetch counters and coverage ratios.
 */
void checkTraceIdentical(const TraceRunResult &a, const TraceRunResult &b,
                         const std::string &invariant,
                         std::vector<CheckFailure> &out);

/**
 * A run with prefetching disabled must report zero prefetch activity
 * ("prefetch-off").
 */
void checkPrefetchOff(const TraceRunResult &r,
                      std::vector<CheckFailure> &out);

/**
 * The fetch-access sequence is prefetcher-independent
 * ("access-invariance"): two runs of the same scenario differing only
 * in prefetcher must agree on accesses, mispredicts, wrong-path
 * fetches, interrupts and both stream digests.
 */
void checkAccessInvariance(const TraceRunResult &a,
                           const TraceRunResult &b,
                           std::vector<CheckFailure> &out);

/**
 * Fig. 9 direction ("coverage-monotone-history"): growing the history
 * buffer from @p regions_small to @p regions_large must not lose more
 * than a small tolerance of PIF coverage.
 */
void checkCoverageMonotone(double cov_small, double cov_large,
                           std::uint64_t regions_small,
                           std::uint64_t regions_large,
                           std::vector<CheckFailure> &out);

/**
 * Trace-length scaling ("length-scaling"): @p twice reruns @p once
 * with a doubled measurement window, so its counters extend a strict
 * prefix — accesses and misses must be monotone, and the access count
 * roughly doubles.
 */
void checkLengthScaling(const TraceRunResult &once,
                        const TraceRunResult &twice,
                        std::vector<CheckFailure> &out);

/**
 * Next-line degree ablation ("nextline-degree-monotone"): doubling
 * the degree must not issue fewer candidates (small slack absorbs
 * queue back-pressure).
 */
void checkDegreeMonotone(std::uint64_t issued_lo, std::uint64_t issued_hi,
                         unsigned degree_lo, unsigned degree_hi,
                         std::vector<CheckFailure> &out);

} // namespace pifetch
