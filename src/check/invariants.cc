/**
 * @file
 * Invariant evaluator implementations.
 */

#include "check/invariants.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "query/query.hh"

namespace pifetch {

namespace {

/** Append a failure with a printf-free composed detail string. */
void
failure(std::vector<CheckFailure> &out, const char *invariant,
        const std::string &detail)
{
    out.push_back(CheckFailure{invariant, detail});
}

/** "name a=1 b=2" detail helper. */
std::string
pair2(const char *what, const char *an, std::uint64_t a, const char *bn,
      std::uint64_t b)
{
    std::ostringstream os;
    os << what << ": " << an << "=" << a << " " << bn << "=" << b;
    return os.str();
}

void
requireEqual(std::vector<CheckFailure> &out, const char *invariant,
             const char *counter, std::uint64_t a, std::uint64_t b)
{
    if (a != b)
        failure(out, invariant, pair2(counter, "a", a, "b", b));
}

bool
ratioIn(double v, double lo, double hi)
{
    return std::isfinite(v) && v >= lo && v <= hi;
}

} // namespace

void
checkTraceSanity(const TraceRunResult &r, const std::string &label,
                 std::uint64_t l1_blocks, std::vector<CheckFailure> &out)
{
    // Counters are deltas over the measurement window, so the pure
    // pipeline orderings (issued -> fills -> useful) hold only up to
    // what can straddle the warmup boundary: a full prefetch queue of
    // already-issued candidates (<= 256 across all prefetchers), and
    // a cache full of already-filled prefetched lines.
    constexpr std::uint64_t queueSlack = 256;

    const std::string at = label.empty() ? "" : " (" + label + ")";
    if (r.misses > r.accesses) {
        failure(out, "trace-stat-sanity",
                pair2(("misses exceed accesses" + at).c_str(), "misses",
                      r.misses, "accesses", r.accesses));
    }
    if (r.prefetchFills > r.prefetchIssued + queueSlack) {
        failure(out, "trace-stat-sanity",
                pair2(("fills exceed issued + queue slack" + at).c_str(),
                      "fills", r.prefetchFills, "issued",
                      r.prefetchIssued));
    }
    if (r.usefulPrefetches > r.prefetchFills + l1_blocks) {
        failure(out, "trace-stat-sanity",
                pair2(("useful exceed fills + cache capacity" + at)
                          .c_str(),
                      "useful", r.usefulPrefetches, "fills",
                      r.prefetchFills));
    }
    for (const double cov :
         {r.pifCoverage, r.pifCoverageTl0, r.pifCoverageTl1}) {
        if (!(cov >= 0.0 && cov <= 1.0)) {
            std::ostringstream os;
            os << "coverage outside [0,1]" << at << ": " << cov;
            failure(out, "trace-stat-sanity", os.str());
        }
    }
}

void
checkCycleSanity(const CycleRunResult &r, bool perfect,
                 std::vector<CheckFailure> &out)
{
    if (r.userInstrs > r.instrs) {
        failure(out, "cycle-stat-sanity",
                pair2("user instructions exceed retired", "user",
                      r.userInstrs, "retired", r.instrs));
    }
    if (r.misses > r.accesses) {
        failure(out, "cycle-stat-sanity",
                pair2("misses exceed accesses", "misses", r.misses,
                      "accesses", r.accesses));
    }
    if (r.cycles > 0) {
        const double uipc = static_cast<double>(r.userInstrs) /
                            static_cast<double>(r.cycles);
        if (std::fabs(uipc - r.uipc) > 1e-9 * (1.0 + uipc)) {
            std::ostringstream os;
            os << "uipc inconsistent with components: reported "
               << r.uipc << " recomputed " << uipc;
            failure(out, "cycle-stat-sanity", os.str());
        }
    }
    if (perfect) {
        if (r.demandMisses != 0 || r.fetchStallCycles != 0) {
            failure(out, "cycle-stat-sanity",
                    pair2("perfect cache stalled", "demandMisses",
                          r.demandMisses, "fetchStallCycles",
                          r.fetchStallCycles));
        }
    } else if (r.demandMisses != r.misses) {
        // Every correct-path front-end miss charges exactly one
        // demand stall in the measurement window.
        failure(out, "cycle-stat-sanity",
                pair2("demand misses diverge from front-end misses",
                      "demand", r.demandMisses, "frontend", r.misses));
    }
}

void
checkCrossEngine(const TraceRunResult &trace, const CycleRunResult &cycle,
                 bool fills_instant, std::vector<CheckFailure> &out)
{
    requireEqual(out, "cross-engine-retire-digest",
                 "retired-instruction stream digest", trace.retireDigest,
                 cycle.retireDigest);
    requireEqual(out, "cross-engine-access-digest",
                 "fetch-access stream digest", trace.accessDigest,
                 cycle.accessDigest);
    requireEqual(out, "cross-engine-accesses", "correct-path accesses",
                 trace.accesses, cycle.accesses);
    requireEqual(out, "cross-engine-mispredicts", "mispredicts",
                 trace.mispredicts, cycle.mispredicts);
    requireEqual(out, "cross-engine-wrong-path", "wrong-path fetches",
                 trace.wrongPathFetches, cycle.wrongPathFetches);
    requireEqual(out, "cross-engine-interrupts", "interrupts",
                 trace.interrupts, cycle.interrupts);
    requireEqual(out, "cross-engine-instrs", "retired instructions",
                 trace.instrs, cycle.instrs);
    if (fills_instant) {
        // No prefetch fills (or a perfect cache) means fill timing
        // cannot differ, so the miss streams coincide exactly.
        requireEqual(out, "cross-engine-misses", "correct-path misses",
                     trace.misses, cycle.misses);
    }
}

void
checkWindowedCounters(const EventStore &trace, const EventStore &cycle,
                      bool fills_instant, std::vector<CheckFailure> &out)
{
    const char *inv = "windowed-counter-equality";
    const std::size_t n =
        std::min(trace.counterCount(), cycle.counterCount());
    for (std::size_t i = 0; i < n; ++i) {
        if (trace.counterInstr()[i] != cycle.counterInstr()[i] ||
            trace.counterCore()[i] != cycle.counterCore()[i] ||
            trace.counterId()[i] != cycle.counterId()[i]) {
            std::ostringstream os;
            os << "counter-sample schedules diverge at row " << i
               << ": trace instr " << trace.counterInstr()[i]
               << " vs cycle instr " << cycle.counterInstr()[i];
            failure(out, inv, os.str());
            return;
        }
        const auto counter =
            static_cast<EventCounter>(trace.counterId()[i]);
        if (!fills_instant && (counter == EventCounter::Misses ||
                               counter == EventCounter::PrefetchFills)) {
            // Fill timing may legitimately shift these; the whole-run
            // oracle applies the same exclusion.
            continue;
        }
        if (trace.counterValue()[i] != cycle.counterValue()[i]) {
            std::ostringstream os;
            os << eventCounterKey(counter) << " diverges at instr "
               << trace.counterInstr()[i] << " (core "
               << static_cast<unsigned>(trace.counterCore()[i])
               << "): trace=" << trace.counterValue()[i]
               << " cycle=" << cycle.counterValue()[i];
            failure(out, inv, os.str());
            return;
        }
    }
    if (trace.counterCount() != cycle.counterCount()) {
        failure(out, inv,
                pair2("counter-sample counts differ", "trace",
                      trace.counterCount(), "cycle",
                      cycle.counterCount()));
    }
}

void
checkRegionMissProfile(const EventStore &trace, const EventStore &cycle,
                       std::vector<CheckFailure> &out)
{
    const char *inv = "region-miss-profile";
    const auto profile = [](const EventStore &store) {
        const auto q = parseQuery(
            "select region, count() from slices where kind == fetch "
            "and correct == true and hit == false group by region");
        if (!q)
            panic("region-miss-profile: canned query failed to parse");
        const auto table = runQuery(store, *q);
        if (!table)
            panic("region-miss-profile: canned query failed to run");
        return *table;
    };
    const ResultValue a = profile(trace);
    const ResultValue b = profile(cycle);
    const ResultValue *ra = a.find("rows");
    const ResultValue *rb = b.find("rows");

    // Rows come back sorted by region (group-key order): merge-join
    // and report the first disagreement only.
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < ra->size() || j < rb->size()) {
        const bool haveA = i < ra->size();
        const bool haveB = j < rb->size();
        const std::uint64_t regA =
            haveA ? ra->at(i).at(0).uintValue() : 0;
        const std::uint64_t regB =
            haveB ? rb->at(j).at(0).uintValue() : 0;
        if (!haveB || (haveA && regA < regB)) {
            std::ostringstream os;
            os << "region " << regA << " misses only in the trace "
               << "engine (" << ra->at(i).at(1).uintValue() << " misses)";
            failure(out, inv, os.str());
            return;
        }
        if (!haveA || regB < regA) {
            std::ostringstream os;
            os << "region " << regB << " misses only in the cycle "
               << "engine (" << rb->at(j).at(1).uintValue() << " misses)";
            failure(out, inv, os.str());
            return;
        }
        const std::uint64_t ca = ra->at(i).at(1).uintValue();
        const std::uint64_t cb = rb->at(j).at(1).uintValue();
        if (ca != cb) {
            std::ostringstream os;
            os << "region " << regA << " miss counts diverge: trace="
               << ca << " cycle=" << cb;
            failure(out, inv, os.str());
            return;
        }
        ++i;
        ++j;
    }
}

void
checkCountersIdentical(const RunCounters &a, const RunCounters &b,
                       const std::string &invariant, bool include_misses,
                       std::vector<CheckFailure> &out)
{
    // One comparison table over the shared counter base instead of a
    // hand-copied requireEqual list per evaluator: adding a field to
    // RunCounters means adding one row here, and every bit-identity
    // oracle (thread invariance, determinism, access invariance)
    // picks it up.
    struct Field { const char *name; std::uint64_t RunCounters::*ptr; };
    static constexpr Field fields[] = {
        {"instrs", &RunCounters::instrs},
        {"accesses", &RunCounters::accesses},
        {"wrongPathFetches", &RunCounters::wrongPathFetches},
        {"mispredicts", &RunCounters::mispredicts},
        {"interrupts", &RunCounters::interrupts},
        {"retireDigest", &RunCounters::retireDigest},
        {"accessDigest", &RunCounters::accessDigest},
    };
    const char *inv = invariant.c_str();
    for (const Field &f : fields)
        requireEqual(out, inv, f.name, a.*f.ptr, b.*f.ptr);
    if (include_misses)
        requireEqual(out, inv, "misses", a.misses, b.misses);
}

void
checkTraceIdentical(const TraceRunResult &a, const TraceRunResult &b,
                    const std::string &invariant,
                    std::vector<CheckFailure> &out)
{
    checkCountersIdentical(a, b, invariant, true, out);
    const char *inv = invariant.c_str();
    requireEqual(out, inv, "prefetchIssued", a.prefetchIssued,
                 b.prefetchIssued);
    requireEqual(out, inv, "prefetchFills", a.prefetchFills,
                 b.prefetchFills);
    requireEqual(out, inv, "usefulPrefetches", a.usefulPrefetches,
                 b.usefulPrefetches);
    // Coverage ratios are derived from integer counters, so they must
    // match to the bit, not within a tolerance.
    struct CovPair { const char *name; double a; double b; };
    const CovPair covs[] = {
        {"pifCoverage", a.pifCoverage, b.pifCoverage},
        {"pifCoverageTl0", a.pifCoverageTl0, b.pifCoverageTl0},
        {"pifCoverageTl1", a.pifCoverageTl1, b.pifCoverageTl1},
    };
    for (const CovPair &c : covs) {
        if (c.a != c.b) {
            std::ostringstream os;
            os << c.name << ": a=" << c.a << " b=" << c.b;
            failure(out, inv, os.str());
        }
    }
}

void
checkPrefetchOff(const TraceRunResult &r, std::vector<CheckFailure> &out)
{
    if (r.prefetchIssued != 0 || r.prefetchFills != 0 ||
        r.usefulPrefetches != 0) {
        std::ostringstream os;
        os << "prefetcher-off run reported prefetch activity: issued="
           << r.prefetchIssued << " fills=" << r.prefetchFills
           << " useful=" << r.usefulPrefetches;
        failure(out, "prefetch-off", os.str());
    }
    if (r.pifCoverage != 0.0 || r.pifCoverageTl0 != 0.0 ||
        r.pifCoverageTl1 != 0.0) {
        failure(out, "prefetch-off",
                "prefetcher-off run reported nonzero PIF coverage");
    }
}

void
checkAccessInvariance(const TraceRunResult &a, const TraceRunResult &b,
                      std::vector<CheckFailure> &out)
{
    // Misses stay excluded: the compared runs differ in prefetcher,
    // which is exactly what the miss count measures.
    checkCountersIdentical(a, b, "access-invariance", false, out);
}

void
checkCoverageMonotone(double cov_small, double cov_large,
                      std::uint64_t regions_small,
                      std::uint64_t regions_large,
                      std::vector<CheckFailure> &out)
{
    // Fig. 9 (right): coverage grows with history capacity. A strict
    // comparison would be wrong — a larger buffer retains older
    // streams that can occupy SABs less profitably at the margin — so
    // a small tolerance absorbs that, while sign errors (coverage
    // collapsing as the budget grows) are still caught.
    constexpr double tolerance = 0.04;
    if (cov_large + tolerance < cov_small) {
        std::ostringstream os;
        os << "coverage fell as history grew: " << cov_small << " @ "
           << regions_small << " regions -> " << cov_large << " @ "
           << regions_large << " regions";
        failure(out, "coverage-monotone-history", os.str());
    }
}

void
checkLengthScaling(const TraceRunResult &once, const TraceRunResult &twice,
                   std::vector<CheckFailure> &out)
{
    const char *inv = "length-scaling";
    if (twice.instrs != 2 * once.instrs) {
        failure(out, inv,
                pair2("doubled run retired wrong count", "once",
                      once.instrs, "twice", twice.instrs));
    }
    // The doubled run replays the shorter run as an exact prefix, so
    // its counters are monotone extensions.
    if (twice.accesses < once.accesses) {
        failure(out, inv,
                pair2("accesses shrank with a longer run", "once",
                      once.accesses, "twice", twice.accesses));
    }
    if (twice.misses < once.misses) {
        failure(out, inv,
                pair2("misses shrank with a longer run", "once",
                      once.misses, "twice", twice.misses));
    }
    if (once.accesses > 0) {
        const double ratio = static_cast<double>(twice.accesses) /
                             static_cast<double>(once.accesses);
        if (!ratioIn(ratio, 1.3, 2.7)) {
            std::ostringstream os;
            os << "doubling the window scaled accesses by " << ratio
               << " (expected ~2)";
            failure(out, inv, os.str());
        }
    }
}

void
checkDegreeMonotone(std::uint64_t issued_lo, std::uint64_t issued_hi,
                    unsigned degree_lo, unsigned degree_hi,
                    std::vector<CheckFailure> &out)
{
    // Queue back-pressure and pending-dedup can trim a few candidates
    // at the margin; 1/8 slack keeps the direction check meaningful
    // without false positives.
    if (issued_hi + issued_lo / 8 + 16 < issued_lo) {
        std::ostringstream os;
        os << "degree " << degree_hi << " issued " << issued_hi
           << " < degree " << degree_lo << " issued " << issued_lo;
        failure(out, "nextline-degree-monotone", os.str());
    }
}

} // namespace pifetch
