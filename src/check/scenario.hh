/**
 * @file
 * Fuzzable simulation scenarios.
 *
 * A Scenario is one fully-specified point of the simulator's input
 * space: a WorkloadParams vector (the synthetic program), a
 * SystemConfig (cache geometry, PIF sizing, seeds), a prefetcher kind,
 * an instruction budget and the fan-out shape for the thread
 * differential. The six server presets are six such points; the
 * scenario fuzzer (checker.hh) generates unboundedly many more, each
 * derived deterministically from a single 64-bit seed so any failure
 * is replayable from the seed alone.
 *
 * Scenarios serialize to/from the ResultValue JSON model so a failing
 * (and shrunk) scenario ships as a self-contained repro artifact:
 * `pifetch check --replay repro.json` re-executes it bit-identically.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "common/config.hh"
#include "common/results.hh"
#include "sim/system_config.hh"
#include "trace/generator.hh"
#include "trace/workload_spec.hh"

namespace pifetch {

/** One point of the simulator's input space. */
struct Scenario
{
    /** Fuzz seed this scenario was derived from (0 = hand-built). */
    std::uint64_t seed = 0;

    /** Synthetic-workload parameters (validated, not preset-bound). */
    WorkloadParams params;

    /**
     * Declarative workload spec driving the engines instead of
     * `params` when set (spec-mode scenarios; the fuzzer emits these
     * for a fifth of its seeds). Shared so copying a Scenario stays
     * cheap; the shrinker clones before mutating (copy-on-write).
     */
    std::shared_ptr<const WorkloadSpec> spec;

    /** System configuration (cache geometry, PIF sizing, seeds). */
    SystemConfig cfg;

    /** Prefetcher attached to the engines under test. */
    PrefetcherKind kind = PrefetcherKind::Pif;

    /** Instruction budget for each engine run. */
    InstCount warmup = 10'000;
    InstCount measure = 30'000;

    /** Worker lanes for the threads-1-vs-N differential. */
    unsigned threads = 2;

    /** Independent engines in the multicore differential. */
    unsigned cores = 2;
};

/**
 * Derive a randomized-but-valid scenario from @p seed. Deterministic:
 * the same seed always yields the identical scenario, and every
 * emitted point satisfies validateScenario().
 */
Scenario scenarioFromSeed(std::uint64_t seed);

/**
 * Check a scenario against the simulable parameter space: workload
 * bounds (validateWorkloadParams), cache-geometry consistency, PIF
 * sizing minima and a sane instruction budget. Returns nullopt when
 * valid, else a description of the first violation.
 */
std::optional<std::string> validateScenario(const Scenario &sc);

/** Serialize a scenario (full fidelity round trip). */
ResultValue toResult(const Scenario &sc);

/**
 * Parse a scenario serialized by toResult(). Also accepts a failure
 * document wrapping one (prefers its "shrunk", then its "scenario"
 * member). Returns nullopt and sets @p err on malformed input.
 */
std::optional<Scenario> scenarioFromResult(const ResultValue &v,
                                           std::string *err = nullptr);

/** Stable CLI/JSON token for a prefetcher kind ("pif", "nextline"...). */
std::string prefetcherKey(PrefetcherKind kind);

/** Parse a prefetcherKey() token (exact match; nullopt otherwise). */
std::optional<PrefetcherKind> prefetcherFromKey(const std::string &s);

} // namespace pifetch
