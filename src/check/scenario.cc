/**
 * @file
 * Scenario generation, validation and serialization.
 */

#include "check/scenario.hh"

#include <algorithm>
#include <limits>

#include "common/rng.hh"

namespace pifetch {

namespace {

/** Distinct stream from the workload/config seeds derived below. */
constexpr std::uint64_t scenarioSalt = 0x5ca1ab1e0ddba11ull;

} // namespace

std::string
prefetcherKey(PrefetcherKind kind)
{
    switch (kind) {
      case PrefetcherKind::None:          return "none";
      case PrefetcherKind::NextLine:      return "nextline";
      case PrefetcherKind::Tifs:          return "tifs";
      case PrefetcherKind::Discontinuity: return "discontinuity";
      case PrefetcherKind::Pif:           return "pif";
      case PrefetcherKind::Perfect:       return "perfect";
    }
    panic("unknown prefetcher kind");
}

std::optional<PrefetcherKind>
prefetcherFromKey(const std::string &s)
{
    for (PrefetcherKind k :
         {PrefetcherKind::None, PrefetcherKind::NextLine,
          PrefetcherKind::Tifs, PrefetcherKind::Discontinuity,
          PrefetcherKind::Pif, PrefetcherKind::Perfect}) {
        if (s == prefetcherKey(k))
            return k;
    }
    return std::nullopt;
}

Scenario
scenarioFromSeed(std::uint64_t seed)
{
    Rng rng(seed * 0x9e3779b97f4a7c15ull + scenarioSalt);
    Scenario sc;
    sc.seed = seed;

    WorkloadParams &p = sc.params;
    p.name = "fuzz-" + std::to_string(seed);
    p.seed = rng.next();
    p.appFunctions = 40 + static_cast<unsigned>(rng.below(1200));
    p.libFunctions = 8 + static_cast<unsigned>(rng.below(400));
    p.handlers = 4 + static_cast<unsigned>(rng.below(12));
    p.transactions = 2 + static_cast<unsigned>(rng.below(10));
    p.meanFnBlocks = 2.0 + rng.uniform() * 8.0;
    p.maxFnBlocks = 12 + static_cast<unsigned>(rng.below(21));
    p.meanHandlerBlocks = 2.0 + rng.uniform() * 3.0;
    p.meanBasicBlockInstrs = 3.0 + rng.uniform() * 7.0;
    p.callDensity = 0.02 + rng.uniform() * 0.16;
    p.meanAppCalls = 1.2 + rng.uniform() * 1.2;
    p.condDensity = 0.10 + rng.uniform() * 0.20;
    p.jumpDensity = rng.uniform() * 0.06;
    p.biasedFraction = 0.60 + rng.uniform() * 0.35;
    p.dataDepLo = 0.20 + rng.uniform() * 0.15;
    p.dataDepHi = 0.60 + rng.uniform() * 0.20;
    p.loopsPerFunction = rng.uniform() * 1.5;
    p.meanLoopIter = 2.0 + rng.uniform() * 22.0;
    // The range deliberately straddles s == 1, where Rng::zipf
    // switches to the harmonic log-form inverse CDF.
    p.zipfS = 0.10 + rng.uniform() * 1.20;
    p.callLayers = 2 + static_cast<unsigned>(rng.below(11));
    p.interruptRate = rng.chance(0.2) ? 0.0 : rng.uniform() * 2.0e-4;
    p.maxCallDepth = 6 + static_cast<unsigned>(rng.below(27));

    SystemConfig &c = sc.cfg;
    c.seed = rng.next();
    static constexpr std::uint64_t l1Sizes[] = {
        16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024};
    static constexpr unsigned l1Assocs[] = {1, 2, 4, 8};
    c.l1i.sizeBytes = l1Sizes[rng.below(4)];
    c.l1i.assoc = l1Assocs[rng.below(4)];
    c.l1i.mshrs = 8 + static_cast<unsigned>(rng.below(41));
    c.pif.blocksBefore = static_cast<unsigned>(rng.below(4));
    c.pif.blocksAfter = 1 + static_cast<unsigned>(rng.below(7));
    c.pif.temporalEntries = 1 + static_cast<unsigned>(rng.below(8));
    c.pif.historyRegions = std::uint64_t{1} << (9 + rng.below(7));
    c.pif.indexEntries = 1u << (10 + rng.below(4));
    c.pif.indexAssoc = 1u << rng.below(3);
    c.pif.numSabs = 1 + static_cast<unsigned>(rng.below(8));
    c.pif.sabWindowRegions = 2 + static_cast<unsigned>(rng.below(9));
    c.pif.separateTrapLevels = rng.chance(0.75);
    c.tifs.historyEntries = std::uint64_t{1} << (10 + rng.below(6));
    c.tifs.numSabs = 1 + static_cast<unsigned>(rng.below(6));
    c.tifs.sabWindowBlocks = 4 + static_cast<unsigned>(rng.below(13));
    c.nextLine.degree = 1 + static_cast<unsigned>(rng.below(8));
    c.memory.l2HitLatency = 8 + rng.below(13);
    c.memory.memLatency = 60 + rng.below(81);

    static constexpr PrefetcherKind kinds[] = {
        PrefetcherKind::None,          PrefetcherKind::NextLine,
        PrefetcherKind::Tifs,          PrefetcherKind::Discontinuity,
        PrefetcherKind::Pif,           PrefetcherKind::Perfect};
    sc.kind = kinds[rng.below(6)];
    sc.warmup = 4'000 + rng.below(36'001);
    sc.measure = 20'000 + rng.below(60'001);
    sc.threads = 2 + static_cast<unsigned>(rng.below(3));
    sc.cores = 2 + static_cast<unsigned>(rng.below(2));

    // A fifth of the seed space fuzzes the declarative spec layer:
    // the scenario gains a 1-2 program, 1-3 phase WorkloadSpec built
    // from the params drawn above. All spec draws come after every
    // plain-scenario draw so the other four fifths of the seed space
    // replay exactly as before this layer existed.
    if (seed % 5 == 3) {
        WorkloadSpec spec;
        spec.name = "fuzz-spec-" + std::to_string(seed);
        spec.title = spec.name;
        spec.description = "fuzzer-derived workload spec";
        spec.seed = rng.next();
        const unsigned nprogs = 1 + static_cast<unsigned>(rng.below(2));
        for (unsigned i = 0; i < nprogs; ++i) {
            WorkloadSpecProgram pr;
            pr.name = "prog" + std::to_string(i);
            pr.params = sc.params;
            pr.params.name = pr.name;
            pr.params.seed = rng.next();
            pr.params.appFunctions =
                40 + static_cast<unsigned>(rng.below(400));
            pr.params.transactions =
                2 + static_cast<unsigned>(rng.below(6));
            spec.programs.push_back(std::move(pr));
        }
        const unsigned nphases = 1 + static_cast<unsigned>(rng.below(3));
        for (unsigned i = 0; i < nphases; ++i) {
            WorkloadSpecPhase ph;
            ph.name = "phase" + std::to_string(i);
            // Bounded well below specMaxPhaseInstrs so repeated
            // halving reaches the specMinPhaseInstrs floor within the
            // shrinker's pass budget.
            ph.instructions = 2'000 + rng.below(198'001);
            if (nprogs > 1 && rng.chance(0.5)) {
                for (unsigned j = 0; j < nprogs; ++j) {
                    ph.mix.emplace_back(spec.programs[j].name,
                                        0.25 + rng.uniform());
                }
            }
            if (rng.chance(0.5)) {
                ph.interruptRate = rng.uniform() * 2.0e-4;
                if (rng.chance(0.5))
                    ph.interruptRateEnd = rng.uniform() * 2.0e-4;
            }
            spec.phases.push_back(std::move(ph));
        }
        sc.spec = std::make_shared<const WorkloadSpec>(std::move(spec));
    }
    return sc;
}

std::optional<std::string>
validateScenario(const Scenario &sc)
{
    if (const auto err = validateWorkloadParams(sc.params))
        return err;
    if (sc.spec) {
        if (const auto err = validateWorkloadSpec(*sc.spec))
            return err;
    }
    // Upper caps follow the same threat model as the
    // validateWorkloadParams maxima: a hand-edited or corrupted repro
    // JSON must fail validation with a message, not abort in an
    // allocator or hang in a replay loop. Each cap is orders of
    // magnitude above anything the fuzzer emits.
    const CacheConfig &l1 = sc.cfg.l1i;
    if (l1.blockBytes != blockBytes)
        return std::string("l1i.blockBytes must equal the global "
                           "block size");
    if (l1.assoc == 0 || l1.assoc > 64)
        return std::string("l1i.assoc must be in [1, 64]");
    if (l1.sizeBytes == 0 || l1.sizeBytes > 64ull * 1024 * 1024 ||
        l1.sizeBytes % (static_cast<std::uint64_t>(l1.assoc) *
                        l1.blockBytes) != 0) {
        return std::string("l1i size must be a whole number of sets "
                           "and <= 64 MB");
    }
    if (l1.mshrs == 0 || l1.mshrs > 4'096)
        return std::string("l1i.mshrs must be in [1, 4096]");
    const PifConfig &pif = sc.cfg.pif;
    if (pif.blocksAfter == 0 || pif.blocksAfter > 64 ||
        pif.blocksBefore > 64) {
        return std::string("pif region blocks must be in [1, 64] "
                           "after / [0, 64] before");
    }
    if (pif.historyRegions < 64 ||
        pif.historyRegions > (std::uint64_t{1} << 22)) {
        return std::string("pif.historyRegions must be in [64, 2^22]");
    }
    if (pif.indexAssoc == 0 || pif.indexEntries < pif.indexAssoc ||
        pif.indexEntries > (1u << 20)) {
        return std::string("pif index geometry must hold at least one "
                           "set and at most 2^20 entries");
    }
    if (pif.numSabs == 0 || pif.numSabs > 256 ||
        pif.sabWindowRegions == 0 || pif.sabWindowRegions > 1'024) {
        return std::string("pif SABs must be in [1, 256] with a "
                           "window in [1, 1024]");
    }
    if (pif.temporalEntries == 0 || pif.temporalEntries > 1'024)
        return std::string("pif.temporalEntries must be in [1, 1024]");
    const TifsConfig &tifs = sc.cfg.tifs;
    if (tifs.historyEntries == 0 ||
        tifs.historyEntries > (std::uint64_t{1} << 22)) {
        return std::string("tifs.historyEntries must be in [1, 2^22]");
    }
    if (tifs.numSabs == 0 || tifs.numSabs > 256 ||
        tifs.sabWindowBlocks == 0 || tifs.sabWindowBlocks > 4'096) {
        return std::string("tifs SABs must be in [1, 256] with a "
                           "window in [1, 4096]");
    }
    if (sc.cfg.nextLine.degree == 0 || sc.cfg.nextLine.degree > 256)
        return std::string("nextLine.degree must be in [1, 256]");
    if (sc.cfg.memory.l2HitLatency > 1'000'000 ||
        sc.cfg.memory.memLatency > 1'000'000) {
        return std::string("memory latencies must be <= 1e6 cycles");
    }
    if (sc.measure < 1'000)
        return std::string("measure must be >= 1000 instructions");
    // Bound each half before summing so the sum cannot wrap.
    if (sc.warmup > 50'000'000 || sc.measure > 50'000'000 ||
        sc.warmup + sc.measure > 50'000'000) {
        return std::string("warmup + measure budget above 50M "
                           "instructions");
    }
    if (sc.threads == 0 || sc.threads > 64)
        return std::string("threads must be in [1, 64]");
    if (sc.cores == 0 || sc.cores > 16)
        return std::string("cores must be in [1, 16]");
    return std::nullopt;
}

namespace {

ResultValue
paramsToResult(const WorkloadParams &p)
{
    ResultValue v = ResultValue::object();
    v.set("name", p.name);
    v.set("seed", p.seed);
    v.set("appFunctions", p.appFunctions);
    v.set("libFunctions", p.libFunctions);
    v.set("handlers", p.handlers);
    v.set("meanFnBlocks", p.meanFnBlocks);
    v.set("maxFnBlocks", p.maxFnBlocks);
    v.set("meanHandlerBlocks", p.meanHandlerBlocks);
    v.set("meanBasicBlockInstrs", p.meanBasicBlockInstrs);
    v.set("callDensity", p.callDensity);
    v.set("meanAppCalls", p.meanAppCalls);
    v.set("condDensity", p.condDensity);
    v.set("jumpDensity", p.jumpDensity);
    v.set("biasedFraction", p.biasedFraction);
    v.set("dataDepLo", p.dataDepLo);
    v.set("dataDepHi", p.dataDepHi);
    v.set("loopsPerFunction", p.loopsPerFunction);
    v.set("meanLoopIter", p.meanLoopIter);
    v.set("zipfS", p.zipfS);
    v.set("callLayers", p.callLayers);
    v.set("transactions", p.transactions);
    v.set("interruptRate", p.interruptRate);
    v.set("maxCallDepth", p.maxCallDepth);
    return v;
}

ResultValue
configToScenarioResult(const SystemConfig &c)
{
    ResultValue l1 = ResultValue::object();
    l1.set("sizeBytes", c.l1i.sizeBytes);
    l1.set("assoc", c.l1i.assoc);
    l1.set("mshrs", c.l1i.mshrs);

    ResultValue pif = ResultValue::object();
    pif.set("blocksBefore", c.pif.blocksBefore);
    pif.set("blocksAfter", c.pif.blocksAfter);
    pif.set("temporalEntries", c.pif.temporalEntries);
    pif.set("historyRegions", c.pif.historyRegions);
    pif.set("indexEntries", c.pif.indexEntries);
    pif.set("indexAssoc", c.pif.indexAssoc);
    pif.set("numSabs", c.pif.numSabs);
    pif.set("sabWindowRegions", c.pif.sabWindowRegions);
    pif.set("separateTrapLevels", c.pif.separateTrapLevels);

    ResultValue tifs = ResultValue::object();
    tifs.set("historyEntries", c.tifs.historyEntries);
    tifs.set("numSabs", c.tifs.numSabs);
    tifs.set("sabWindowBlocks", c.tifs.sabWindowBlocks);

    ResultValue mem = ResultValue::object();
    mem.set("l2HitLatency", c.memory.l2HitLatency);
    mem.set("memLatency", c.memory.memLatency);

    ResultValue v = ResultValue::object();
    v.set("seed", c.seed);
    v.set("l1i", std::move(l1));
    v.set("pif", std::move(pif));
    v.set("tifs", std::move(tifs));
    v.set("nextLineDegree", c.nextLine.degree);
    v.set("memory", std::move(mem));
    return v;
}

/** Typed member readers: absent keys keep defaults, wrong kinds fail. */
struct Reader
{
    const ResultValue &obj;
    std::string *err;
    bool ok = true;

    void
    fail(const std::string &key, const char *want)
    {
        ok = false;
        if (err && err->empty())
            *err = "scenario member '" + key + "' is not " + want;
    }

    template <typename T>
    void
    u(const std::string &key, T &out)
    {
        const ResultValue *m = obj.find(key);
        if (!m)
            return;
        std::uint64_t value = 0;
        if (m->kind() == ResultValue::Kind::Uint) {
            value = m->uintValue();
        } else if (m->kind() == ResultValue::Kind::Int &&
                   m->intValue() >= 0) {
            value = static_cast<std::uint64_t>(m->intValue());
        } else {
            fail(key, "a non-negative integer");
            return;
        }
        // Truncating to a narrower field would replay a different
        // scenario than the document records; refuse instead.
        if (value > std::numeric_limits<T>::max()) {
            fail(key, "in range for this field");
            return;
        }
        out = static_cast<T>(value);
    }

    void
    d(const std::string &key, double &out)
    {
        const ResultValue *m = obj.find(key);
        if (!m)
            return;
        if (m->isNumber())
            out = m->number();
        else
            fail(key, "a number");
    }

    void
    b(const std::string &key, bool &out)
    {
        const ResultValue *m = obj.find(key);
        if (!m)
            return;
        if (m->kind() == ResultValue::Kind::Bool)
            out = m->boolean();
        else
            fail(key, "a boolean");
    }

    void
    s(const std::string &key, std::string &out)
    {
        const ResultValue *m = obj.find(key);
        if (!m)
            return;
        if (m->kind() == ResultValue::Kind::String)
            out = m->str();
        else
            fail(key, "a string");
    }
};

bool
paramsFromResult(const ResultValue &v, WorkloadParams &p,
                 std::string *err)
{
    Reader r{v, err};
    r.s("name", p.name);
    r.u("seed", p.seed);
    r.u("appFunctions", p.appFunctions);
    r.u("libFunctions", p.libFunctions);
    r.u("handlers", p.handlers);
    r.d("meanFnBlocks", p.meanFnBlocks);
    r.u("maxFnBlocks", p.maxFnBlocks);
    r.d("meanHandlerBlocks", p.meanHandlerBlocks);
    r.d("meanBasicBlockInstrs", p.meanBasicBlockInstrs);
    r.d("callDensity", p.callDensity);
    r.d("meanAppCalls", p.meanAppCalls);
    r.d("condDensity", p.condDensity);
    r.d("jumpDensity", p.jumpDensity);
    r.d("biasedFraction", p.biasedFraction);
    r.d("dataDepLo", p.dataDepLo);
    r.d("dataDepHi", p.dataDepHi);
    r.d("loopsPerFunction", p.loopsPerFunction);
    r.d("meanLoopIter", p.meanLoopIter);
    r.d("zipfS", p.zipfS);
    r.u("callLayers", p.callLayers);
    r.u("transactions", p.transactions);
    r.d("interruptRate", p.interruptRate);
    r.u("maxCallDepth", p.maxCallDepth);
    return r.ok;
}

bool
configFromResult(const ResultValue &v, SystemConfig &c, std::string *err)
{
    Reader r{v, err};
    r.u("seed", c.seed);
    r.u("nextLineDegree", c.nextLine.degree);
    if (const ResultValue *l1 = v.find("l1i")) {
        Reader rl{*l1, err};
        rl.u("sizeBytes", c.l1i.sizeBytes);
        rl.u("assoc", c.l1i.assoc);
        rl.u("mshrs", c.l1i.mshrs);
        r.ok = r.ok && rl.ok;
    }
    if (const ResultValue *pif = v.find("pif")) {
        Reader rp{*pif, err};
        rp.u("blocksBefore", c.pif.blocksBefore);
        rp.u("blocksAfter", c.pif.blocksAfter);
        rp.u("temporalEntries", c.pif.temporalEntries);
        rp.u("historyRegions", c.pif.historyRegions);
        rp.u("indexEntries", c.pif.indexEntries);
        rp.u("indexAssoc", c.pif.indexAssoc);
        rp.u("numSabs", c.pif.numSabs);
        rp.u("sabWindowRegions", c.pif.sabWindowRegions);
        rp.b("separateTrapLevels", c.pif.separateTrapLevels);
        r.ok = r.ok && rp.ok;
    }
    if (const ResultValue *tifs = v.find("tifs")) {
        Reader rt{*tifs, err};
        rt.u("historyEntries", c.tifs.historyEntries);
        rt.u("numSabs", c.tifs.numSabs);
        rt.u("sabWindowBlocks", c.tifs.sabWindowBlocks);
        r.ok = r.ok && rt.ok;
    }
    if (const ResultValue *mem = v.find("memory")) {
        Reader rm{*mem, err};
        rm.u("l2HitLatency", c.memory.l2HitLatency);
        rm.u("memLatency", c.memory.memLatency);
        r.ok = r.ok && rm.ok;
    }
    return r.ok;
}

} // namespace

ResultValue
toResult(const Scenario &sc)
{
    ResultValue v = ResultValue::object();
    v.set("seed", sc.seed);
    v.set("kind", prefetcherKey(sc.kind));
    v.set("warmup", sc.warmup);
    v.set("measure", sc.measure);
    v.set("threads", sc.threads);
    v.set("cores", sc.cores);
    v.set("params", paramsToResult(sc.params));
    v.set("config", configToScenarioResult(sc.cfg));
    if (sc.spec)
        v.set("workload_spec", specToResult(*sc.spec));
    return v;
}

std::optional<Scenario>
scenarioFromResult(const ResultValue &v, std::string *err)
{
    if (err)
        err->clear();
    // Accept a failure entry wrapping the scenario we want to replay.
    if (v.find("shrunk"))
        return scenarioFromResult(*v.find("shrunk"), err);
    if (v.find("scenario"))
        return scenarioFromResult(*v.find("scenario"), err);

    if (v.kind() != ResultValue::Kind::Object) {
        if (err)
            *err = "scenario document is not an object";
        return std::nullopt;
    }

    Scenario sc;
    Reader r{v, err};
    r.u("seed", sc.seed);
    r.u("warmup", sc.warmup);
    r.u("measure", sc.measure);
    r.u("threads", sc.threads);
    r.u("cores", sc.cores);
    std::string kind = prefetcherKey(sc.kind);
    r.s("kind", kind);
    const auto k = prefetcherFromKey(kind);
    if (!k) {
        if (err)
            *err = "unknown prefetcher kind '" + kind + "'";
        return std::nullopt;
    }
    sc.kind = *k;
    if (const ResultValue *params = v.find("params")) {
        if (!paramsFromResult(*params, sc.params, err))
            return std::nullopt;
    }
    if (const ResultValue *cfg = v.find("config")) {
        if (!configFromResult(*cfg, sc.cfg, err))
            return std::nullopt;
    }
    if (const ResultValue *ws = v.find("workload_spec")) {
        // Spec decoding is strict by design (unlike the lenient
        // member readers above): a corrupted spec replays a different
        // workload, so refuse rather than fill defaults.
        std::string serr;
        auto spec = workloadSpecFromResult(*ws, &serr);
        if (!spec) {
            if (err)
                *err = "workload_spec: " + serr;
            return std::nullopt;
        }
        sc.spec = std::make_shared<const WorkloadSpec>(std::move(*spec));
    }
    if (!r.ok)
        return std::nullopt;
    if (const auto verr = validateScenario(sc)) {
        if (err)
            *err = *verr;
        return std::nullopt;
    }
    return sc;
}

} // namespace pifetch
