/**
 * @file
 * A lightweight C++ tokenizer for the project lint engine.
 *
 * This is not a compiler front end: it produces exactly the stream
 * the rule catalog (src/lint/rules.hh) needs — identifiers, numbers,
 * literals, punctuators and whole preprocessor directives, each with
 * a line number — while routing comments into a separate side channel
 * so suppression annotations (`// lint:allow(...)`) can be parsed
 * without polluting the token stream. Because rules match *tokens*,
 * a banned name appearing inside a string literal or a comment (for
 * example in the rule catalog's own fixtures) never trips a rule.
 *
 * Handled faithfully enough for linting: line comments, block
 * comments, string/char literals with escapes, raw strings, digit
 * separators, backslash line continuations in directives, and
 * maximal-munch punctuators (`::`, `->`, `>>`, ...).
 */

#pragma once

#include <string>
#include <vector>

namespace pifetch {
namespace lint {

/** One lexical token with its 1-based source line. */
struct Token
{
    enum class Kind {
        Ident,      ///< identifier or keyword
        Number,     ///< integer / floating literal (incl. 1'000)
        String,     ///< "..." or R"(...)" (text excludes quotes)
        Char,       ///< '...'
        Punct,      ///< operator / punctuator, maximal munch
        Directive,  ///< whole preprocessor line, '#' included
    };

    Kind kind = Kind::Punct;
    std::string text;
    unsigned line = 0;
};

/** One comment, kept out of the token stream. */
struct Comment
{
    /** Comment text without the // or enclosing markers. */
    std::string text;
    /** Line the comment starts on (1-based). */
    unsigned line = 0;
    /** True when nothing but whitespace precedes it on its line. */
    bool ownLine = false;
    /** True for a block comment. Suppression annotations are line
     *  comments only, so documentation showing the syntax inside a
     *  block comment is never parsed as one. */
    bool block = false;
};

/** The lexed form of one translation unit. */
struct LexedSource
{
    std::vector<Token> tokens;
    std::vector<Comment> comments;
    /** Total number of source lines. */
    unsigned lines = 0;
};

/**
 * Tokenize @p src. Never fails: unterminated literals or comments
 * lex to end of input, and bytes that fit no token class are skipped
 * — a linter must degrade gracefully on code it half-understands.
 */
LexedSource lex(const std::string &src);

} // namespace lint
} // namespace pifetch
