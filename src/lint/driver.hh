/**
 * @file
 * The lint driver: file discovery, suppression handling, and the
 * canonical JSON report for `pifetch lint`.
 *
 * Suppression syntax (parsed from the comment side channel):
 *
 *     // lint:allow(rule-id[, rule-id...]): justification
 *
 * A suppression applies to its own line and the line directly below
 * it, so it works both trailing a statement and on the line above.
 * Only line comments are recognized — block comments (like this one)
 * may document the syntax freely.
 * The justification is mandatory — it is the review record for why
 * the invariant is waived — and the ids must exist in the catalog;
 * anything else is itself a violation (`lint-bad-suppression`). A
 * suppression that no longer suppresses anything is reported too
 * (`lint-unused-suppression`), so stale waivers cannot accumulate.
 */

#pragma once

#include <string>
#include <vector>

#include "common/results.hh"
#include "lint/rules.hh"

namespace pifetch {
namespace lint {

/** What to scan and with which rules. */
struct LintOptions
{
    /** Absolute path of the repository root. Empty -> defaultRoot(). */
    std::string root;
    /**
     * Repo-relative path filters (prefix match after normalization,
     * so "src/pif" selects the directory). Empty -> the default
     * scan set: src/, bench/, examples/, tests/ (minus third-party).
     */
    std::vector<std::string> paths;
    /** Restrict to these rule ids. Empty -> the full catalog. */
    std::vector<std::string> rules;
};

/** One reported violation, file attached, suppression resolved. */
struct Finding
{
    std::string file;
    Violation violation;
    bool suppressed = false;
    /** Justification text when @ref suppressed. */
    std::string justification;
};

/** The outcome of one lint run. */
struct LintReport
{
    unsigned filesScanned = 0;
    /** All findings, suppressed ones included, in scan order. */
    std::vector<Finding> findings;

    unsigned errors() const;      ///< unsuppressed errors
    unsigned warnings() const;    ///< unsuppressed warnings
    unsigned suppressedCount() const;
    /** True when no unsuppressed error remains. */
    bool clean() const { return errors() == 0; }
};

/**
 * The repository root this binary was built from, overridable with
 * the PIFETCH_LINT_ROOT environment variable (useful when running a
 * relocated binary against a checkout elsewhere).
 */
std::string defaultRoot();

/**
 * Enumerate the scan set under @p root honoring @p filters
 * (LintOptions::paths semantics). Returns sorted repo-relative
 * paths; on I/O failure returns empty and sets @p err.
 */
std::vector<std::string> discoverSources(
    const std::string &root, const std::vector<std::string> &filters,
    std::string *err);

/**
 * Lint one in-memory source. Runs the full pipeline — context
 * collection, every catalog rule (or @p ruleFilter), suppression
 * resolution, the meta rules — exactly as runLint() would for a
 * file on disk. This is the seam tests and the fixture self-test
 * drive.
 */
std::vector<Finding> lintSource(
    const std::string &path, const std::string &content,
    const std::vector<std::string> &ruleFilter = {});

/** Scan the tree. On I/O failure sets @p err (report still partial). */
LintReport runLint(const LintOptions &opts, std::string *err);

/** Render a report as the canonical result tree (docs/linting.md). */
ResultValue toResult(const LintReport &report,
                     const std::string &root);

/**
 * Replay every catalog fixture: the bad snippet must fire its rule,
 * the good snippet must lint clean. Returns the per-rule failures
 * (empty means the self-test passed), mirroring the planted-fault
 * pattern of `pifetch check`.
 */
std::vector<std::string> runRuleSelfTest();

} // namespace lint
} // namespace pifetch
