/**
 * @file
 * Tokenizer implementation for the project lint engine.
 */

#include "lint/lexer.hh"

#include <cctype>

namespace pifetch {
namespace lint {

namespace {

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Raw-string prefixes: the identifier just lexed before a '"'. */
bool
isRawStringPrefix(const std::string &id)
{
    return id == "R" || id == "LR" || id == "uR" || id == "UR" ||
           id == "u8R";
}

/** Three- then two-character punctuators, maximal munch. */
unsigned
punctLength(const std::string &s, std::size_t i)
{
    static const char *three[] = {"<<=", ">>=", "...", "->*"};
    static const char *two[] = {"::", "->", "++", "--", "<<", ">>",
                                "<=", ">=", "==", "!=", "&&", "||",
                                "+=", "-=", "*=", "/=", "%=", "&=",
                                "|=", "^=", ".*", "##"};
    for (const char *p : three)
        if (s.compare(i, 3, p) == 0)
            return 3;
    for (const char *p : two)
        if (s.compare(i, 2, p) == 0)
            return 2;
    return 1;
}

} // namespace

LexedSource
lex(const std::string &src)
{
    LexedSource out;
    std::size_t i = 0;
    const std::size_t n = src.size();
    unsigned line = 1;
    bool lineHasCode = false;

    const auto newline = [&]() {
        ++line;
        lineHasCode = false;
    };

    while (i < n) {
        const char c = src[i];

        if (c == '\n') {
            newline();
            ++i;
            continue;
        }
        if (c == ' ' || c == '\t' || c == '\r' || c == '\v' ||
            c == '\f') {
            ++i;
            continue;
        }

        // Line comment.
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
            Comment cm;
            cm.line = line;
            cm.ownLine = !lineHasCode;
            i += 2;
            while (i < n && src[i] != '\n')
                cm.text += src[i++];
            out.comments.push_back(std::move(cm));
            continue;
        }

        // Block comment (may span lines; recorded at its start line).
        if (c == '/' && i + 1 < n && src[i + 1] == '*') {
            Comment cm;
            cm.line = line;
            cm.ownLine = !lineHasCode;
            cm.block = true;
            i += 2;
            while (i < n && !(src[i] == '*' && i + 1 < n &&
                              src[i + 1] == '/')) {
                if (src[i] == '\n')
                    newline();
                cm.text += src[i++];
            }
            if (i < n)
                i += 2;  // closing */
            out.comments.push_back(std::move(cm));
            continue;
        }

        // Preprocessor directive: '#' first on its line, with
        // backslash continuations folded into one Directive token.
        if (c == '#' && !lineHasCode) {
            Token t;
            t.kind = Token::Kind::Directive;
            t.line = line;
            while (i < n) {
                if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
                    newline();
                    i += 2;
                    t.text += ' ';
                    continue;
                }
                if (src[i] == '\n')
                    break;
                // Trailing comments are not part of the directive.
                if (src[i] == '/' && i + 1 < n &&
                    (src[i + 1] == '/' || src[i + 1] == '*'))
                    break;
                t.text += src[i++];
            }
            // Skip a trailing comment without consuming the newline
            // (so the comment still lands in the side channel).
            while (!t.text.empty() &&
                   (t.text.back() == ' ' || t.text.back() == '\t'))
                t.text.pop_back();
            lineHasCode = true;
            out.tokens.push_back(std::move(t));
            continue;
        }

        lineHasCode = true;

        // Identifier / keyword (or a raw-string prefix).
        if (isIdentStart(c)) {
            Token t;
            t.kind = Token::Kind::Ident;
            t.line = line;
            while (i < n && isIdentChar(src[i]))
                t.text += src[i++];
            if (i < n && src[i] == '"' && isRawStringPrefix(t.text)) {
                // Raw string: R"delim( ... )delim".
                Token s;
                s.kind = Token::Kind::String;
                s.line = line;
                ++i;  // opening quote
                std::string delim;
                while (i < n && src[i] != '(')
                    delim += src[i++];
                if (i < n)
                    ++i;  // '('
                const std::string close = ")" + delim + "\"";
                while (i < n && src.compare(i, close.size(), close) != 0) {
                    if (src[i] == '\n')
                        newline();
                    s.text += src[i++];
                }
                if (i < n)
                    i += close.size();
                lineHasCode = true;
                out.tokens.push_back(std::move(s));
                continue;
            }
            out.tokens.push_back(std::move(t));
            continue;
        }

        // Number (also .5; digit separators and exponents accepted).
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && i + 1 < n &&
             std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
            Token t;
            t.kind = Token::Kind::Number;
            t.line = line;
            while (i < n) {
                const char d = src[i];
                if (isIdentChar(d) || d == '.' || d == '\'') {
                    t.text += src[i++];
                } else if ((d == '+' || d == '-') && !t.text.empty() &&
                           (t.text.back() == 'e' ||
                            t.text.back() == 'E' ||
                            t.text.back() == 'p' ||
                            t.text.back() == 'P')) {
                    t.text += src[i++];
                } else {
                    break;
                }
            }
            out.tokens.push_back(std::move(t));
            continue;
        }

        // String / char literal with escape handling.
        if (c == '"' || c == '\'') {
            Token t;
            t.kind = c == '"' ? Token::Kind::String : Token::Kind::Char;
            t.line = line;
            const char quote = c;
            ++i;
            while (i < n && src[i] != quote) {
                if (src[i] == '\\' && i + 1 < n) {
                    t.text += src[i];
                    t.text += src[i + 1];
                    i += 2;
                    continue;
                }
                if (src[i] == '\n') {
                    // Unterminated literal: stop at end of line so
                    // the rest of the file still lexes.
                    break;
                }
                t.text += src[i++];
            }
            if (i < n && src[i] == quote)
                ++i;
            out.tokens.push_back(std::move(t));
            continue;
        }

        // Punctuator.
        {
            Token t;
            t.kind = Token::Kind::Punct;
            t.line = line;
            const unsigned len = punctLength(src, i);
            t.text = src.substr(i, len);
            i += len;
            out.tokens.push_back(std::move(t));
        }
    }

    // A trailing newline moves the counter past the last real line;
    // do not report that empty position as a line of source.
    out.lines = (!src.empty() && src.back() == '\n') ? line - 1 : line;
    return out;
}

} // namespace lint
} // namespace pifetch
