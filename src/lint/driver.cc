/**
 * @file
 * Lint driver implementation.
 */

#include "lint/driver.hh"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace pifetch {
namespace lint {

namespace {

namespace fs = std::filesystem;

/** One parsed `lint:allow` annotation. */
struct Suppression
{
    unsigned line = 0;
    std::vector<std::string> ids;
    std::string justification;
    bool used = false;
};

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t");
    return s.substr(b, e - b + 1);
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.compare(0, prefix.size(), prefix) == 0;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

void
addMeta(std::vector<Finding> &out, const std::string &file,
        const char *ruleId, unsigned line, std::string message)
{
    Finding f;
    f.file = file;
    f.violation.rule = ruleId;
    f.violation.severity = Severity::Error;
    f.violation.line = line;
    f.violation.message = std::move(message);
    out.push_back(std::move(f));
}

/**
 * Parse the suppressions in @p comments. Malformed annotations are
 * reported straight into @p meta as lint-bad-suppression findings
 * and do not suppress anything.
 */
std::vector<Suppression>
parseSuppressions(const std::string &file,
                  const std::vector<Comment> &comments,
                  std::vector<Finding> &meta)
{
    std::vector<Suppression> sups;
    for (const Comment &cm : comments) {
        // Annotations are line comments only (docs/linting.md), so
        // block-comment documentation of the syntax never parses.
        if (cm.block)
            continue;
        const std::size_t pos = cm.text.find("lint:allow");
        if (pos == std::string::npos)
            continue;
        const std::string rest = cm.text.substr(pos + 10);
        const auto bad = [&](const std::string &why) {
            addMeta(meta, file, "lint-bad-suppression", cm.line,
                    "malformed suppression: " + why +
                        " (expected \"lint:allow(rule-id): "
                        "justification\")");
        };
        if (rest.empty() || rest[0] != '(') {
            bad("missing '(' after lint:allow");
            continue;
        }
        const std::size_t close = rest.find(')');
        if (close == std::string::npos) {
            bad("missing ')'");
            continue;
        }
        Suppression s;
        s.line = cm.line;
        std::stringstream ids(rest.substr(1, close - 1));
        std::string id;
        bool idsOk = true;
        while (std::getline(ids, id, ',')) {
            id = trim(id);
            if (id.empty()) {
                bad("empty rule id");
                idsOk = false;
                break;
            }
            if (!findRule(id)) {
                bad("unknown rule id '" + id + "'");
                idsOk = false;
                break;
            }
            s.ids.push_back(id);
        }
        if (!idsOk || s.ids.empty()) {
            if (idsOk)
                bad("no rule id");
            continue;
        }
        std::string tail = trim(rest.substr(close + 1));
        if (tail.empty() || tail[0] != ':' ||
            trim(tail.substr(1)).empty()) {
            bad("missing justification");
            continue;
        }
        s.justification = trim(tail.substr(1));
        sups.push_back(std::move(s));
    }
    return sups;
}

/** Active rules for a run; sets @p err on an unknown id. */
std::vector<const Rule *>
selectRules(const std::vector<std::string> &filter, std::string *err)
{
    std::vector<const Rule *> rules;
    if (filter.empty()) {
        for (const Rule &r : ruleCatalog())
            rules.push_back(&r);
        return rules;
    }
    for (const std::string &id : filter) {
        const Rule *r = findRule(id);
        if (!r) {
            if (err)
                *err = "unknown rule id '" + id + "'";
            return {};
        }
        rules.push_back(r);
    }
    return rules;
}

/** With a --rule filter the suppression meta rules may be off. */
bool
metaEnabled(const std::vector<std::string> &filter)
{
    if (filter.empty())
        return true;
    for (const std::string &id : filter)
        if (startsWith(id, "lint-"))
            return true;
    return false;
}

/**
 * Rule + suppression resolution for one lexed file. Appends the
 * file's findings (suppressed included, then meta findings) in
 * deterministic order.
 */
void
lintOne(const SourceFile &src, const LintContext &ctx,
        const std::vector<const Rule *> &rules, bool meta,
        std::vector<Finding> &out)
{
    std::vector<Finding> metaFindings;
    std::vector<Suppression> sups =
        parseSuppressions(src.path, src.lex.comments, metaFindings);

    for (Violation &v : runRules(src, ctx, rules)) {
        Finding f;
        f.file = src.path;
        f.violation = std::move(v);
        for (Suppression &s : sups) {
            if (f.violation.line != s.line &&
                f.violation.line != s.line + 1)
                continue;
            if (std::find(s.ids.begin(), s.ids.end(),
                          f.violation.rule) == s.ids.end())
                continue;
            f.suppressed = true;
            f.justification = s.justification;
            s.used = true;
            break;
        }
        out.push_back(std::move(f));
    }

    if (!meta)
        return;
    for (const Suppression &s : sups) {
        if (s.used)
            continue;
        std::string idList;
        for (const std::string &id : s.ids)
            idList += (idList.empty() ? "" : ", ") + id;
        addMeta(metaFindings, src.path, "lint-unused-suppression",
                s.line,
                "suppression for " + idList +
                    " no longer matches any violation; delete it");
    }
    std::stable_sort(metaFindings.begin(), metaFindings.end(),
                     [](const Finding &a, const Finding &b) {
                         return a.violation.line < b.violation.line;
                     });
    for (Finding &f : metaFindings)
        out.push_back(std::move(f));
}

bool
isSourceExtension(const std::string &path)
{
    return endsWith(path, ".hh") || endsWith(path, ".h") ||
           endsWith(path, ".cc") || endsWith(path, ".cpp");
}

bool
matchesFilters(const std::string &rel,
               const std::vector<std::string> &filters)
{
    if (filters.empty())
        return true;
    for (std::string f : filters) {
        while (startsWith(f, "./"))
            f = f.substr(2);
        while (!f.empty() && f.back() == '/')
            f.pop_back();
        if (rel == f || startsWith(rel, f + "/") || startsWith(rel, f))
            return true;
    }
    return false;
}

} // namespace

unsigned
LintReport::errors() const
{
    unsigned n = 0;
    for (const Finding &f : findings)
        n += !f.suppressed &&
             f.violation.severity == Severity::Error;
    return n;
}

unsigned
LintReport::warnings() const
{
    unsigned n = 0;
    for (const Finding &f : findings)
        n += !f.suppressed &&
             f.violation.severity == Severity::Warning;
    return n;
}

unsigned
LintReport::suppressedCount() const
{
    unsigned n = 0;
    for (const Finding &f : findings)
        n += f.suppressed;
    return n;
}

std::string
defaultRoot()
{
    if (const char *env = std::getenv("PIFETCH_LINT_ROOT"))
        return env;
#ifdef PIFETCH_SOURCE_ROOT
    return PIFETCH_SOURCE_ROOT;
#else
    return ".";
#endif
}

std::vector<std::string>
discoverSources(const std::string &root,
                const std::vector<std::string> &filters,
                std::string *err)
{
    static const char *scanDirs[] = {"src", "bench", "examples",
                                     "tests"};
    std::vector<std::string> out;
    std::error_code ec;
    for (const char *dir : scanDirs) {
        const fs::path base = fs::path(root) / dir;
        if (!fs::is_directory(base, ec))
            continue;
        for (fs::recursive_directory_iterator
                 it(base, fs::directory_options::skip_permission_denied,
                    ec),
             end;
             it != end; it.increment(ec)) {
            if (ec) {
                if (err)
                    *err = "scan failed under " + base.string() +
                           ": " + ec.message();
                return {};
            }
            if (it->is_directory()) {
                const std::string name = it->path().filename().string();
                if (name == "third_party" || name == "build")
                    it.disable_recursion_pending();
                continue;
            }
            if (!it->is_regular_file())
                continue;
            std::string rel =
                fs::path(it->path())
                    .lexically_relative(fs::path(root))
                    .generic_string();
            if (!isSourceExtension(rel))
                continue;
            if (!matchesFilters(rel, filters))
                continue;
            out.push_back(std::move(rel));
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<Finding>
lintSource(const std::string &path, const std::string &content,
           const std::vector<std::string> &ruleFilter)
{
    SourceFile src;
    src.path = path;
    src.lex = lex(content);

    LintContext ctx;
    collectContext(src, ctx);

    std::string err;
    const std::vector<const Rule *> rules =
        selectRules(ruleFilter, &err);

    std::vector<Finding> out;
    lintOne(src, ctx, rules, metaEnabled(ruleFilter), out);
    return out;
}

LintReport
runLint(const LintOptions &opts, std::string *err)
{
    LintReport report;
    const std::string root =
        opts.root.empty() ? defaultRoot() : opts.root;

    std::vector<const Rule *> rules = selectRules(opts.rules, err);
    if (err && !err->empty())
        return report;

    const std::vector<std::string> paths =
        discoverSources(root, opts.paths, err);
    if (err && !err->empty())
        return report;

    // Pass 1: lex everything and gather the cross-file context, so
    // a .cc iterating a member its header declares unordered is
    // still caught.
    std::vector<SourceFile> files;
    files.reserve(paths.size());
    LintContext ctx;
    for (const std::string &rel : paths) {
        std::ifstream in(fs::path(root) / rel,
                         std::ios::in | std::ios::binary);
        if (!in) {
            if (err)
                *err = "cannot read " + rel;
            return report;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        SourceFile src;
        src.path = rel;
        src.lex = lex(buf.str());
        collectContext(src, ctx);
        files.push_back(std::move(src));
    }

    // Pass 2: rules + suppressions per file, in sorted file order.
    const bool meta = metaEnabled(opts.rules);
    for (const SourceFile &src : files)
        lintOne(src, ctx, rules, meta, report.findings);
    report.filesScanned = static_cast<unsigned>(files.size());
    return report;
}

ResultValue
toResult(const LintReport &report, const std::string &root)
{
    ResultValue doc = ResultValue::object();

    ResultValue meta = ResultValue::object();
    meta.set("tool", "pifetch lint");
    meta.set("root", root);
    meta.set("rules", static_cast<unsigned>(ruleCatalog().size()));
    doc.set("meta", std::move(meta));

    ResultValue summary = ResultValue::object();
    summary.set("files", report.filesScanned);
    summary.set("findings",
                static_cast<unsigned>(report.findings.size()));
    summary.set("errors", report.errors());
    summary.set("warnings", report.warnings());
    summary.set("suppressed", report.suppressedCount());
    summary.set("clean", report.clean());
    doc.set("summary", std::move(summary));

    ResultValue violations = ResultValue::array();
    for (const Finding &f : report.findings) {
        ResultValue v = ResultValue::object();
        v.set("file", f.file);
        v.set("line", f.violation.line);
        v.set("rule", f.violation.rule);
        const Rule *rule = findRule(f.violation.rule);
        v.set("category", rule ? rule->category : "unknown");
        v.set("severity", severityKey(f.violation.severity));
        v.set("message", f.violation.message);
        v.set("suppressed", f.suppressed);
        if (f.suppressed)
            v.set("justification", f.justification);
        violations.push(std::move(v));
    }
    doc.set("violations", std::move(violations));
    return doc;
}

std::vector<std::string>
runRuleSelfTest()
{
    std::vector<std::string> failures;
    for (const Rule &rule : ruleCatalog()) {
        bool fired = false;
        for (const Finding &f :
             lintSource(rule.fixture.path, rule.fixture.bad)) {
            fired = fired ||
                    (!f.suppressed && f.violation.rule == rule.id);
        }
        if (!fired) {
            failures.push_back(rule.id +
                               ": bad fixture did not fire the rule");
        }
        for (const Finding &f :
             lintSource(rule.fixture.path, rule.fixture.good)) {
            if (!f.suppressed) {
                failures.push_back(rule.id +
                                   ": good fixture not clean (" +
                                   f.violation.rule + " at line " +
                                   std::to_string(f.violation.line) +
                                   ")");
            }
        }
    }
    return failures;
}

} // namespace lint
} // namespace pifetch
