/**
 * @file
 * Rule catalog implementation.
 *
 * The checks are deliberately syntactic: they walk the token stream
 * (plus a small brace-scope tracker) instead of building an AST.
 * That keeps every rule a page of code, makes false positives cheap
 * to reason about, and — because matching is token-based — means a
 * banned name inside a string literal (like the fixtures below) or a
 * comment never fires.
 */

#include "lint/rules.hh"

#include <algorithm>
#include <array>
#include <cstddef>

namespace pifetch {
namespace lint {

namespace {

using Tokens = std::vector<Token>;

bool
isIdent(const Token &t, const char *text)
{
    return t.kind == Token::Kind::Ident && t.text == text;
}

bool
isPunct(const Token &t, const char *text)
{
    return t.kind == Token::Kind::Punct && t.text == text;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.compare(0, prefix.size(), prefix) == 0;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

bool
isHeaderPath(const std::string &path)
{
    return endsWith(path, ".hh") || endsWith(path, ".h");
}

/**
 * Replay hot-path files (the PR 4 optimization surface): per-fetch /
 * per-instruction code whose steady state must stay allocation-free
 * and devirtualized.
 */
bool
isHotPathFile(const std::string &path)
{
    static const char *prefixes[] = {
        "src/pif/", "src/prefetch/", "src/cache/",
        "src/core/", "src/branch/",
    };
    static const char *files[] = {
        "src/sim/trace_engine.hh",        "src/sim/trace_engine.cc",
        "src/sim/cycle_engine.hh",        "src/sim/cycle_engine.cc",
        "src/sim/prefetcher_dispatch.hh", "src/common/flat_hash.hh",
        "src/common/digest.hh",           "src/sim/observer.hh",
        "src/sim/run_counters.hh",        "src/trace/record.hh",
    };
    for (const char *p : prefixes)
        if (startsWith(path, p))
            return true;
    for (const char *f : files)
        if (path == f)
            return true;
    return false;
}

/** Engine replay-loop files: no virtual dispatch may appear here. */
bool
isEngineFile(const std::string &path)
{
    static const char *files[] = {
        "src/sim/trace_engine.hh",        "src/sim/trace_engine.cc",
        "src/sim/cycle_engine.hh",        "src/sim/cycle_engine.cc",
        "src/sim/prefetcher_dispatch.hh", "src/core/frontend.hh",
        "src/core/frontend.cc",           "src/core/cycle_core.hh",
        "src/core/cycle_core.cc",         "src/sim/observer.hh",
    };
    for (const char *f : files)
        if (path == f)
            return true;
    return false;
}

/** Files holding concrete prefetcher/predictor/policy types. */
bool
isConcreteTypeFile(const std::string &path)
{
    static const char *prefixes[] = {
        "src/prefetch/", "src/branch/", "src/pif/",
    };
    for (const char *p : prefixes)
        if (startsWith(path, p))
            return true;
    return path == "src/cache/replacement.hh" ||
           path == "src/cache/replacement.cc";
}

void
addViolation(std::vector<Violation> &out, const Rule &rule,
             unsigned line, std::string message)
{
    Violation v;
    v.rule = rule.id;
    v.severity = rule.severity;
    v.line = line;
    v.message = std::move(message);
    out.push_back(std::move(v));
}

/**
 * Skip a balanced template-argument list. @p i must index the '<';
 * returns the index just past the matching '>'. Treats '>>' as two
 * closers (C++11 semantics).
 */
std::size_t
skipAngles(const Tokens &toks, std::size_t i)
{
    int depth = 0;
    for (; i < toks.size(); ++i) {
        if (isPunct(toks[i], "<")) {
            ++depth;
        } else if (isPunct(toks[i], ">")) {
            if (--depth == 0)
                return i + 1;
        } else if (isPunct(toks[i], ">>")) {
            depth -= 2;
            if (depth <= 0)
                return i + 1;
        } else if (isPunct(toks[i], ";")) {
            break;  // malformed; bail at statement end
        }
    }
    return i;
}

// ------------------------------------------------------ scope tracking

/**
 * A coarse brace-scope tracker: classifies every '{' as namespace,
 * class, function or "other" (control statement, initializer, enum)
 * from the statement head preceding it. Good enough to answer the
 * three questions rules ask: "am I at namespace scope?", "am I in a
 * class body?", "which function am I in?".
 */
struct Scope
{
    enum class Kind { Namespace, Class, Func, Other };

    Kind kind = Kind::Other;
    /** Class name / function name (empty for lambdas, namespaces). */
    std::string name;
    /** Foo for a `Foo::bar` out-of-line definition head. */
    std::string qualifier;
};

class ScopeTracker
{
  public:
    explicit ScopeTracker(const Tokens &toks) : toks_(toks) {}

    /**
     * Consume token @p i (call once per index, in order). Returns
     * true when the token opened or closed a scope, i.e. statement
     * boundaries for scans that segment on them.
     */
    bool
    step(std::size_t i)
    {
        const Token &t = toks_[i];
        if (t.kind == Token::Kind::Directive) {
            // A directive is a whole line; never part of a head.
            headStart_ = i + 1;
            return false;
        }
        if (isPunct(t, "{")) {
            stack_.push_back(classify(i));
            headStart_ = i + 1;
            return true;
        }
        if (isPunct(t, "}")) {
            if (!stack_.empty())
                stack_.pop_back();
            headStart_ = i + 1;
            return true;
        }
        if (isPunct(t, ";"))
            headStart_ = i + 1;
        return false;
    }

    /** True when every enclosing brace is a namespace (or none). */
    bool
    atNamespaceScope() const
    {
        for (const Scope &s : stack_)
            if (s.kind != Scope::Kind::Namespace)
                return false;
        return true;
    }

    /** Innermost scope, or nullptr at top level. */
    const Scope *
    current() const
    {
        return stack_.empty() ? nullptr : &stack_.back();
    }

    /** Innermost *named* enclosing function, or nullptr. */
    const Scope *
    enclosingFunction() const
    {
        for (auto it = stack_.rbegin(); it != stack_.rend(); ++it)
            if (it->kind == Scope::Kind::Func && !it->name.empty())
                return &*it;
        return nullptr;
    }

    /** Innermost enclosing class, or nullptr. */
    const Scope *
    enclosingClass() const
    {
        for (auto it = stack_.rbegin(); it != stack_.rend(); ++it)
            if (it->kind == Scope::Kind::Class)
                return &*it;
        return nullptr;
    }

    std::size_t depth() const { return stack_.size(); }

    /** Index of the first token of the current statement head. */
    std::size_t headStart() const { return headStart_; }

  private:
    /** Classify the '{' at @p open from its statement head. */
    Scope
    classify(std::size_t open) const
    {
        Scope s;
        const std::size_t begin = headStart_;
        if (begin >= open) {
            s.kind = Scope::Kind::Other;
            return s;
        }

        // Control-flow braces.
        static const char *control[] = {"if",     "for",   "while",
                                        "switch", "do",    "else",
                                        "try",    "catch"};
        for (const char *kw : control) {
            if (isIdent(toks_[begin], kw)) {
                s.kind = Scope::Kind::Other;
                return s;
            }
        }

        if (isIdent(toks_[begin], "namespace") ||
            (isIdent(toks_[begin], "inline") && begin + 1 < open &&
             isIdent(toks_[begin + 1], "namespace")) ||
            (isIdent(toks_[begin], "extern") && begin + 1 < open &&
             toks_[begin + 1].kind == Token::Kind::String)) {
            s.kind = Scope::Kind::Namespace;
            return s;
        }

        // class/struct/union at angle depth 0 => type definition;
        // enum bodies hold no members worth scanning.
        int angles = 0;
        for (std::size_t i = begin; i < open; ++i) {
            const Token &t = toks_[i];
            if (isPunct(t, "<"))
                ++angles;
            else if (isPunct(t, ">"))
                angles = std::max(0, angles - 1);
            else if (isPunct(t, ">>"))
                angles = std::max(0, angles - 2);
            if (angles > 0)
                continue;
            if (isIdent(t, "enum")) {
                s.kind = Scope::Kind::Other;
                return s;
            }
            if (isIdent(t, "class") || isIdent(t, "struct") ||
                isIdent(t, "union")) {
                s.kind = Scope::Kind::Class;
                if (i + 1 < open &&
                    toks_[i + 1].kind == Token::Kind::Ident)
                    s.name = toks_[i + 1].text;
                return s;
            }
        }

        // A function (or lambda) head ends with its parameter list,
        // possibly followed by qualifiers or a ctor-init list. Find
        // the end of the signature: a top-level single ':' starts a
        // ctor-init list.
        std::size_t sigEnd = open;
        int parens = 0;
        for (std::size_t i = begin; i < open; ++i) {
            if (isPunct(toks_[i], "(") || isPunct(toks_[i], "["))
                ++parens;
            else if (isPunct(toks_[i], ")") || isPunct(toks_[i], "]"))
                --parens;
            else if (parens == 0 && isPunct(toks_[i], ":")) {
                sigEnd = i;
                break;
            }
        }

        // Walk back to the ')' closing the parameter list.
        std::size_t close = sigEnd;
        while (close > begin && !isPunct(toks_[close - 1], ")")) {
            // Trailing qualifiers: const, noexcept, override, ...
            if (toks_[close - 1].kind != Token::Kind::Ident &&
                !isPunct(toks_[close - 1], "&") &&
                !isPunct(toks_[close - 1], "&&")) {
                s.kind = Scope::Kind::Other;
                return s;
            }
            --close;
        }
        if (close == begin) {
            s.kind = Scope::Kind::Other;
            return s;
        }

        // Match back to the opening '(' of that parameter list.
        int depth = 0;
        std::size_t i = close;  // token index just past ')'
        while (i > begin) {
            --i;
            if (isPunct(toks_[i], ")"))
                ++depth;
            else if (isPunct(toks_[i], "(") && --depth == 0)
                break;
        }
        if (depth != 0 || i == begin) {
            s.kind = Scope::Kind::Other;
            return s;
        }

        s.kind = Scope::Kind::Func;
        if (i > begin && toks_[i - 1].kind == Token::Kind::Ident) {
            s.name = toks_[i - 1].text;
            if (i - 1 > begin && isPunct(toks_[i - 2], "::") &&
                i - 2 > begin &&
                toks_[i - 3].kind == Token::Kind::Ident)
                s.qualifier = toks_[i - 3].text;
        }
        return s;
    }

    const Tokens &toks_;
    std::vector<Scope> stack_;
    std::size_t headStart_ = 0;
};

// ------------------------------------------------------------ D rules

void
checkRand(const SourceFile &f, const LintContext &, const Rule &rule,
          std::vector<Violation> &out)
{
    // Truly nondeterministic sources are banned everywhere; the
    // std engines are deterministic when seeded, so only the
    // simulator proper must route through common/rng.hh.
    static const char *everywhere[] = {"rand", "srand", "rand_r",
                                       "drand48", "random_device"};
    static const char *srcOnly[] = {"mt19937", "mt19937_64",
                                    "default_random_engine",
                                    "minstd_rand", "minstd_rand0"};
    const bool inSrc = startsWith(f.path, "src/");
    for (const Token &t : f.lex.tokens) {
        if (t.kind != Token::Kind::Ident)
            continue;
        for (const char *name : everywhere) {
            if (t.text == name) {
                addViolation(out, rule, t.line,
                             "'" + t.text +
                                 "' is a nondeterministic entropy "
                                 "source; seed a common/rng.hh Rng "
                                 "instead");
            }
        }
        if (!inSrc)
            continue;
        for (const char *name : srcOnly) {
            if (t.text == name) {
                addViolation(out, rule, t.line,
                             "'" + t.text +
                                 "' bypasses the project RNG; "
                                 "simulator code must use "
                                 "common/rng.hh (Rng) so streams "
                                 "replay bit-identically");
            }
        }
    }
}

void
checkClock(const SourceFile &f, const LintContext &, const Rule &rule,
           std::vector<Violation> &out)
{
    // Wall-clock reads are the perf subsystem's business only; tests
    // may time themselves freely.
    if (startsWith(f.path, "src/perf/") ||
        startsWith(f.path, "tests/"))
        return;
    if (!startsWith(f.path, "src/") && !startsWith(f.path, "bench/") &&
        !startsWith(f.path, "examples/"))
        return;
    static const char *banned[] = {
        "system_clock",  "steady_clock", "high_resolution_clock",
        "gettimeofday",  "clock_gettime", "timespec_get",
        "localtime",     "gmtime",        "mktime",
    };
    for (const Token &t : f.lex.tokens) {
        if (t.kind != Token::Kind::Ident)
            continue;
        for (const char *name : banned) {
            if (t.text == name) {
                addViolation(out, rule, t.line,
                             "wall-clock read ('" + t.text +
                                 "') outside src/perf/; results must "
                                 "not depend on real time (timing "
                                 "lives in src/perf/timer.hh)");
            }
        }
    }
}

void
checkUnorderedIter(const SourceFile &f, const LintContext &ctx,
                   const Rule &rule, std::vector<Violation> &out)
{
    if (!startsWith(f.path, "src/"))
        return;
    const std::string stem = pathStem(f.path);
    const Tokens &toks = f.lex.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind != Token::Kind::Ident ||
            !ctx.isUnorderedVar(t.text, stem))
            continue;
        // var.begin() / var.cbegin() start a traversal; a lone
        // .end() (the find() != end() idiom) is deterministic.
        if (i + 2 < toks.size() &&
            (isPunct(toks[i + 1], ".") || isPunct(toks[i + 1], "->")) &&
            (isIdent(toks[i + 2], "begin") ||
             isIdent(toks[i + 2], "cbegin"))) {
            addViolation(out, rule, t.line,
                         "iterating unordered container '" + t.text +
                             "': traversal order is implementation-"
                             "defined and must not reach canonical "
                             "results or digests; drain into a "
                             "sorted vector first");
        }
        // Range-for: `for (... : var)`.
        if (i > 0 && i + 1 < toks.size() && isPunct(toks[i - 1], ":") &&
            isPunct(toks[i + 1], ")")) {
            addViolation(out, rule, t.line,
                         "range-for over unordered container '" +
                             t.text +
                             "': traversal order is implementation-"
                             "defined and must not reach canonical "
                             "results or digests");
        }
    }
}

void
checkPtrOrder(const SourceFile &f, const LintContext &,
              const Rule &rule, std::vector<Violation> &out)
{
    const Tokens &toks = f.lex.tokens;

    // (a) Ordered associative containers keyed on a pointer.
    for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
        if (!isIdent(toks[i], "std") || !isPunct(toks[i + 1], "::"))
            continue;
        const Token &name = toks[i + 2];
        if (!(isIdent(name, "map") || isIdent(name, "set") ||
              isIdent(name, "multimap") || isIdent(name, "multiset")))
            continue;
        if (!isPunct(toks[i + 3], "<"))
            continue;
        // First template argument: tokens up to a top-level ',' / '>'.
        int depth = 0;
        std::size_t last = 0;
        for (std::size_t j = i + 3; j < toks.size(); ++j) {
            if (isPunct(toks[j], "<")) {
                ++depth;
            } else if (isPunct(toks[j], ">") ||
                       isPunct(toks[j], ">>")) {
                depth -= isPunct(toks[j], ">>") ? 2 : 1;
                if (depth <= 0)
                    break;
            } else if (depth == 1 && isPunct(toks[j], ",")) {
                break;
            } else {
                last = j;
            }
        }
        if (last != 0 && isPunct(toks[last], "*")) {
            addViolation(out, rule, name.line,
                         "std::" + name.text +
                             " keyed on a pointer orders by address, "
                             "which varies run to run; key on a "
                             "stable id");
        }
    }

    // (b) A comparator lambda over two pointer parameters that
    // compares them directly.
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (!isPunct(toks[i], "["))
            continue;
        // Capture list, then immediately a parameter list.
        std::size_t j = i + 1;
        while (j < toks.size() && !isPunct(toks[j], "]"))
            ++j;
        if (j + 1 >= toks.size() || !isPunct(toks[j + 1], "("))
            continue;
        // Split the parameter list at top level.
        std::vector<std::pair<bool, std::string>> params;  // ptr,name
        bool ptr = false;
        std::string lastIdent;
        int depth = 0;
        std::size_t k = j + 1;
        for (; k < toks.size(); ++k) {
            if (isPunct(toks[k], "(")) {
                if (++depth == 1)
                    continue;
            } else if (isPunct(toks[k], ")")) {
                if (--depth == 0)
                    break;
            }
            if (depth == 1 && isPunct(toks[k], ",")) {
                params.emplace_back(ptr, lastIdent);
                ptr = false;
                lastIdent.clear();
                continue;
            }
            if (isPunct(toks[k], "*"))
                ptr = true;
            if (toks[k].kind == Token::Kind::Ident)
                lastIdent = toks[k].text;
        }
        if (!lastIdent.empty() || ptr)
            params.emplace_back(ptr, lastIdent);
        if (params.size() != 2 || !params[0].first ||
            !params[1].first || params[0].second.empty() ||
            params[1].second.empty())
            continue;
        // Body: the next '{' ... matching '}'.
        while (k < toks.size() && !isPunct(toks[k], "{"))
            ++k;
        int braces = 0;
        for (; k < toks.size(); ++k) {
            if (isPunct(toks[k], "{"))
                ++braces;
            else if (isPunct(toks[k], "}") && --braces == 0)
                break;
            if (k + 2 < toks.size() &&
                toks[k].kind == Token::Kind::Ident &&
                (isPunct(toks[k + 1], "<") ||
                 isPunct(toks[k + 1], ">")) &&
                toks[k + 2].kind == Token::Kind::Ident) {
                const std::string &a = toks[k].text;
                const std::string &b = toks[k + 2].text;
                if ((a == params[0].second && b == params[1].second) ||
                    (a == params[1].second && b == params[0].second)) {
                    addViolation(
                        out, rule, toks[k].line,
                        "comparator orders by raw pointer value "
                        "('" + a + "' vs '" + b +
                            "'), which depends on allocation; "
                            "compare a stable field instead");
                }
            }
        }
    }
}

// ------------------------------------------------------------ H rules

void
checkAlloc(const SourceFile &f, const LintContext &, const Rule &rule,
           std::vector<Violation> &out)
{
    if (!isHotPathFile(f.path))
        return;
    static const char *banned[] = {"new",    "malloc",      "calloc",
                                   "realloc", "make_unique",
                                   "make_shared"};
    const Tokens &toks = f.lex.tokens;
    ScopeTracker scopes(toks);
    for (std::size_t i = 0; i < toks.size(); ++i) {
        scopes.step(i);
        const Token &t = toks[i];
        if (t.kind != Token::Kind::Ident)
            continue;
        bool hit = false;
        for (const char *name : banned)
            hit = hit || t.text == name;
        if (!hit)
            continue;
        // Construction-time allocation is fine: constructors
        // (name == qualifier, or name == enclosing class) and
        // make*/factory helpers. The rule exists for the per-fetch
        // steady state.
        const Scope *fn = scopes.enclosingFunction();
        if (fn) {
            if (!fn->qualifier.empty() && fn->qualifier == fn->name)
                continue;
            const Scope *cls = scopes.enclosingClass();
            if (cls && fn->name == cls->name)
                continue;
            if (startsWith(fn->name, "make"))
                continue;
        }
        addViolation(out, rule, t.line,
                     "heap allocation ('" + t.text +
                         "') in a replay hot-path file outside a "
                         "constructor/factory; preallocate at setup "
                         "(PR 4 keeps the replay loop "
                         "allocation-free)");
    }
}

void
checkStdFunction(const SourceFile &f, const LintContext &,
                 const Rule &rule, std::vector<Violation> &out)
{
    if (!isHotPathFile(f.path))
        return;
    const Tokens &toks = f.lex.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (isIdent(toks[i], "std") && isPunct(toks[i + 1], "::") &&
            isIdent(toks[i + 2], "function")) {
            addViolation(out, rule, toks[i].line,
                         "std::function in a replay hot-path file: "
                         "type erasure blocks the monomorphized "
                         "dispatch (src/sim/prefetcher_dispatch.hh); "
                         "take a template or function reference");
        }
    }
}

void
checkEndl(const SourceFile &f, const LintContext &, const Rule &rule,
          std::vector<Violation> &out)
{
    const Tokens &toks = f.lex.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (isIdent(toks[i], "std") && isPunct(toks[i + 1], "::") &&
            isIdent(toks[i + 2], "endl")) {
            addViolation(out, rule, toks[i].line,
                         "std::endl flushes the stream every line; "
                         "write '\\n' (and flush explicitly where it "
                         "matters)");
        }
    }
}

void
checkVirtual(const SourceFile &f, const LintContext &,
             const Rule &rule, std::vector<Violation> &out)
{
    if (!isEngineFile(f.path))
        return;
    for (const Token &t : f.lex.tokens) {
        if (isIdent(t, "virtual")) {
            addViolation(out, rule, t.line,
                         "virtual dispatch inside an engine replay "
                         "file; the loops are monomorphized on the "
                         "concrete prefetcher (PR 4) — dispatch at "
                         "the boundary, not per instruction");
        }
    }
}

void
checkFinal(const SourceFile &f, const LintContext &, const Rule &rule,
           std::vector<Violation> &out)
{
    if (!isConcreteTypeFile(f.path))
        return;
    const Tokens &toks = f.lex.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (!(isIdent(toks[i], "class") || isIdent(toks[i], "struct")))
            continue;
        // Not `enum class` and not a template parameter list.
        if (i > 0 && (isIdent(toks[i - 1], "enum") ||
                      isPunct(toks[i - 1], "<") ||
                      isPunct(toks[i - 1], ",")))
            continue;
        if (toks[i + 1].kind != Token::Kind::Ident)
            continue;
        const Token &name = toks[i + 1];
        bool sawFinal = false;
        bool hasBase = false;
        for (std::size_t j = i + 2; j < toks.size(); ++j) {
            if (isPunct(toks[j], ";") || isPunct(toks[j], "{") ||
                isPunct(toks[j], "("))
                break;  // fwd decl, body, or not a class head
            if (isIdent(toks[j], "final"))
                sawFinal = true;
            if (isPunct(toks[j], ":")) {
                hasBase = true;
                break;
            }
        }
        if (hasBase && !sawFinal) {
            addViolation(out, rule, name.line,
                         "concrete type '" + name.text +
                             "' derives from an interface but is not "
                             "'final'; engine dispatch devirtualizes "
                             "only on final types (see "
                             "src/sim/prefetcher_dispatch.hh)");
        }
    }
}

// ------------------------------------------------------------ S rules

std::string
normalizeDirective(const std::string &text)
{
    std::string out;
    bool space = false;
    for (char c : text) {
        if (c == ' ' || c == '\t') {
            space = !out.empty();
            continue;
        }
        if (space) {
            out += ' ';
            space = false;
        }
        out += c;
    }
    return out;
}

void
checkPragmaOnce(const SourceFile &f, const LintContext &,
                const Rule &rule, std::vector<Violation> &out)
{
    if (!isHeaderPath(f.path))
        return;
    const Token *first = nullptr;
    unsigned count = 0;
    for (const Token &t : f.lex.tokens) {
        if (t.kind != Token::Kind::Directive)
            continue;
        if (!first)
            first = &t;
        if (normalizeDirective(t.text) == "#pragma once")
            ++count;
    }
    if (!first) {
        addViolation(out, rule, 1,
                     "header has no #pragma once (it must be the "
                     "first preprocessor directive)");
        return;
    }
    if (normalizeDirective(first->text) != "#pragma once") {
        addViolation(out, rule, first->line,
                     "header must open with #pragma once before any "
                     "other directive (found '" +
                         normalizeDirective(first->text).substr(0, 40) +
                         "'); legacy include guards were retired "
                         "with the lint PR");
    } else if (count > 1) {
        addViolation(out, rule, first->line,
                     "duplicate #pragma once");
    }
}

void
checkUsingNamespace(const SourceFile &f, const LintContext &,
                    const Rule &rule, std::vector<Violation> &out)
{
    if (!isHeaderPath(f.path))
        return;
    const Tokens &toks = f.lex.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (isIdent(toks[i], "using") &&
            isIdent(toks[i + 1], "namespace")) {
            addViolation(out, rule, toks[i].line,
                         "'using namespace' in a header leaks the "
                         "namespace into every includer; qualify "
                         "names instead");
        }
    }
}

void
checkGlobalInit(const SourceFile &f, const LintContext &,
                const Rule &rule, std::vector<Violation> &out)
{
    if (!startsWith(f.path, "src/"))
        return;
    static const char *dynTypes[] = {
        "string",        "vector",       "map",
        "set",           "unordered_map", "unordered_set",
        "deque",         "list",          "shared_ptr",
        "unique_ptr",    "function",      "ofstream",
        "ifstream",      "ostringstream", "istringstream",
    };
    const Tokens &toks = f.lex.tokens;
    ScopeTracker scopes(toks);
    std::size_t stmt = 0;  // statement start
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const bool boundary = scopes.step(i);
        if (boundary || isPunct(toks[i], ";") ||
            toks[i].kind == Token::Kind::Directive) {
            stmt = i + 1;
            continue;
        }
        if (i != stmt || !scopes.atNamespaceScope())
            continue;
        // Statement head at namespace scope: skip qualifiers, then
        // look for a dynamically-initialized type.
        std::size_t j = i;
        bool constexprSeen = false;
        while (j < toks.size() &&
               (isIdent(toks[j], "static") ||
                isIdent(toks[j], "inline") ||
                isIdent(toks[j], "const") ||
                isIdent(toks[j], "constexpr") ||
                isIdent(toks[j], "constinit") ||
                isIdent(toks[j], "thread_local") ||
                isIdent(toks[j], "extern"))) {
            constexprSeen = constexprSeen ||
                            isIdent(toks[j], "constexpr") ||
                            isIdent(toks[j], "constinit");
            ++j;
        }
        if (constexprSeen || j + 2 >= toks.size())
            continue;
        std::string typeName;
        if (isIdent(toks[j], "std") && isPunct(toks[j + 1], "::") &&
            toks[j + 2].kind == Token::Kind::Ident) {
            typeName = toks[j + 2].text;
            j += 3;
        } else if (isIdent(toks[j], "ResultValue")) {
            typeName = "ResultValue";
            j += 1;
        } else {
            continue;
        }
        bool dynamic = typeName == "ResultValue";
        for (const char *d : dynTypes)
            dynamic = dynamic || typeName == d;
        if (!dynamic)
            continue;
        if (j < toks.size() && isPunct(toks[j], "<"))
            j = skipAngles(toks, j);
        // A pointer global is constant-initialized; a reference or a
        // value is not.
        if (j < toks.size() && isPunct(toks[j], "*"))
            continue;
        while (j < toks.size() && isPunct(toks[j], "&"))
            ++j;
        if (j >= toks.size() ||
            toks[j].kind != Token::Kind::Ident)
            continue;
        const Token &name = toks[j];
        if (j + 1 >= toks.size())
            continue;
        // `name(` is a function declaration/definition, not a global.
        if (isPunct(toks[j + 1], "("))
            continue;
        if (isPunct(toks[j + 1], "=") || isPunct(toks[j + 1], "{") ||
            isPunct(toks[j + 1], ";") || isPunct(toks[j + 1], "[")) {
            addViolation(out, rule, name.line,
                         "namespace-scope '" + name.text +
                             "' of dynamic type (std::" + typeName +
                             ") runs a constructor before main and "
                             "a destructor after it, in unspecified "
                             "order across TUs; use a function-local "
                             "static");
        }
    }
}

void
checkStatsOrder(const SourceFile &f, const LintContext &,
                const Rule &rule, std::vector<Violation> &out)
{
    if (!startsWith(f.path, "src/"))
        return;
    const Tokens &toks = f.lex.tokens;
    ScopeTracker scopes(toks);

    struct ClassRecord
    {
        std::size_t depth = 0;
        long firstGroup = -1;                       // member order
        std::vector<std::pair<long, unsigned>> counters;  // order,line
        long members = 0;
    };
    std::vector<ClassRecord> classes;

    const auto closeClass = [&](std::size_t depthNow) {
        while (!classes.empty() && classes.back().depth > depthNow) {
            const ClassRecord &c = classes.back();
            if (c.firstGroup >= 0) {
                for (const auto &[order, line] : c.counters) {
                    if (order < c.firstGroup) {
                        addViolation(
                            out, rule, line,
                            "Counter member declared before the "
                            "StatGroup it enrolls in; members "
                            "destroy in reverse order, so the "
                            "group would die first and the "
                            "counter's unenroll would dangle "
                            "(the PR 3 bug)");
                    }
                }
            }
            classes.pop_back();
        }
    };

    std::size_t stmt = 0;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const std::size_t depthBefore = scopes.depth();
        const bool boundary = scopes.step(i);
        if (boundary) {
            if (scopes.depth() < depthBefore)
                closeClass(scopes.depth());
            else if (scopes.current() &&
                     scopes.current()->kind == Scope::Kind::Class) {
                ClassRecord rec;
                rec.depth = scopes.depth();
                classes.push_back(rec);
            }
            stmt = i + 1;
            continue;
        }
        if (isPunct(toks[i], ";") ||
            toks[i].kind == Token::Kind::Directive) {
            stmt = i + 1;
            continue;
        }
        // Access-specifier labels restart the member statement.
        if (isPunct(toks[i], ":") && i == stmt + 1 &&
            (isIdent(toks[stmt], "public") ||
             isIdent(toks[stmt], "private") ||
             isIdent(toks[stmt], "protected"))) {
            stmt = i + 1;
            continue;
        }
        if (i != stmt)
            continue;

        // Statement head: optional qualifiers, then Counter/StatGroup
        // by value, then a member/variable name.
        std::size_t j = i;
        while (j < toks.size() && (isIdent(toks[j], "mutable") ||
                                   isIdent(toks[j], "static") ||
                                   isIdent(toks[j], "const")))
            ++j;
        if (j + 1 >= toks.size())
            continue;
        const bool isCounter = isIdent(toks[j], "Counter");
        const bool isGroup = isIdent(toks[j], "StatGroup");
        if (!isCounter && !isGroup)
            continue;
        if (toks[j + 1].kind != Token::Kind::Ident)
            continue;  // ctor decl, pointer, reference, ...

        const bool inClass =
            scopes.current() &&
            scopes.current()->kind == Scope::Kind::Class &&
            !classes.empty() && classes.back().depth == scopes.depth();
        if (inClass) {
            ClassRecord &rec = classes.back();
            const long order = rec.members++;
            if (isGroup && rec.firstGroup < 0)
                rec.firstGroup = order;
            if (isCounter)
                rec.counters.emplace_back(order, toks[j].line);
        } else if (scopes.atNamespaceScope()) {
            addViolation(out, rule, toks[j].line,
                         "'" + toks[j + 1].text +
                             "' gives a " + toks[j].text +
                             " static storage duration; enrollment "
                             "would run during static init and "
                             "unenrollment after main — keep stat "
                             "objects inside engine/cache instances");
        }
    }
    closeClass(0);
}

// ------------------------------------------------- catalog assembly

std::vector<Rule>
buildCatalog()
{
    std::vector<Rule> rules;
    const auto add = [&](Rule r) { rules.push_back(std::move(r)); };

    // ---------------------------------------------------- D: determinism
    {
        Rule r;
        r.id = "D-rand";
        r.category = "determinism";
        r.severity = Severity::Error;
        r.summary = "no rand()/random_device; mt19937 only outside src/";
        r.rationale =
            "Results must replay bit-identically from a seed; every "
            "random stream goes through common/rng.hh.";
        r.fixture.path = "src/sim/fixture.cc";
        r.fixture.bad = "int pick() { return rand() % 4; }\n";
        r.fixture.good =
            "#include \"common/rng.hh\"\n"
            "int pick(pifetch::Rng &rng) {\n"
            "    return static_cast<int>(rng.next() % 4);\n"
            "}\n";
        r.check = &checkRand;
        add(r);
    }
    {
        Rule r;
        r.id = "D-clock";
        r.category = "determinism";
        r.severity = Severity::Error;
        r.summary = "no wall-clock reads outside src/perf/";
        r.rationale =
            "A simulation result that depends on real time cannot be "
            "golden-snapshotted; timing is the perf subsystem's job.";
        r.fixture.path = "src/sim/fixture.cc";
        r.fixture.bad =
            "#include <chrono>\n"
            "long now() {\n"
            "    return std::chrono::steady_clock::now()\n"
            "        .time_since_epoch().count();\n"
            "}\n";
        r.fixture.good =
            "long cycles(long c) { return c + 1; }\n";
        r.check = &checkClock;
        add(r);
    }
    {
        Rule r;
        r.id = "D-unordered-iter";
        r.category = "determinism";
        r.severity = Severity::Error;
        r.summary = "no iteration over unordered containers in src/";
        r.rationale =
            "unordered_{map,set} traversal order is implementation-"
            "defined; iterating one into results, digests or fill "
            "order breaks bit-identical replay across toolchains.";
        r.fixture.path = "src/sim/fixture.cc";
        r.fixture.bad =
            "#include <unordered_map>\n"
            "long sum(const std::unordered_map<long, long> &m);\n"
            "struct S {\n"
            "    std::unordered_map<long, long> pending_;\n"
            "    long drain() {\n"
            "        long s = 0;\n"
            "        for (const auto &kv : pending_)\n"
            "            s += kv.second;\n"
            "        return s;\n"
            "    }\n"
            "};\n";
        r.fixture.good =
            "#include <unordered_map>\n"
            "struct S {\n"
            "    std::unordered_map<long, long> pending_;\n"
            "    long peek(long k) {\n"
            "        auto it = pending_.find(k);\n"
            "        return it == pending_.end() ? 0 : it->second;\n"
            "    }\n"
            "};\n";
        r.check = &checkUnorderedIter;
        add(r);
    }
    {
        Rule r;
        r.id = "D-ptr-order";
        r.category = "determinism";
        r.severity = Severity::Warning;
        r.summary = "no pointer-valued sort keys or map/set keys";
        r.rationale =
            "Pointer order reflects the allocator, not the data; any "
            "container or comparator ordered by address produces a "
            "run-dependent sequence.";
        r.fixture.path = "src/sim/fixture.cc";
        r.fixture.bad =
            "#include <algorithm>\n"
            "#include <vector>\n"
            "struct Node { int id; };\n"
            "void order(std::vector<Node *> &v) {\n"
            "    std::sort(v.begin(), v.end(),\n"
            "              [](const Node *a, const Node *b) {\n"
            "                  return a < b;\n"
            "              });\n"
            "}\n";
        r.fixture.good =
            "#include <algorithm>\n"
            "#include <vector>\n"
            "struct Node { int id; };\n"
            "void order(std::vector<Node *> &v) {\n"
            "    std::sort(v.begin(), v.end(),\n"
            "              [](const Node *a, const Node *b) {\n"
            "                  return a->id < b->id;\n"
            "              });\n"
            "}\n";
        r.check = &checkPtrOrder;
        add(r);
    }

    // ------------------------------------------------------ H: hot path
    {
        Rule r;
        r.id = "H-alloc";
        r.category = "hot-path";
        r.severity = Severity::Error;
        r.summary =
            "no heap allocation in hot-path files outside ctors";
        r.rationale =
            "PR 4's 1.3-1.5x replay win depends on an allocation-free "
            "steady state; per-fetch allocation also perturbs the "
            "perf gate.";
        r.fixture.path = "src/pif/fixture.cc";
        r.fixture.bad =
            "#include <memory>\n"
            "struct Entry { long v; };\n"
            "struct Table {\n"
            "    void onFetch(long v) {\n"
            "        last_ = std::make_unique<Entry>(Entry{v});\n"
            "    }\n"
            "    std::unique_ptr<Entry> last_;\n"
            "};\n";
        r.fixture.good =
            "#include <memory>\n"
            "struct Entry { long v; };\n"
            "struct Table {\n"
            "    Table() { slab_ = std::make_unique<Entry>(); }\n"
            "    void onFetch(long v) { slab_->v = v; }\n"
            "    std::unique_ptr<Entry> slab_;\n"
            "};\n";
        r.check = &checkAlloc;
        add(r);
    }
    {
        Rule r;
        r.id = "H-function";
        r.category = "hot-path";
        r.severity = Severity::Error;
        r.summary = "no std::function in hot-path files";
        r.rationale =
            "Type-erased callables defeat the monomorphized engine "
            "loops; hot hooks take templates or function references.";
        r.fixture.path = "src/pif/fixture.hh";
        r.fixture.bad =
            "#pragma once\n"
            "#include <functional>\n"
            "struct Hook { std::function<void(long)> fn; };\n";
        r.fixture.good =
            "#pragma once\n"
            "template <typename Fn>\n"
            "void forEach(Fn &&fn) { fn(0); }\n";
        r.check = &checkStdFunction;
        add(r);
    }
    {
        Rule r;
        r.id = "H-endl";
        r.category = "hot-path";
        r.severity = Severity::Error;
        r.summary = "no std::endl anywhere";
        r.rationale =
            "std::endl is a flush per line; the one place that wants "
            "flushing (trace writer close) does it explicitly.";
        r.fixture.path = "src/sim/fixture.cc";
        r.fixture.bad =
            "#include <iostream>\n"
            "void hello() { std::cout << \"hi\" << std::endl; }\n";
        r.fixture.good =
            "#include <iostream>\n"
            "void hello() { std::cout << \"hi\\n\"; }\n";
        r.check = &checkEndl;
        add(r);
    }
    {
        Rule r;
        r.id = "H-virtual";
        r.category = "hot-path";
        r.severity = Severity::Error;
        r.summary = "no virtual dispatch in engine replay files";
        r.rationale =
            "The engines dispatch once on the concrete final "
            "prefetcher and inline the per-instruction hooks; a "
            "virtual call in these files reintroduces the indirect "
            "branch PR 4 removed.";
        r.fixture.path = "src/sim/cycle_engine.hh";
        r.fixture.bad =
            "#pragma once\n"
            "class Engine {\n"
            "  public:\n"
            "    virtual void step() = 0;\n"
            "};\n";
        r.fixture.good =
            "#pragma once\n"
            "class Engine {\n"
            "  public:\n"
            "    void step() {}\n"
            "};\n";
        r.check = &checkVirtual;
        add(r);
    }
    {
        Rule r;
        r.id = "H-final";
        r.category = "hot-path";
        r.severity = Severity::Error;
        r.summary = "concrete prefetcher/predictor types must be final";
        r.rationale =
            "The monomorphized dispatch relies on the compiler "
            "devirtualizing through final; a non-final concrete type "
            "silently falls back to indirect calls.";
        r.fixture.path = "src/prefetch/fixture.hh";
        r.fixture.bad =
            "#pragma once\n"
            "class Prefetcher {\n"
            "  public:\n"
            "    void train();\n"
            "};\n"
            "class NextLine : public Prefetcher {};\n";
        r.fixture.good =
            "#pragma once\n"
            "class Prefetcher {\n"
            "  public:\n"
            "    void train();\n"
            "};\n"
            "class NextLine final : public Prefetcher {};\n";
        r.check = &checkFinal;
        add(r);
    }

    // ----------------------------------------------------- S: structure
    {
        Rule r;
        r.id = "S-pragma-once";
        r.category = "structure";
        r.severity = Severity::Error;
        r.summary = "every header opens with #pragma once";
        r.rationale =
            "One canonical idempotence mechanism; hand-rolled guard "
            "macros drift from their paths and collide on renames.";
        r.fixture.path = "src/sim/fixture.hh";
        r.fixture.bad =
            "#ifndef FIXTURE_HH\n"
            "#define FIXTURE_HH\n"
            "struct S {};\n"
            "#endif\n";
        r.fixture.good = "#pragma once\nstruct S {};\n";
        r.check = &checkPragmaOnce;
        add(r);
    }
    {
        Rule r;
        r.id = "S-using-namespace";
        r.category = "structure";
        r.severity = Severity::Error;
        r.summary = "no using-namespace in headers";
        r.rationale =
            "A header-level using-directive rewrites name lookup in "
            "every includer; only .cc files may flatten namespaces.";
        r.fixture.path = "src/sim/fixture.hh";
        r.fixture.bad =
            "#pragma once\n"
            "#include <string>\n"
            "using namespace std;\n"
            "string name();\n";
        r.fixture.good =
            "#pragma once\n"
            "#include <string>\n"
            "std::string name();\n";
        r.check = &checkUsingNamespace;
        add(r);
    }
    {
        Rule r;
        r.id = "S-global-init";
        r.category = "structure";
        r.severity = Severity::Error;
        r.summary = "no dynamically-initialized namespace-scope globals";
        r.rationale =
            "Cross-TU static init/teardown order is unspecified; "
            "registries and tables are function-local statics in "
            "this codebase (see sim/registry.cc).";
        r.fixture.path = "src/sim/fixture.cc";
        r.fixture.bad =
            "#include <string>\n"
            "#include <vector>\n"
            "namespace pifetch {\n"
            "const std::vector<std::string> kNames = {\"a\", \"b\"};\n"
            "}\n";
        r.fixture.good =
            "#include <string>\n"
            "#include <vector>\n"
            "namespace pifetch {\n"
            "const std::vector<std::string> &names() {\n"
            "    static const std::vector<std::string> kNames = {\n"
            "        \"a\", \"b\"};\n"
            "    return kNames;\n"
            "}\n"
            "}\n";
        r.check = &checkGlobalInit;
        add(r);
    }
    {
        Rule r;
        r.id = "S-stats-order";
        r.category = "structure";
        r.severity = Severity::Error;
        r.summary = "StatGroup before its Counters; never static";
        r.rationale =
            "A Counter unenrolls from its StatGroup on destruction; "
            "declaring the group after a counter (or giving either "
            "static storage) recreates the PR 3 dangling-enrollment "
            "bug.";
        r.fixture.path = "src/sim/fixture.hh";
        r.fixture.bad =
            "#pragma once\n"
            "#include \"common/stats.hh\"\n"
            "class Core {\n"
            "  private:\n"
            "    Counter hits_;\n"
            "    StatGroup stats_;\n"
            "};\n";
        r.fixture.good =
            "#pragma once\n"
            "#include \"common/stats.hh\"\n"
            "class Core {\n"
            "  private:\n"
            "    StatGroup stats_;\n"
            "    Counter hits_;\n"
            "};\n";
        r.check = &checkStatsOrder;
        add(r);
    }

    // ------------------------------------- driver-level (meta) rules
    {
        Rule r;
        r.id = "lint-bad-suppression";
        r.category = "structure";
        r.severity = Severity::Error;
        r.summary = "suppressions need a known rule id + justification";
        r.rationale =
            "An unexplained or misspelled lint:allow silently "
            "disables enforcement; the justification is the review "
            "record.";
        r.fixture.path = "src/sim/fixture.cc";
        r.fixture.bad =
            "#include <iostream>\n"
            "// lint:allow(H-endl)\n"
            "void hello() { std::cout << \"hi\" << std::endl; }\n";
        r.fixture.good =
            "#include <iostream>\n"
            "// lint:allow(H-endl): demo sink, flushed on purpose\n"
            "void hello() { std::cout << \"hi\" << std::endl; }\n";
        r.check = nullptr;  // enforced by the driver
        add(r);
    }
    {
        Rule r;
        r.id = "lint-unused-suppression";
        r.category = "structure";
        r.severity = Severity::Error;
        r.summary = "suppressions must still suppress something";
        r.rationale =
            "A lint:allow whose violation is gone is a stale "
            "exemption waiting to hide the next regression.";
        r.fixture.path = "src/sim/fixture.cc";
        r.fixture.bad =
            "// lint:allow(H-endl): nothing here uses endl anymore\n"
            "void hello() {}\n";
        r.fixture.good = "void hello() {}\n";
        r.check = nullptr;  // enforced by the driver
        add(r);
    }

    return rules;
}

} // namespace

std::string
severityKey(Severity s)
{
    return s == Severity::Error ? "error" : "warning";
}

std::string
pathStem(const std::string &path)
{
    const std::size_t dot = path.rfind('.');
    const std::size_t slash = path.rfind('/');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash))
        return path;
    return path.substr(0, dot);
}

bool
LintContext::isUnorderedVar(const std::string &name,
                            const std::string &stem) const
{
    for (const auto &[var, declStem] : unorderedVars)
        if (var == name && declStem == stem)
            return true;
    return false;
}

const std::vector<Rule> &
ruleCatalog()
{
    static const std::vector<Rule> rules = buildCatalog();
    return rules;
}

const Rule *
findRule(const std::string &id)
{
    for (const Rule &r : ruleCatalog())
        if (r.id == id)
            return &r;
    return nullptr;
}

void
collectContext(const SourceFile &file, LintContext &ctx)
{
    const Tokens &toks = file.lex.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (!(isIdent(toks[i], "unordered_map") ||
              isIdent(toks[i], "unordered_set") ||
              isIdent(toks[i], "unordered_multimap") ||
              isIdent(toks[i], "unordered_multiset")))
            continue;
        if (i + 1 >= toks.size() || !isPunct(toks[i + 1], "<"))
            continue;
        const std::size_t past = skipAngles(toks, i + 1);
        if (past < toks.size() &&
            toks[past].kind == Token::Kind::Ident) {
            ctx.unorderedVars.emplace_back(toks[past].text,
                                           pathStem(file.path));
        }
    }
}

std::vector<Violation>
runRules(const SourceFile &file, const LintContext &ctx,
         const std::vector<const Rule *> &rules)
{
    std::vector<Violation> out;
    for (const Rule *rule : rules) {
        if (rule && rule->check)
            rule->check(file, ctx, *rule, out);
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const Violation &a, const Violation &b) {
                         return a.line < b.line ||
                                (a.line == b.line && a.rule < b.rule);
                     });
    return out;
}

} // namespace lint
} // namespace pifetch
