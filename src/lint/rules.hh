/**
 * @file
 * The project rule catalog for `pifetch lint`.
 *
 * Each rule encodes one invariant this reproduction depends on but
 * that the compiler cannot enforce, in three classes:
 *
 *  - D (determinism): results must be bit-identical across runs,
 *    thread counts and standard-library implementations. The golden
 *    suite catches a violation only after the nondeterminism fires;
 *    these rules reject the *sources* of nondeterminism outright.
 *  - H (hot path): the replay loop stays allocation-free and
 *    devirtualized (the PR 4 speedup), and concrete prefetcher /
 *    predictor / policy types stay `final` so engine dispatch keeps
 *    monomorphizing.
 *  - S (structure): header hygiene and the Counter/StatGroup
 *    enrollment ordering that caused the PR 3 dangling-enrollment
 *    bug.
 *
 * Every rule ships with a positive and a negative fixture snippet;
 * `pifetch lint --self-test` (and tests/test_lint.cc) replays them
 * so a rule that silently stops firing fails the build, mirroring
 * the planted-fault self-check of `pifetch check`.
 *
 * Rules match the token stream from src/lint/lexer.hh, so banned
 * names inside strings or comments are never flagged. Suppression
 * syntax and policy live in src/lint/driver.hh.
 */

#pragma once

#include <string>
#include <vector>

#include "lint/lexer.hh"

namespace pifetch {
namespace lint {

enum class Severity { Error, Warning };

/** Severity as its canonical report key. */
std::string severityKey(Severity s);

/** One rule hit inside a single file. */
struct Violation
{
    std::string rule;
    Severity severity = Severity::Error;
    unsigned line = 0;
    std::string message;
};

/** One source file presented to the rules. */
struct SourceFile
{
    /** Repo-relative path with '/' separators, e.g. "src/pif/sab.cc". */
    std::string path;
    LexedSource lex;
};

/**
 * Cross-file facts collected in a pre-pass over every scanned file.
 * Today: the names of variables/members declared with an unordered
 * container type, so iteration in a .cc over a member declared in
 * its header is still caught. A declaration only applies to files
 * sharing its path stem (mshr.cc <-> mshr.hh): matching on the bare
 * name repo-wide would flag every same-named vector elsewhere.
 */
struct LintContext
{
    /** Variable name -> path stem (path minus extension) declaring
     *  it as unordered_{map,set}. */
    std::vector<std::pair<std::string, std::string>> unorderedVars;

    bool isUnorderedVar(const std::string &name,
                        const std::string &stem) const;
};

/** @p path without its extension: "src/cache/mshr.cc" -> ".../mshr". */
std::string pathStem(const std::string &path);

/** Self-test fixture: @p bad must fire the rule, @p good must not. */
struct RuleFixture
{
    /** Pretend path, so path-scoped rules exercise their scope. */
    std::string path;
    std::string bad;
    std::string good;
};

/** One entry of the catalog. */
struct Rule
{
    std::string id;         ///< e.g. "D-rand"
    std::string category;   ///< determinism | hot-path | structure
    Severity severity = Severity::Error;
    std::string summary;    ///< one line, for --list-rules
    std::string rationale;  ///< why the project needs it
    RuleFixture fixture;
    /** nullptr for rules the driver enforces itself (suppressions). */
    void (*check)(const SourceFile &, const LintContext &,
                  const Rule &, std::vector<Violation> &) = nullptr;
};

/** The full catalog, stable order (D*, H*, S*). */
const std::vector<Rule> &ruleCatalog();

/** Catalog lookup; nullptr for unknown ids. */
const Rule *findRule(const std::string &id);

/** Pre-pass: record @p file's unordered-container declarations. */
void collectContext(const SourceFile &file, LintContext &ctx);

/**
 * Run @p rules over one file. Suppressions are *not* applied here —
 * that is the driver's job (src/lint/driver.hh) so rule logic stays
 * purely syntactic.
 */
std::vector<Violation> runRules(const SourceFile &file,
                                const LintContext &ctx,
                                const std::vector<const Rule *> &rules);

} // namespace lint
} // namespace pifetch
