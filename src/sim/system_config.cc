/**
 * @file
 * Prefetcher factory.
 */

#include "sim/system_config.hh"

#include "pif/pif_prefetcher.hh"
#include "prefetch/discontinuity.hh"
#include "prefetch/next_line.hh"
#include "prefetch/tifs.hh"

namespace pifetch {

std::string
prefetcherName(PrefetcherKind kind)
{
    switch (kind) {
      case PrefetcherKind::None:          return "None";
      case PrefetcherKind::NextLine:      return "Next-Line";
      case PrefetcherKind::Tifs:          return "TIFS";
      case PrefetcherKind::Discontinuity: return "Discontinuity";
      case PrefetcherKind::Pif:           return "PIF";
      case PrefetcherKind::Perfect:       return "Perfect";
    }
    panic("unknown prefetcher kind");
}

std::unique_ptr<Prefetcher>
makePrefetcher(PrefetcherKind kind, const SystemConfig &cfg,
               bool unbounded)
{
    switch (kind) {
      case PrefetcherKind::None:
      case PrefetcherKind::Perfect:
        return std::make_unique<NullPrefetcher>();
      case PrefetcherKind::NextLine:
        return std::make_unique<NextLinePrefetcher>(cfg.nextLine);
      case PrefetcherKind::Tifs: {
        TifsConfig tc = cfg.tifs;
        tc.unbounded = unbounded;
        return std::make_unique<TifsPrefetcher>(tc);
      }
      case PrefetcherKind::Discontinuity:
        return std::make_unique<DiscontinuityPrefetcher>(
            DiscontinuityConfig{});
      case PrefetcherKind::Pif:
        return std::make_unique<PifPrefetcher>(cfg.pif, unbounded);
    }
    panic("unknown prefetcher kind");
}

} // namespace pifetch
