/**
 * @file
 * Workload construction helpers shared by engines, tests and benches.
 */

#ifndef PIFETCH_SIM_WORKLOADS_HH
#define PIFETCH_SIM_WORKLOADS_HH

#include "trace/executor.hh"
#include "trace/program.hh"
#include "trace/server_suite.hh"

namespace pifetch {

/** Build (and validate) the Program for a server workload. */
Program buildWorkloadProgram(ServerWorkload w,
                             std::uint64_t seed_offset = 0);

/** Executor configuration matching a workload's parameters. */
ExecutorConfig executorConfigFor(const WorkloadParams &params,
                                 std::uint64_t seed_offset = 0);

/** Convenience: executor config for a workload preset. */
ExecutorConfig executorConfigFor(ServerWorkload w,
                                 std::uint64_t seed_offset = 0);

} // namespace pifetch

#endif // PIFETCH_SIM_WORKLOADS_HH
