/**
 * @file
 * Workload construction helpers shared by engines, tests and benches.
 *
 * WorkloadRef is the uniform workload handle of the experiment layer:
 * either a server preset (ServerWorkload) or a lowered declarative
 * spec (trace/workload_spec.hh). Presets convert implicitly, so
 * call sites written against the preset enum keep compiling; the
 * registry, CLI and checker pass specs through the same interface.
 */

#pragma once

#include <memory>
#include <string>

#include "trace/executor.hh"
#include "trace/program.hh"
#include "trace/server_suite.hh"
#include "trace/workload_spec.hh"

namespace pifetch {

/** Build (and validate) the Program for a server workload. */
Program buildWorkloadProgram(ServerWorkload w,
                             std::uint64_t seed_offset = 0);

/** Executor configuration matching a workload's parameters. */
ExecutorConfig executorConfigFor(const WorkloadParams &params,
                                 std::uint64_t seed_offset = 0);

/** Convenience: executor config for a workload preset. */
ExecutorConfig executorConfigFor(ServerWorkload w,
                                 std::uint64_t seed_offset = 0);

/**
 * Executor configuration for a lowered spec: seed folded from program
 * 0's params exactly like the preset path, plus the root spans and
 * phase schedule driving the executor's two-level dispatch.
 *
 * @param params_offset seed offset applied to the program params
 *                      (per-core program variation).
 * @param exec_offset   seed offset applied to the executor seed
 *                      (per-core interleaving variation).
 */
ExecutorConfig executorConfigFor(const LoweredWorkload &lw,
                                 std::uint64_t params_offset = 0,
                                 std::uint64_t exec_offset = 0);

/**
 * A workload handle: server preset or lowered declarative spec.
 *
 * Cheap to copy (specs are shared), implicitly constructible from
 * ServerWorkload.
 */
class WorkloadRef
{
  public:
    WorkloadRef() = default;
    WorkloadRef(ServerWorkload w) : preset_(w) {}
    WorkloadRef(std::shared_ptr<const LoweredWorkload> spec)
        : spec_(std::move(spec))
    {}

    /** True when this handle wraps a spec rather than a preset. */
    bool isSpec() const { return spec_ != nullptr; }

    /** The wrapped preset; only meaningful when !isSpec(). */
    ServerWorkload preset() const { return preset_; }

    /** The wrapped spec; null for presets. */
    const std::shared_ptr<const LoweredWorkload> &lowered() const
    {
        return spec_;
    }

    /** Stable key ("db2", or the spec's slug). */
    std::string key() const;

    /** Display name ("OLTP DB2", or the spec's title). */
    std::string name() const;

    /** Reporting group ("OLTP"/"DSS"/"Web", or the spec's group). */
    std::string group() const;

    /**
     * Generator parameters (program 0 for specs) with the preset-style
     * seed fold for @p seed_offset.
     */
    WorkloadParams params(std::uint64_t seed_offset = 0) const;

    /** Build and validate the (linked) Program. */
    Program buildProgram(std::uint64_t seed_offset = 0) const;

    /** Executor config with separate params/executor seed offsets. */
    ExecutorConfig executorConfig(std::uint64_t params_offset,
                                  std::uint64_t exec_offset) const;

    /** Executor config with both offsets equal (common case). */
    ExecutorConfig
    executorConfig(std::uint64_t seed_offset = 0) const
    {
        return executorConfig(std::uint64_t{0}, seed_offset);
    }

  private:
    ServerWorkload preset_ = ServerWorkload::OltpDb2;
    std::shared_ptr<const LoweredWorkload> spec_;
};

/** Wrap a validated spec as a WorkloadRef (shared, immutable). */
WorkloadRef workloadRefFromSpec(WorkloadSpec spec);

} // namespace pifetch
