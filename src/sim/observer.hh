/**
 * @file
 * Unified engine observation layer.
 *
 * Both engines used to carry two ad-hoc opt-in hooks — enableDigests()
 * and attachEvents(EventStore*, core) — each with its own hot-loop
 * branch and its own per-engine recording code. EngineObservers folds
 * them into one configuration (ObserverConfig) behind one predictable
 * detached-branch per instruction: the batched replay loops test
 * active() once and hand the instruction plus its fetch-access span to
 * observeStep(), which folds the stream digests and appends the
 * event-store rows in a single place. Counter samples are built from
 * the engines' shared RunCounters snapshot, so the two engines'
 * samples stay comparable row for row by construction.
 *
 * Detached (the default) the replay hot path pays the active() test
 * and nothing else; the perf gate locks that.
 */

#pragma once

#include "common/digest.hh"
#include "core/frontend.hh"
#include "query/event_store.hh"
#include "sim/run_counters.hh"
#include "trace/executor.hh"

namespace pifetch {

/** What an engine observes, and where it records. */
struct ObserverConfig
{
    /** Fold retire/access stream digests (src/check/ oracles). */
    bool digests = false;
    /**
     * Record events and windowed counter samples into this store
     * (src/query/); nullptr leaves event recording detached. The
     * store must outlive the engine or the next attachObservers().
     */
    EventStore *events = nullptr;
    /** Core id tagged onto recorded rows (multicore runners). */
    unsigned core = 0;
};

/**
 * Live snapshot of the cumulative timing-independent counters. Both
 * engines sample through this one helper, which is what makes their
 * windowed counter rows directly comparable.
 */
inline RunCounters
liveRunCounters(const Executor &exec, const Frontend &frontend)
{
    RunCounters c;
    c.instrs = exec.retired();
    c.accesses = frontend.correctPathFetches();
    c.misses = frontend.correctPathMisses();
    c.wrongPathFetches = frontend.wrongPathFetches();
    c.mispredicts = frontend.mispredicts();
    c.interrupts = exec.interrupts();
    return c;
}

/** Shape a counter snapshot for the event store's counters table. */
inline CounterSnapshot
counterSnapshotOf(const RunCounters &c, std::uint64_t prefetch_fills)
{
    CounterSnapshot snap;
    snap.accesses = c.accesses;
    snap.misses = c.misses;
    snap.wrongPathFetches = c.wrongPathFetches;
    snap.mispredicts = c.mispredicts;
    snap.interrupts = c.interrupts;
    snap.prefetchFills = prefetch_fills;
    return snap;
}

/**
 * The observation state owned by an engine: digest accumulators plus
 * the attached event store. Configured through attachObservers();
 * everything here is bypassed entirely when active() is false.
 */
class EngineObservers
{
  public:
    /** Replace the configuration (digest state is preserved). */
    void configure(const ObserverConfig &cfg) { cfg_ = cfg; }

    const ObserverConfig &config() const { return cfg_; }

    /** True when the hot loop must call observeStep(). */
    bool active() const { return cfg_.digests || cfg_.events != nullptr; }

    /** Retired-instruction stream digest (0 until digests enabled). */
    std::uint64_t
    retireDigest() const
    {
        return cfg_.digests ? retireDigest_.value() : 0;
    }

    /** Fetch-access stream digest (0 until digests enabled). */
    std::uint64_t
    accessDigest() const
    {
        return cfg_.digests ? accessDigest_.value() : 0;
    }

    /**
     * Observe one retired instruction and the @p count fetch accesses
     * it produced. @p counters is invoked only when a windowed counter
     * sample is due (it should build the engine's CounterSnapshot).
     */
    template <typename CounterFn>
    void
    observeStep(const RetiredInstr &instr, const FetchAccess *events,
                std::size_t count, CounterFn &&counters)
    {
        if (cfg_.digests) {
            digestRetire(retireDigest_, instr);
            for (std::size_t i = 0; i < count; ++i)
                digestAccess(accessDigest_, events[i]);
        }
        if (cfg_.events) {
            cfg_.events->recordRetire(cfg_.core, instr);
            for (std::size_t i = 0; i < count; ++i) {
                const FetchAccess &ev = events[i];
                cfg_.events->recordAccess(cfg_.core, ev,
                                          ev.correctPath
                                              ? instr.pc
                                              : blockBase(ev.block));
            }
            if (cfg_.events->counterSampleDue(cfg_.core))
                cfg_.events->sampleCounters(cfg_.core, counters());
        }
    }

    /** Record a prefetch fill (no-op unless a store is attached). */
    void
    observePrefetchFill(Addr block)
    {
        if (cfg_.events)
            cfg_.events->recordPrefetchFill(cfg_.core, block);
    }

  private:
    ObserverConfig cfg_;
    StreamDigest retireDigest_;
    StreamDigest accessDigest_;
};

} // namespace pifetch
