/**
 * @file
 * Experiment registry implementation.
 *
 * Each runner ports one bench binary's figure-reproduction loop into
 * a structured-result producer. Workload fan-out uses the worker pool
 * (common/parallel.hh) with results landing in fixed slots, so every
 * document is bit-identical at any thread count.
 */

#include "sim/registry.hh"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <type_traits>

#include "common/parallel.hh"
#include "common/types.hh"
#include "pif/pif_prefetcher.hh"
#include "pif/storage.hh"
#include "prefetch/next_line.hh"
#include "sim/multicore.hh"
#include "sim/workloads.hh"

namespace pifetch {

namespace {

std::vector<WorkloadRef>
workloadsOf(const ExperimentSpec &spec, const RunOptions &opts)
{
    return opts.workloads.empty() ? spec.defaultWorkloads
                                  : opts.workloads;
}

ExperimentBudget
budgetOf(const ExperimentSpec &spec, const RunOptions &opts)
{
    return opts.budget ? *opts.budget : spec.defaultBudget;
}

/** Standard row prefix: workload class and display name. */
void
pushWorkloadCells(ResultValue &row, const WorkloadRef &w)
{
    row.push(w.group());
    row.push(w.name());
}

// --------------------------------------------------------- Table I

ResultValue
runTable1(const ExperimentSpec &spec, const RunOptions &opts)
{
    const SystemConfig &cfg = opts.cfg;

    ResultValue system = makeTable(
        "System parameters (Table I left)", {"parameter", "value"});
    {
        ResultValue &rows = *system.find("rows");
        const auto add = [&rows](const std::string &k, ResultValue v) {
            ResultValue row = ResultValue::array();
            row.push(k);
            row.push(std::move(v));
            rows.push(std::move(row));
        };
        add("cores", cfg.numCores);
        add("l1i_bytes", cfg.l1i.sizeBytes);
        add("l1i_assoc", cfg.l1i.assoc);
        add("l1d_bytes", cfg.l1d.sizeBytes);
        add("block_bytes", cfg.l1i.blockBytes);
        add("rob_entries", cfg.core.robEntries);
        add("dispatch_width", cfg.core.dispatchWidth);
        add("l2_bytes", cfg.memory.l2SizeBytes);
        add("l2_hit_latency", cfg.memory.l2HitLatency);
        add("mem_latency", cfg.memory.memLatency);
        add("interconnect_latency", cfg.memory.interconnectLatency);
        add("branch_gshare_entries", cfg.branch.gshareEntries);
        add("pif_history_regions", cfg.pif.historyRegions);
        add("pif_region_blocks", cfg.pif.regionBlocks());
        add("pif_sabs", cfg.pif.numSabs);
    }

    ResultValue storage = makeTable(
        "Predictor storage (Section 5.4 trade-off)",
        {"structure", "kib"});
    {
        const PifStorage s = computePifStorage(cfg.pif);
        ResultValue &rows = *storage.find("rows");
        const auto add = [&rows](const std::string &k, double kib) {
            ResultValue row = ResultValue::array();
            row.push(k);
            row.push(kib);
            rows.push(std::move(row));
        };
        add("pif_history", s.historyBits / 8192.0);
        add("pif_index", s.indexBits / 8192.0);
        add("pif_sabs", s.sabBits / 8192.0);
        add("pif_compactors", s.compactorBits / 8192.0);
        add("pif_total", s.totalKiB());
        add("tifs_equal_capacity", tifsStorageBits(cfg.tifs) / 8192.0);
    }

    const std::vector<WorkloadRef> ws = workloadsOf(spec, opts);
    ResultValue app = makeTable(
        "Application parameters (Table I right, synthetic equivalents)",
        {"group", "workload", "footprint_mb", "app_functions",
         "lib_functions", "transactions", "interrupt_rate"});
    {
        std::vector<std::uint64_t> footprint(ws.size(), 0);
        parallelFor(cfg.threads, ws.size(), [&](std::uint64_t i) {
            footprint[i] = ws[i].buildProgram().footprintBytes();
        });
        ResultValue &rows = *app.find("rows");
        for (std::size_t i = 0; i < ws.size(); ++i) {
            const WorkloadParams p = ws[i].params();
            ResultValue row = ResultValue::array();
            pushWorkloadCells(row, ws[i]);
            row.push(static_cast<double>(footprint[i]) / (1 << 20));
            row.push(p.appFunctions);
            row.push(p.libFunctions);
            row.push(p.transactions);
            row.push(p.interruptRate);
            rows.push(std::move(row));
        }
    }

    ResultValue body = ResultValue::object();
    body.set("tables", ResultValue::array()
                           .push(std::move(system))
                           .push(std::move(storage))
                           .push(std::move(app)));
    return body;
}

// --------------------------------------------------------- Figure 2

ResultValue
runFig2Body(const ExperimentSpec &spec, const RunOptions &opts)
{
    const std::vector<WorkloadRef> ws = workloadsOf(spec, opts);
    const ExperimentBudget budget = budgetOf(spec, opts);

    std::vector<Fig2Result> rs(ws.size());
    parallelFor(opts.cfg.threads, ws.size(), [&](std::uint64_t i) {
        rs[i] = runFig2(ws[i], budget, opts.cfg);
    });

    ResultValue t = makeTable(
        "Correctly predicted correct-path L1-I misses (fraction)",
        {"group", "workload", "miss", "access", "retire",
         "retire_sep", "correct_path_misses"});
    ResultValue &rows = *t.find("rows");
    for (std::size_t i = 0; i < ws.size(); ++i) {
        ResultValue row = ResultValue::array();
        pushWorkloadCells(row, ws[i]);
        row.push(rs[i].missCoverage);
        row.push(rs[i].accessCoverage);
        row.push(rs[i].retireCoverage);
        row.push(rs[i].retireSepCoverage);
        row.push(rs[i].correctPathMisses);
        rows.push(std::move(row));
    }
    ResultValue body = ResultValue::object();
    body.set("tables", ResultValue::array().push(std::move(t)));
    return body;
}

// --------------------------------------------------------- Figure 3

ResultValue
runFig3Body(const ExperimentSpec &spec, const RunOptions &opts)
{
    const std::vector<WorkloadRef> ws = workloadsOf(spec, opts);
    const InstCount instrs = budgetOf(spec, opts).measure;

    std::vector<Fig3Result> rs;
    rs.resize(ws.size(), Fig3Result{});
    parallelFor(opts.cfg.threads, ws.size(), [&](std::uint64_t i) {
        rs[i] = runFig3(ws[i], instrs);
    });

    const auto histTable = [&](const char *title, bool density) {
        std::vector<std::string> cols = {"group", "workload"};
        const RangeHistogram &sample =
            density ? rs.front().density : rs.front().groups;
        for (unsigned b = 0; b < sample.ranges(); ++b)
            cols.push_back(sample.labelAt(b));
        if (density)
            cols.push_back("regions");
        ResultValue t = makeTable(title, cols);
        ResultValue &rows = *t.find("rows");
        for (std::size_t i = 0; i < ws.size(); ++i) {
            const RangeHistogram &h =
                density ? rs[i].density : rs[i].groups;
            ResultValue row = ResultValue::array();
            pushWorkloadCells(row, ws[i]);
            for (unsigned b = 0; b < h.ranges(); ++b)
                row.push(h.fractionAt(b));
            if (density)
                row.push(rs[i].regions);
            rows.push(std::move(row));
        }
        return t;
    };

    ResultValue body = ResultValue::object();
    body.set("tables",
             ResultValue::array()
                 .push(histTable("References to spatial regions by "
                                 "density (unique blocks)", true))
                 .push(histTable("Discontinuous access groups within "
                                 "regions", false)));
    return body;
}

// ------------------------------------------- Figures 7 / 9 (left)

/** Shared shape: per-workload cumulative log2 histogram table. */
ResultValue
cumulativeLog2Body(const std::vector<WorkloadRef> &ws,
                   const std::vector<Log2Histogram> &hists,
                   unsigned bucket_cap, const char *title)
{
    unsigned max_bucket = 1;
    for (const Log2Histogram &h : hists)
        max_bucket = std::max(max_bucket, h.highestBucket());
    max_bucket = std::min(max_bucket, bucket_cap);

    std::vector<std::string> cols = {"log2"};
    for (const WorkloadRef &w : ws)
        cols.push_back(w.name());
    ResultValue t = makeTable(title, cols);
    ResultValue &rows = *t.find("rows");
    for (unsigned b = 0; b <= max_bucket; ++b) {
        ResultValue row = ResultValue::array();
        row.push(b);
        for (const Log2Histogram &h : hists)
            row.push(h.cumulativeAt(b));
        rows.push(std::move(row));
    }
    ResultValue body = ResultValue::object();
    body.set("tables", ResultValue::array().push(std::move(t)));
    return body;
}

ResultValue
runFig7Body(const ExperimentSpec &spec, const RunOptions &opts)
{
    const std::vector<WorkloadRef> ws = workloadsOf(spec, opts);
    const InstCount instrs = budgetOf(spec, opts).measure;
    std::vector<Log2Histogram> hists(ws.size(), Log2Histogram(1));
    parallelFor(opts.cfg.threads, ws.size(), [&](std::uint64_t i) {
        hists[i] = runFig7(ws[i], instrs);
    });
    return cumulativeLog2Body(
        ws, hists, 25,
        "Weighted jump distance in history (cumulative fraction)");
}

ResultValue
runFig9LeftBody(const ExperimentSpec &spec, const RunOptions &opts)
{
    const std::vector<WorkloadRef> ws = workloadsOf(spec, opts);
    const InstCount instrs = budgetOf(spec, opts).measure;
    std::vector<Log2Histogram> hists(ws.size(), Log2Histogram(1));
    parallelFor(opts.cfg.threads, ws.size(), [&](std::uint64_t i) {
        hists[i] = runFig9Left(ws[i], instrs);
    });
    return cumulativeLog2Body(
        ws, hists, 21,
        "Correct predictions by temporal stream length "
        "(cumulative fraction, log2 regions)");
}

// --------------------------------------------------------- Figure 8

ResultValue
runFig8LeftBody(const ExperimentSpec &spec, const RunOptions &opts)
{
    const std::vector<WorkloadRef> ws = workloadsOf(spec, opts);
    const InstCount instrs = budgetOf(spec, opts).measure;

    std::vector<LinearHistogram> hists(ws.size(),
                                       LinearHistogram(-4, 12));
    parallelFor(opts.cfg.threads, ws.size(), [&](std::uint64_t i) {
        hists[i] = runFig8Left(ws[i], instrs);
    });

    // The paper aggregates by workload class; preserve the class
    // order of the selected workloads.
    std::vector<std::string> groups;
    for (const WorkloadRef &w : ws) {
        const std::string g = w.group();
        if (std::find(groups.begin(), groups.end(), g) == groups.end())
            groups.push_back(g);
    }
    std::vector<LinearHistogram> sums(groups.size(),
                                      LinearHistogram(-4, 12));
    for (std::size_t i = 0; i < ws.size(); ++i) {
        const std::size_t g = static_cast<std::size_t>(
            std::find(groups.begin(), groups.end(),
                      ws[i].group()) -
            groups.begin());
        for (int off = -4; off <= 12; ++off) {
            if (off != 0)
                sums[g].add(off, hists[i].weightAt(off));
        }
    }

    std::vector<std::string> cols = {"offset"};
    cols.insert(cols.end(), groups.begin(), groups.end());
    ResultValue t = makeTable(
        "References within spatial regions by distance from trigger "
        "(fraction)", cols);
    ResultValue &rows = *t.find("rows");
    for (int off = -4; off <= 12; ++off) {
        if (off == 0)
            continue;
        ResultValue row = ResultValue::array();
        row.push(off);
        for (const LinearHistogram &h : sums)
            row.push(h.fractionAt(off));
        rows.push(std::move(row));
    }
    ResultValue body = ResultValue::object();
    body.set("tables", ResultValue::array().push(std::move(t)));
    return body;
}

ResultValue
runFig8RightBody(const ExperimentSpec &spec, const RunOptions &opts)
{
    const std::vector<WorkloadRef> ws = workloadsOf(spec, opts);
    const ExperimentBudget budget = budgetOf(spec, opts);

    std::vector<std::vector<Fig8RightPoint>> rs(ws.size());
    parallelFor(opts.cfg.threads, ws.size(), [&](std::uint64_t i) {
        rs[i] = runFig8Right(ws[i], budget, opts.cfg);
    });

    std::vector<std::string> cols = {"group", "workload", "trap_level"};
    for (const Fig8RightPoint &p : rs.front())
        cols.push_back("r" + std::to_string(p.regionBlocks));
    ResultValue t = makeTable(
        "PIF coverage vs spatial region size (fraction)", cols);
    ResultValue &rows = *t.find("rows");
    for (std::size_t i = 0; i < ws.size(); ++i) {
        for (const unsigned tl : {0u, 1u}) {
            ResultValue row = ResultValue::array();
            pushWorkloadCells(row, ws[i]);
            row.push("TL" + std::to_string(tl));
            for (const Fig8RightPoint &p : rs[i])
                row.push(tl == 0 ? p.tl0Coverage : p.tl1Coverage);
            rows.push(std::move(row));
        }
    }
    ResultValue body = ResultValue::object();
    body.set("tables", ResultValue::array().push(std::move(t)));
    return body;
}

// ------------------------------------------------ Figure 9 (right)

ResultValue
runFig9RightBody(const ExperimentSpec &spec, const RunOptions &opts)
{
    const std::vector<WorkloadRef> ws = workloadsOf(spec, opts);
    const ExperimentBudget budget = budgetOf(spec, opts);
    const std::vector<std::uint64_t> sizes = {
        2 * 1024, 8 * 1024, 32 * 1024, 128 * 1024, 512 * 1024,
    };

    std::vector<std::vector<Fig9RightPoint>> rs(ws.size());
    parallelFor(opts.cfg.threads, ws.size(), [&](std::uint64_t i) {
        rs[i] = runFig9Right(ws[i], budget, sizes, opts.cfg);
    });

    std::vector<std::string> cols = {"history_regions"};
    for (const WorkloadRef &w : ws)
        cols.push_back(w.name());
    ResultValue t = makeTable(
        "PIF predictor coverage vs history size (fraction)", cols);
    ResultValue &rows = *t.find("rows");
    for (std::size_t s = 0; s < sizes.size(); ++s) {
        ResultValue row = ResultValue::array();
        row.push(sizes[s]);
        for (const auto &points : rs)
            row.push(points[s].coverage);
        rows.push(std::move(row));
    }
    ResultValue body = ResultValue::object();
    body.set("tables", ResultValue::array().push(std::move(t)));
    return body;
}

// -------------------------------------------------------- Figure 10

ResultValue
runFig10CoverageBody(const ExperimentSpec &spec, const RunOptions &opts)
{
    const std::vector<WorkloadRef> ws = workloadsOf(spec, opts);
    const ExperimentBudget budget = budgetOf(spec, opts);

    ResultValue t = makeTable(
        "L1-I miss coverage, no storage limitation (fraction)",
        {"group", "workload", "next_line", "tifs", "pif",
         "baseline_misses"});
    ResultValue &rows = *t.find("rows");
    // The inner runner fans one engine per prefetcher over the pool;
    // the workload loop stays serial to avoid nested fan-out.
    for (const WorkloadRef &w : ws) {
        const auto points = runFig10Coverage(w, budget, opts.cfg);
        double nl = 0.0;
        double tifs = 0.0;
        double pif = 0.0;
        std::uint64_t base = 0;
        for (const auto &p : points) {
            base = p.baselineMisses;
            if (p.kind == PrefetcherKind::NextLine)
                nl = p.missCoverage;
            if (p.kind == PrefetcherKind::Tifs)
                tifs = p.missCoverage;
            if (p.kind == PrefetcherKind::Pif)
                pif = p.missCoverage;
        }
        ResultValue row = ResultValue::array();
        pushWorkloadCells(row, w);
        row.push(nl);
        row.push(tifs);
        row.push(pif);
        row.push(base);
        rows.push(std::move(row));
    }
    ResultValue body = ResultValue::object();
    body.set("tables", ResultValue::array().push(std::move(t)));
    return body;
}

ResultValue
runFig10SpeedupBody(const ExperimentSpec &spec, const RunOptions &opts)
{
    const std::vector<WorkloadRef> ws = workloadsOf(spec, opts);
    const ExperimentBudget budget = budgetOf(spec, opts);

    ResultValue t = makeTable(
        "Speedup over the no-prefetch baseline (UIPC ratio)",
        {"group", "workload", "next_line", "tifs", "pif", "perfect",
         "baseline_uipc"});
    ResultValue &rows = *t.find("rows");
    double geo_pif = 1.0;
    double geo_perfect = 1.0;
    for (const WorkloadRef &w : ws) {
        const auto points = runFig10Speedup(w, budget, opts.cfg);
        double base_uipc = 0.0;
        double nl = 0.0;
        double tifs = 0.0;
        double pif = 0.0;
        double perfect = 0.0;
        for (const auto &p : points) {
            switch (p.kind) {
              case PrefetcherKind::None:     base_uipc = p.uipc; break;
              case PrefetcherKind::NextLine: nl = p.speedup; break;
              case PrefetcherKind::Tifs:     tifs = p.speedup; break;
              case PrefetcherKind::Pif:      pif = p.speedup; break;
              case PrefetcherKind::Perfect:  perfect = p.speedup; break;
              default: break;
            }
        }
        ResultValue row = ResultValue::array();
        pushWorkloadCells(row, w);
        row.push(nl);
        row.push(tifs);
        row.push(pif);
        row.push(perfect);
        row.push(base_uipc);
        rows.push(std::move(row));
        geo_pif *= pif;
        geo_perfect *= perfect;
    }

    const double n = static_cast<double>(ws.size());
    ResultValue geo = makeTable("Geometric-mean speedup",
                                {"prefetcher", "speedup"});
    ResultValue &geo_rows = *geo.find("rows");
    const auto add = [&geo_rows](const char *name, double product,
                                 double count) {
        ResultValue row = ResultValue::array();
        row.push(name);
        row.push(count == 1.0 ? product
                              : std::pow(product, 1.0 / count));
        geo_rows.push(std::move(row));
    };
    add("PIF", geo_pif, n);
    add("Perfect", geo_perfect, n);

    ResultValue body = ResultValue::object();
    body.set("tables", ResultValue::array()
                           .push(std::move(t))
                           .push(std::move(geo)));
    return body;
}

// --------------------------------------------------------- Ablation

ResultValue
runAblationBody(const ExperimentSpec &spec, const RunOptions &opts)
{
    // Single-workload study: only the first selection runs, and the
    // body reports that back so meta.workloads never over-claims.
    const WorkloadRef w = workloadsOf(spec, opts).front();
    const ExperimentBudget budget = budgetOf(spec, opts);
    const Program prog = w.buildProgram();
    const SystemConfig &base = opts.cfg;

    const auto runPif = [&](const SystemConfig &cfg) {
        TraceEngine engine(cfg, prog, w.executorConfig(),
                           std::make_unique<PifPrefetcher>(cfg.pif));
        return engine.run(budget.warmup, budget.measure);
    };

    ResultValue tables = ResultValue::array();

    {
        const std::vector<unsigned> depths = {1, 2, 4, 8, 16};
        std::vector<TraceRunResult> rs(depths.size());
        parallelFor(base.threads, depths.size(), [&](std::uint64_t i) {
            SystemConfig cfg = base;
            cfg.pif.temporalEntries = depths[i];
            rs[i] = runPif(cfg);
        });
        ResultValue t = makeTable(
            "Temporal compactor depth (PIF on " + w.name() + ")",
            {"entries", "coverage", "issued_per_kinst", "miss_ratio"});
        ResultValue &rows = *t.find("rows");
        for (std::size_t i = 0; i < depths.size(); ++i) {
            ResultValue row = ResultValue::array();
            row.push(depths[i]);
            row.push(rs[i].pifCoverage);
            row.push(static_cast<double>(rs[i].prefetchIssued) *
                     1000.0 / static_cast<double>(rs[i].instrs));
            row.push(rs[i].missRatio());
            rows.push(std::move(row));
        }
        tables.push(std::move(t));
    }

    {
        struct Grid { unsigned sabs, window; };
        std::vector<Grid> grid;
        for (unsigned sabs : {1u, 2u, 4u, 8u})
            for (unsigned window : {3u, 7u, 15u})
                grid.push_back({sabs, window});
        std::vector<TraceRunResult> rs(grid.size());
        parallelFor(base.threads, grid.size(), [&](std::uint64_t i) {
            SystemConfig cfg = base;
            cfg.pif.numSabs = grid[i].sabs;
            cfg.pif.sabWindowRegions = grid[i].window;
            rs[i] = runPif(cfg);
        });
        ResultValue t = makeTable(
            "SAB count x window (paper: 4 SABs x 7 regions)",
            {"sabs", "window", "coverage", "miss_ratio"});
        ResultValue &rows = *t.find("rows");
        for (std::size_t i = 0; i < grid.size(); ++i) {
            ResultValue row = ResultValue::array();
            row.push(grid[i].sabs);
            row.push(grid[i].window);
            row.push(rs[i].pifCoverage);
            row.push(rs[i].missRatio());
            rows.push(std::move(row));
        }
        tables.push(std::move(t));
    }

    {
        std::vector<TraceRunResult> rs(2);
        parallelFor(base.threads, 2, [&](std::uint64_t i) {
            SystemConfig cfg = base;
            cfg.pif.separateTrapLevels = i == 1;
            rs[i] = runPif(cfg);
        });
        ResultValue t = makeTable(
            "Trap-level stream separation",
            {"separate", "coverage", "miss_ratio"});
        ResultValue &rows = *t.find("rows");
        for (std::size_t i = 0; i < rs.size(); ++i) {
            ResultValue row = ResultValue::array();
            row.push(i == 1);
            row.push(rs[i].pifCoverage);
            row.push(rs[i].missRatio());
            rows.push(std::move(row));
        }
        tables.push(std::move(t));
    }

    {
        const std::vector<std::uint64_t> totals = {8192, 32768};
        std::vector<SharedPifStudyResult> rs(totals.size());
        // runSharedPifStudy interleaves its engines itself; keep the
        // outer loop serial to bound concurrent engine count.
        for (std::size_t i = 0; i < totals.size(); ++i) {
            rs[i] = runSharedPifStudy(w, 4, totals[i],
                                      budget.warmup / 2,
                                      budget.measure / 2, base);
        }
        ResultValue t = makeTable(
            "Shared vs private PIF storage (4 cores)",
            {"total_regions", "private_coverage", "shared_coverage",
             "private_miss_ratio", "shared_miss_ratio"});
        ResultValue &rows = *t.find("rows");
        for (std::size_t i = 0; i < totals.size(); ++i) {
            ResultValue row = ResultValue::array();
            row.push(totals[i]);
            row.push(rs[i].privateCoverage);
            row.push(rs[i].sharedCoverage);
            row.push(rs[i].privateMissRatio);
            row.push(rs[i].sharedMissRatio);
            rows.push(std::move(row));
        }
        tables.push(std::move(t));
    }

    {
        const std::vector<unsigned> degrees = {1, 2, 4, 8};
        std::vector<TraceRunResult> rs(degrees.size());
        parallelFor(base.threads, degrees.size(), [&](std::uint64_t i) {
            SystemConfig cfg = base;
            cfg.nextLine.degree = degrees[i];
            TraceEngine engine(
                cfg, prog, w.executorConfig(),
                std::make_unique<NextLinePrefetcher>(cfg.nextLine));
            rs[i] = engine.run(budget.warmup, budget.measure);
        });
        ResultValue t = makeTable(
            "Next-line degree",
            {"degree", "miss_ratio", "useful_per_fill"});
        ResultValue &rows = *t.find("rows");
        for (std::size_t i = 0; i < degrees.size(); ++i) {
            const double acc = rs[i].prefetchFills == 0
                ? 0.0
                : static_cast<double>(rs[i].usefulPrefetches) /
                  static_cast<double>(rs[i].prefetchFills);
            ResultValue row = ResultValue::array();
            row.push(degrees[i]);
            row.push(rs[i].missRatio());
            row.push(acc);
            rows.push(std::move(row));
        }
        tables.push(std::move(t));
    }

    ResultValue body = ResultValue::object();
    body.set("tables", std::move(tables));
    body.set("workloads",
             ResultValue::array().push(w.key()));
    return body;
}

ExperimentBudget
engineBudget()
{
    ExperimentBudget b;
    b.warmup = 1'500'000;
    b.measure = 6'000'000;
    return b;
}

} // namespace

const std::vector<ExperimentSpec> &
experimentRegistry()
{
    static const std::vector<ExperimentSpec> registry = [] {
        std::vector<ExperimentSpec> specs;
        std::vector<WorkloadRef> all;
        for (ServerWorkload w : allServerWorkloads())
            all.push_back(w);

        specs.push_back({
            "table1",
            "System and application parameters (Table I) plus the "
            "Section 5.4 predictor storage model",
            "",
            all, engineBudget(), runTable1});
        specs.push_back({
            "fig2-streams",
            "Correctly predicted correct-path L1-I misses at the four "
            "stream observation points (Figure 2)",
            "paper shape: Miss < Access < Retire < RetireSep; "
            "RetireSep near-perfect",
            all, engineBudget(), runFig2Body});
        specs.push_back({
            "fig3-regions",
            "Spatial region density and discontinuous access groups "
            "(Figure 3)",
            "paper shape: >50% of regions access more than one block; "
            "about a fifth observe discontinuous accesses",
            all, engineBudget(), runFig3Body});
        specs.back().usesConfig = false;
        specs.push_back({
            "fig7-jumpdist",
            "Coverage-weighted jump distance in history (Figure 7)",
            "paper shape: medium-aged and old streams contribute as "
            "many correct predictions as recent streams",
            all, engineBudget(), runFig7Body});
        specs.back().usesConfig = false;
        specs.push_back({
            "fig8-offsets",
            "References by block offset from the trigger access "
            "(Figure 8 left)",
            "paper shape: +1/+2 dominate; frequency decays with "
            "distance; backward accesses occur with significant "
            "frequency",
            all, engineBudget(), runFig8LeftBody});
        specs.back().usesConfig = false;
        specs.push_back({
            "fig8-regionsize",
            "PIF coverage per trap level vs spatial region size "
            "(Figure 8 right)",
            "paper shape: TL0 grows slightly with region size; TL1 "
            "improves significantly",
            all, engineBudget(), runFig8RightBody});
        specs.push_back({
            "fig9-streamlen",
            "Correct predictions by temporal stream length "
            "(Figure 9 left)",
            "paper shape: medium and long streams contribute more "
            "correct predictions than short streams",
            all, engineBudget(), runFig9LeftBody});
        specs.back().usesConfig = false;
        specs.push_back({
            "fig9-history",
            "PIF predictor coverage vs history buffer capacity "
            "(Figure 9 right)",
            "paper shape: coverage rises monotonically with storage; "
            "little justification beyond 32K regions",
            all, engineBudget(), runFig9RightBody});
        specs.push_back({
            "fig10-coverage",
            "L1-I miss coverage of Next-Line, TIFS and PIF without "
            "storage limitations (Figure 10 left)",
            "paper shape: PIF nearly perfect across all workloads; "
            "TIFS 65-90%; next-line below TIFS",
            all, engineBudget(), runFig10CoverageBody});
        specs.push_back({
            "fig10-speedup",
            "UIPC speedup over the no-prefetch baseline "
            "(Figure 10 right)",
            "paper shape: Next-Line < TIFS < PIF ~= Perfect "
            "(paper: PIF +27% avg, perfect +29%)",
            all, engineBudget(), runFig10SpeedupBody});
        specs.push_back({
            "ablation",
            "Design-space ablations: temporal compactor depth, SAB "
            "grid, trap separation, shared storage, next-line degree",
            "",
            {ServerWorkload::OltpDb2}, engineBudget(),
            runAblationBody});
        return specs;
    }();
    return registry;
}

const ExperimentSpec *
findExperiment(const std::string &name)
{
    for (const ExperimentSpec &spec : experimentRegistry()) {
        if (spec.name == name)
            return &spec;
    }
    return nullptr;
}

ResultValue
configToResult(const SystemConfig &cfg)
{
    ResultValue pif = ResultValue::object();
    pif.set("blocksBefore", cfg.pif.blocksBefore);
    pif.set("blocksAfter", cfg.pif.blocksAfter);
    pif.set("temporalEntries", cfg.pif.temporalEntries);
    pif.set("historyRegions", cfg.pif.historyRegions);
    pif.set("indexEntries", cfg.pif.indexEntries);
    pif.set("numSabs", cfg.pif.numSabs);
    pif.set("sabWindowRegions", cfg.pif.sabWindowRegions);
    pif.set("separateTrapLevels", cfg.pif.separateTrapLevels);

    ResultValue out = ResultValue::object();
    out.set("seed", cfg.seed);
    out.set("numCores", cfg.numCores);
    out.set("l1iBytes", cfg.l1i.sizeBytes);
    out.set("l1iAssoc", cfg.l1i.assoc);
    out.set("pif", std::move(pif));
    out.set("tifsHistoryEntries", cfg.tifs.historyEntries);
    out.set("nextLineDegree", cfg.nextLine.degree);
    out.set("memLatency", cfg.memory.memLatency);
    return out;
}

ResultValue
runExperiment(const ExperimentSpec &spec, const RunOptions &opts)
{
    const ExperimentBudget budget = budgetOf(spec, opts);
    ResultValue body = spec.run(spec, opts);

    ResultValue meta = ResultValue::object();
    // Analysis-only runners never read the system config and make a
    // single pass of `measure` instructions; omitting seed/config/
    // warmup keeps the provenance honest (they had no effect).
    if (spec.usesConfig) {
        meta.set("seed", opts.cfg.seed);
        meta.set("warmup", budget.warmup);
    }
    meta.set("measure", budget.measure);
    meta.set("threads", resolveThreads(opts.cfg.threads));
    meta.set("git", gitDescribe());
    // A body may narrow the selection (the ablation runs only its
    // first workload); trust its report over the requested list.
    if (ResultValue *used = body.find("workloads")) {
        meta.set("workloads", std::move(*used));
    } else {
        ResultValue workloads = ResultValue::array();
        for (const WorkloadRef &w : workloadsOf(spec, opts))
            workloads.push(w.key());
        meta.set("workloads", std::move(workloads));
    }
    if (spec.usesConfig)
        meta.set("config", configToResult(opts.cfg));

    ResultValue doc = ResultValue::object();
    doc.set("experiment", spec.name);
    doc.set("description", spec.description);
    doc.set("meta", std::move(meta));
    if (ResultValue *tables = body.find("tables"))
        doc.set("tables", std::move(*tables));
    ResultValue notes = ResultValue::array();
    if (const ResultValue *body_notes = body.find("notes")) {
        for (std::size_t i = 0; i < body_notes->size(); ++i)
            notes.push(body_notes->at(i));
    }
    if (!spec.paperShape.empty())
        notes.push(spec.paperShape);
    doc.set("notes", std::move(notes));
    return doc;
}

// --------------------------------------------------- config overrides

bool
parseU64Value(const std::string &s, std::uint64_t &out)
{
    // strtoull silently wraps negatives to huge values; reject them.
    if (s.empty() || s.find('-') != std::string::npos)
        return false;
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 0);
    if (errno != 0 || !end || *end != '\0')
        return false;
    out = v;
    return true;
}

namespace {

bool
parseBool(const std::string &s, bool &out)
{
    if (s == "1" || s == "true" || s == "on") {
        out = true;
        return true;
    }
    if (s == "0" || s == "false" || s == "off") {
        out = false;
        return true;
    }
    return false;
}

bool
parseDouble(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (!end || *end != '\0')
        return false;
    out = v;
    return true;
}

} // namespace

bool
applyConfigOverride(SystemConfig &cfg, const std::string &key,
                    const std::string &value)
{
    std::uint64_t u = 0;
    bool b = false;
    double d = 0.0;

    const auto setU = [&](auto &field) {
        if (!parseU64Value(value, u))
            return false;
        field = static_cast<std::decay_t<decltype(field)>>(u);
        return true;
    };

    if (key == "seed") return setU(cfg.seed);
    if (key == "threads") return setU(cfg.threads);
    if (key == "numCores") return setU(cfg.numCores);
    if (key == "l1i.sizeBytes") return setU(cfg.l1i.sizeBytes);
    if (key == "l1i.assoc") return setU(cfg.l1i.assoc);
    if (key == "l1i.mshrs") return setU(cfg.l1i.mshrs);
    if (key == "memory.memLatency") return setU(cfg.memory.memLatency);
    if (key == "memory.l2HitLatency")
        return setU(cfg.memory.l2HitLatency);
    if (key == "core.robEntries") return setU(cfg.core.robEntries);
    if (key == "core.dispatchWidth")
        return setU(cfg.core.dispatchWidth);
    if (key == "core.retireWidth") return setU(cfg.core.retireWidth);
    if (key == "pif.blocksBefore") return setU(cfg.pif.blocksBefore);
    if (key == "pif.blocksAfter") return setU(cfg.pif.blocksAfter);
    if (key == "pif.temporalEntries")
        return setU(cfg.pif.temporalEntries);
    if (key == "pif.historyRegions")
        return setU(cfg.pif.historyRegions);
    if (key == "pif.indexEntries") return setU(cfg.pif.indexEntries);
    if (key == "pif.numSabs") return setU(cfg.pif.numSabs);
    if (key == "pif.sabWindowRegions")
        return setU(cfg.pif.sabWindowRegions);
    if (key == "pif.separateTrapLevels") {
        if (!parseBool(value, b))
            return false;
        cfg.pif.separateTrapLevels = b;
        return true;
    }
    if (key == "tifs.historyEntries")
        return setU(cfg.tifs.historyEntries);
    if (key == "tifs.sabWindowBlocks")
        return setU(cfg.tifs.sabWindowBlocks);
    if (key == "nextLine.degree") return setU(cfg.nextLine.degree);
    if (key == "trap.perInstrProbability") {
        if (!parseDouble(value, d))
            return false;
        cfg.trap.perInstrProbability = d;
        return true;
    }
    if (key == "trap.handlerCount") return setU(cfg.trap.handlerCount);
    return false;
}

const std::vector<std::string> &
configOverrideKeys()
{
    static const std::vector<std::string> keys = {
        "seed", "threads", "numCores",
        "l1i.sizeBytes", "l1i.assoc", "l1i.mshrs",
        "memory.memLatency", "memory.l2HitLatency",
        "core.robEntries", "core.dispatchWidth", "core.retireWidth",
        "pif.blocksBefore", "pif.blocksAfter", "pif.temporalEntries",
        "pif.historyRegions", "pif.indexEntries", "pif.numSabs",
        "pif.sabWindowRegions", "pif.separateTrapLevels",
        "tifs.historyEntries", "tifs.sabWindowBlocks",
        "nextLine.degree",
        "trap.perInstrProbability", "trap.handlerCount",
    };
    return keys;
}

std::string
gitDescribe()
{
#ifdef PIFETCH_GIT_DESCRIBE
    return PIFETCH_GIT_DESCRIBE;
#else
    return "unknown";
#endif
}

// ----------------------------------------------------------- goldens

namespace {

/**
 * Load a zoo spec for the golden suite. The suite must never silently
 * shrink, so a missing or invalid zoo file is a hard error.
 */
WorkloadRef
zooWorkload(const std::string &key)
{
    const auto entry = findZooEntry(key);
    if (!entry) {
        panic("golden suite: workload spec '" + key +
              "' not found under " + workloadZooDir());
    }
    std::string err;
    auto spec = loadWorkloadSpecFile(entry->path, &err);
    if (!spec)
        panic("golden suite: " + err);
    return workloadRefFromSpec(std::move(*spec));
}

} // namespace

const std::vector<GoldenEntry> &
goldenSuite()
{
    static const std::vector<GoldenEntry> suite = [] {
        ExperimentBudget small;
        small.warmup = 120'000;
        small.measure = 260'000;

        std::vector<GoldenEntry> entries;
        {
            GoldenEntry e;
            e.experiment = "fig2-streams";
            e.options.workloads = {ServerWorkload::OltpDb2,
                                   ServerWorkload::WebApache};
            e.options.budget = small;
            entries.push_back(std::move(e));
        }
        {
            GoldenEntry e;
            e.experiment = "fig9-history";
            e.options.workloads = {ServerWorkload::OltpDb2};
            e.options.budget = small;
            entries.push_back(std::move(e));
        }
        {
            GoldenEntry e;
            e.experiment = "fig10-coverage";
            e.options.workloads = {ServerWorkload::OltpDb2,
                                   ServerWorkload::WebApache};
            e.options.budget = small;
            entries.push_back(std::move(e));
        }
        {
            GoldenEntry e;
            e.experiment = "fig10-speedup";
            e.options.workloads = {ServerWorkload::OltpDb2};
            e.options.budget = small;
            entries.push_back(std::move(e));
        }
        // Spec-driven runs are locked exactly like the preset ones:
        // two zoo workloads through two different experiments.
        {
            GoldenEntry e;
            e.experiment = "fig2-streams";
            e.options.workloads = {zooWorkload("microservice_fanout")};
            e.options.budget = small;
            e.fixture = "zoo-microservice-fanout";
            entries.push_back(std::move(e));
        }
        {
            GoldenEntry e;
            e.experiment = "fig10-coverage";
            e.options.workloads = {zooWorkload("cold_start_storm")};
            e.options.budget = small;
            e.fixture = "zoo-cold-start-storm";
            entries.push_back(std::move(e));
        }
        return entries;
    }();
    return suite;
}

std::string
goldenFixtureName(const GoldenEntry &entry)
{
    return entry.fixture.empty() ? entry.experiment : entry.fixture;
}

std::string
goldenJson(const GoldenEntry &entry, unsigned threads)
{
    const ExperimentSpec *spec = findExperiment(entry.experiment);
    if (!spec)
        panic("golden entry references unknown experiment");

    RunOptions opts = entry.options;
    opts.cfg.threads = threads;
    const ExperimentBudget budget = opts.budget ? *opts.budget
                                                : spec->defaultBudget;
    ResultValue body = spec->run(*spec, opts);

    // Pinned metadata only: nothing that varies with checkout, host
    // or PIFETCH_THREADS may reach the fixture bytes.
    ResultValue meta = ResultValue::object();
    meta.set("mode", "golden");
    meta.set("seed", opts.cfg.seed);
    meta.set("warmup", budget.warmup);
    meta.set("measure", budget.measure);
    ResultValue workloads = ResultValue::array();
    for (const WorkloadRef &w : opts.workloads)
        workloads.push(w.key());
    meta.set("workloads", std::move(workloads));

    ResultValue doc = ResultValue::object();
    doc.set("experiment", spec->name);
    doc.set("meta", std::move(meta));
    if (ResultValue *tables = body.find("tables"))
        doc.set("tables", std::move(*tables));
    return toJson(doc, 2) + "\n";
}

} // namespace pifetch
