/**
 * @file
 * The timing-independent counter block shared by both engines.
 *
 * TraceRunResult and CycleRunResult used to carry two hand-kept copies
 * of the same field list; every new counter had to be added, snapshot,
 * delta'd and compared in two places. RunCounters is the single
 * definition: both result structs inherit it, the engines fill it by
 * subtracting two live snapshots, and the differential oracles
 * (src/check/invariants.cc) and the query recorder's counter samples
 * (src/sim/observer.hh) consume it field-name for field-name.
 *
 * Every field here is timing-independent by construction — derived
 * from the executor and front-end, which both engines drive
 * identically — except `misses`, which prefetch fill timing may
 * perturb (the cross-engine oracle compares it only when fills are
 * instant).
 */

#pragma once

#include <cstdint>

#include "common/types.hh"

namespace pifetch {

/** Counters of one measurement window (or one live snapshot). */
struct RunCounters
{
    InstCount instrs = 0;
    /** Correct-path block fetches / misses. */
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
    /** Wrong-path block fetches injected by mispredictions. */
    std::uint64_t wrongPathFetches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t interrupts = 0;
    /**
     * Whole-run stream digests (warmup + measurement); zero unless the
     * engine ran with digests enabled (ObserverConfig::digests). The
     * retire digest folds every retired instruction, the access digest
     * every fetch access the front-end performed (block, path, trap
     * level — not hit/miss, which legitimately differs across engines
     * with different fill timing). Used by the differential oracle
     * (src/check/).
     */
    std::uint64_t retireDigest = 0;
    std::uint64_t accessDigest = 0;

    /** Correct-path miss ratio over the window. */
    double
    missRatio() const
    {
        return accesses == 0
            ? 0.0
            : static_cast<double>(misses) / static_cast<double>(accesses);
    }

    /**
     * Rebase cumulative counters against the window-start snapshot
     * @p start (digests are whole-run by contract and stay untouched).
     */
    void
    subtractBase(const RunCounters &start)
    {
        instrs -= start.instrs;
        accesses -= start.accesses;
        misses -= start.misses;
        wrongPathFetches -= start.wrongPathFetches;
        mispredicts -= start.mispredicts;
        interrupts -= start.interrupts;
    }
};

} // namespace pifetch
