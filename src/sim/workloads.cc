/**
 * @file
 * Workload helper implementation.
 */

#include "sim/workloads.hh"

#include <algorithm>

namespace pifetch {

Program
buildWorkloadProgram(ServerWorkload w, std::uint64_t seed_offset)
{
    return WorkloadGenerator::build(workloadParams(w, seed_offset));
}

ExecutorConfig
executorConfigFor(const WorkloadParams &params, std::uint64_t seed_offset)
{
    ExecutorConfig cfg;
    cfg.seed = params.seed ^ (0xabcdef123456ull + seed_offset);
    cfg.interruptRate = params.interruptRate;
    cfg.maxCallDepth = params.maxCallDepth;
    return cfg;
}

ExecutorConfig
executorConfigFor(ServerWorkload w, std::uint64_t seed_offset)
{
    return executorConfigFor(workloadParams(w), seed_offset);
}

ExecutorConfig
executorConfigFor(const LoweredWorkload &lw, std::uint64_t params_offset,
                  std::uint64_t exec_offset)
{
    ExecutorConfig cfg =
        executorConfigFor(lw.params(0, params_offset), exec_offset);
    cfg.interruptRate = lw.blendedInterruptRate();
    for (const WorkloadSpecProgram &pr : lw.spec.programs)
        cfg.maxCallDepth =
            std::max(cfg.maxCallDepth, pr.params.maxCallDepth);
    cfg.rootSpanSizes = lw.rootSpans();
    cfg.phases = lw.executorPhases();
    return cfg;
}

std::string
WorkloadRef::key() const
{
    return spec_ ? spec_->key() : workloadKey(preset_);
}

std::string
WorkloadRef::name() const
{
    return spec_ ? spec_->title() : workloadName(preset_);
}

std::string
WorkloadRef::group() const
{
    return spec_ ? spec_->group() : workloadGroup(preset_);
}

WorkloadParams
WorkloadRef::params(std::uint64_t seed_offset) const
{
    return spec_ ? spec_->params(0, seed_offset)
                 : workloadParams(preset_, seed_offset);
}

Program
WorkloadRef::buildProgram(std::uint64_t seed_offset) const
{
    return spec_ ? spec_->build(seed_offset)
                 : buildWorkloadProgram(preset_, seed_offset);
}

ExecutorConfig
WorkloadRef::executorConfig(std::uint64_t params_offset,
                            std::uint64_t exec_offset) const
{
    if (spec_)
        return executorConfigFor(*spec_, params_offset, exec_offset);
    return executorConfigFor(workloadParams(preset_, params_offset),
                             exec_offset);
}

WorkloadRef
workloadRefFromSpec(WorkloadSpec spec)
{
    return WorkloadRef(std::make_shared<const LoweredWorkload>(
        lowerWorkloadSpec(std::move(spec))));
}

} // namespace pifetch
