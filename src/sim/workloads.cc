/**
 * @file
 * Workload helper implementation.
 */

#include "sim/workloads.hh"

namespace pifetch {

Program
buildWorkloadProgram(ServerWorkload w, std::uint64_t seed_offset)
{
    return WorkloadGenerator::build(workloadParams(w, seed_offset));
}

ExecutorConfig
executorConfigFor(const WorkloadParams &params, std::uint64_t seed_offset)
{
    ExecutorConfig cfg;
    cfg.seed = params.seed ^ (0xabcdef123456ull + seed_offset);
    cfg.interruptRate = params.interruptRate;
    cfg.maxCallDepth = params.maxCallDepth;
    return cfg;
}

ExecutorConfig
executorConfigFor(ServerWorkload w, std::uint64_t seed_offset)
{
    return executorConfigFor(workloadParams(w), seed_offset);
}

} // namespace pifetch
