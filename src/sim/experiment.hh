/**
 * @file
 * Per-figure experiment drivers.
 *
 * One function per table/figure of the paper's evaluation; the bench
 * binaries call these and print the rows. Tests call them with small
 * instruction budgets to check invariants cheaply.
 */

#pragma once

#include <vector>

#include "common/config.hh"
#include "common/histogram.hh"
#include "sim/system_config.hh"
#include "sim/trace_engine.hh"
#include "sim/workloads.hh"
#include "trace/server_suite.hh"

namespace pifetch {

/** Default instruction budgets for the experiments. */
struct ExperimentBudget
{
    InstCount warmup = 2'000'000;
    InstCount measure = 8'000'000;
};

/** Figure 2: stream-observation-point coverage for one workload. */
struct Fig2Result
{
    std::string workload;  //!< workload key (preset or spec slug)
    std::uint64_t correctPathMisses = 0;
    double missCoverage = 0.0;      //!< predict the L1-I miss stream
    double accessCoverage = 0.0;    //!< predict the fetch-access stream
    double retireCoverage = 0.0;    //!< predict the retire-order stream
    double retireSepCoverage = 0.0; //!< retire streams split by trap level
};

/** Run the Figure 2 study on one workload. */
Fig2Result runFig2(const WorkloadRef &w, const ExperimentBudget &budget,
                   const SystemConfig &cfg = SystemConfig{});

/** Figure 3: spatial region density and discontinuity for a workload. */
struct Fig3Result
{
    std::string workload;  //!< workload key (preset or spec slug)
    RangeHistogram density{{1, 2, 4, 8, 16, 32}};
    RangeHistogram groups{{1, 2, 4, 8, 16}};
    std::uint64_t regions = 0;
};

/** Run the Figure 3 study (regions over the retire-order stream). */
Fig3Result runFig3(const WorkloadRef &w, InstCount instrs);

/** Figure 7: coverage-weighted jump distance histogram. */
Log2Histogram runFig7(const WorkloadRef &w, InstCount instrs);

/** Figure 8 (left): access frequency by offset from the trigger. */
LinearHistogram runFig8Left(const WorkloadRef &w, InstCount instrs);

/** Figure 8 (right): PIF coverage per trap level vs region size. */
struct Fig8RightPoint
{
    unsigned regionBlocks = 0;
    double tl0Coverage = 0.0;
    double tl1Coverage = 0.0;
};

std::vector<Fig8RightPoint>
runFig8Right(const WorkloadRef &w, const ExperimentBudget &budget,
             const SystemConfig &cfg = SystemConfig{});

/** Figure 9 (left): coverage-weighted temporal stream lengths
 * (in spatial regions). */
Log2Histogram runFig9Left(const WorkloadRef &w, InstCount instrs);

/** Figure 9 (right): PIF coverage vs history buffer capacity. */
struct Fig9RightPoint
{
    std::uint64_t historyRegions = 0;
    double coverage = 0.0;
};

std::vector<Fig9RightPoint>
runFig9Right(const WorkloadRef &w, const ExperimentBudget &budget,
             const std::vector<std::uint64_t> &sizes,
             const SystemConfig &cfg = SystemConfig{});

/** Figure 10 (left): L1-I miss coverage per prefetcher. */
struct Fig10CoveragePoint
{
    PrefetcherKind kind;
    double missCoverage = 0.0;
    std::uint64_t baselineMisses = 0;
    std::uint64_t remainingMisses = 0;
};

std::vector<Fig10CoveragePoint>
runFig10Coverage(const WorkloadRef &w, const ExperimentBudget &budget,
                 const SystemConfig &cfg = SystemConfig{});

/** Figure 10 (right): UIPC speedup over the no-prefetch baseline. */
struct Fig10SpeedupPoint
{
    PrefetcherKind kind;
    double uipc = 0.0;
    double speedup = 0.0;
};

std::vector<Fig10SpeedupPoint>
runFig10Speedup(const WorkloadRef &w, const ExperimentBudget &budget,
                const SystemConfig &cfg = SystemConfig{});

} // namespace pifetch
