/**
 * @file
 * Cycle-level simulation engine (Figure 10 right).
 *
 * Adds timing to the functional pipeline: demand misses stall the core
 * for the L2/memory fill latency, prefetches occupy MSHRs and complete
 * after their fill latency (late prefetches expose the residual), and
 * mispredictions charge the resolution penalty. A Perfect
 * configuration services every fetch at hit latency (Section 5.6's
 * perfect-latency cache).
 *
 * The instruction stream is decoded a structure-of-arrays RecordBatch
 * at a time (trace/record.hh), like TraceEngine; the timed stages
 * (ready-fill installation, stall charging, MSHR-limited issue) stay
 * strictly per-instruction, so cycle counts are bit-identical at any
 * batch length.
 */

#pragma once

#include <memory>
#include <unordered_map>

#include "cache/cache.hh"
#include "cache/hierarchy.hh"
#include "cache/mshr.hh"
#include "common/config.hh"
#include "core/cycle_core.hh"
#include "core/frontend.hh"
#include "sim/observer.hh"
#include "sim/run_counters.hh"
#include "sim/system_config.hh"
#include "trace/executor.hh"
#include "trace/program.hh"

namespace pifetch {

/**
 * Results of one timed run (measurement window only).
 *
 * The timing-independent counter block (and the stream digests) is
 * the shared RunCounters base, mirroring TraceRunResult so the
 * differential oracle (src/check/) compares the two engines stat for
 * stat: the fetch sequence is timing-independent by construction, so
 * accesses/mispredicts/wrongPathFetches/interrupts must match the
 * functional engine exactly; misses may differ only through prefetch
 * fill timing.
 */
struct CycleRunResult : RunCounters
{
    Cycle cycles = 0;
    InstCount userInstrs = 0;
    double uipc = 0.0;
    Cycle fetchStallCycles = 0;
    Cycle branchPenaltyCycles = 0;
    std::uint64_t demandMisses = 0;
    std::uint64_t latePrefetches = 0;  //!< demand caught an in-flight fill
    std::uint64_t prefetchFills = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t l2Misses = 0;
};

/**
 * Timed engine: executor -> front-end -> L1-I/L2 -> prefetcher with
 * MSHR-limited, latency-delayed prefetch fills.
 */
class CycleEngine
{
  public:
    CycleEngine(const SystemConfig &cfg, const Program &prog,
                const ExecutorConfig &exec_cfg, PrefetcherKind kind);

    /** Warm up, then measure. */
    CycleRunResult run(InstCount warmup, InstCount measure);

    TimingModel &timing() { return timing_; }
    Cache &l1i() { return l1i_; }
    MemoryHierarchy &hierarchy() { return hierarchy_; }
    Frontend &frontend() { return frontend_; }
    Executor &executor() { return exec_; }

    /**
     * Configure observation: stream digests and/or event-store
     * recording (same scheme, encoding and opt-in contract as
     * TraceEngine::attachObservers, so the two engines' digests and
     * stores are directly comparable). Off by default — no hot-path
     * overhead.
     */
    void attachObservers(const ObserverConfig &obs)
    {
        observers_.configure(obs);
    }

    /** Deprecated: use attachObservers() (digests-on wrapper). */
    void
    enableDigests()
    {
        ObserverConfig obs = observers_.config();
        obs.digests = true;
        observers_.configure(obs);
    }

    /** Deprecated: use attachObservers() (event-store wrapper). */
    void
    attachEvents(EventStore *store, unsigned core = 0)
    {
        ObserverConfig obs = observers_.config();
        obs.events = store;
        obs.core = core;
        observers_.configure(obs);
    }

    /** Retired-instruction stream digest (0 until digests enabled). */
    std::uint64_t retireDigest() const
    {
        return observers_.retireDigest();
    }

    /** Fetch-access stream digest (0 until digests enabled). */
    std::uint64_t accessDigest() const
    {
        return observers_.accessDigest();
    }

    /** Override the replay batch length (see TraceEngine::setBatchLen). */
    void
    setBatchLen(std::uint32_t len)
    {
        batchLen_ = len == 0 ? 1 : len;
        batch_.reserve(batchLen_);
    }

  private:
    /**
     * Execute @p n instructions, dispatched once on the concrete
     * prefetcher type so the per-instruction hooks devirtualize
     * (same scheme as TraceEngine::advance; results are identical).
     */
    void advance(InstCount n, bool measuring);

    /** The timed loop, monomorphized over the prefetcher type. */
    template <typename P>
    void advanceWith(P &prefetcher, InstCount n, bool measuring);

    /** Run one decoded batch through the timed per-instruction stages. */
    template <typename P>
    void stepBatch(P &prefetcher, const RecordBatch &batch,
                   bool measuring);

    /** Install prefetch fills whose latency has elapsed. */
    void processReadyFills();

    SystemConfig cfg_;
    PrefetcherKind kind_;
    Executor exec_;
    Cache l1i_;
    Frontend frontend_;
    MemoryHierarchy hierarchy_;
    std::unique_ptr<Prefetcher> prefetcher_;
    TimingModel timing_;

    /** In-flight prefetch fills: block -> completion cycle. */
    std::unordered_map<Addr, Cycle> pending_;

    RecordBatch batch_;
    std::uint32_t batchLen_ = recordBatchLen;
    std::vector<FetchAccess> events_;
    std::vector<Addr> drain_;

    std::uint64_t demandMisses_ = 0;
    std::uint64_t latePrefetches_ = 0;
    std::uint64_t prefetchFills_ = 0;
    std::uint64_t lastMispredicts_ = 0;

    /** Digests + event recording (opt-in; detached by default). */
    EngineObservers observers_;
    /**
     * Per-instruction interrupt count for windowed counter samples,
     * tracked from trap-level transitions while observing (the
     * executor's own counter advances a whole decoded batch early).
     */
    std::uint64_t obsInterrupts_ = 0;
    std::uint8_t obsPrevTl_ = 0;
};

} // namespace pifetch
