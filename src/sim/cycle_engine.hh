/**
 * @file
 * Cycle-level simulation engine (Figure 10 right).
 *
 * Adds timing to the functional pipeline: demand misses stall the core
 * for the L2/memory fill latency, prefetches occupy MSHRs and complete
 * after their fill latency (late prefetches expose the residual), and
 * mispredictions charge the resolution penalty. A Perfect
 * configuration services every fetch at hit latency (Section 5.6's
 * perfect-latency cache).
 */

#pragma once

#include <memory>
#include <unordered_map>

#include "cache/cache.hh"
#include "cache/hierarchy.hh"
#include "cache/mshr.hh"
#include "common/config.hh"
#include "common/digest.hh"
#include "core/cycle_core.hh"
#include "core/frontend.hh"
#include "sim/system_config.hh"
#include "trace/executor.hh"
#include "trace/program.hh"

namespace pifetch {

class EventStore;

/** Results of one timed run (measurement window only). */
struct CycleRunResult
{
    Cycle cycles = 0;
    InstCount instrs = 0;
    InstCount userInstrs = 0;
    double uipc = 0.0;
    Cycle fetchStallCycles = 0;
    Cycle branchPenaltyCycles = 0;
    std::uint64_t demandMisses = 0;
    std::uint64_t latePrefetches = 0;  //!< demand caught an in-flight fill
    std::uint64_t prefetchFills = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t l2Misses = 0;
    /**
     * Front-end/executor counters over the measurement window,
     * mirroring TraceRunResult so the differential oracle
     * (src/check/) can compare the two engines stat for stat. The
     * fetch sequence is timing-independent by construction, so
     * accesses/mispredicts/wrongPathFetches/interrupts must match the
     * functional engine exactly; misses may differ only through
     * prefetch fill timing.
     */
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;          //!< correct-path L1-I misses
    std::uint64_t wrongPathFetches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t interrupts = 0;
    /** Whole-run stream digests; zero unless enableDigests() was set. */
    std::uint64_t retireDigest = 0;
    std::uint64_t accessDigest = 0;
};

/**
 * Timed engine: executor -> front-end -> L1-I/L2 -> prefetcher with
 * MSHR-limited, latency-delayed prefetch fills.
 */
class CycleEngine
{
  public:
    CycleEngine(const SystemConfig &cfg, const Program &prog,
                const ExecutorConfig &exec_cfg, PrefetcherKind kind);

    /** Warm up, then measure. */
    CycleRunResult run(InstCount warmup, InstCount measure);

    TimingModel &timing() { return timing_; }
    Cache &l1i() { return l1i_; }
    MemoryHierarchy &hierarchy() { return hierarchy_; }
    Frontend &frontend() { return frontend_; }
    Executor &executor() { return exec_; }

    /**
     * Start folding the retired-instruction and fetch-access streams
     * into digests (same scheme and encoding as
     * TraceEngine::enableDigests, so the two engines' digests are
     * directly comparable). Off by default — no hot-path overhead.
     */
    void enableDigests() { digests_ = true; }

    /** Retired-instruction stream digest (0 until enabled). */
    std::uint64_t
    retireDigest() const
    {
        return digests_ ? retireDigest_.value() : 0;
    }

    /** Fetch-access stream digest (0 until enabled). */
    std::uint64_t
    accessDigest() const
    {
        return digests_ ? accessDigest_.value() : 0;
    }

    /**
     * Start recording retire/fetch/prefetch events and windowed
     * counter samples into @p store, tagging rows with @p core. Same
     * opt-in contract and row encoding as TraceEngine::attachEvents,
     * so the two engines' stores compare row for row (timing-
     * dependent columns aside). Off by default — no hot-path
     * overhead; pass nullptr to detach.
     */
    void
    attachEvents(EventStore *store, unsigned core = 0)
    {
        eventStore_ = store;
        eventsCore_ = core;
    }

  private:
    /**
     * Execute @p n instructions, dispatched once on the concrete
     * prefetcher type so the per-instruction hooks devirtualize
     * (same scheme as TraceEngine::advance; results are identical).
     */
    void advance(InstCount n, bool measuring);

    /** The timed loop, monomorphized over the prefetcher type. */
    template <typename P>
    void advanceWith(P &prefetcher, InstCount n, bool measuring);

    /** Install prefetch fills whose latency has elapsed. */
    void processReadyFills();

    /**
     * Record one instruction's events into the attached store (out of
     * line: the detached hot path only pays the null check).
     */
    void recordEventStep(const RetiredInstr &instr);

    SystemConfig cfg_;
    PrefetcherKind kind_;
    Executor exec_;
    Cache l1i_;
    Frontend frontend_;
    MemoryHierarchy hierarchy_;
    std::unique_ptr<Prefetcher> prefetcher_;
    TimingModel timing_;

    /** In-flight prefetch fills: block -> completion cycle. */
    std::unordered_map<Addr, Cycle> pending_;

    std::vector<FetchAccess> events_;
    std::vector<Addr> drain_;

    std::uint64_t demandMisses_ = 0;
    std::uint64_t latePrefetches_ = 0;
    std::uint64_t prefetchFills_ = 0;
    std::uint64_t lastMispredicts_ = 0;

    /** Stream digests (src/check/ differential oracle); off by default. */
    bool digests_ = false;
    StreamDigest retireDigest_;
    StreamDigest accessDigest_;

    /** Event recording (src/query/); detached by default. */
    EventStore *eventStore_ = nullptr;
    unsigned eventsCore_ = 0;
};

} // namespace pifetch
