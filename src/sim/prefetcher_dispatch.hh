/**
 * @file
 * Concrete-type dispatch for the engines' monomorphized loops.
 *
 * The engines run their per-instruction loop templated on the
 * concrete prefetcher type so the three per-instruction hooks
 * devirtualize and inline (every shipped Prefetcher subclass is
 * `final`). This helper holds the one type ladder both engines use:
 * add new prefetchers here and every engine picks up the fast path;
 * a type missing from the ladder still works through the generic
 * virtual-dispatch fallback, just without the inlining.
 */

#pragma once

#include "pif/pif_prefetcher.hh"
#include "pif/shared_pif.hh"
#include "prefetch/discontinuity.hh"
#include "prefetch/next_line.hh"
#include "prefetch/tifs.hh"
#include "prefetch/prefetcher.hh"

namespace pifetch {

/**
 * Invoke @p fn with @p pf downcast to its concrete type (generic
 * Prefetcher& for types not in the ladder).
 */
template <typename Fn>
void
withConcretePrefetcher(Prefetcher &pf, Fn &&fn)
{
    if (auto *p = dynamic_cast<PifPrefetcher *>(&pf))
        fn(*p);
    else if (auto *p = dynamic_cast<NextLinePrefetcher *>(&pf))
        fn(*p);
    else if (auto *p = dynamic_cast<TifsPrefetcher *>(&pf))
        fn(*p);
    else if (auto *p = dynamic_cast<DiscontinuityPrefetcher *>(&pf))
        fn(*p);
    else if (auto *p = dynamic_cast<SharedPifPrefetcher *>(&pf))
        fn(*p);
    else if (auto *p = dynamic_cast<NullPrefetcher *>(&pf))
        fn(*p);
    else
        fn(pf);
}

} // namespace pifetch
