/**
 * @file
 * Multi-core measurement runner.
 *
 * The paper simulates a 16-core CMP and reports results "averaged
 * across the 16 simulated cores", with each core owning completely
 * independent dedicated predictor hardware (Section 4). This runner
 * reproduces that methodology: it instantiates N per-core engines,
 * each executing its own instance of the workload (distinct seeds, so
 * cores run different transaction interleavings of the same program
 * mix), and aggregates per-core results. Inter-core interaction is
 * folded into the shared-L2 latency model (DESIGN.md substitution #3).
 */

#pragma once

#include <vector>

#include "pif/shared_pif.hh"
#include "sim/cycle_engine.hh"
#include "sim/trace_engine.hh"
#include "sim/workloads.hh"

namespace pifetch {

/** Aggregated multi-core functional results. */
struct MulticoreTraceResult
{
    /** Per-core results, in core order. */
    std::vector<TraceRunResult> perCore;

    /** Mean correct-path miss ratio across cores. */
    double meanMissRatio() const;

    /** Mean PIF coverage across cores (0 unless PIF was attached). */
    double meanPifCoverage() const;

    /** Total correct-path misses across cores. */
    std::uint64_t totalMisses() const;
};

/** Aggregated multi-core timed results. */
struct MulticoreCycleResult
{
    std::vector<CycleRunResult> perCore;

    /** Mean UIPC across cores (the paper's throughput proxy). */
    double meanUipc() const;

    /** Total user instructions committed across cores. */
    InstCount totalUserInstrs() const;
};

/**
 * Run the functional engine on @p cores instances of a workload.
 *
 * @param kind Prefetcher attached to every core (independent copies).
 */
MulticoreTraceResult
runMulticoreTrace(const WorkloadRef &w, PrefetcherKind kind, unsigned cores,
                  InstCount warmup, InstCount measure,
                  const SystemConfig &cfg = SystemConfig{});

/** Run the cycle engine on @p cores instances of a workload. */
MulticoreCycleResult
runMulticoreCycle(const WorkloadRef &w, PrefetcherKind kind, unsigned cores,
                  InstCount warmup, InstCount measure,
                  const SystemConfig &cfg = SystemConfig{});

/** Result of the shared-vs-private PIF storage study (Section 4's
 * deferred optimization). */
struct SharedPifStudyResult
{
    /** Mean miss ratio with dedicated per-core storage. */
    double privateMissRatio = 0.0;
    /** Mean miss ratio with one shared pool of equal aggregate size. */
    double sharedMissRatio = 0.0;
    /** Mean coverage, private configuration. */
    double privateCoverage = 0.0;
    /** Mean coverage, shared configuration. */
    double sharedCoverage = 0.0;
};

/**
 * Compare dedicated per-core history (capacity/core = total/cores)
 * against one shared history of the same aggregate capacity, with all
 * cores executing the same program (distinct interleavings).
 */
SharedPifStudyResult
runSharedPifStudy(const WorkloadRef &w, unsigned cores,
                  std::uint64_t total_history_regions,
                  InstCount warmup, InstCount measure,
                  const SystemConfig &cfg = SystemConfig{});

} // namespace pifetch
