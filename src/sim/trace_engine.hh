/**
 * @file
 * Functional trace-driven simulation engine.
 *
 * Drives the executor -> front-end -> L1-I -> prefetcher pipeline with
 * no timing: prefetch fills are instantaneous, so results measure pure
 * predictor quality (coverage, accuracy, over-prediction) exactly like
 * the paper's trace-based studies (Sections 2, 3, 5.1-5.5).
 */

#pragma once

#include <memory>

#include "cache/cache.hh"
#include "common/config.hh"
#include "common/digest.hh"
#include "core/frontend.hh"
#include "prefetch/prefetcher.hh"
#include "sim/system_config.hh"
#include "trace/executor.hh"
#include "trace/program.hh"

namespace pifetch {

class EventStore;

/** Aggregate results of one functional run (measurement window only). */
struct TraceRunResult
{
    InstCount instrs = 0;
    /** Correct-path block fetches / misses. */
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
    /** Wrong-path block fetches injected by mispredictions. */
    std::uint64_t wrongPathFetches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t interrupts = 0;
    /** Prefetch candidates issued / actual fills performed. */
    std::uint64_t prefetchIssued = 0;
    std::uint64_t prefetchFills = 0;
    /** First demand touches of prefetched lines. */
    std::uint64_t usefulPrefetches = 0;
    /** PIF-only: predictor coverage per trap level and overall. */
    double pifCoverageTl0 = 0.0;
    double pifCoverageTl1 = 0.0;
    double pifCoverage = 0.0;
    /**
     * Whole-run stream digests (warmup + measurement); zero unless the
     * engine ran with enableDigests(). The retire digest folds every
     * retired instruction, the access digest every fetch access the
     * front-end performed (block, path, trap level — not hit/miss,
     * which legitimately differs across engines with different fill
     * timing). Used by the differential oracle (src/check/).
     */
    std::uint64_t retireDigest = 0;
    std::uint64_t accessDigest = 0;

    /** Correct-path miss ratio over the measurement window. */
    double
    missRatio() const
    {
        return accesses == 0
            ? 0.0
            : static_cast<double>(misses) / static_cast<double>(accesses);
    }
};

/**
 * Functional engine tying together one core's worth of hardware.
 */
class TraceEngine
{
  public:
    /**
     * @param cfg System configuration.
     * @param prog The workload program (externally owned).
     * @param exec_cfg Executor runtime knobs (seed, interrupt rate).
     * @param prefetcher The prefetcher under test (owned).
     */
    TraceEngine(const SystemConfig &cfg, const Program &prog,
                const ExecutorConfig &exec_cfg,
                std::unique_ptr<Prefetcher> prefetcher);

    /**
     * Execute @p warmup instructions (training predictors and warming
     * the cache), then @p measure instructions with statistics.
     */
    TraceRunResult run(InstCount warmup, InstCount measure);

    /**
     * Execute @p n instructions without statistics bookkeeping.
     * Lets callers interleave several engines (the multi-core shared-
     * storage study) and compute deltas from the component counters.
     *
     * The inner loop is dispatched once on the concrete prefetcher
     * type (every shipped Prefetcher subclass is `final`), so the
     * three per-instruction prefetcher hooks are direct, inlinable
     * calls instead of virtual dispatches. Results are identical to
     * the generic path by construction; the golden suite locks that.
     */
    void advance(InstCount n);

    Cache &l1i() { return l1i_; }
    Frontend &frontend() { return frontend_; }
    Prefetcher &prefetcher() { return *prefetcher_; }
    Executor &executor() { return exec_; }

    /**
     * Start folding the retired-instruction and fetch-access streams
     * into digests (see TraceRunResult). Off by default: the replay
     * hot path then pays only one predictable branch per instruction,
     * so the perf gate sees no overhead. Enable before the first
     * advance()/run() so both engines digest identical windows.
     */
    void enableDigests() { digests_ = true; }

    /** Retired-instruction stream digest (0 until enabled). */
    std::uint64_t
    retireDigest() const
    {
        return digests_ ? retireDigest_.value() : 0;
    }

    /** Fetch-access stream digest (0 until enabled). */
    std::uint64_t
    accessDigest() const
    {
        return digests_ ? accessDigest_.value() : 0;
    }

    /**
     * Start recording retire/fetch/prefetch events and windowed
     * counter samples into @p store, tagging rows with @p core (the
     * multicore runner attaches one store per engine). Same opt-in
     * contract as enableDigests(): detached (the default) the replay
     * hot path pays one predictable branch per instruction and
     * nothing else, so the perf gate sees no overhead. Attach before
     * the first advance()/run() so both engines record identical
     * windows; pass nullptr to detach. The store must outlive the
     * engine or the next attachEvents() call.
     */
    void
    attachEvents(EventStore *store, unsigned core = 0)
    {
        eventStore_ = store;
        eventsCore_ = core;
    }

  private:
    /** The replay loop, monomorphized over the prefetcher type. */
    template <typename P>
    void advanceWith(P &prefetcher, InstCount n);

    /**
     * Record one instruction's events into the attached store (out of
     * line: the detached hot path only pays the null check).
     */
    void recordEventStep(const RetiredInstr &instr);

    SystemConfig cfg_;
    Executor exec_;
    Cache l1i_;
    Frontend frontend_;
    std::unique_ptr<Prefetcher> prefetcher_;

    std::vector<FetchAccess> events_;
    std::vector<Addr> drain_;

    /** Stream digests (src/check/ differential oracle); off by default. */
    bool digests_ = false;
    StreamDigest retireDigest_;
    StreamDigest accessDigest_;

    /** Event recording (src/query/); detached by default. */
    EventStore *eventStore_ = nullptr;
    unsigned eventsCore_ = 0;
};

} // namespace pifetch
