/**
 * @file
 * Functional trace-driven simulation engine.
 *
 * Drives the executor -> front-end -> L1-I -> prefetcher pipeline with
 * no timing: prefetch fills are instantaneous, so results measure pure
 * predictor quality (coverage, accuracy, over-prediction) exactly like
 * the paper's trace-based studies (Sections 2, 3, 5.1-5.5).
 */

#ifndef PIFETCH_SIM_TRACE_ENGINE_HH
#define PIFETCH_SIM_TRACE_ENGINE_HH

#include <memory>

#include "cache/cache.hh"
#include "common/config.hh"
#include "core/frontend.hh"
#include "prefetch/prefetcher.hh"
#include "sim/system_config.hh"
#include "trace/executor.hh"
#include "trace/program.hh"

namespace pifetch {

/** Aggregate results of one functional run (measurement window only). */
struct TraceRunResult
{
    InstCount instrs = 0;
    /** Correct-path block fetches / misses. */
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
    /** Wrong-path block fetches injected by mispredictions. */
    std::uint64_t wrongPathFetches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t interrupts = 0;
    /** Prefetch candidates issued / actual fills performed. */
    std::uint64_t prefetchIssued = 0;
    std::uint64_t prefetchFills = 0;
    /** First demand touches of prefetched lines. */
    std::uint64_t usefulPrefetches = 0;
    /** PIF-only: predictor coverage per trap level and overall. */
    double pifCoverageTl0 = 0.0;
    double pifCoverageTl1 = 0.0;
    double pifCoverage = 0.0;

    /** Correct-path miss ratio over the measurement window. */
    double
    missRatio() const
    {
        return accesses == 0
            ? 0.0
            : static_cast<double>(misses) / static_cast<double>(accesses);
    }
};

/**
 * Functional engine tying together one core's worth of hardware.
 */
class TraceEngine
{
  public:
    /**
     * @param cfg System configuration.
     * @param prog The workload program (externally owned).
     * @param exec_cfg Executor runtime knobs (seed, interrupt rate).
     * @param prefetcher The prefetcher under test (owned).
     */
    TraceEngine(const SystemConfig &cfg, const Program &prog,
                const ExecutorConfig &exec_cfg,
                std::unique_ptr<Prefetcher> prefetcher);

    /**
     * Execute @p warmup instructions (training predictors and warming
     * the cache), then @p measure instructions with statistics.
     */
    TraceRunResult run(InstCount warmup, InstCount measure);

    /**
     * Execute @p n instructions without statistics bookkeeping.
     * Lets callers interleave several engines (the multi-core shared-
     * storage study) and compute deltas from the component counters.
     *
     * The inner loop is dispatched once on the concrete prefetcher
     * type (every shipped Prefetcher subclass is `final`), so the
     * three per-instruction prefetcher hooks are direct, inlinable
     * calls instead of virtual dispatches. Results are identical to
     * the generic path by construction; the golden suite locks that.
     */
    void advance(InstCount n);

    Cache &l1i() { return l1i_; }
    Frontend &frontend() { return frontend_; }
    Prefetcher &prefetcher() { return *prefetcher_; }
    Executor &executor() { return exec_; }

  private:
    /** The replay loop, monomorphized over the prefetcher type. */
    template <typename P>
    void advanceWith(P &prefetcher, InstCount n);

    SystemConfig cfg_;
    Executor exec_;
    Cache l1i_;
    Frontend frontend_;
    std::unique_ptr<Prefetcher> prefetcher_;

    std::vector<FetchAccess> events_;
    std::vector<Addr> drain_;
};

} // namespace pifetch

#endif // PIFETCH_SIM_TRACE_ENGINE_HH
