/**
 * @file
 * Functional trace-driven simulation engine.
 *
 * Drives the executor -> front-end -> L1-I -> prefetcher pipeline with
 * no timing: prefetch fills are instantaneous, so results measure pure
 * predictor quality (coverage, accuracy, over-prediction) exactly like
 * the paper's trace-based studies (Sections 2, 3, 5.1-5.5).
 *
 * The replay loop is batched: the executor decodes a structure-of-
 * arrays RecordBatch at a time (trace/record.hh), and the per-
 * instruction stages (front-end, prefetcher hooks, drain) stream over
 * the batch columns with an inline fast path for plain instructions
 * that stay inside the current fetch block. Per-instruction order is
 * preserved exactly — the prefetch drain feeds the cache the next
 * instruction observes — so results are bit-identical at any batch
 * length; the batched differential suite and the golden snapshots
 * lock that.
 */

#pragma once

#include <memory>

#include "cache/cache.hh"
#include "common/config.hh"
#include "core/frontend.hh"
#include "prefetch/prefetcher.hh"
#include "sim/observer.hh"
#include "sim/run_counters.hh"
#include "sim/system_config.hh"
#include "trace/executor.hh"
#include "trace/program.hh"

namespace pifetch {

/**
 * Aggregate results of one functional run (measurement window only).
 * The timing-independent counter block (including the stream digests)
 * is the shared RunCounters base.
 */
struct TraceRunResult : RunCounters
{
    /** Prefetch candidates issued / actual fills performed. */
    std::uint64_t prefetchIssued = 0;
    std::uint64_t prefetchFills = 0;
    /** First demand touches of prefetched lines. */
    std::uint64_t usefulPrefetches = 0;
    /** PIF-only: predictor coverage per trap level and overall. */
    double pifCoverageTl0 = 0.0;
    double pifCoverageTl1 = 0.0;
    double pifCoverage = 0.0;
};

/**
 * Functional engine tying together one core's worth of hardware.
 */
class TraceEngine
{
  public:
    /**
     * @param cfg System configuration.
     * @param prog The workload program (externally owned).
     * @param exec_cfg Executor runtime knobs (seed, interrupt rate).
     * @param prefetcher The prefetcher under test (owned).
     */
    TraceEngine(const SystemConfig &cfg, const Program &prog,
                const ExecutorConfig &exec_cfg,
                std::unique_ptr<Prefetcher> prefetcher);

    /**
     * Execute @p warmup instructions (training predictors and warming
     * the cache), then @p measure instructions with statistics.
     */
    TraceRunResult run(InstCount warmup, InstCount measure);

    /**
     * Execute @p n instructions without statistics bookkeeping.
     * Lets callers interleave several engines (the multi-core shared-
     * storage study) and compute deltas from the component counters.
     *
     * The inner loop is dispatched once on the concrete prefetcher
     * type (every shipped Prefetcher subclass is `final`), so the
     * three per-instruction prefetcher hooks are direct, inlinable
     * calls instead of virtual dispatches. Results are identical to
     * the generic path by construction; the golden suite locks that.
     */
    void advance(InstCount n);

    /**
     * Replay externally supplied records (a captured trace decoded by
     * TraceBatchReader, say) through the same batched pipeline,
     * bypassing the executor. The batch's block column must be
     * populated (computeBlocks()); executor-side counters (retired,
     * interrupts) do not advance.
     */
    void replayBatch(const RecordBatch &batch);

    Cache &l1i() { return l1i_; }
    Frontend &frontend() { return frontend_; }
    Prefetcher &prefetcher() { return *prefetcher_; }
    Executor &executor() { return exec_; }

    /**
     * Configure observation: stream digests and/or event-store
     * recording (see ObserverConfig). Detached (the default) the
     * replay hot path pays one predictable branch per instruction and
     * nothing else, so the perf gate sees no overhead. Configure
     * before the first advance()/run() so differential runs observe
     * identical windows; digest state accumulated so far is kept.
     */
    void attachObservers(const ObserverConfig &obs)
    {
        observers_.configure(obs);
    }

    /**
     * Deprecated: use attachObservers(). Thin wrapper that switches
     * digests on while preserving the rest of the configuration.
     */
    void
    enableDigests()
    {
        ObserverConfig obs = observers_.config();
        obs.digests = true;
        observers_.configure(obs);
    }

    /**
     * Deprecated: use attachObservers(). Thin wrapper that attaches
     * @p store / @p core while preserving the digest setting.
     */
    void
    attachEvents(EventStore *store, unsigned core = 0)
    {
        ObserverConfig obs = observers_.config();
        obs.events = store;
        obs.core = core;
        observers_.configure(obs);
    }

    /** Retired-instruction stream digest (0 until digests enabled). */
    std::uint64_t retireDigest() const
    {
        return observers_.retireDigest();
    }

    /** Fetch-access stream digest (0 until digests enabled). */
    std::uint64_t accessDigest() const
    {
        return observers_.accessDigest();
    }

    /**
     * Override the replay batch length (default recordBatchLen).
     * Results are bit-identical at any length — the batched
     * differential suite sweeps this — so the knob exists for tuning
     * and for pinning the scalar-order (length 1) reference.
     */
    void
    setBatchLen(std::uint32_t len)
    {
        batchLen_ = len == 0 ? 1 : len;
        batch_.reserve(batchLen_);
    }

  private:
    /** The replay loop, monomorphized over the prefetcher type. */
    template <typename P>
    void advanceWith(P &prefetcher, InstCount n);

    /** Run one decoded batch through the per-instruction stages. */
    template <typename P>
    void stepBatch(P &prefetcher, const RecordBatch &batch);

    SystemConfig cfg_;
    Executor exec_;
    Cache l1i_;
    Frontend frontend_;
    std::unique_ptr<Prefetcher> prefetcher_;

    RecordBatch batch_;
    std::uint32_t batchLen_ = recordBatchLen;
    std::vector<FetchAccess> events_;
    std::vector<Addr> drain_;

    /** Digests + event recording (opt-in; detached by default). */
    EngineObservers observers_;
    /**
     * Per-instruction interrupt count for windowed counter samples,
     * tracked from trap-level transitions while observing (the
     * executor's own counter advances a whole decoded batch early).
     */
    std::uint64_t obsInterrupts_ = 0;
    std::uint8_t obsPrevTl_ = 0;
};

} // namespace pifetch
