/**
 * @file
 * Experiment driver implementations.
 */

#include "sim/experiment.hh"

#include "common/parallel.hh"
#include "pif/pif_prefetcher.hh"
#include "pif/region_analyzer.hh"
#include "pif/spatial_compactor.hh"
#include "pif/temporal_compactor.hh"
#include "sim/cycle_engine.hh"
#include "sim/workloads.hh"
#include "streams/jump_distance.hh"
#include "streams/stream_length.hh"
#include "streams/temporal_predictor.hh"

namespace pifetch {

namespace {

/** Unbounded study predictor sizing (Figures 2, 7, 9 left). */
TemporalPredictorConfig
studyPredictorConfig()
{
    TemporalPredictorConfig c;
    c.historyCapacity = 0;
    c.indexEntries = 0;
    c.numStreams = 4;
    c.window = 16;
    return c;
}

} // namespace

Fig2Result
runFig2(const WorkloadRef &w, const ExperimentBudget &budget,
        const SystemConfig &cfg)
{
    const Program prog = w.buildProgram();
    Executor exec(prog, w.executorConfig());
    Cache l1i(cfg.l1i, ReplacementKind::LRU, cfg.seed);
    Frontend frontend(cfg, l1i, cfg.seed ^ 0xfe7c4);

    TemporalStreamPredictor miss_pred(studyPredictorConfig());
    TemporalStreamPredictor access_pred(studyPredictorConfig());
    TemporalStreamPredictor retire_pred(studyPredictorConfig());
    TemporalStreamPredictor retire_sep[maxTrapLevels] = {
        TemporalStreamPredictor(studyPredictorConfig()),
        TemporalStreamPredictor(studyPredictorConfig()),
    };

    Addr last_retire_block = invalidAddr;
    Addr last_sep_block[maxTrapLevels] = {invalidAddr, invalidAddr};

    std::uint64_t total_misses = 0;
    std::uint64_t cov_miss = 0;
    std::uint64_t cov_access = 0;
    std::uint64_t cov_retire = 0;
    std::uint64_t cov_sep = 0;

    std::vector<FetchAccess> events;
    events.reserve(64);

    const InstCount total = budget.warmup + budget.measure;
    for (InstCount i = 0; i < total; ++i) {
        const bool measuring = i >= budget.warmup;
        const RetiredInstr instr = exec.next();
        events.clear();
        frontend.step(instr, events);

        for (const FetchAccess &ev : events) {
            const bool is_cp_miss = ev.correctPath && !ev.hit;
            if (is_cp_miss && measuring) {
                ++total_misses;
                // Coverage queries *before* this event's observations:
                // "would a prefetcher following stream X have already
                // predicted this block?"
                if (miss_pred.covered(ev.block))
                    ++cov_miss;
                if (access_pred.covered(ev.block))
                    ++cov_access;
                if (retire_pred.covered(ev.block))
                    ++cov_retire;
                const TrapLevel tl =
                    std::min<TrapLevel>(ev.trapLevel, maxTrapLevels - 1);
                if (retire_sep[tl].covered(ev.block))
                    ++cov_sep;
            }
            // Observation streams: access sees everything the front-end
            // fetches (wrong path included); miss sees every L1-I miss.
            access_pred.observe(ev.block);
            if (!ev.hit)
                miss_pred.observe(ev.block);
        }

        // Retire-order streams (block-collapsed).
        const Addr rblock = blockAddr(instr.pc);
        if (rblock != last_retire_block) {
            last_retire_block = rblock;
            retire_pred.observe(rblock);
        }
        const TrapLevel tl =
            std::min<TrapLevel>(instr.trapLevel, maxTrapLevels - 1);
        if (rblock != last_sep_block[tl]) {
            last_sep_block[tl] = rblock;
            retire_sep[tl].observe(rblock);
        }
    }

    Fig2Result res;
    res.workload = w.key();
    res.correctPathMisses = total_misses;
    const double denom =
        total_misses > 0 ? static_cast<double>(total_misses) : 1.0;
    res.missCoverage = static_cast<double>(cov_miss) / denom;
    res.accessCoverage = static_cast<double>(cov_access) / denom;
    res.retireCoverage = static_cast<double>(cov_retire) / denom;
    res.retireSepCoverage = static_cast<double>(cov_sep) / denom;
    return res;
}

Fig3Result
runFig3(const WorkloadRef &w, InstCount instrs)
{
    const Program prog = w.buildProgram();
    Executor exec(prog, w.executorConfig());
    // Wide window so the density distribution itself reveals the
    // useful geometry (up to 32 blocks as in the paper's buckets).
    RegionAnalyzer analyzer(4, 27);

    for (InstCount i = 0; i < instrs; ++i)
        analyzer.observe(exec.next().pc);
    analyzer.finish();

    Fig3Result res;
    res.workload = w.key();
    res.density = analyzer.density();
    res.groups = analyzer.groups();
    res.regions = analyzer.regions();
    return res;
}

Log2Histogram
runFig7(const WorkloadRef &w, InstCount instrs)
{
    const Program prog = w.buildProgram();
    Executor exec(prog, w.executorConfig());
    JumpDistanceStudy study;

    Addr last_block = invalidAddr;
    for (InstCount i = 0; i < instrs; ++i) {
        const RetiredInstr instr = exec.next();
        if (instr.trapLevel != 0)
            continue;  // application stream, as in Section 5.1
        const Addr b = blockAddr(instr.pc);
        if (b != last_block) {
            last_block = b;
            study.observe(b);
        }
    }
    study.finish();
    return study.histogram();
}

LinearHistogram
runFig8Left(const WorkloadRef &w, InstCount instrs)
{
    const Program prog = w.buildProgram();
    Executor exec(prog, w.executorConfig());
    RegionAnalyzer analyzer(4, 12);  // the figure's -4..+12 window

    for (InstCount i = 0; i < instrs; ++i)
        analyzer.observe(exec.next().pc);
    analyzer.finish();
    return analyzer.offsets();
}

std::vector<Fig8RightPoint>
runFig8Right(const WorkloadRef &w, const ExperimentBudget &budget,
             const SystemConfig &cfg)
{
    // Region size -> (blocks before, blocks after) skewed toward
    // succeeding blocks per Section 5.2.
    struct Geometry { unsigned total, before, after; };
    static const Geometry geometries[] = {
        {1, 0, 0}, {2, 0, 1}, {4, 1, 2}, {6, 2, 3}, {8, 2, 5},
    };

    const Program prog = w.buildProgram();
    std::vector<Fig8RightPoint> out;
    for (const Geometry &g : geometries) {
        SystemConfig c = cfg;
        c.pif.blocksBefore = g.before;
        c.pif.blocksAfter = g.after;
        auto pif = std::make_unique<PifPrefetcher>(c.pif, false);
        PifPrefetcher *pif_raw = pif.get();
        TraceEngine engine(c, prog, w.executorConfig(),
                           std::move(pif));
        engine.run(budget.warmup, budget.measure);

        Fig8RightPoint p;
        p.regionBlocks = g.total;
        p.tl0Coverage = pif_raw->coverage(0);
        p.tl1Coverage = pif_raw->coverage(1);
        out.push_back(p);
    }
    return out;
}

Log2Histogram
runFig9Left(const WorkloadRef &w, InstCount instrs)
{
    const Program prog = w.buildProgram();
    Executor exec(prog, w.executorConfig());

    // Compact the retire stream into spatial regions first: stream
    // lengths are measured in regions, matching the figure's axis.
    SpatialCompactor spatial(2, 5);
    TemporalCompactor temporal(4);
    StreamLengthStudy study;

    for (InstCount i = 0; i < instrs; ++i) {
        const RetiredInstr instr = exec.next();
        if (auto rec = spatial.observe(instr.pc, true, instr.trapLevel)) {
            if (temporal.admit(*rec))
                study.observe(rec->triggerPc);
        }
    }
    study.finish();
    return study.histogram();
}

std::vector<Fig9RightPoint>
runFig9Right(const WorkloadRef &w, const ExperimentBudget &budget,
             const std::vector<std::uint64_t> &sizes,
             const SystemConfig &cfg)
{
    const Program prog = w.buildProgram();
    std::vector<Fig9RightPoint> out;
    for (std::uint64_t regions : sizes) {
        SystemConfig c = cfg;
        c.pif.historyRegions = regions;
        auto pif = std::make_unique<PifPrefetcher>(c.pif, false);
        PifPrefetcher *pif_raw = pif.get();
        TraceEngine engine(c, prog, w.executorConfig(),
                           std::move(pif));
        engine.run(budget.warmup, budget.measure);

        Fig9RightPoint p;
        p.historyRegions = regions;
        p.coverage = pif_raw->coverage();
        out.push_back(p);
    }
    return out;
}

std::vector<Fig10CoveragePoint>
runFig10Coverage(const WorkloadRef &w, const ExperimentBudget &budget,
                 const SystemConfig &cfg)
{
    const Program prog = w.buildProgram();

    // Slot 0 (None -> NullPrefetcher) is the baseline defining the
    // miss population. Every engine is independent (the shared
    // Program is read-only), so all four run concurrently and results
    // land in fixed slots.
    static constexpr PrefetcherKind kinds[] = {
        PrefetcherKind::None,
        PrefetcherKind::NextLine,
        PrefetcherKind::Tifs,
        PrefetcherKind::Pif,
    };
    constexpr std::size_t num_kinds =
        sizeof(kinds) / sizeof(kinds[0]);

    std::uint64_t misses[num_kinds] = {};
    parallelFor(cfg.threads, num_kinds, [&](std::uint64_t i) {
        // Section 5.5 compares without storage limitations.
        TraceEngine engine(cfg, prog, w.executorConfig(),
                           makePrefetcher(kinds[i], cfg, true));
        misses[i] = engine.run(budget.warmup, budget.measure).misses;
    });

    const std::uint64_t baseline_misses = misses[0];
    std::vector<Fig10CoveragePoint> out;
    for (std::size_t i = 1; i < num_kinds; ++i) {
        Fig10CoveragePoint p;
        p.kind = kinds[i];
        p.baselineMisses = baseline_misses;
        p.remainingMisses = misses[i];
        p.missCoverage = baseline_misses == 0
            ? 0.0
            : 1.0 - static_cast<double>(misses[i]) /
                    static_cast<double>(baseline_misses);
        if (p.missCoverage < 0.0)
            p.missCoverage = 0.0;
        out.push_back(p);
    }
    return out;
}

std::vector<Fig10SpeedupPoint>
runFig10Speedup(const WorkloadRef &w, const ExperimentBudget &budget,
                const SystemConfig &cfg)
{
    const Program prog = w.buildProgram();

    static constexpr PrefetcherKind kinds[] = {
        PrefetcherKind::None,
        PrefetcherKind::NextLine,
        PrefetcherKind::Tifs,
        PrefetcherKind::Pif,
        PrefetcherKind::Perfect,
    };
    constexpr std::size_t num_kinds =
        sizeof(kinds) / sizeof(kinds[0]);

    double uipc[num_kinds] = {};
    // One independent cycle engine per configuration; speedups are
    // derived from the fixed slots after all engines complete.
    parallelFor(cfg.threads, num_kinds, [&](std::uint64_t i) {
        CycleEngine engine(cfg, prog, w.executorConfig(), kinds[i]);
        uipc[i] = engine.run(budget.warmup, budget.measure).uipc;
    });

    const double baseline_uipc = uipc[0];  // kinds[0] is None
    std::vector<Fig10SpeedupPoint> out;
    for (std::size_t i = 0; i < num_kinds; ++i) {
        Fig10SpeedupPoint p;
        p.kind = kinds[i];
        p.uipc = uipc[i];
        p.speedup = baseline_uipc > 0.0 ? uipc[i] / baseline_uipc : 0.0;
        out.push_back(p);
    }
    return out;
}

} // namespace pifetch
