/**
 * @file
 * Multi-core runner implementation.
 */

#include "sim/multicore.hh"

#include "common/parallel.hh"

namespace pifetch {

double
MulticoreTraceResult::meanMissRatio() const
{
    if (perCore.empty())
        return 0.0;
    double sum = 0.0;
    for (const TraceRunResult &r : perCore)
        sum += r.missRatio();
    return sum / static_cast<double>(perCore.size());
}

double
MulticoreTraceResult::meanPifCoverage() const
{
    if (perCore.empty())
        return 0.0;
    double sum = 0.0;
    for (const TraceRunResult &r : perCore)
        sum += r.pifCoverage;
    return sum / static_cast<double>(perCore.size());
}

std::uint64_t
MulticoreTraceResult::totalMisses() const
{
    std::uint64_t sum = 0;
    for (const TraceRunResult &r : perCore)
        sum += r.misses;
    return sum;
}

double
MulticoreCycleResult::meanUipc() const
{
    if (perCore.empty())
        return 0.0;
    double sum = 0.0;
    for (const CycleRunResult &r : perCore)
        sum += r.uipc;
    return sum / static_cast<double>(perCore.size());
}

InstCount
MulticoreCycleResult::totalUserInstrs() const
{
    InstCount sum = 0;
    for (const CycleRunResult &r : perCore)
        sum += r.userInstrs;
    return sum;
}

MulticoreTraceResult
runMulticoreTrace(const WorkloadRef &w, PrefetcherKind kind, unsigned cores,
                  InstCount warmup, InstCount measure,
                  const SystemConfig &cfg)
{
    MulticoreTraceResult out;
    out.perCore.resize(cores);
    // Cores are fully independent simulations: every task constructs
    // its own Program, SystemConfig, executor and prefetcher, shares
    // nothing mutable, and writes only its own result slot — so the
    // output is bit-identical to the serial loop at any thread count.
    parallelFor(cfg.threads, cores, [&](std::uint64_t core) {
        // Each core executes its own instance of the workload: same
        // program, different transaction interleaving and interrupt
        // arrivals (seed offset), exactly like distinct server threads.
        const Program prog = w.buildProgram(core);
        SystemConfig core_cfg = cfg;
        core_cfg.seed = cfg.seed + core * 7919;
        TraceEngine engine(core_cfg, prog,
                           w.executorConfig(core, core),
                           makePrefetcher(kind, core_cfg));
        out.perCore[core] = engine.run(warmup, measure);
    });
    return out;
}

namespace {

/**
 * Interleave @p engines in round-robin chunks for @p total
 * instructions each, emulating concurrent cores sharing predictor
 * state.
 */
void
interleave(std::vector<std::unique_ptr<TraceEngine>> &engines,
           InstCount total)
{
    constexpr InstCount chunk = 10'000;
    InstCount done = 0;
    while (done < total) {
        const InstCount step = std::min(chunk, total - done);
        for (auto &engine : engines)
            engine->advance(step);
        done += step;
    }
}

/** Mean correct-path miss ratio across engines from counter deltas. */
double
meanMissRatioSince(const std::vector<std::unique_ptr<TraceEngine>> &eng,
                   const std::vector<std::uint64_t> &acc0,
                   const std::vector<std::uint64_t> &miss0)
{
    double sum = 0.0;
    for (std::size_t c = 0; c < eng.size(); ++c) {
        const double acc = static_cast<double>(
            eng[c]->frontend().correctPathFetches() - acc0[c]);
        const double miss = static_cast<double>(
            eng[c]->frontend().correctPathMisses() - miss0[c]);
        sum += acc > 0.0 ? miss / acc : 0.0;
    }
    return sum / static_cast<double>(eng.size());
}

} // namespace

SharedPifStudyResult
runSharedPifStudy(const WorkloadRef &w, unsigned cores,
                  std::uint64_t total_history_regions,
                  InstCount warmup, InstCount measure,
                  const SystemConfig &cfg)
{
    // All cores execute the SAME binary (distinct interleavings), as
    // on a real server; otherwise cross-core sharing cannot help.
    const Program prog = w.buildProgram();
    SharedPifStudyResult out;

    for (const bool shared : {false, true}) {
        SystemConfig run_cfg = cfg;
        run_cfg.pif.historyRegions =
            shared ? total_history_regions
                   : std::max<std::uint64_t>(total_history_regions /
                                                 cores,
                                             256);

        std::shared_ptr<SharedPifStorage> storage;
        if (shared)
            storage = std::make_shared<SharedPifStorage>(run_cfg.pif);

        std::vector<std::unique_ptr<TraceEngine>> engines;
        std::vector<Prefetcher *> prefetchers;
        for (unsigned core = 0; core < cores; ++core) {
            std::unique_ptr<Prefetcher> pf;
            if (shared) {
                pf = std::make_unique<SharedPifPrefetcher>(storage);
            } else {
                pf = std::make_unique<PifPrefetcher>(run_cfg.pif);
            }
            prefetchers.push_back(pf.get());
            SystemConfig core_cfg = run_cfg;
            core_cfg.seed = run_cfg.seed + core * 7919;
            engines.push_back(std::make_unique<TraceEngine>(
                core_cfg, prog,
                w.executorConfig(0, core + 1),
                std::move(pf)));
        }

        interleave(engines, warmup);
        std::vector<std::uint64_t> acc0(cores);
        std::vector<std::uint64_t> miss0(cores);
        for (unsigned c = 0; c < cores; ++c) {
            acc0[c] = engines[c]->frontend().correctPathFetches();
            miss0[c] = engines[c]->frontend().correctPathMisses();
            prefetchers[c]->resetStats();
        }
        interleave(engines, measure);

        const double miss_ratio =
            meanMissRatioSince(engines, acc0, miss0);
        double coverage = 0.0;
        for (unsigned c = 0; c < cores; ++c) {
            if (shared) {
                coverage += dynamic_cast<SharedPifPrefetcher *>(
                                prefetchers[c])->coverage();
            } else {
                coverage += dynamic_cast<PifPrefetcher *>(
                                prefetchers[c])->coverage();
            }
        }
        coverage /= cores;

        if (shared) {
            out.sharedMissRatio = miss_ratio;
            out.sharedCoverage = coverage;
        } else {
            out.privateMissRatio = miss_ratio;
            out.privateCoverage = coverage;
        }
    }
    return out;
}

MulticoreCycleResult
runMulticoreCycle(const WorkloadRef &w, PrefetcherKind kind, unsigned cores,
                  InstCount warmup, InstCount measure,
                  const SystemConfig &cfg)
{
    MulticoreCycleResult out;
    out.perCore.resize(cores);
    // Same isolation argument as runMulticoreTrace: per-task
    // construction, disjoint result slots, deterministic output.
    parallelFor(cfg.threads, cores, [&](std::uint64_t core) {
        const Program prog = w.buildProgram(core);
        SystemConfig core_cfg = cfg;
        core_cfg.seed = cfg.seed + core * 7919;
        CycleEngine engine(core_cfg, prog,
                           w.executorConfig(core, core),
                           kind);
        out.perCore[core] = engine.run(warmup, measure);
    });
    return out;
}

} // namespace pifetch
