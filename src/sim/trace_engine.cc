/**
 * @file
 * Trace engine implementation.
 */

#include "sim/trace_engine.hh"

#include "pif/pif_prefetcher.hh"
#include "query/event_store.hh"
#include "sim/prefetcher_dispatch.hh"

namespace pifetch {

namespace {
/** Prefetch candidates applied per instruction step (functional). */
constexpr unsigned drainPerStep = 16;
} // namespace

TraceEngine::TraceEngine(const SystemConfig &cfg, const Program &prog,
                         const ExecutorConfig &exec_cfg,
                         std::unique_ptr<Prefetcher> prefetcher)
    : cfg_(cfg),
      exec_(prog, exec_cfg),
      l1i_(cfg.l1i, ReplacementKind::LRU, cfg.seed),
      frontend_(cfg, l1i_, cfg.seed ^ 0xfe7c4),
      prefetcher_(std::move(prefetcher))
{
    events_.reserve(64);
    drain_.reserve(drainPerStep);
}

template <typename P>
void
TraceEngine::advanceWith(P &prefetcher, InstCount n)
{
    for (InstCount i = 0; i < n; ++i) {
        const RetiredInstr instr = exec_.next();

        events_.clear();
        const bool tagged = frontend_.step(instr, events_);

        if (digests_) {
            digestRetire(retireDigest_, instr);
            for (const FetchAccess &ev : events_)
                digestAccess(accessDigest_, ev);
        }

        if (eventStore_)
            recordEventStep(instr);

        for (const FetchAccess &ev : events_) {
            FetchInfo info;
            info.block = ev.block;
            info.pc = ev.correctPath ? instr.pc : blockBase(ev.block);
            info.hit = ev.hit;
            info.wasPrefetched = ev.wasPrefetched;
            info.correctPath = ev.correctPath;
            info.trapLevel = ev.trapLevel;
            prefetcher.onFetchAccess(info);
        }

        prefetcher.onRetire(instr, tagged);

        // Apply prefetch candidates: probe the tags first (Section
        // 4.3's line-buffer path); a functional fill models a timely
        // prefetch.
        drain_.clear();
        prefetcher.drainRequests(drain_, drainPerStep);
        for (Addr b : drain_) {
            if (!l1i_.probe(b)) {
                l1i_.fill(b, true);
                if (eventStore_)
                    eventStore_->recordPrefetchFill(eventsCore_, b);
            }
        }
    }
}

void
TraceEngine::recordEventStep(const RetiredInstr &instr)
{
    eventStore_->recordRetire(eventsCore_, instr);
    for (const FetchAccess &ev : events_)
        eventStore_->recordAccess(eventsCore_, ev,
                                  ev.correctPath ? instr.pc
                                                 : blockBase(ev.block));
    if (eventStore_->counterSampleDue(eventsCore_)) {
        CounterSnapshot snap;
        snap.accesses = frontend_.correctPathFetches();
        snap.misses = frontend_.correctPathMisses();
        snap.wrongPathFetches = frontend_.wrongPathFetches();
        snap.mispredicts = frontend_.mispredicts();
        snap.interrupts = exec_.interrupts();
        snap.prefetchFills = l1i_.prefetchFills();
        eventStore_->sampleCounters(eventsCore_, snap);
    }
}

void
TraceEngine::advance(InstCount n)
{
    // Monomorphize the replay loop on the known prefetcher set (the
    // ladder lives in sim/prefetcher_dispatch.hh).
    withConcretePrefetcher(*prefetcher_,
                           [&](auto &p) { advanceWith(p, n); });
}

TraceRunResult
TraceEngine::run(InstCount warmup, InstCount measure)
{
    advance(warmup);

    // Snapshot warmup-end counters so the result reflects only the
    // measurement window.
    const std::uint64_t acc0 = frontend_.correctPathFetches();
    const std::uint64_t miss0 = frontend_.correctPathMisses();
    const std::uint64_t wrong0 = frontend_.wrongPathFetches();
    const std::uint64_t misp0 = frontend_.mispredicts();
    const std::uint64_t intr0 = exec_.interrupts();
    const std::uint64_t fills0 = l1i_.prefetchFills();
    const std::uint64_t useful0 = l1i_.usefulPrefetches();
    const InstCount retired0 = exec_.retired();
    prefetcher_->resetStats();

    advance(measure);

    TraceRunResult res;
    // Measured from the executor, not echoed from the request, so the
    // length-scaling and cross-engine oracles (src/check/) compare a
    // real counter: a replay loop that silently ran short would show
    // up here.
    res.instrs = exec_.retired() - retired0;
    res.accesses = frontend_.correctPathFetches() - acc0;
    res.misses = frontend_.correctPathMisses() - miss0;
    res.wrongPathFetches = frontend_.wrongPathFetches() - wrong0;
    res.mispredicts = frontend_.mispredicts() - misp0;
    res.interrupts = exec_.interrupts() - intr0;
    res.prefetchIssued = prefetcher_->issued();
    res.prefetchFills = l1i_.prefetchFills() - fills0;
    res.usefulPrefetches = l1i_.usefulPrefetches() - useful0;

    if (auto *pif = dynamic_cast<PifPrefetcher *>(prefetcher_.get())) {
        res.pifCoverageTl0 = pif->coverage(0);
        res.pifCoverageTl1 = pif->coverage(1);
        res.pifCoverage = pif->coverage();
    }
    res.retireDigest = retireDigest();
    res.accessDigest = accessDigest();
    return res;
}

} // namespace pifetch
