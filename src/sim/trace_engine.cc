/**
 * @file
 * Trace engine implementation.
 */

#include "sim/trace_engine.hh"

#include "pif/pif_prefetcher.hh"
#include "sim/prefetcher_dispatch.hh"

namespace pifetch {

namespace {
/** Prefetch candidates applied per instruction step (functional). */
constexpr unsigned drainPerStep = 16;
} // namespace

TraceEngine::TraceEngine(const SystemConfig &cfg, const Program &prog,
                         const ExecutorConfig &exec_cfg,
                         std::unique_ptr<Prefetcher> prefetcher)
    : cfg_(cfg),
      exec_(prog, exec_cfg),
      l1i_(cfg.l1i, ReplacementKind::LRU, cfg.seed),
      frontend_(cfg, l1i_, cfg.seed ^ 0xfe7c4),
      prefetcher_(std::move(prefetcher))
{
    batch_.reserve(batchLen_);
    events_.reserve(4096);
    drain_.reserve(drainPerStep);
}

template <typename P>
void
TraceEngine::stepBatch(P &prefetcher, const RecordBatch &batch)
{
    const bool observing = observers_.active();
    events_.clear();
    std::size_t ev0 = 0;

    for (std::uint32_t i = 0; i < batch.size; ++i) {
        const Addr block = batch.block[i];
        const std::uint8_t tl = batch.trapLevel[i];
        const bool noop = frontend_.stepIsNoop(
            block, static_cast<InstrKind>(batch.kind[i]), tl);

        // Bulk fast path: a maximal run of plain instructions fetched
        // from the current block at an unchanged trap level performs
        // no front-end steps, no fetch accesses, and (unobserved) no
        // digest folds. Collapse the whole run: the prefetcher sees
        // one same-block-run retire (exactly equivalent to the
        // per-instruction calls — every shipped retire hook is either
        // a no-op or the spatial compactor's same-block early-out),
        // and the drain keeps the per-instruction budget. Observers
        // need per-instruction folds, so the run stays scalar then.
        // Only the pc/kind/trapLevel/block columns are read here, so
        // the path composes with the executor's lean decode.
        if (!observing && noop) {
            std::uint32_t j = i + 1;
            while (j < batch.size && batch.plainCont[j])
                ++j;
            const std::uint32_t run = j - i;
            prefetcher.onRetireSameBlockRun(tl, run);
            // No accesses intervene, so nothing enqueues mid-run:
            // once a drain comes back empty the queue stays empty,
            // and stopping early is state-identical to draining once
            // per instruction.
            for (std::uint32_t k = 0; k < run; ++k) {
                drain_.clear();
                if (prefetcher.drainRequests(drain_, drainPerStep) == 0)
                    break;
                for (Addr b : drain_) {
                    if (!l1i_.probe(b))
                        l1i_.fill(b, true);
                }
            }
            i = j - 1;
            continue;
        }

        // Scalar fast path: a lone no-op step (observers attached)
        // still skips the out-of-line front-end call and reuses the
        // sticky tag.
        const RetiredInstr instr = batch.get(i);
        const bool tagged =
            noop ? frontend_.currentBlockTagged()
                 : frontend_.step(instr, events_);

        const std::size_t nev = events_.size() - ev0;
        const FetchAccess *evs = events_.data() + ev0;

        if (observing) {
            // Executor-side counters advance at batch-decode
            // granularity, so a mid-batch counter sample must not read
            // them: re-derive the interrupt count per instruction from
            // the record stream itself (a TL0 -> TL1 transition is
            // exactly one delivery), keeping samples identical at any
            // batch length.
            obsInterrupts_ += static_cast<std::uint64_t>(
                instr.trapLevel != 0 && obsPrevTl_ == 0);
            obsPrevTl_ = instr.trapLevel;
            observers_.observeStep(instr, evs, nev, [&] {
                RunCounters live = liveRunCounters(exec_, frontend_);
                live.interrupts = obsInterrupts_;
                return counterSnapshotOf(live, l1i_.prefetchFills());
            });
        }

        for (std::size_t e = 0; e < nev; ++e) {
            const FetchAccess &ev = evs[e];
            FetchInfo info;
            info.block = ev.block;
            info.pc = ev.correctPath ? instr.pc : blockBase(ev.block);
            info.hit = ev.hit;
            info.wasPrefetched = ev.wasPrefetched;
            info.correctPath = ev.correctPath;
            info.trapLevel = ev.trapLevel;
            prefetcher.onFetchAccess(info);
        }

        prefetcher.onRetire(instr, tagged);

        // Apply prefetch candidates: probe the tags first (Section
        // 4.3's line-buffer path); a functional fill models a timely
        // prefetch. This stays per-instruction — the fill changes what
        // the very next instruction's fetch hits.
        drain_.clear();
        prefetcher.drainRequests(drain_, drainPerStep);
        for (Addr b : drain_) {
            if (!l1i_.probe(b)) {
                l1i_.fill(b, true);
                if (observing)
                    observers_.observePrefetchFill(b);
            }
        }

        ev0 = events_.size();
    }
}

template <typename P>
void
TraceEngine::advanceWith(P &prefetcher, InstCount n)
{
    // Unobserved replay never reads the target/taken columns of plain
    // records (the bulk path keys on pc/kind/trapLevel/block, and
    // Frontend::step ignores both for Plain), so let the decoder skip
    // those fills. Observers fold whole records and need full batches.
    const bool lean = !observers_.active();
    while (n > 0) {
        const std::uint32_t want =
            n < batchLen_ ? static_cast<std::uint32_t>(n) : batchLen_;
        exec_.nextBatch(batch_, want, lean);
        if (batch_.size == 0)
            break;
        stepBatch(prefetcher, batch_);
        n -= batch_.size;
    }
}

void
TraceEngine::advance(InstCount n)
{
    // Monomorphize the replay loop on the known prefetcher set (the
    // ladder lives in sim/prefetcher_dispatch.hh).
    withConcretePrefetcher(*prefetcher_,
                           [&](auto &p) { advanceWith(p, n); });
}

void
TraceEngine::replayBatch(const RecordBatch &batch)
{
    withConcretePrefetcher(*prefetcher_,
                           [&](auto &p) { stepBatch(p, batch); });
}

TraceRunResult
TraceEngine::run(InstCount warmup, InstCount measure)
{
    advance(warmup);

    // Snapshot warmup-end counters so the result reflects only the
    // measurement window. instrs comes from the executor, not echoed
    // from the request, so the length-scaling and cross-engine oracles
    // (src/check/) compare a real counter: a replay loop that silently
    // ran short would show up here.
    const RunCounters base = liveRunCounters(exec_, frontend_);
    const std::uint64_t fills0 = l1i_.prefetchFills();
    const std::uint64_t useful0 = l1i_.usefulPrefetches();
    prefetcher_->resetStats();

    advance(measure);

    TraceRunResult res;
    static_cast<RunCounters &>(res) = liveRunCounters(exec_, frontend_);
    res.subtractBase(base);
    res.prefetchIssued = prefetcher_->issued();
    res.prefetchFills = l1i_.prefetchFills() - fills0;
    res.usefulPrefetches = l1i_.usefulPrefetches() - useful0;

    if (auto *pif = dynamic_cast<PifPrefetcher *>(prefetcher_.get())) {
        res.pifCoverageTl0 = pif->coverage(0);
        res.pifCoverageTl1 = pif->coverage(1);
        res.pifCoverage = pif->coverage();
    }
    res.retireDigest = observers_.retireDigest();
    res.accessDigest = observers_.accessDigest();
    return res;
}

} // namespace pifetch
