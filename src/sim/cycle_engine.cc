/**
 * @file
 * Cycle engine implementation.
 */

#include "sim/cycle_engine.hh"

#include "query/event_store.hh"
#include "sim/prefetcher_dispatch.hh"

namespace pifetch {

namespace {
/** Prefetch candidates considered per instruction step. */
constexpr unsigned drainPerStep = 4;
} // namespace

CycleEngine::CycleEngine(const SystemConfig &cfg, const Program &prog,
                         const ExecutorConfig &exec_cfg,
                         PrefetcherKind kind)
    : cfg_(cfg),
      kind_(kind),
      exec_(prog, exec_cfg),
      l1i_(cfg.l1i, ReplacementKind::LRU, cfg.seed),
      frontend_(cfg, l1i_, cfg.seed ^ 0xfe7c4),
      hierarchy_(cfg.memory),
      prefetcher_(makePrefetcher(kind, cfg)),
      timing_(cfg.core, cfg.seed ^ 0x7131)
{
    events_.reserve(64);
    drain_.reserve(drainPerStep);
    pending_.reserve(cfg.l1i.mshrs * 2);
}

void
CycleEngine::processReadyFills()
{
    const Cycle now = timing_.cycles();
    // Known hazard: ready fills reach L1I in hash order, which can
    // leak the standard library's bucket layout into LRU recency.
    // The current order is locked byte-for-byte by the golden suite
    // (sorting the drain shifts fig10-speedup), so changing it means
    // a deliberate regold, not a drive-by cleanup. docs/linting.md
    // tracks this as the one outstanding D-unordered-iter waiver.
    // lint:allow(D-unordered-iter): fill order locked by goldens; fix requires a regold
    for (auto it = pending_.begin(); it != pending_.end();) {
        if (it->second <= now) {
            l1i_.fill(it->first, true);
            ++prefetchFills_;
            if (eventStore_)
                eventStore_->recordPrefetchFill(eventsCore_, it->first);
            it = pending_.erase(it);
        } else {
            ++it;
        }
    }
}

void
CycleEngine::recordEventStep(const RetiredInstr &instr)
{
    eventStore_->recordRetire(eventsCore_, instr);
    for (const FetchAccess &ev : events_)
        eventStore_->recordAccess(eventsCore_, ev,
                                  ev.correctPath ? instr.pc
                                                 : blockBase(ev.block));
    if (eventStore_->counterSampleDue(eventsCore_)) {
        CounterSnapshot snap;
        snap.accesses = frontend_.correctPathFetches();
        snap.misses = frontend_.correctPathMisses();
        snap.wrongPathFetches = frontend_.wrongPathFetches();
        snap.mispredicts = frontend_.mispredicts();
        snap.interrupts = exec_.interrupts();
        snap.prefetchFills = l1i_.prefetchFills();
        eventStore_->sampleCounters(eventsCore_, snap);
    }
}

template <typename P>
void
CycleEngine::advanceWith(P &prefetcher, InstCount n, bool measuring)
{
    for (InstCount step = 0; step < n; ++step) {
        processReadyFills();

        const RetiredInstr instr = exec_.next();
        events_.clear();
        const bool tagged = frontend_.step(instr, events_);

        if (digests_) {
            digestRetire(retireDigest_, instr);
            for (const FetchAccess &ev : events_)
                digestAccess(accessDigest_, ev);
        }

        if (eventStore_)
            recordEventStep(instr);

        const bool perfect = kind_ == PrefetcherKind::Perfect;

        for (const FetchAccess &ev : events_) {
            if (ev.correctPath && !ev.hit && !perfect) {
                // Demand miss: the front-end already performed the
                // functional fill; charge the timing.
                auto it = pending_.find(ev.block);
                Cycle stall;
                if (it != pending_.end()) {
                    // Late prefetch: wait only the residual latency.
                    const Cycle now = timing_.cycles();
                    stall = it->second > now ? it->second - now : 0;
                    pending_.erase(it);
                    if (measuring)
                        ++latePrefetches_;
                } else {
                    stall = hierarchy_.request(ev.block);
                }
                timing_.fetchStall(stall);
                if (measuring)
                    ++demandMisses_;
            }

            FetchInfo info;
            info.block = ev.block;
            info.pc = ev.correctPath ? instr.pc : blockBase(ev.block);
            info.hit = ev.hit;
            info.wasPrefetched = ev.wasPrefetched;
            info.correctPath = ev.correctPath;
            info.trapLevel = ev.trapLevel;
            prefetcher.onFetchAccess(info);
        }

        // Branch misprediction penalty: one per mispredict this step.
        const std::uint64_t misp = frontend_.mispredicts();
        for (std::uint64_t m = lastMispredicts_; m < misp; ++m)
            timing_.mispredict();
        lastMispredicts_ = misp;

        prefetcher.onRetire(instr, tagged);
        timing_.instruction(instr.trapLevel);

        // Issue prefetches into the hierarchy, MSHR-limited.
        drain_.clear();
        prefetcher.drainRequests(drain_, drainPerStep);
        for (Addr b : drain_) {
            if (l1i_.probe(b) || pending_.count(b))
                continue;
            if (pending_.size() >= cfg_.l1i.mshrs)
                break;  // MSHRs full: drop (back-pressure)
            const Cycle lat = hierarchy_.request(b);
            pending_.emplace(b, timing_.cycles() + lat);
        }
    }
}

void
CycleEngine::advance(InstCount n, bool measuring)
{
    withConcretePrefetcher(*prefetcher_, [&](auto &p) {
        advanceWith(p, n, measuring);
    });
}

CycleRunResult
CycleEngine::run(InstCount warmup, InstCount measure)
{
    advance(warmup, false);

    // resetStats() rewinds the cycle clock to zero; rebase in-flight
    // fill completion times so stale absolute cycles cannot charge
    // enormous residual stalls in the measurement window.
    const Cycle t0 = timing_.cycles();
    // lint:allow(D-unordered-iter): per-entry rebase, order-insensitive
    for (auto &entry : pending_)
        entry.second = entry.second > t0 ? entry.second - t0 : 0;

    timing_.resetStats();
    prefetcher_->resetStats();
    demandMisses_ = 0;
    latePrefetches_ = 0;
    prefetchFills_ = 0;
    const std::uint64_t l2h0 = hierarchy_.l2Hits();
    const std::uint64_t l2m0 = hierarchy_.l2Misses();
    const std::uint64_t acc0 = frontend_.correctPathFetches();
    const std::uint64_t miss0 = frontend_.correctPathMisses();
    const std::uint64_t wrong0 = frontend_.wrongPathFetches();
    const std::uint64_t misp0 = frontend_.mispredicts();
    const std::uint64_t intr0 = exec_.interrupts();

    advance(measure, true);

    CycleRunResult res;
    res.cycles = timing_.cycles();
    res.instrs = timing_.instructions();
    res.userInstrs = timing_.userInstructions();
    res.uipc = timing_.uipc();
    res.fetchStallCycles = timing_.fetchStallCycles();
    res.branchPenaltyCycles = timing_.branchPenaltyCycles();
    res.demandMisses = demandMisses_;
    res.latePrefetches = latePrefetches_;
    res.prefetchFills = prefetchFills_;
    res.l2Hits = hierarchy_.l2Hits() - l2h0;
    res.l2Misses = hierarchy_.l2Misses() - l2m0;
    res.accesses = frontend_.correctPathFetches() - acc0;
    res.misses = frontend_.correctPathMisses() - miss0;
    res.wrongPathFetches = frontend_.wrongPathFetches() - wrong0;
    res.mispredicts = frontend_.mispredicts() - misp0;
    res.interrupts = exec_.interrupts() - intr0;
    res.retireDigest = retireDigest();
    res.accessDigest = accessDigest();
    return res;
}

} // namespace pifetch
