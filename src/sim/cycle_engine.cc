/**
 * @file
 * Cycle engine implementation.
 */

#include "sim/cycle_engine.hh"

#include "sim/prefetcher_dispatch.hh"

namespace pifetch {

namespace {
/** Prefetch candidates considered per instruction step. */
constexpr unsigned drainPerStep = 4;
} // namespace

CycleEngine::CycleEngine(const SystemConfig &cfg, const Program &prog,
                         const ExecutorConfig &exec_cfg,
                         PrefetcherKind kind)
    : cfg_(cfg),
      kind_(kind),
      exec_(prog, exec_cfg),
      l1i_(cfg.l1i, ReplacementKind::LRU, cfg.seed),
      frontend_(cfg, l1i_, cfg.seed ^ 0xfe7c4),
      hierarchy_(cfg.memory),
      prefetcher_(makePrefetcher(kind, cfg)),
      timing_(cfg.core, cfg.seed ^ 0x7131)
{
    batch_.reserve(batchLen_);
    events_.reserve(4096);
    drain_.reserve(drainPerStep);
    pending_.reserve(cfg.l1i.mshrs * 2);
}

void
CycleEngine::processReadyFills()
{
    const Cycle now = timing_.cycles();
    // Known hazard: ready fills reach L1I in hash order, which can
    // leak the standard library's bucket layout into LRU recency.
    // The current order is locked byte-for-byte by the golden suite
    // (sorting the drain shifts fig10-speedup), so changing it means
    // a deliberate regold, not a drive-by cleanup. docs/linting.md
    // tracks this as the one outstanding D-unordered-iter waiver.
    // lint:allow(D-unordered-iter): fill order locked by goldens; fix requires a regold
    for (auto it = pending_.begin(); it != pending_.end();) {
        if (it->second <= now) {
            l1i_.fill(it->first, true);
            ++prefetchFills_;
            observers_.observePrefetchFill(it->first);
            it = pending_.erase(it);
        } else {
            ++it;
        }
    }
}

template <typename P>
void
CycleEngine::stepBatch(P &prefetcher, const RecordBatch &batch,
                       bool measuring)
{
    const bool observing = observers_.active();
    const bool perfect = kind_ == PrefetcherKind::Perfect;
    events_.clear();
    std::size_t ev0 = 0;

    for (std::uint32_t i = 0; i < batch.size; ++i) {
        // Fill timing is per-instruction: a completing prefetch changes
        // what this very fetch hits, so ready fills install before the
        // front-end step — exactly as in the scalar loop.
        processReadyFills();

        const RetiredInstr instr = batch.get(i);
        const Addr block = batch.block[i];

        bool tagged;
        if (frontend_.stepIsNoop(block, instr.kind, instr.trapLevel)) {
            tagged = frontend_.currentBlockTagged();
        } else {
            tagged = frontend_.step(instr, events_);
        }

        const std::size_t nev = events_.size() - ev0;
        const FetchAccess *evs = events_.data() + ev0;

        if (observing) {
            // Executor-side counters advance at batch-decode
            // granularity, so a mid-batch counter sample must not read
            // them: re-derive the interrupt count per instruction from
            // the record stream itself (a TL0 -> TL1 transition is
            // exactly one delivery), keeping samples identical at any
            // batch length.
            obsInterrupts_ += static_cast<std::uint64_t>(
                instr.trapLevel != 0 && obsPrevTl_ == 0);
            obsPrevTl_ = instr.trapLevel;
            observers_.observeStep(instr, evs, nev, [&] {
                RunCounters live = liveRunCounters(exec_, frontend_);
                live.interrupts = obsInterrupts_;
                return counterSnapshotOf(live, l1i_.prefetchFills());
            });
        }

        for (std::size_t e = 0; e < nev; ++e) {
            const FetchAccess &ev = evs[e];
            if (ev.correctPath && !ev.hit && !perfect) {
                // Demand miss: the front-end already performed the
                // functional fill; charge the timing.
                auto it = pending_.find(ev.block);
                Cycle stall;
                if (it != pending_.end()) {
                    // Late prefetch: wait only the residual latency.
                    const Cycle now = timing_.cycles();
                    stall = it->second > now ? it->second - now : 0;
                    pending_.erase(it);
                    if (measuring)
                        ++latePrefetches_;
                } else {
                    stall = hierarchy_.request(ev.block);
                }
                timing_.fetchStall(stall);
                if (measuring)
                    ++demandMisses_;
            }

            FetchInfo info;
            info.block = ev.block;
            info.pc = ev.correctPath ? instr.pc : blockBase(ev.block);
            info.hit = ev.hit;
            info.wasPrefetched = ev.wasPrefetched;
            info.correctPath = ev.correctPath;
            info.trapLevel = ev.trapLevel;
            prefetcher.onFetchAccess(info);
        }

        // Branch misprediction penalty: one per mispredict this step.
        const std::uint64_t misp = frontend_.mispredicts();
        for (std::uint64_t m = lastMispredicts_; m < misp; ++m)
            timing_.mispredict();
        lastMispredicts_ = misp;

        prefetcher.onRetire(instr, tagged);
        timing_.instruction(instr.trapLevel);

        // Issue prefetches into the hierarchy, MSHR-limited.
        drain_.clear();
        prefetcher.drainRequests(drain_, drainPerStep);
        for (Addr b : drain_) {
            if (l1i_.probe(b) || pending_.count(b))
                continue;
            if (pending_.size() >= cfg_.l1i.mshrs)
                break;  // MSHRs full: drop (back-pressure)
            const Cycle lat = hierarchy_.request(b);
            pending_.emplace(b, timing_.cycles() + lat);
        }

        ev0 = events_.size();
    }
}

template <typename P>
void
CycleEngine::advanceWith(P &prefetcher, InstCount n, bool measuring)
{
    while (n > 0) {
        const std::uint32_t want =
            n < batchLen_ ? static_cast<std::uint32_t>(n) : batchLen_;
        exec_.nextBatch(batch_, want);
        if (batch_.size == 0)
            break;
        stepBatch(prefetcher, batch_, measuring);
        n -= batch_.size;
    }
}

void
CycleEngine::advance(InstCount n, bool measuring)
{
    withConcretePrefetcher(*prefetcher_, [&](auto &p) {
        advanceWith(p, n, measuring);
    });
}

CycleRunResult
CycleEngine::run(InstCount warmup, InstCount measure)
{
    advance(warmup, false);

    // resetStats() rewinds the cycle clock to zero; rebase in-flight
    // fill completion times so stale absolute cycles cannot charge
    // enormous residual stalls in the measurement window.
    const Cycle t0 = timing_.cycles();
    // lint:allow(D-unordered-iter): per-entry rebase, order-insensitive
    for (auto &entry : pending_)
        entry.second = entry.second > t0 ? entry.second - t0 : 0;

    timing_.resetStats();
    prefetcher_->resetStats();
    demandMisses_ = 0;
    latePrefetches_ = 0;
    prefetchFills_ = 0;
    const std::uint64_t l2h0 = hierarchy_.l2Hits();
    const std::uint64_t l2m0 = hierarchy_.l2Misses();
    const RunCounters base = liveRunCounters(exec_, frontend_);

    advance(measure, true);

    CycleRunResult res;
    static_cast<RunCounters &>(res) = liveRunCounters(exec_, frontend_);
    res.subtractBase(base);
    res.cycles = timing_.cycles();
    res.instrs = timing_.instructions();
    res.userInstrs = timing_.userInstructions();
    res.uipc = timing_.uipc();
    res.fetchStallCycles = timing_.fetchStallCycles();
    res.branchPenaltyCycles = timing_.branchPenaltyCycles();
    res.demandMisses = demandMisses_;
    res.latePrefetches = latePrefetches_;
    res.prefetchFills = prefetchFills_;
    res.l2Hits = hierarchy_.l2Hits() - l2h0;
    res.l2Misses = hierarchy_.l2Misses() - l2m0;
    res.retireDigest = observers_.retireDigest();
    res.accessDigest = observers_.accessDigest();
    return res;
}

} // namespace pifetch
