/**
 * @file
 * Prefetcher selection and construction for the engines.
 */

#pragma once

#include <memory>
#include <string>

#include "common/config.hh"
#include "prefetch/prefetcher.hh"

namespace pifetch {

/** The prefetch configurations compared in Figure 10. */
enum class PrefetcherKind {
    None,           //!< no prefetching (Figure 10 baseline)
    NextLine,       //!< aggressive next-line prefetcher
    Tifs,           //!< temporal instruction fetch streaming
    Discontinuity,  //!< discontinuity prefetcher (extension)
    Pif,            //!< Proactive Instruction Fetch
    Perfect,        //!< perfect-latency L1-I (engine-interpreted)
};

/** Display name matching the paper's figure legends. */
std::string prefetcherName(PrefetcherKind kind);

/**
 * Construct a prefetcher of @p kind from @p cfg.
 *
 * Perfect returns a NullPrefetcher: the perfect-latency cache is a
 * property the cycle engine applies, not a prefetch algorithm.
 *
 * @param unbounded Remove storage limits (Figure 10 left's
 *        "no storage limitation" comparison) where supported.
 */
std::unique_ptr<Prefetcher> makePrefetcher(PrefetcherKind kind,
                                           const SystemConfig &cfg,
                                           bool unbounded = false);

} // namespace pifetch
