/**
 * @file
 * The experiment registry: every figure/table of the paper's
 * evaluation as a named, uniformly-invocable entry.
 *
 * Each ExperimentSpec couples a name, a description, a default
 * workload set and instruction budget, and a runner that produces a
 * structured ResultValue document (see common/results.hh). The bench
 * binaries, the `pifetch` CLI and the golden-snapshot regression
 * suite all go through this table, so a new scenario is a registry
 * entry instead of a new binary.
 *
 * Result document convention:
 * {
 *   "experiment":  "<name>",
 *   "description": "<one line>",
 *   "meta":        { seed, warmup, measure, threads, git, config },
 *   "tables":      [ { "title", "columns": [...], "rows": [[...]] } ],
 *   "notes":       [ "paper shape: ..." ]
 * }
 *
 * Golden mode pins `meta` to {mode, seed, warmup, measure} only (no
 * git describe, no resolved thread count), because fixtures must be
 * byte-identical across checkouts and PIFETCH_THREADS settings.
 */

#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/results.hh"
#include "sim/experiment.hh"
#include "sim/workloads.hh"

namespace pifetch {

/** Options for one registry invocation. */
struct RunOptions
{
    /** Workloads to evaluate; empty means the spec's default set.
     *  Presets convert implicitly; spec-file workloads arrive as
     *  WorkloadRef wrappers (see workloadRefFromSpec). */
    std::vector<WorkloadRef> workloads;

    /**
     * Instruction budget override. Analysis-only studies (Fig. 3, 7,
     * 8-left, 9-left) interpret `measure` as their single-pass count
     * and ignore `warmup`.
     */
    std::optional<ExperimentBudget> budget;

    /** System configuration (seed, PIF geometry, threads knob...). */
    SystemConfig cfg;
};

/** One registered experiment. */
struct ExperimentSpec
{
    std::string name;         //!< registry key, e.g. "fig10-coverage"
    std::string description;  //!< one-line summary for `pifetch list`
    std::string paperShape;   //!< expected qualitative trend (a note)
    std::vector<WorkloadRef> defaultWorkloads;
    ExperimentBudget defaultBudget;

    /** Produce the document body ("tables", optionally extra keys). */
    std::function<ResultValue(const ExperimentSpec &,
                              const RunOptions &)> run;

    /**
     * Whether the runner consumes RunOptions.cfg. Analysis-only
     * studies (Fig. 3, 7, 8-left, 9-left) take just a workload and an
     * instruction count; their meta omits seed/config so the JSON
     * artifact never claims settings that had no effect.
     */
    bool usesConfig = true;
};

/** The full registry, in the paper's presentation order. */
const std::vector<ExperimentSpec> &experimentRegistry();

/** Look up a spec by name (nullptr when absent). */
const ExperimentSpec *findExperiment(const std::string &name);

/**
 * Run @p spec with @p opts and wrap the body in the full document
 * (experiment, description, meta, tables, notes).
 */
ResultValue runExperiment(const ExperimentSpec &spec,
                          const RunOptions &opts);

/** Key system-configuration parameters as a result object. */
ResultValue configToResult(const SystemConfig &cfg);

/**
 * Apply a `key=value` configuration override ("pif.historyRegions",
 * "nextLine.degree", "seed", ...). Returns false on an unknown key or
 * unparsable value. configOverrideKeys() lists the supported keys.
 */
bool applyConfigOverride(SystemConfig &cfg, const std::string &key,
                         const std::string &value);

/** The override keys applyConfigOverride understands. */
const std::vector<std::string> &configOverrideKeys();

/**
 * Strict non-negative integer parse (base 0: decimal/hex/octal).
 * Rejects negatives outright — strtoull would wrap them to huge
 * values, turning a typo like "-1" into 1.8e19 instructions. Shared
 * by the config overrides and the CLI's numeric options.
 */
bool parseU64Value(const std::string &s, std::uint64_t &out);

/** `git describe` of the build, or "unknown" outside a git checkout. */
std::string gitDescribe();

// ------------------------------------------------- golden snapshots

/** One entry of the golden-snapshot suite (tests/golden/<name>.json). */
struct GoldenEntry
{
    std::string experiment;  //!< registry key
    RunOptions options;      //!< pinned small-budget options
    /**
     * Fixture base name (tests/golden/<fixture>.json). Empty falls
     * back to the experiment name; entries sharing an experiment
     * (e.g. a zoo-spec variant) must set a distinct fixture.
     */
    std::string fixture;
};

/** The experiments locked by the golden regression suite. */
const std::vector<GoldenEntry> &goldenSuite();

/** Fixture base name of an entry (fixture, or the experiment name). */
std::string goldenFixtureName(const GoldenEntry &entry);

/**
 * Canonical fixture serialization of one golden entry: the document
 * with pinned metadata, 2-space-indented JSON, trailing newline.
 * @p threads overrides the entry's SystemConfig::threads (results
 * must be identical for any value; the suite checks 1 and 4).
 */
std::string goldenJson(const GoldenEntry &entry, unsigned threads = 0);

} // namespace pifetch
