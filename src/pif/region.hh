/**
 * @file
 * Spatial region records (Section 4.1).
 *
 * A spatial region is a group of adjacent instruction blocks anchored
 * at a trigger: the first instruction accessed within the region. The
 * record stores the trigger PC plus a bit vector with one bit per
 * neighbouring block — blocksBefore bits for blocks preceding the
 * trigger block and blocksAfter bits for blocks succeeding it. The
 * trigger block itself is implicit (always accessed).
 */

#pragma once

#include <cstdint>

#include "common/types.hh"

namespace pifetch {

/**
 * One spatial region record as stored in the history buffer.
 *
 * Bit i of @ref bits corresponds to block offset:
 *   offset = (i < blocksBefore) ? i - blocksBefore : i - blocksBefore + 1
 * i.e. bits [0, blocksBefore) cover offsets [-blocksBefore, -1] in
 * ascending order and the remaining bits cover offsets [+1, ...].
 * The geometry (blocksBefore/blocksAfter) is a property of the
 * compactor configuration, not stored per record.
 */
struct SpatialRegion
{
    /** Trigger instruction PC (byte address). */
    Addr triggerPc = invalidAddr;
    /** Neighbour-block bit vector (see class comment). */
    std::uint32_t bits = 0;
    /** Trap level the region was recorded at. */
    TrapLevel trapLevel = 0;
    /**
     * The trigger instruction was NOT delivered from an explicitly
     * prefetched block (Section 4.2's tag); gates index insertion.
     */
    bool triggerTagged = true;

    /** Block address of the trigger. */
    Addr triggerBlock() const { return blockAddr(triggerPc); }

    /** True if the record refers to no block other than the trigger. */
    bool isTriggerOnly() const { return bits == 0; }

    /** Number of neighbour blocks recorded (excludes the trigger). */
    unsigned
    popCount() const
    {
        return static_cast<unsigned>(__builtin_popcount(bits));
    }

    /**
     * Bit index for signed block offset @p off (nonzero) given the
     * region geometry.
     */
    static unsigned
    bitIndex(int off, unsigned blocks_before)
    {
        return off < 0
            ? static_cast<unsigned>(off + static_cast<int>(blocks_before))
            : blocks_before + static_cast<unsigned>(off) - 1;
    }

    /** Signed block offset for bit index @p i given the geometry. */
    static int
    offsetOf(unsigned i, unsigned blocks_before)
    {
        return i < blocks_before
            ? static_cast<int>(i) - static_cast<int>(blocks_before)
            : static_cast<int>(i - blocks_before) + 1;
    }

    /** Set the bit for signed offset @p off. */
    void
    setOffset(int off, unsigned blocks_before)
    {
        bits |= std::uint32_t{1} << bitIndex(off, blocks_before);
    }

    /** Test the bit for signed offset @p off. */
    bool
    testOffset(int off, unsigned blocks_before) const
    {
        return bits & (std::uint32_t{1} << bitIndex(off, blocks_before));
    }

    /**
     * True if @p other covers no blocks outside this record
     * (same trigger PC and other.bits subset of bits) — the temporal
     * compactor's match rule (Section 4.1).
     */
    bool
    covers(const SpatialRegion &other) const
    {
        return triggerPc == other.triggerPc &&
               (other.bits & ~bits) == 0;
    }
};

} // namespace pifetch
