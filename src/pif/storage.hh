/**
 * @file
 * Hardware storage-cost model for the PIF structures.
 *
 * Section 5.4 frames the history buffer as "considerable chip
 * real-estate" and argues it is still a better use of transistors than
 * an equally-sized intermediate instruction cache. This model makes
 * the comparison concrete: it computes the bit cost of every PIF
 * structure (and of the TIFS equivalent) from the configuration, so
 * benches can report coverage *per kilobyte of predictor storage*.
 */

#pragma once

#include <cstdint>

#include "common/config.hh"

namespace pifetch {

/** Bit costs of the PIF hardware structures. */
struct PifStorage
{
    std::uint64_t historyBits = 0;
    std::uint64_t indexBits = 0;
    std::uint64_t sabBits = 0;
    std::uint64_t compactorBits = 0;

    /** Total predictor storage in bits. */
    std::uint64_t
    totalBits() const
    {
        return historyBits + indexBits + sabBits + compactorBits;
    }

    /** Total predictor storage in kibibytes. */
    double
    totalKiB() const
    {
        return static_cast<double>(totalBits()) / 8.0 / 1024.0;
    }
};

/**
 * Compute PIF storage from the configuration.
 *
 * @param cfg PIF parameters (region geometry, capacities).
 * @param pc_bits Bits retained per recorded trigger PC (physical
 *        instruction address space; 40 covers a 1TB code region).
 */
PifStorage computePifStorage(const PifConfig &cfg,
                             unsigned pc_bits = 40);

/**
 * Storage of the TIFS equivalent (per-block-address miss history plus
 * index) for a like-for-like comparison.
 *
 * @param block_bits Bits per recorded block address (pc_bits -
 *        blockShift for the same address space).
 */
std::uint64_t tifsStorageBits(const TifsConfig &cfg,
                              unsigned block_bits = 34);

/**
 * Storage of one spatial region record in bits (trigger PC + bit
 * vector + tag bit).
 */
std::uint64_t regionRecordBits(const PifConfig &cfg, unsigned pc_bits);

} // namespace pifetch
