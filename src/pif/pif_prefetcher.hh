/**
 * @file
 * Proactive Instruction Fetch prefetcher (Section 4, Figure 4).
 *
 * Assembles the four PIF hardware structures: per-trap-level spatial
 * and temporal compactors feeding per-trap-level history buffers and
 * index tables, plus a shared pool of stream address buffers that
 * monitor front-end fetches and issue prefetch candidates.
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/config.hh"
#include "common/flat_hash.hh"
#include "pif/history_buffer.hh"
#include "pif/index_table.hh"
#include "pif/sab.hh"
#include "pif/spatial_compactor.hh"
#include "pif/temporal_compactor.hh"
#include "prefetch/prefetcher.hh"

namespace pifetch {

/**
 * The complete PIF mechanism as an engine-pluggable Prefetcher.
 *
 * With cfg.separateTrapLevels set (the RetireSep configuration of
 * Figure 2), interrupt-handler execution records into its own history
 * so handler noise cannot fragment application streams; the history
 * buffer capacity is split 7/8 : 1/8 between TL0 and TL1.
 */
class PifPrefetcher final : public Prefetcher
{
  public:
    /**
     * @param cfg PIF design parameters.
     * @param unbounded_storage Remove history/index capacity limits
     *        (the Figure 10 "no storage limitation" configuration).
     */
    explicit PifPrefetcher(const PifConfig &cfg,
                           bool unbounded_storage = false);

    std::string name() const override { return "PIF"; }

    // The three engine hooks run on every instruction of every replay;
    // they are defined inline (below the class) so the engines'
    // monomorphized loops can fold them in without LTO.
    void onFetchAccess(const FetchInfo &info) override;
    void onRetire(const RetiredInstr &instr, bool tagged) override;
    unsigned drainRequests(std::vector<Addr> &out, unsigned max) override;
    void reset() override;
    void resetStats() override;

    /**
     * Prediction coverage counters (Section 5.4's "predictor coverage"):
     * a correct-path fetch access counts as covered when it was
     * delivered from a prefetched block, matched an active SAB window,
     * or was already sitting in the prefetch queue.
     */
    std::uint64_t coveredAccesses(TrapLevel tl) const
    {
        return covered_[tl];
    }
    /** Total correct-path accesses observed at @p tl. */
    std::uint64_t totalAccesses(TrapLevel tl) const { return total_[tl]; }

    /** Coverage ratio at trap level @p tl. */
    double
    coverage(TrapLevel tl) const
    {
        return total_[tl] == 0
            ? 0.0
            : static_cast<double>(covered_[tl]) /
              static_cast<double>(total_[tl]);
    }

    /** Overall coverage across trap levels. */
    double coverage() const;

    /** Regions recorded into history (all trap levels). */
    std::uint64_t regionsRecorded() const;

    /** SAB allocations performed. */
    std::uint64_t sabAllocations() const { return sabAllocations_; }

    /** Access the per-TL history (tests, studies). */
    const HistoryBuffer &history(TrapLevel tl) const
    {
        return *chains_[chainFor(tl)].history;
    }

    /** Access the per-TL index table (tests). */
    const IndexTable &index(TrapLevel tl) const
    {
        return *chains_[chainFor(tl)].index;
    }

  private:
    /** Queue depth bound: drop candidates beyond this (hardware queue). */
    static constexpr std::size_t prefetchQueueCap = 256;

    /** Recording chain for one trap level. */
    struct Chain
    {
        std::unique_ptr<SpatialCompactor> spatial;
        std::unique_ptr<TemporalCompactor> temporal;
        std::unique_ptr<HistoryBuffer> history;
        std::unique_ptr<IndexTable> index;
    };

    /** Map a trap level to a chain slot. */
    std::size_t
    chainFor(TrapLevel tl) const
    {
        return (cfg_.separateTrapLevels && tl > 0) ? 1 : 0;
    }

    /** Route a completed spatial region down its chain. */
    void recordRegion(Chain &chain, const SpatialRegion &rec);

    /** Enqueue a prefetch candidate (dedup against the queue). */
    void enqueue(Addr block);

    PifConfig cfg_;
    std::vector<Chain> chains_;
    std::vector<StreamAddressBuffer> sabs_;
    std::uint64_t sabTick_ = 0;

    std::deque<Addr> queue_;
    AddrSet queued_;
    std::vector<Addr> scratch_;  //!< SAB emission buffer

    std::uint64_t covered_[maxTrapLevels] = {0, 0};
    std::uint64_t total_[maxTrapLevels] = {0, 0};
    std::uint64_t sabAllocations_ = 0;
};

inline void
PifPrefetcher::enqueue(Addr block)
{
    if (queued_.count(block) || queue_.size() >= prefetchQueueCap)
        return;
    queue_.push_back(block);
    queued_.insert(block);
    ++issued_;
}

inline void
PifPrefetcher::recordRegion(Chain &chain, const SpatialRegion &rec)
{
    if (!chain.temporal->admit(rec))
        return;  // filtered loop-iteration redundancy
    const std::uint64_t seq = chain.history->append(rec);
    // Index insertion is conditional on the fetch-stage tag; history
    // insertion is unconditional (Section 4.2).
    if (rec.triggerTagged)
        chain.index->insert(rec.triggerPc, seq);
}

inline void
PifPrefetcher::onRetire(const RetiredInstr &instr, bool tagged)
{
    Chain &chain = chains_[chainFor(instr.trapLevel)];
    if (auto done = chain.spatial->observe(instr.pc, tagged,
                                           instr.trapLevel)) {
        recordRegion(chain, *done);
    }
}

inline void
PifPrefetcher::onFetchAccess(const FetchInfo &info)
{
    // 1. Stream advancement: active SABs watch every front-end fetch.
    scratch_.clear();
    bool in_stream = false;
    for (StreamAddressBuffer &sab : sabs_) {
        if (sab.onAccess(info.block, scratch_)) {
            in_stream = true;
            sab.touch(++sabTick_);
        }
    }

    // Coverage accounting (correct-path fetches only).
    if (info.correctPath) {
        const TrapLevel tl = std::min<TrapLevel>(info.trapLevel,
                                                 maxTrapLevels - 1);
        ++total_[tl];
        const bool covered = (info.hit && info.wasPrefetched) ||
                             in_stream || queued_.count(info.block) != 0;
        if (covered)
            ++covered_[tl];
    }

    // 2. Stream trigger: a fetch that was not delivered by a prefetch
    // consults the index table (Section 4.3).
    if (!(info.hit && info.wasPrefetched) && !in_stream) {
        Chain &chain = chains_[chainFor(info.trapLevel)];
        if (auto seq = chain.index->lookup(info.pc)) {
            if (chain.history->valid(*seq)) {
                // Allocate the LRU SAB for the new stream.
                StreamAddressBuffer *victim = &sabs_[0];
                for (StreamAddressBuffer &sab : sabs_) {
                    if (!sab.active()) {
                        victim = &sab;
                        break;
                    }
                    if (sab.lastUse() < victim->lastUse())
                        victim = &sab;
                }
                victim->allocate(chain.history.get(), *seq, scratch_);
                victim->touch(++sabTick_);
                ++sabAllocations_;
            }
        }
    }

    for (Addr b : scratch_)
        enqueue(b);
}

inline unsigned
PifPrefetcher::drainRequests(std::vector<Addr> &out, unsigned max)
{
    unsigned n = 0;
    while (n < max && !queue_.empty()) {
        const Addr b = queue_.front();
        queue_.pop_front();
        queued_.erase(b);
        out.push_back(b);
        ++n;
    }
    return n;
}

} // namespace pifetch
