/**
 * @file
 * Proactive Instruction Fetch prefetcher (Section 4, Figure 4).
 *
 * Assembles the four PIF hardware structures: per-trap-level spatial
 * and temporal compactors feeding per-trap-level history buffers and
 * index tables, plus a shared pool of stream address buffers that
 * monitor front-end fetches and issue prefetch candidates.
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/config.hh"
#include "common/flat_hash.hh"
#include "pif/history_buffer.hh"
#include "pif/index_table.hh"
#include "pif/prefetch_queue.hh"
#include "pif/sab.hh"
#include "pif/spatial_compactor.hh"
#include "pif/temporal_compactor.hh"
#include "prefetch/prefetcher.hh"

namespace pifetch {

/**
 * The complete PIF mechanism as an engine-pluggable Prefetcher.
 *
 * With cfg.separateTrapLevels set (the RetireSep configuration of
 * Figure 2), interrupt-handler execution records into its own history
 * so handler noise cannot fragment application streams; the history
 * buffer capacity is split 7/8 : 1/8 between TL0 and TL1.
 */
class PifPrefetcher final : public Prefetcher
{
  public:
    /**
     * @param cfg PIF design parameters.
     * @param unbounded_storage Remove history/index capacity limits
     *        (the Figure 10 "no storage limitation" configuration).
     */
    explicit PifPrefetcher(const PifConfig &cfg,
                           bool unbounded_storage = false);

    std::string name() const override { return "PIF"; }

    // The three engine hooks run on every instruction of every replay;
    // they are defined inline (below the class) so the engines'
    // monomorphized loops can fold them in without LTO.
    void onFetchAccess(const FetchInfo &info) override;
    void onRetire(const RetiredInstr &instr, bool tagged) override;

    /**
     * Same-block retire runs hit the spatial compactor's same-block
     * early-out on every instruction, so only its PC counter moves.
     */
    void
    onRetireSameBlockRun(TrapLevel tl, std::uint32_t count) override
    {
        chains_[chainFor(tl)].spatial->observeSameBlock(count);
    }

    unsigned drainRequests(std::vector<Addr> &out, unsigned max) override;
    void reset() override;
    void resetStats() override;

    /**
     * Prediction coverage counters (Section 5.4's "predictor coverage"):
     * a correct-path fetch access counts as covered when it was
     * delivered from a prefetched block, matched an active SAB window,
     * or was already sitting in the prefetch queue.
     */
    std::uint64_t coveredAccesses(TrapLevel tl) const
    {
        return covered_[tl];
    }
    /** Total correct-path accesses observed at @p tl. */
    std::uint64_t totalAccesses(TrapLevel tl) const { return total_[tl]; }

    /** Coverage ratio at trap level @p tl. */
    double
    coverage(TrapLevel tl) const
    {
        return total_[tl] == 0
            ? 0.0
            : static_cast<double>(covered_[tl]) /
              static_cast<double>(total_[tl]);
    }

    /** Overall coverage across trap levels. */
    double coverage() const;

    /** Regions recorded into history (all trap levels). */
    std::uint64_t regionsRecorded() const;

    /** SAB allocations performed. */
    std::uint64_t sabAllocations() const { return sabAllocations_; }

    /** Access the per-TL history (tests, studies). */
    const HistoryBuffer &history(TrapLevel tl) const
    {
        return *chains_[chainFor(tl)].history;
    }

    /** Access the per-TL index table (tests). */
    const IndexTable &index(TrapLevel tl) const
    {
        return *chains_[chainFor(tl)].index;
    }

  private:
    /** Recording chain for one trap level. */
    struct Chain
    {
        std::unique_ptr<SpatialCompactor> spatial;
        std::unique_ptr<TemporalCompactor> temporal;
        std::unique_ptr<HistoryBuffer> history;
        std::unique_ptr<IndexTable> index;
    };

    /** Map a trap level to a chain slot. */
    std::size_t
    chainFor(TrapLevel tl) const
    {
        return (cfg_.separateTrapLevels && tl > 0) ? 1 : 0;
    }

    /** Route a completed spatial region down its chain. */
    void recordRegion(Chain &chain, const SpatialRegion &rec);

    /** Recompute the pooled SAB coverage bounds (see onFetchAccess). */
    void
    refreshStreamBounds()
    {
        Addr lo = invalidAddr;
        Addr hi = 0;
        for (const StreamAddressBuffer &sab : sabs_) {
            lo = std::min(lo, sab.boundLo());
            hi = std::max(hi, sab.boundHi());
        }
        streamLo_ = lo;
        streamHi_ = hi;
    }

    PifConfig cfg_;
    std::vector<Chain> chains_;
    std::vector<StreamAddressBuffer> sabs_;
    std::uint64_t sabTick_ = 0;

    /** Pooled fast-reject bounds over all SABs ([invalidAddr, 0] when
     * no stream is live, which rejects every block). */
    Addr streamLo_ = invalidAddr;
    Addr streamHi_ = 0;

    PrefetchQueue queue_;
    std::vector<Addr> scratch_;  //!< SAB emission buffer

    std::uint64_t covered_[maxTrapLevels] = {0, 0};
    std::uint64_t total_[maxTrapLevels] = {0, 0};
    std::uint64_t sabAllocations_ = 0;
};

inline void
PifPrefetcher::recordRegion(Chain &chain, const SpatialRegion &rec)
{
    if (!chain.temporal->admit(rec))
        return;  // filtered loop-iteration redundancy
    const std::uint64_t seq = chain.history->append(rec);
    // Index insertion is conditional on the fetch-stage tag; history
    // insertion is unconditional (Section 4.2).
    if (rec.triggerTagged)
        chain.index->insert(rec.triggerPc, seq);
}

inline void
PifPrefetcher::onRetire(const RetiredInstr &instr, bool tagged)
{
    Chain &chain = chains_[chainFor(instr.trapLevel)];
    if (auto done = chain.spatial->observe(instr.pc, tagged,
                                           instr.trapLevel)) {
        recordRegion(chain, *done);
    }
}

inline void
PifPrefetcher::onFetchAccess(const FetchInfo &info)
{
    // 1. Stream advancement: active SABs watch every front-end fetch.
    // Pool-level fast reject first: [streamLo_, streamHi_] bounds the
    // union of every SAB's own coverage bounds, so an access that
    // belongs to no stream (the common case) takes one compare pair
    // instead of the per-SAB scans. The bounds are a superset, never a
    // filter on matches; they move only when some SAB's window changes
    // (a match or an allocation), which is when we recompute.
    scratch_.clear();
    bool in_stream = false;
    if (info.block >= streamLo_ && info.block <= streamHi_) {
        for (StreamAddressBuffer &sab : sabs_) {
            if (sab.onAccess(info.block, scratch_)) {
                in_stream = true;
                sab.touch(++sabTick_);
            }
        }
        if (in_stream)
            refreshStreamBounds();
    }

    // Coverage accounting (correct-path fetches only).
    if (info.correctPath) {
        const TrapLevel tl = std::min<TrapLevel>(info.trapLevel,
                                                 maxTrapLevels - 1);
        ++total_[tl];
        const bool covered = (info.hit && info.wasPrefetched) ||
                             in_stream || queue_.contains(info.block);
        if (covered)
            ++covered_[tl];
    }

    // 2. Stream trigger: a fetch that was not delivered by a prefetch
    // consults the index table (Section 4.3).
    if (!(info.hit && info.wasPrefetched) && !in_stream) {
        Chain &chain = chains_[chainFor(info.trapLevel)];
        if (auto seq = chain.index->lookup(info.pc)) {
            if (chain.history->valid(*seq)) {
                // Allocate the LRU SAB for the new stream.
                StreamAddressBuffer *victim = &sabs_[0];
                for (StreamAddressBuffer &sab : sabs_) {
                    if (!sab.active()) {
                        victim = &sab;
                        break;
                    }
                    if (sab.lastUse() < victim->lastUse())
                        victim = &sab;
                }
                victim->allocate(chain.history.get(), *seq, scratch_);
                victim->touch(++sabTick_);
                ++sabAllocations_;
                refreshStreamBounds();
            }
        }
    }

    for (Addr b : scratch_) {
        if (queue_.push(b))
            ++issued_;
    }
}

inline unsigned
PifPrefetcher::drainRequests(std::vector<Addr> &out, unsigned max)
{
    return queue_.drain(out, max);
}

} // namespace pifetch
