/**
 * @file
 * Proactive Instruction Fetch prefetcher (Section 4, Figure 4).
 *
 * Assembles the four PIF hardware structures: per-trap-level spatial
 * and temporal compactors feeding per-trap-level history buffers and
 * index tables, plus a shared pool of stream address buffers that
 * monitor front-end fetches and issue prefetch candidates.
 */

#ifndef PIFETCH_PIF_PIF_PREFETCHER_HH
#define PIFETCH_PIF_PIF_PREFETCHER_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/config.hh"
#include "pif/history_buffer.hh"
#include "pif/index_table.hh"
#include "pif/sab.hh"
#include "pif/spatial_compactor.hh"
#include "pif/temporal_compactor.hh"
#include "prefetch/prefetcher.hh"

namespace pifetch {

/**
 * The complete PIF mechanism as an engine-pluggable Prefetcher.
 *
 * With cfg.separateTrapLevels set (the RetireSep configuration of
 * Figure 2), interrupt-handler execution records into its own history
 * so handler noise cannot fragment application streams; the history
 * buffer capacity is split 7/8 : 1/8 between TL0 and TL1.
 */
class PifPrefetcher : public Prefetcher
{
  public:
    /**
     * @param cfg PIF design parameters.
     * @param unbounded_storage Remove history/index capacity limits
     *        (the Figure 10 "no storage limitation" configuration).
     */
    explicit PifPrefetcher(const PifConfig &cfg,
                           bool unbounded_storage = false);

    std::string name() const override { return "PIF"; }

    void onFetchAccess(const FetchInfo &info) override;
    void onRetire(const RetiredInstr &instr, bool tagged) override;
    unsigned drainRequests(std::vector<Addr> &out, unsigned max) override;
    void reset() override;
    void resetStats() override;

    /**
     * Prediction coverage counters (Section 5.4's "predictor coverage"):
     * a correct-path fetch access counts as covered when it was
     * delivered from a prefetched block, matched an active SAB window,
     * or was already sitting in the prefetch queue.
     */
    std::uint64_t coveredAccesses(TrapLevel tl) const
    {
        return covered_[tl];
    }
    /** Total correct-path accesses observed at @p tl. */
    std::uint64_t totalAccesses(TrapLevel tl) const { return total_[tl]; }

    /** Coverage ratio at trap level @p tl. */
    double
    coverage(TrapLevel tl) const
    {
        return total_[tl] == 0
            ? 0.0
            : static_cast<double>(covered_[tl]) /
              static_cast<double>(total_[tl]);
    }

    /** Overall coverage across trap levels. */
    double coverage() const;

    /** Regions recorded into history (all trap levels). */
    std::uint64_t regionsRecorded() const;

    /** SAB allocations performed. */
    std::uint64_t sabAllocations() const { return sabAllocations_; }

    /** Access the per-TL history (tests, studies). */
    const HistoryBuffer &history(TrapLevel tl) const
    {
        return *chains_[chainFor(tl)].history;
    }

    /** Access the per-TL index table (tests). */
    const IndexTable &index(TrapLevel tl) const
    {
        return *chains_[chainFor(tl)].index;
    }

  private:
    /** Recording chain for one trap level. */
    struct Chain
    {
        std::unique_ptr<SpatialCompactor> spatial;
        std::unique_ptr<TemporalCompactor> temporal;
        std::unique_ptr<HistoryBuffer> history;
        std::unique_ptr<IndexTable> index;
    };

    /** Map a trap level to a chain slot. */
    std::size_t
    chainFor(TrapLevel tl) const
    {
        return (cfg_.separateTrapLevels && tl > 0) ? 1 : 0;
    }

    /** Route a completed spatial region down its chain. */
    void recordRegion(Chain &chain, const SpatialRegion &rec);

    /** Enqueue a prefetch candidate (dedup against the queue). */
    void enqueue(Addr block);

    PifConfig cfg_;
    std::vector<Chain> chains_;
    std::vector<StreamAddressBuffer> sabs_;
    std::uint64_t sabTick_ = 0;

    std::deque<Addr> queue_;
    std::unordered_set<Addr> queued_;
    std::vector<Addr> scratch_;  //!< SAB emission buffer

    std::uint64_t covered_[maxTrapLevels] = {0, 0};
    std::uint64_t total_[maxTrapLevels] = {0, 0};
    std::uint64_t sabAllocations_ = 0;
};

} // namespace pifetch

#endif // PIFETCH_PIF_PIF_PREFETCHER_HH
