/**
 * @file
 * Spatial compactor implementation.
 */

#include "pif/spatial_compactor.hh"

namespace pifetch {

SpatialCompactor::SpatialCompactor(unsigned blocks_before,
                                   unsigned blocks_after)
    : blocksBefore_(blocks_before), blocksAfter_(blocks_after)
{
    if (blocksBefore_ + blocksAfter_ >= 32)
        fatalError("spatial region too large for the 32-bit vector");
}

std::optional<SpatialRegion>
SpatialCompactor::observe(Addr pc, bool tagged, TrapLevel tl)
{
    ++observedPcs_;

    const Addr block = blockAddr(pc);
    // Collapse consecutive retired PCs within the same block: the
    // history predicts block addresses, not instruction addresses.
    if (block == lastBlock_)
        return std::nullopt;
    lastBlock_ = block;
    ++blockAccesses_;

    if (active_) {
        const std::int64_t off = static_cast<std::int64_t>(block) -
            static_cast<std::int64_t>(current_.triggerBlock());
        const bool inside =
            off >= -static_cast<std::int64_t>(blocksBefore_) &&
            off <= static_cast<std::int64_t>(blocksAfter_);
        if (inside) {
            if (off != 0)
                current_.setOffset(static_cast<int>(off), blocksBefore_);
            return std::nullopt;
        }
    }

    // Outside the current region (or no region yet): emit and restart.
    std::optional<SpatialRegion> done;
    if (active_) {
        done = current_;
        ++regionsEmitted_;
    }
    current_ = SpatialRegion{};
    current_.triggerPc = pc;
    current_.trapLevel = tl;
    current_.triggerTagged = tagged;
    active_ = true;
    return done;
}

std::optional<SpatialRegion>
SpatialCompactor::flush()
{
    if (!active_)
        return std::nullopt;
    active_ = false;
    lastBlock_ = invalidAddr;
    ++regionsEmitted_;
    return current_;
}

void
SpatialCompactor::reset()
{
    active_ = false;
    current_ = SpatialRegion{};
    lastBlock_ = invalidAddr;
    observedPcs_ = 0;
    blockAccesses_ = 0;
    regionsEmitted_ = 0;
}

} // namespace pifetch
