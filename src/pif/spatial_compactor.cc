/**
 * @file
 * Spatial compactor implementation.
 */

#include "pif/spatial_compactor.hh"

namespace pifetch {

SpatialCompactor::SpatialCompactor(unsigned blocks_before,
                                   unsigned blocks_after)
    : blocksBefore_(blocks_before), blocksAfter_(blocks_after)
{
    if (blocksBefore_ + blocksAfter_ >= 32)
        fatalError("spatial region too large for the 32-bit vector");
}

std::optional<SpatialRegion>
SpatialCompactor::flush()
{
    if (!active_)
        return std::nullopt;
    active_ = false;
    lastBlock_ = invalidAddr;
    ++regionsEmitted_;
    return current_;
}

void
SpatialCompactor::reset()
{
    active_ = false;
    current_ = SpatialRegion{};
    lastBlock_ = invalidAddr;
    observedPcs_ = 0;
    blockAccesses_ = 0;
    regionsEmitted_ = 0;
}

} // namespace pifetch
