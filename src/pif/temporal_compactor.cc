/**
 * @file
 * Temporal compactor implementation.
 */

#include "pif/temporal_compactor.hh"

#include "common/types.hh"

namespace pifetch {

TemporalCompactor::TemporalCompactor(unsigned entries)
    : entries_(entries)
{
    if (entries_ == 0)
        fatalError("temporal compactor needs at least one entry");
}

bool
TemporalCompactor::admit(const SpatialRegion &rec)
{
    ++presented_;

    for (auto it = mru_.begin(); it != mru_.end(); ++it) {
        if (it->covers(rec)) {
            // Redundant (loop iteration): promote and discard.
            mru_.splice(mru_.begin(), mru_, it);
            ++filtered_;
            return false;
        }
    }

    mru_.push_front(rec);
    if (mru_.size() > entries_)
        mru_.pop_back();
    return true;
}

void
TemporalCompactor::reset()
{
    mru_.clear();
    presented_ = 0;
    filtered_ = 0;
}

} // namespace pifetch
