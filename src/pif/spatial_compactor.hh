/**
 * @file
 * Spatial compactor (Section 4.1, Figure 5 left).
 *
 * Monitors retiring instructions, collapses consecutive same-block PCs,
 * and folds block accesses that fall within the current spatial region
 * into its bit vector. When a retiring instruction falls outside the
 * current region, the completed record is emitted downstream (to the
 * temporal compactor) and a new region is opened with the new
 * instruction as trigger.
 */

#pragma once

#include <cstdint>
#include <optional>

#include "common/config.hh"
#include "pif/region.hh"

namespace pifetch {

/**
 * Builds spatial region records from the retire-order PC stream.
 *
 * One instance per recorded stream (PIF keeps one per trap level when
 * trap separation is enabled).
 */
class SpatialCompactor
{
  public:
    /**
     * @param blocks_before Region blocks preceding the trigger (N).
     * @param blocks_after Region blocks succeeding the trigger (M).
     */
    SpatialCompactor(unsigned blocks_before, unsigned blocks_after);

    /** Construct from the PIF configuration. */
    explicit SpatialCompactor(const PifConfig &cfg)
        : SpatialCompactor(cfg.blocksBefore, cfg.blocksAfter)
    {
    }

    /**
     * Observe a retiring instruction.
     *
     * Runs once per retired instruction on the replay hot path, so it
     * is defined inline: the dominant same-block early-out then folds
     * into the engine's monomorphized loop.
     *
     * @param pc Retired instruction PC.
     * @param tagged Fetch-stage tag (not explicitly prefetched).
     * @param tl Trap level at retirement.
     * @return the completed previous region record, if this instruction
     *         closed one.
     */
    std::optional<SpatialRegion>
    observe(Addr pc, bool tagged, TrapLevel tl)
    {
        ++observedPcs_;

        const Addr block = blockAddr(pc);
        // Collapse consecutive retired PCs within the same block: the
        // history predicts block addresses, not instruction addresses.
        if (block == lastBlock_)
            return std::nullopt;
        lastBlock_ = block;
        ++blockAccesses_;

        if (active_) {
            const std::int64_t off = static_cast<std::int64_t>(block) -
                static_cast<std::int64_t>(current_.triggerBlock());
            const bool inside =
                off >= -static_cast<std::int64_t>(blocksBefore_) &&
                off <= static_cast<std::int64_t>(blocksAfter_);
            if (inside) {
                if (off != 0)
                    current_.setOffset(static_cast<int>(off),
                                       blocksBefore_);
                return std::nullopt;
            }
        }

        // Outside the current region (or no region yet): emit and
        // restart.
        std::optional<SpatialRegion> done;
        if (active_) {
            done = current_;
            ++regionsEmitted_;
        }
        current_ = SpatialRegion{};
        current_.triggerPc = pc;
        current_.trapLevel = tl;
        current_.triggerTagged = tagged;
        active_ = true;
        return done;
    }

    /**
     * Observe @p n consecutive retiring instructions already known to
     * fall in the block of the previous observation. Equivalent to
     * @p n observe() calls that all take the same-block early-out:
     * only the PC counter advances. The batched engines use this to
     * collapse same-block retire runs.
     */
    void observeSameBlock(std::uint64_t n) { observedPcs_ += n; }

    /** Flush the in-progress region (end of trace). */
    std::optional<SpatialRegion> flush();

    unsigned blocksBefore() const { return blocksBefore_; }
    unsigned blocksAfter() const { return blocksAfter_; }

    /** Retired PCs observed (before block collapsing). */
    std::uint64_t observedPcs() const { return observedPcs_; }
    /** Block-granularity accesses after collapsing. */
    std::uint64_t blockAccesses() const { return blockAccesses_; }
    /** Region records emitted. */
    std::uint64_t regionsEmitted() const { return regionsEmitted_; }

    /** Reset all state. */
    void reset();

  private:
    unsigned blocksBefore_;
    unsigned blocksAfter_;

    bool active_ = false;
    SpatialRegion current_;
    Addr lastBlock_ = invalidAddr;  //!< same-block collapse filter

    std::uint64_t observedPcs_ = 0;
    std::uint64_t blockAccesses_ = 0;
    std::uint64_t regionsEmitted_ = 0;
};

} // namespace pifetch
