/**
 * @file
 * Region analyzer implementation.
 */

#include "pif/region_analyzer.hh"

#include "common/bitops.hh"

namespace pifetch {

RegionAnalyzer::RegionAnalyzer(unsigned blocks_before,
                               unsigned blocks_after)
    : blocksBefore_(blocks_before),
      blocksAfter_(blocks_after),
      density_({1, 2, 4, 8, 16, 32}),
      groups_({1, 2, 4, 8, 16}),
      offsets_(-static_cast<int>(blocks_before),
               static_cast<int>(blocks_after))
{
    if (blocks_before + blocks_after + 1 > 63)
        fatalError("region analyzer window too wide");
}

void
RegionAnalyzer::closeRegion()
{
    if (!active_)
        return;
    ++regions_;

    // Density: unique accessed blocks including the trigger.
    const unsigned density = static_cast<unsigned>(
        bits::popcount(mask_));
    density_.add(density);

    // Groups: contiguous runs of set bits across the window.
    unsigned groups = 0;
    bool in_run = false;
    const unsigned width = blocksBefore_ + blocksAfter_ + 1;
    for (unsigned i = 0; i < width; ++i) {
        const bool set = mask_ & (std::uint64_t{1} << i);
        if (set && !in_run)
            ++groups;
        in_run = set;
    }
    groups_.add(groups);

    // Offsets: one sample per unique accessed block, excluding the
    // trigger itself (Figure 8 left plots the neighbours).
    for (unsigned i = 0; i < width; ++i) {
        if (!(mask_ & (std::uint64_t{1} << i)))
            continue;
        const int off = static_cast<int>(i) -
            static_cast<int>(blocksBefore_);
        if (off != 0)
            offsets_.add(off);
    }
}

void
RegionAnalyzer::observe(Addr pc)
{
    const Addr block = blockAddr(pc);
    if (block == lastBlock_)
        return;
    lastBlock_ = block;

    if (active_) {
        const std::int64_t off = static_cast<std::int64_t>(block) -
            static_cast<std::int64_t>(triggerBlock_);
        if (off >= -static_cast<std::int64_t>(blocksBefore_) &&
            off <= static_cast<std::int64_t>(blocksAfter_)) {
            mask_ |= std::uint64_t{1}
                << (off + static_cast<std::int64_t>(blocksBefore_));
            return;
        }
    }

    closeRegion();
    active_ = true;
    triggerBlock_ = block;
    mask_ = std::uint64_t{1} << blocksBefore_;  // trigger bit
}

void
RegionAnalyzer::finish()
{
    closeRegion();
    active_ = false;
    lastBlock_ = invalidAddr;
}

} // namespace pifetch
