/**
 * @file
 * Fixed-capacity prefetch candidate queue.
 *
 * A hardware prefetch queue is a fixed ring of block addresses with
 * duplicate suppression; both PIF variants used to model it with a
 * std::deque plus a side set, paying deque segment allocation on the
 * hottest enqueue path (visible in replay profiles). This type is the
 * ring itself: a power-of-two array indexed with a mask, so pushes and
 * drains never allocate. FIFO order, capacity-drop and dedup semantics
 * are exactly those of the deque it replaces.
 */

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/flat_hash.hh"
#include "common/types.hh"

namespace pifetch {

/** FIFO block-address queue with dedup; drops when full. */
class PrefetchQueue
{
  public:
    /** Queue depth bound (hardware queue size; power of two). */
    static constexpr std::size_t capacity = 256;
    static_assert((capacity & (capacity - 1)) == 0,
                  "prefetch queue ring requires a power-of-two capacity");

    /** True if @p block is currently queued (coverage accounting). */
    bool contains(Addr block) const { return queued_.count(block) != 0; }

    /**
     * Enqueue @p block unless it is already queued or the queue is
     * full. @return true if the block was accepted.
     */
    bool
    push(Addr block)
    {
        if (queued_.count(block) || count_ >= capacity)
            return false;
        ring_[(head_ + count_) & (capacity - 1)] = block;
        ++count_;
        queued_.insert(block);
        return true;
    }

    /**
     * Pop up to @p max oldest entries into @p out.
     * @return the number of entries popped.
     */
    unsigned
    drain(std::vector<Addr> &out, unsigned max)
    {
        unsigned n = 0;
        while (n < max && count_ > 0) {
            const Addr b = ring_[head_];
            head_ = (head_ + 1) & (capacity - 1);
            --count_;
            queued_.erase(b);
            out.push_back(b);
            ++n;
        }
        return n;
    }

    /** Drop all queued candidates. */
    void
    clear()
    {
        head_ = 0;
        count_ = 0;
        queued_.clear();
    }

  private:
    std::array<Addr, capacity> ring_;
    std::size_t head_ = 0;   //!< index of the oldest entry
    std::size_t count_ = 0;  //!< live entries
    AddrSet queued_;
};

} // namespace pifetch
