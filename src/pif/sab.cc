/**
 * @file
 * Stream address buffer implementation.
 */

#include "pif/sab.hh"

namespace pifetch {

StreamAddressBuffer::StreamAddressBuffer(unsigned window_regions,
                                         unsigned blocks_before)
    : windowRegions_(window_regions), blocksBefore_(blocks_before)
{
}

void
StreamAddressBuffer::emitRegion(const SpatialRegion &rec,
                                std::vector<Addr> &out)
{
    const Addr trigger = rec.triggerBlock();
    // Left-to-right bit-vector traversal (Section 4.3): preceding
    // blocks in ascending offset order, then the trigger, then the
    // succeeding blocks.
    for (unsigned i = 0; i < blocksBefore_; ++i) {
        if (rec.bits & (std::uint32_t{1} << i)) {
            const int off = SpatialRegion::offsetOf(i, blocksBefore_);
            out.push_back(trigger + off);
        }
    }
    out.push_back(trigger);
    for (unsigned i = blocksBefore_; i < 32; ++i) {
        if (rec.bits & (std::uint32_t{1} << i)) {
            const int off = SpatialRegion::offsetOf(i, blocksBefore_);
            out.push_back(trigger + off);
        }
    }
}

void
StreamAddressBuffer::refill(std::vector<Addr> &out)
{
    while (window_.size() < windowRegions_ && hist_->valid(ptr_)) {
        const SpatialRegion &rec = hist_->at(ptr_);
        ++ptr_;
        window_.push_back(rec);
        emitRegion(rec, out);
    }
}

void
StreamAddressBuffer::allocate(const HistoryBuffer *hist, std::uint64_t seq,
                              std::vector<Addr> &out)
{
    active_ = true;
    hist_ = hist;
    ptr_ = seq;
    window_.clear();
    advanced_ = 0;
    refill(out);
    if (window_.empty())
        active_ = false;
}

} // namespace pifetch
