/**
 * @file
 * Stream address buffer implementation.
 */

#include "pif/sab.hh"

#include <algorithm>

#include "common/bitops.hh"

namespace pifetch {

StreamAddressBuffer::StreamAddressBuffer(unsigned window_regions,
                                         unsigned blocks_before)
    : windowRegions_(window_regions), blocksBefore_(blocks_before)
{
}

void
StreamAddressBuffer::emitRegion(const SpatialRegion &rec,
                                std::vector<Addr> &out)
{
    const Addr trigger = rec.triggerBlock();
    // Left-to-right bit-vector traversal (Section 4.3): preceding
    // blocks in ascending offset order, then the trigger, then the
    // succeeding blocks. Iterate set bits only (count-trailing-zeros
    // walk, ascending index order — identical emission order to a
    // full 32-bit scan; regions are sparse, so this touches a handful
    // of bits instead of 32).
    const std::uint32_t beforeMask =
        blocksBefore_ >= 32 ? ~std::uint32_t{0}
                            : (std::uint32_t{1} << blocksBefore_) - 1;
    std::uint32_t before = rec.bits & beforeMask;
    while (before != 0) {
        const unsigned i = static_cast<unsigned>(bits::countrZero(before));
        before &= before - 1;
        out.push_back(trigger +
                      SpatialRegion::offsetOf(i, blocksBefore_));
    }
    out.push_back(trigger);
    std::uint32_t after = rec.bits & ~beforeMask;
    while (after != 0) {
        const unsigned i = static_cast<unsigned>(bits::countrZero(after));
        after &= after - 1;
        out.push_back(trigger +
                      SpatialRegion::offsetOf(i, blocksBefore_));
    }
}

void
StreamAddressBuffer::updateBounds()
{
    if (window_.empty()) {
        lo_ = invalidAddr;
        hi_ = 0;
        return;
    }
    Addr lo = invalidAddr;
    Addr hi = 0;
    for (const SpatialRegion &rec : window_) {
        const Addr trigger = rec.triggerBlock();
        const Addr rlo =
            trigger > blocksBefore_ ? trigger - blocksBefore_ : 0;
        const Addr rhi = trigger + (31 - blocksBefore_);
        lo = std::min(lo, rlo);
        hi = std::max(hi, rhi);
    }
    lo_ = lo;
    hi_ = hi;
}

bool
StreamAddressBuffer::refill(std::vector<Addr> &out)
{
    bool loaded = false;
    while (window_.size() < windowRegions_ && hist_->valid(ptr_)) {
        const SpatialRegion &rec = hist_->at(ptr_);
        ++ptr_;
        window_.push_back(rec);
        emitRegion(rec, out);
        loaded = true;
    }
    return loaded;
}

void
StreamAddressBuffer::allocate(const HistoryBuffer *hist, std::uint64_t seq,
                              std::vector<Addr> &out)
{
    active_ = true;
    hist_ = hist;
    ptr_ = seq;
    window_.clear();
    advanced_ = 0;
    refill(out);
    updateBounds();
    if (window_.empty())
        active_ = false;
}

} // namespace pifetch
