/**
 * @file
 * Shared-storage PIF variant (the Section 4 extension).
 *
 * The paper deliberately evaluates "completely independent dedicated
 * predictor hardware for each core", noting that "storage benefits can
 * be attained by sharing predictor structures among multiple cores or
 * virtualizing the predictor storage in the L2 [Burcea et al.]". This
 * module implements that deferred design point: all cores running the
 * same binary record into one shared history buffer and index table,
 * while compactors and SABs (which track per-core execution state)
 * stay private. A stream recorded by one core can then be replayed by
 * every other core — constructive sharing that lets a smaller
 * aggregate history match dedicated per-core storage.
 */

#pragma once

#include <memory>
#include <vector>

#include "pif/pif_prefetcher.hh"

namespace pifetch {

/**
 * The storage shared between cores: per-trap-level history buffers and
 * index tables. Simulation is sequential, so no synchronization is
 * modelled (a real design would bank these structures).
 */
class SharedPifStorage
{
  public:
    /**
     * @param cfg PIF parameters; historyRegions/indexEntries size the
     *        *total* shared capacity.
     */
    explicit SharedPifStorage(const PifConfig &cfg);

    /** Recording chain for a trap level. */
    struct Chain
    {
        std::unique_ptr<HistoryBuffer> history;
        std::unique_ptr<IndexTable> index;
    };

    /** Chain for trap level @p tl. */
    Chain &chainFor(TrapLevel tl);

    /** Regions recorded across all chains and cores. */
    std::uint64_t regionsRecorded() const;

    const PifConfig &config() const { return cfg_; }

  private:
    PifConfig cfg_;
    std::vector<Chain> chains_;
};

/**
 * Per-core PIF front half (compactors + SABs) recording into and
 * replaying from a SharedPifStorage.
 */
class SharedPifPrefetcher final : public Prefetcher
{
  public:
    SharedPifPrefetcher(std::shared_ptr<SharedPifStorage> storage);

    std::string name() const override { return "PIF-shared"; }

    void onFetchAccess(const FetchInfo &info) override;
    void onRetire(const RetiredInstr &instr, bool tagged) override;

    /**
     * Same-block retire runs take the private spatial compactor's
     * same-block early-out; only its PC counter advances (shared
     * storage is untouched).
     */
    void onRetireSameBlockRun(TrapLevel tl, std::uint32_t count) override;

    unsigned drainRequests(std::vector<Addr> &out, unsigned max) override;
    void reset() override;
    void resetStats() override;

    /** Predictor coverage over correct-path fetches (all trap levels). */
    double coverage() const;

    /** SAB allocations performed by this core. */
    std::uint64_t sabAllocations() const { return sabAllocations_; }

  private:
    /** Per-trap-level private compactors. */
    struct LocalChain
    {
        std::unique_ptr<SpatialCompactor> spatial;
        std::unique_ptr<TemporalCompactor> temporal;
    };

    std::size_t
    chainSlot(TrapLevel tl) const
    {
        return (storage_->config().separateTrapLevels && tl > 0) ? 1 : 0;
    }

    std::shared_ptr<SharedPifStorage> storage_;
    std::vector<LocalChain> locals_;
    std::vector<StreamAddressBuffer> sabs_;
    std::uint64_t sabTick_ = 0;

    PrefetchQueue queue_;
    std::vector<Addr> scratch_;

    std::uint64_t covered_ = 0;
    std::uint64_t total_ = 0;
    std::uint64_t sabAllocations_ = 0;
};

} // namespace pifetch
