/**
 * @file
 * History buffer (Section 4.2).
 *
 * A circular FIFO of spatial region records in retirement order. Each
 * record is addressed by a monotonically increasing sequence number so
 * that index-table pointers and SAB read pointers can detect when the
 * record they reference has been overwritten by newer history.
 *
 * The ring is a single flat arena sized once at construction; append
 * (one per compacted region, on the replay hot path) is a store
 * through a rolling write cursor, and random access by sequence uses
 * a mask when the capacity is a power of two (the paper's 32K and the
 * TL1 split both are) with a modulo fallback for odd capacities (the
 * 7/8-scaled TL0 split).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "pif/region.hh"

namespace pifetch {

/**
 * Circular buffer of SpatialRegion records with stable sequence
 * numbers. Capacity 0 means unbounded (used for the no-storage-limit
 * study of Figure 10 left).
 */
class HistoryBuffer
{
  public:
    /** @param capacity Records retained; 0 = unbounded. */
    explicit HistoryBuffer(std::uint64_t capacity);

    /**
     * Append a record.
     * @return the sequence number assigned to it.
     */
    std::uint64_t
    append(const SpatialRegion &rec)
    {
        const std::uint64_t seq = next_++;
        if (capacity_ == 0) {
            ring_.push_back(rec);
        } else {
            ring_[writeIdx_] = rec;
            if (++writeIdx_ == capacity_)
                writeIdx_ = 0;
        }
        return seq;
    }

    /** True if the record at @p seq is still retained. */
    bool
    valid(std::uint64_t seq) const
    {
        if (seq >= next_)
            return false;
        return capacity_ == 0 || next_ - seq <= capacity_;
    }

    /** Read the record at sequence @p seq (must be valid()). */
    const SpatialRegion &
    at(std::uint64_t seq) const
    {
        if (!valid(seq))
            panic("history buffer read of overwritten or unwritten "
                  "record");
        return ring_[slotOf(seq)];
    }

    /** Sequence number the next append will receive (the tail). */
    std::uint64_t tail() const { return next_; }

    /** Records appended over all time. */
    std::uint64_t appended() const { return next_; }

    /** Configured capacity (0 = unbounded). */
    std::uint64_t capacity() const { return capacity_; }

    /** Drop all contents. */
    void reset();

  private:
    /** Arena slot holding sequence @p seq. */
    std::uint64_t
    slotOf(std::uint64_t seq) const
    {
        if (capacity_ == 0)
            return seq;
        return mask_ ? (seq & mask_) : (seq % capacity_);
    }

    std::uint64_t capacity_;
    /** capacity_ - 1 when the capacity is a power of two, else 0. */
    std::uint64_t mask_ = 0;
    std::uint64_t next_ = 0;
    /** Next arena slot to write (bounded mode). */
    std::uint64_t writeIdx_ = 0;
    std::vector<SpatialRegion> ring_;
};

} // namespace pifetch
