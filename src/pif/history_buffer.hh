/**
 * @file
 * History buffer (Section 4.2).
 *
 * A circular FIFO of spatial region records in retirement order. Each
 * record is addressed by a monotonically increasing sequence number so
 * that index-table pointers and SAB read pointers can detect when the
 * record they reference has been overwritten by newer history.
 */

#ifndef PIFETCH_PIF_HISTORY_BUFFER_HH
#define PIFETCH_PIF_HISTORY_BUFFER_HH

#include <cstdint>
#include <vector>

#include "pif/region.hh"

namespace pifetch {

/**
 * Circular buffer of SpatialRegion records with stable sequence
 * numbers. Capacity 0 means unbounded (used for the no-storage-limit
 * study of Figure 10 left).
 */
class HistoryBuffer
{
  public:
    /** @param capacity Records retained; 0 = unbounded. */
    explicit HistoryBuffer(std::uint64_t capacity);

    /**
     * Append a record.
     * @return the sequence number assigned to it.
     */
    std::uint64_t append(const SpatialRegion &rec);

    /** True if the record at @p seq is still retained. */
    bool
    valid(std::uint64_t seq) const
    {
        if (seq >= next_)
            return false;
        return capacity_ == 0 || next_ - seq <= capacity_;
    }

    /** Read the record at sequence @p seq (must be valid()). */
    const SpatialRegion &at(std::uint64_t seq) const;

    /** Sequence number the next append will receive (the tail). */
    std::uint64_t tail() const { return next_; }

    /** Records appended over all time. */
    std::uint64_t appended() const { return next_; }

    /** Configured capacity (0 = unbounded). */
    std::uint64_t capacity() const { return capacity_; }

    /** Drop all contents. */
    void reset();

  private:
    std::uint64_t capacity_;
    std::uint64_t next_ = 0;
    std::vector<SpatialRegion> ring_;
};

} // namespace pifetch

#endif // PIFETCH_PIF_HISTORY_BUFFER_HH
