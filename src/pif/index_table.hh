/**
 * @file
 * Index table (Section 4.2).
 *
 * A small cache-like structure mapping a trigger PC to the history-
 * buffer location of its most recent record. Insertion is conditional
 * on the trigger being tagged (not explicitly prefetched); lookup is
 * performed when the core issues a fetch that was not prefetched.
 * Supports an unbounded mode for the no-storage-limit studies,
 * backed by an open-addressing flat map (common/flat_hash.hh) — the
 * lookup sits on the per-fetch hot path of every Figure 10 run.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/flat_hash.hh"
#include "common/types.hh"

namespace pifetch {

/**
 * Set-associative PC -> history-sequence mapping with LRU replacement.
 */
class IndexTable
{
  public:
    /**
     * @param entries Total entries; 0 = unbounded (hash map).
     * @param assoc Set associativity (ignored when unbounded).
     */
    IndexTable(unsigned entries, unsigned assoc);

    /** Insert or update the mapping @p pc -> @p seq. */
    void insert(Addr pc, std::uint64_t seq);

    /**
     * Look up @p pc, refreshing its recency.
     * @return the most recent history sequence, or nullopt.
     */
    std::optional<std::uint64_t> lookup(Addr pc);

    /** Lookups performed. */
    std::uint64_t lookups() const { return lookups_; }
    /** Lookups that hit. */
    std::uint64_t hits() const { return hits_; }

    /** Drop all mappings. */
    void reset();

  private:
    struct Entry
    {
        Addr pc = invalidAddr;
        std::uint64_t seq = 0;
        std::uint64_t stamp = 0;
        bool valid = false;
    };

    bool unbounded_;
    unsigned assoc_ = 0;
    std::uint64_t setMask_ = 0;
    std::uint64_t tick_ = 0;
    std::vector<Entry> entries_;
    AddrMap<std::uint64_t> map_;

    std::uint64_t lookups_ = 0;
    std::uint64_t hits_ = 0;
};

} // namespace pifetch
