/**
 * @file
 * Storage-cost model implementation.
 */

#include "pif/storage.hh"

#include "common/bitops.hh"

namespace pifetch {

namespace {

/** Ceil(log2(n)) for pointer widths. */
unsigned
bitsFor(std::uint64_t n)
{
    if (n <= 1)
        return 1;
    return 64 - static_cast<unsigned>(bits::countlZero(n - 1));
}

} // namespace

std::uint64_t
regionRecordBits(const PifConfig &cfg, unsigned pc_bits)
{
    // Trigger PC + neighbour bit vector + fetch-stage tag bit.
    return pc_bits + (cfg.blocksBefore + cfg.blocksAfter) + 1;
}

PifStorage
computePifStorage(const PifConfig &cfg, unsigned pc_bits)
{
    PifStorage s;
    const std::uint64_t record = regionRecordBits(cfg, pc_bits);

    // History buffer: one record per region slot (trap-level split
    // does not change the total).
    s.historyBits = cfg.historyRegions * record;

    // Index table: tag (full PC, conservatively) + history pointer +
    // valid + per-entry LRU state.
    const unsigned ptr = bitsFor(cfg.historyRegions);
    const unsigned lru = bitsFor(cfg.indexAssoc);
    s.indexBits = static_cast<std::uint64_t>(cfg.indexEntries) *
                  (pc_bits + ptr + 1 + lru);

    // SABs: a window of region records plus the history pointer.
    s.sabBits = static_cast<std::uint64_t>(cfg.numSabs) *
                (cfg.sabWindowRegions * record + ptr);

    // Compactors: one in-flight region per trap level chain plus the
    // temporal compactor's MRU records.
    const unsigned chains = cfg.separateTrapLevels ? 2 : 1;
    s.compactorBits = chains * (record + cfg.temporalEntries * record);

    return s;
}

std::uint64_t
tifsStorageBits(const TifsConfig &cfg, unsigned block_bits)
{
    const std::uint64_t history = cfg.historyEntries * block_bits;
    const unsigned ptr = bitsFor(cfg.historyEntries);
    const unsigned lru = bitsFor(cfg.indexAssoc);
    const std::uint64_t index =
        static_cast<std::uint64_t>(cfg.indexEntries) *
        (block_bits + ptr + 1 + lru);
    const std::uint64_t sabs = static_cast<std::uint64_t>(cfg.numSabs) *
                               (cfg.sabWindowBlocks * block_bits + ptr);
    return history + index + sabs;
}

} // namespace pifetch
