/**
 * @file
 * Index table implementation.
 */

#include "pif/index_table.hh"

namespace pifetch {

namespace {

/**
 * Set-selection hash. Trigger PCs are frequently block-aligned
 * (function entries), so using low PC bits directly would alias whole
 * sets; a multiplicative (Fibonacci) hash spreads them.
 */
std::uint64_t
setHash(Addr pc)
{
    return (pc >> 2) * 0x9e3779b97f4a7c15ull >> 32;
}

} // namespace

IndexTable::IndexTable(unsigned entries, unsigned assoc)
    : unbounded_(entries == 0)
{
    if (unbounded_)
        return;
    if (assoc == 0 || entries % assoc != 0)
        fatalError("index table entries must be a multiple of assoc");
    const std::uint64_t sets = entries / assoc;
    if ((sets & (sets - 1)) != 0)
        fatalError("index table set count must be a power of two");
    assoc_ = assoc;
    setMask_ = sets - 1;
    entries_.resize(entries);
}

void
IndexTable::insert(Addr pc, std::uint64_t seq)
{
    if (unbounded_) {
        map_.insertOrAssign(pc, seq);
        return;
    }

    const std::uint64_t base = (setHash(pc) & setMask_) * assoc_;
    Entry *victim = nullptr;
    for (unsigned w = 0; w < assoc_; ++w) {
        Entry &e = entries_[base + w];
        if (e.valid && e.pc == pc) {
            e.seq = seq;
            e.stamp = ++tick_;
            return;
        }
        if (!e.valid) {
            if (!victim || victim->valid)
                victim = &e;
        } else if (!victim ||
                   (victim->valid && e.stamp < victim->stamp)) {
            victim = &e;
        }
    }
    victim->pc = pc;
    victim->seq = seq;
    victim->valid = true;
    victim->stamp = ++tick_;
}

std::optional<std::uint64_t>
IndexTable::lookup(Addr pc)
{
    ++lookups_;
    if (unbounded_) {
        const std::uint64_t *seq = map_.find(pc);
        if (!seq)
            return std::nullopt;
        ++hits_;
        return *seq;
    }

    const std::uint64_t base = (setHash(pc) & setMask_) * assoc_;
    for (unsigned w = 0; w < assoc_; ++w) {
        Entry &e = entries_[base + w];
        if (e.valid && e.pc == pc) {
            e.stamp = ++tick_;
            ++hits_;
            return e.seq;
        }
    }
    return std::nullopt;
}

void
IndexTable::reset()
{
    for (Entry &e : entries_)
        e = Entry{};
    map_.clear();
    tick_ = 0;
    lookups_ = 0;
    hits_ = 0;
}

} // namespace pifetch
