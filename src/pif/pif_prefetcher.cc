/**
 * @file
 * PIF prefetcher implementation.
 */

#include "pif/pif_prefetcher.hh"

#include <algorithm>

namespace pifetch {

namespace {

/** Queue depth bound: drop candidates beyond this (hardware queue). */
constexpr std::size_t prefetchQueueCap = 256;

} // namespace

PifPrefetcher::PifPrefetcher(const PifConfig &cfg, bool unbounded_storage)
    : cfg_(cfg)
{
    const unsigned num_chains = cfg_.separateTrapLevels ? 2 : 1;
    for (unsigned c = 0; c < num_chains; ++c) {
        Chain chain;
        chain.spatial = std::make_unique<SpatialCompactor>(cfg_);
        chain.temporal =
            std::make_unique<TemporalCompactor>(cfg_.temporalEntries);
        std::uint64_t hist_cap = 0;
        unsigned index_entries = 0;
        if (!unbounded_storage) {
            if (num_chains == 2) {
                // Handlers are compact: give TL1 1/8 of the capacity.
                hist_cap = (c == 0) ? cfg_.historyRegions * 7 / 8
                                    : cfg_.historyRegions / 8;
                index_entries = (c == 0)
                    ? cfg_.indexEntries * 7 / 8
                    : cfg_.indexEntries / 8;
                // Keep set geometry valid (power-of-two sets).
                index_entries = std::max(index_entries,
                                         cfg_.indexAssoc * 2);
                unsigned sets = index_entries / cfg_.indexAssoc;
                while (sets & (sets - 1))
                    --sets;
                index_entries = sets * cfg_.indexAssoc;
            } else {
                hist_cap = cfg_.historyRegions;
                index_entries = cfg_.indexEntries;
            }
        }
        chain.history = std::make_unique<HistoryBuffer>(hist_cap);
        chain.index = std::make_unique<IndexTable>(index_entries,
                                                   cfg_.indexAssoc);
        chains_.push_back(std::move(chain));
    }

    for (unsigned s = 0; s < cfg_.numSabs; ++s) {
        sabs_.emplace_back(cfg_.sabWindowRegions, cfg_.blocksBefore);
    }
}

void
PifPrefetcher::enqueue(Addr block)
{
    if (queued_.count(block) || queue_.size() >= prefetchQueueCap)
        return;
    queue_.push_back(block);
    queued_.insert(block);
    ++issued_;
}

void
PifPrefetcher::recordRegion(Chain &chain, const SpatialRegion &rec)
{
    if (!chain.temporal->admit(rec))
        return;  // filtered loop-iteration redundancy
    const std::uint64_t seq = chain.history->append(rec);
    // Index insertion is conditional on the fetch-stage tag; history
    // insertion is unconditional (Section 4.2).
    if (rec.triggerTagged)
        chain.index->insert(rec.triggerPc, seq);
}

void
PifPrefetcher::onRetire(const RetiredInstr &instr, bool tagged)
{
    Chain &chain = chains_[chainFor(instr.trapLevel)];
    if (auto done = chain.spatial->observe(instr.pc, tagged,
                                           instr.trapLevel)) {
        recordRegion(chain, *done);
    }
}

void
PifPrefetcher::onFetchAccess(const FetchInfo &info)
{
    // 1. Stream advancement: active SABs watch every front-end fetch.
    scratch_.clear();
    bool in_stream = false;
    for (StreamAddressBuffer &sab : sabs_) {
        if (sab.onAccess(info.block, scratch_)) {
            in_stream = true;
            sab.touch(++sabTick_);
        }
    }

    // Coverage accounting (correct-path fetches only).
    if (info.correctPath) {
        const TrapLevel tl = std::min<TrapLevel>(info.trapLevel,
                                                 maxTrapLevels - 1);
        ++total_[tl];
        const bool covered = (info.hit && info.wasPrefetched) ||
                             in_stream || queued_.count(info.block) != 0;
        if (covered)
            ++covered_[tl];
    }

    // 2. Stream trigger: a fetch that was not delivered by a prefetch
    // consults the index table (Section 4.3).
    if (!(info.hit && info.wasPrefetched) && !in_stream) {
        Chain &chain = chains_[chainFor(info.trapLevel)];
        if (auto seq = chain.index->lookup(info.pc)) {
            if (chain.history->valid(*seq)) {
                // Allocate the LRU SAB for the new stream.
                StreamAddressBuffer *victim = &sabs_[0];
                for (StreamAddressBuffer &sab : sabs_) {
                    if (!sab.active()) {
                        victim = &sab;
                        break;
                    }
                    if (sab.lastUse() < victim->lastUse())
                        victim = &sab;
                }
                victim->allocate(chain.history.get(), *seq, scratch_);
                victim->touch(++sabTick_);
                ++sabAllocations_;
            }
        }
    }

    for (Addr b : scratch_)
        enqueue(b);
}

unsigned
PifPrefetcher::drainRequests(std::vector<Addr> &out, unsigned max)
{
    unsigned n = 0;
    while (n < max && !queue_.empty()) {
        const Addr b = queue_.front();
        queue_.pop_front();
        queued_.erase(b);
        out.push_back(b);
        ++n;
    }
    return n;
}

double
PifPrefetcher::coverage() const
{
    std::uint64_t cov = 0;
    std::uint64_t tot = 0;
    for (unsigned tl = 0; tl < maxTrapLevels; ++tl) {
        cov += covered_[tl];
        tot += total_[tl];
    }
    return tot == 0 ? 0.0 : static_cast<double>(cov) /
                            static_cast<double>(tot);
}

std::uint64_t
PifPrefetcher::regionsRecorded() const
{
    std::uint64_t n = 0;
    for (const Chain &c : chains_)
        n += c.history->appended();
    return n;
}

void
PifPrefetcher::resetStats()
{
    Prefetcher::resetStats();
    for (unsigned tl = 0; tl < maxTrapLevels; ++tl) {
        covered_[tl] = 0;
        total_[tl] = 0;
    }
    sabAllocations_ = 0;
}

void
PifPrefetcher::reset()
{
    for (Chain &c : chains_) {
        c.spatial->reset();
        c.temporal->reset();
        c.history->reset();
        c.index->reset();
    }
    for (StreamAddressBuffer &sab : sabs_)
        sab.deactivate();
    sabTick_ = 0;
    queue_.clear();
    queued_.clear();
    for (unsigned tl = 0; tl < maxTrapLevels; ++tl) {
        covered_[tl] = 0;
        total_[tl] = 0;
    }
    sabAllocations_ = 0;
    issued_ = 0;
}

} // namespace pifetch
