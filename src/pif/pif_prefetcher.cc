/**
 * @file
 * PIF prefetcher implementation.
 */

#include "pif/pif_prefetcher.hh"

#include <algorithm>

namespace pifetch {

PifPrefetcher::PifPrefetcher(const PifConfig &cfg, bool unbounded_storage)
    : cfg_(cfg)
{
    const unsigned num_chains = cfg_.separateTrapLevels ? 2 : 1;
    for (unsigned c = 0; c < num_chains; ++c) {
        Chain chain;
        chain.spatial = std::make_unique<SpatialCompactor>(cfg_);
        chain.temporal =
            std::make_unique<TemporalCompactor>(cfg_.temporalEntries);
        std::uint64_t hist_cap = 0;
        unsigned index_entries = 0;
        if (!unbounded_storage) {
            if (num_chains == 2) {
                // Handlers are compact: give TL1 1/8 of the capacity.
                hist_cap = (c == 0) ? cfg_.historyRegions * 7 / 8
                                    : cfg_.historyRegions / 8;
                index_entries = (c == 0)
                    ? cfg_.indexEntries * 7 / 8
                    : cfg_.indexEntries / 8;
                // Keep set geometry valid (power-of-two sets).
                index_entries = std::max(index_entries,
                                         cfg_.indexAssoc * 2);
                unsigned sets = index_entries / cfg_.indexAssoc;
                while (sets & (sets - 1))
                    --sets;
                index_entries = sets * cfg_.indexAssoc;
            } else {
                hist_cap = cfg_.historyRegions;
                index_entries = cfg_.indexEntries;
            }
        }
        chain.history = std::make_unique<HistoryBuffer>(hist_cap);
        chain.index = std::make_unique<IndexTable>(index_entries,
                                                   cfg_.indexAssoc);
        chains_.push_back(std::move(chain));
    }

    for (unsigned s = 0; s < cfg_.numSabs; ++s) {
        sabs_.emplace_back(cfg_.sabWindowRegions, cfg_.blocksBefore);
    }
}

double
PifPrefetcher::coverage() const
{
    std::uint64_t cov = 0;
    std::uint64_t tot = 0;
    for (unsigned tl = 0; tl < maxTrapLevels; ++tl) {
        cov += covered_[tl];
        tot += total_[tl];
    }
    return tot == 0 ? 0.0 : static_cast<double>(cov) /
                            static_cast<double>(tot);
}

std::uint64_t
PifPrefetcher::regionsRecorded() const
{
    std::uint64_t n = 0;
    for (const Chain &c : chains_)
        n += c.history->appended();
    return n;
}

void
PifPrefetcher::resetStats()
{
    Prefetcher::resetStats();
    for (unsigned tl = 0; tl < maxTrapLevels; ++tl) {
        covered_[tl] = 0;
        total_[tl] = 0;
    }
    sabAllocations_ = 0;
}

void
PifPrefetcher::reset()
{
    for (Chain &c : chains_) {
        c.spatial->reset();
        c.temporal->reset();
        c.history->reset();
        c.index->reset();
    }
    for (StreamAddressBuffer &sab : sabs_)
        sab.deactivate();
    streamLo_ = invalidAddr;
    streamHi_ = 0;
    sabTick_ = 0;
    queue_.clear();
    for (unsigned tl = 0; tl < maxTrapLevels; ++tl) {
        covered_[tl] = 0;
        total_[tl] = 0;
    }
    sabAllocations_ = 0;
    issued_ = 0;
}

} // namespace pifetch
