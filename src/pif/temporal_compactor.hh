/**
 * @file
 * Temporal compactor (Section 4.1, Figure 5 right).
 *
 * A small LRU list of the most recently observed spatial region
 * records. Records produced by loop iterations match an existing entry
 * (same trigger PC, bit vector a subset) and are discarded — only the
 * first iteration of a tight loop reaches the history buffer,
 * regardless of the data-dependent trip count (Section 3.2).
 */

#pragma once

#include <cstdint>
#include <list>

#include "pif/region.hh"

namespace pifetch {

/**
 * MRU filter over spatial region records.
 */
class TemporalCompactor
{
  public:
    /** @param entries Number of records tracked (paper uses 4). */
    explicit TemporalCompactor(unsigned entries);

    /**
     * Present an incoming record.
     *
     * On a match (an existing record covers the incoming one), the
     * matching entry is promoted to MRU and the incoming record is
     * discarded. Otherwise the incoming record is stored (evicting the
     * LRU entry) and should be forwarded to the history buffer.
     *
     * @return true if the record is new and must be recorded;
     *         false if it was filtered as loop-iteration redundancy.
     */
    bool admit(const SpatialRegion &rec);

    /** Records presented. */
    std::uint64_t presented() const { return presented_; }
    /** Records filtered (discarded as redundant). */
    std::uint64_t filtered() const { return filtered_; }

    /** Current occupancy (tests). */
    std::size_t size() const { return mru_.size(); }

    /** Drop all entries and counters. */
    void reset();

  private:
    unsigned entries_;
    std::list<SpatialRegion> mru_;  //!< front = MRU

    std::uint64_t presented_ = 0;
    std::uint64_t filtered_ = 0;
};

} // namespace pifetch
