/**
 * @file
 * History buffer implementation.
 */

#include "pif/history_buffer.hh"

namespace pifetch {

HistoryBuffer::HistoryBuffer(std::uint64_t capacity)
    : capacity_(capacity)
{
    if (capacity_ > 0) {
        if ((capacity_ & (capacity_ - 1)) == 0)
            mask_ = capacity_ - 1;
        ring_.resize(capacity_);
    }
}

void
HistoryBuffer::reset()
{
    next_ = 0;
    writeIdx_ = 0;
    if (capacity_ == 0)
        ring_.clear();
}

} // namespace pifetch
