/**
 * @file
 * History buffer implementation.
 */

#include "pif/history_buffer.hh"

#include "common/types.hh"

namespace pifetch {

HistoryBuffer::HistoryBuffer(std::uint64_t capacity)
    : capacity_(capacity)
{
    if (capacity_ > 0)
        ring_.resize(capacity_);
}

std::uint64_t
HistoryBuffer::append(const SpatialRegion &rec)
{
    const std::uint64_t seq = next_++;
    if (capacity_ == 0) {
        ring_.push_back(rec);
    } else {
        ring_[seq % capacity_] = rec;
    }
    return seq;
}

const SpatialRegion &
HistoryBuffer::at(std::uint64_t seq) const
{
    if (!valid(seq))
        panic("history buffer read of overwritten or unwritten record");
    return capacity_ == 0 ? ring_[seq] : ring_[seq % capacity_];
}

void
HistoryBuffer::reset()
{
    next_ = 0;
    if (capacity_ == 0)
        ring_.clear();
}

} // namespace pifetch
