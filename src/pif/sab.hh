/**
 * @file
 * Stream address buffer (Section 4.3, Figure 6).
 *
 * A SAB tracks one active prediction stream: a window of consecutive
 * spatial region records read from the history buffer. On allocation
 * it issues prefetch candidates for every block encoded in the window;
 * as the core's fetches march through the stream, the SAB advances its
 * history pointer, loading further records and issuing their blocks.
 *
 * onAccess() runs for every SAB on every L1-I fetch access — it is
 * the single hottest prefetcher loop in replay — so the window lives
 * in a small flat vector (one contiguous scan, retire is a short
 * memmove) rather than a deque, and the match path is defined inline.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "pif/history_buffer.hh"
#include "pif/region.hh"

namespace pifetch {

/**
 * One stream address buffer. PIF maintains a small pool of these
 * (paper: 4 SABs, 7-region window, LRU replacement).
 */
class StreamAddressBuffer
{
  public:
    /**
     * @param window_regions Consecutive regions tracked (paper: 7).
     * @param blocks_before Region geometry (compactor's N).
     */
    StreamAddressBuffer(unsigned window_regions, unsigned blocks_before);

    /**
     * (Re)allocate this SAB at history position @p seq.
     *
     * Loads the initial window and appends the prefetch candidate
     * blocks of every loaded region to @p out in bit-vector order
     * (preceding blocks, trigger, succeeding blocks).
     *
     * @param hist The history buffer this stream replays.
     */
    void allocate(const HistoryBuffer *hist, std::uint64_t seq,
                  std::vector<Addr> &out);

    /**
     * Monitor an L1-I fetch of @p block.
     *
     * If the block falls within the window, the SAB advances: regions
     * preceding the matched one are retired, subsequent records are
     * read from the history buffer, and their blocks are appended to
     * @p out as new prefetch candidates.
     *
     * @return true if the access matched this stream.
     */
    bool
    onAccess(Addr block, std::vector<Addr> &out)
    {
        if (!active_)
            return false;

        // Fast reject: [lo_, hi_] conservatively bounds every block any
        // window region can cover, so most accesses (which belong to
        // other streams or to no stream) take one compare pair instead
        // of the per-region bit tests. Inside the bounds the full scan
        // decides — the bounds are a superset, never a filter on
        // matches.
        if (block < lo_ || block > hi_)
            return false;

        for (std::size_t i = 0; i < window_.size(); ++i) {
            if (!regionCovers(window_[i], block))
                continue;
            // Matched region i: retire everything before it and slide
            // the window forward, issuing prefetches for newly loaded
            // records. The bounds only move when the window contents
            // change — a match on the head region with a full window
            // (the common steady-state case) recomputes nothing.
            advanced_ += i;
            window_.erase(window_.begin(),
                          window_.begin() +
                              static_cast<std::ptrdiff_t>(i));
            const bool loaded = refill(out);
            if (i > 0 || loaded)
                updateBounds();
            return true;
        }
        return false;
    }

    /** True while the SAB has a live window. */
    bool active() const { return active_; }

    /**
     * Conservative coverage bounds (the onAccess fast reject's
     * [lo_, hi_]). Inactive SABs park them at [invalidAddr, 0], so a
     * pool can min/max over every SAB without checking active().
     */
    Addr boundLo() const { return lo_; }
    Addr boundHi() const { return hi_; }

    /** LRU tick of the last match or allocation. */
    std::uint64_t lastUse() const { return lastUse_; }

    /** Bump the LRU tick (pool maintains the clock). */
    void touch(std::uint64_t tick) { lastUse_ = tick; }

    /** Regions streamed through this SAB since allocation. */
    std::uint64_t advanced() const { return advanced_; }

    /** True if @p block is covered by any region in the window. */
    bool
    windowCovers(Addr block) const
    {
        if (!active_)
            return false;
        for (const SpatialRegion &rec : window_) {
            if (regionCovers(rec, block))
                return true;
        }
        return false;
    }

    /** Deactivate (end of stream). */
    void
    deactivate()
    {
        active_ = false;
        window_.clear();
        lo_ = invalidAddr;
        hi_ = 0;
    }

  private:
    /** Append the blocks of @p rec to @p out (left-to-right order). */
    void emitRegion(const SpatialRegion &rec, std::vector<Addr> &out);

    /**
     * Load records from history until the window is full.
     * @return true if at least one record was loaded (callers refresh
     *         the coverage bounds on any window change).
     */
    bool refill(std::vector<Addr> &out);

    /** Recompute the [lo_, hi_] coverage bounds from the window. */
    void updateBounds();

    /** True if @p rec covers @p block (trigger or set neighbour bit). */
    bool
    regionCovers(const SpatialRegion &rec, Addr block) const
    {
        const std::int64_t off = static_cast<std::int64_t>(block) -
            static_cast<std::int64_t>(rec.triggerBlock());
        if (off == 0)
            return true;
        if (off < -static_cast<std::int64_t>(blocksBefore_) ||
            off > static_cast<std::int64_t>(31 - blocksBefore_)) {
            return false;
        }
        return rec.testOffset(static_cast<int>(off), blocksBefore_);
    }

    unsigned windowRegions_;
    unsigned blocksBefore_;

    bool active_ = false;
    const HistoryBuffer *hist_ = nullptr;
    std::uint64_t ptr_ = 0;  //!< next history sequence to load
    std::vector<SpatialRegion> window_;
    std::uint64_t lastUse_ = 0;
    std::uint64_t advanced_ = 0;

    /**
     * Conservative bounds on the blocks the window can cover
     * (min trigger - blocksBefore_ .. max trigger + 31 - blocksBefore_),
     * kept in sync on every window change. Inactive/empty windows hold
     * the empty interval [invalidAddr, 0] so every access fast-rejects.
     */
    Addr lo_ = invalidAddr;
    Addr hi_ = 0;
};

} // namespace pifetch
