/**
 * @file
 * Stream address buffer (Section 4.3, Figure 6).
 *
 * A SAB tracks one active prediction stream: a window of consecutive
 * spatial region records read from the history buffer. On allocation
 * it issues prefetch candidates for every block encoded in the window;
 * as the core's fetches march through the stream, the SAB advances its
 * history pointer, loading further records and issuing their blocks.
 */

#ifndef PIFETCH_PIF_SAB_HH
#define PIFETCH_PIF_SAB_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "pif/history_buffer.hh"
#include "pif/region.hh"

namespace pifetch {

/**
 * One stream address buffer. PIF maintains a small pool of these
 * (paper: 4 SABs, 7-region window, LRU replacement).
 */
class StreamAddressBuffer
{
  public:
    /**
     * @param window_regions Consecutive regions tracked (paper: 7).
     * @param blocks_before Region geometry (compactor's N).
     */
    StreamAddressBuffer(unsigned window_regions, unsigned blocks_before);

    /**
     * (Re)allocate this SAB at history position @p seq.
     *
     * Loads the initial window and appends the prefetch candidate
     * blocks of every loaded region to @p out in bit-vector order
     * (preceding blocks, trigger, succeeding blocks).
     *
     * @param hist The history buffer this stream replays.
     */
    void allocate(const HistoryBuffer *hist, std::uint64_t seq,
                  std::vector<Addr> &out);

    /**
     * Monitor an L1-I fetch of @p block.
     *
     * If the block falls within the window, the SAB advances: regions
     * preceding the matched one are retired, subsequent records are
     * read from the history buffer, and their blocks are appended to
     * @p out as new prefetch candidates.
     *
     * @return true if the access matched this stream.
     */
    bool onAccess(Addr block, std::vector<Addr> &out);

    /** True while the SAB has a live window. */
    bool active() const { return active_; }

    /** LRU tick of the last match or allocation. */
    std::uint64_t lastUse() const { return lastUse_; }

    /** Bump the LRU tick (pool maintains the clock). */
    void touch(std::uint64_t tick) { lastUse_ = tick; }

    /** Regions streamed through this SAB since allocation. */
    std::uint64_t advanced() const { return advanced_; }

    /** True if @p block is covered by any region in the window. */
    bool windowCovers(Addr block) const;

    /** Deactivate (end of stream). */
    void deactivate() { active_ = false; window_.clear(); }

  private:
    /** Append the blocks of @p rec to @p out (left-to-right order). */
    void emitRegion(const SpatialRegion &rec, std::vector<Addr> &out);

    /** Load records from history until the window is full. */
    void refill(std::vector<Addr> &out);

    /** True if @p rec covers @p block (trigger or set neighbour bit). */
    bool regionCovers(const SpatialRegion &rec, Addr block) const;

    unsigned windowRegions_;
    unsigned blocksBefore_;

    bool active_ = false;
    const HistoryBuffer *hist_ = nullptr;
    std::uint64_t ptr_ = 0;  //!< next history sequence to load
    std::deque<SpatialRegion> window_;
    std::uint64_t lastUse_ = 0;
    std::uint64_t advanced_ = 0;
};

} // namespace pifetch

#endif // PIFETCH_PIF_SAB_HH
