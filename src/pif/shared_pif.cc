/**
 * @file
 * Shared-storage PIF implementation.
 */

#include "pif/shared_pif.hh"

#include <algorithm>

namespace pifetch {

SharedPifStorage::SharedPifStorage(const PifConfig &cfg)
    : cfg_(cfg)
{
    const unsigned num_chains = cfg_.separateTrapLevels ? 2 : 1;
    for (unsigned c = 0; c < num_chains; ++c) {
        Chain chain;
        std::uint64_t hist_cap = cfg_.historyRegions;
        unsigned index_entries = cfg_.indexEntries;
        if (num_chains == 2) {
            hist_cap = (c == 0) ? cfg_.historyRegions * 7 / 8
                                : cfg_.historyRegions / 8;
            index_entries = (c == 0) ? cfg_.indexEntries * 7 / 8
                                     : cfg_.indexEntries / 8;
            index_entries =
                std::max(index_entries, cfg_.indexAssoc * 2);
            unsigned sets = index_entries / cfg_.indexAssoc;
            while (sets & (sets - 1))
                --sets;
            index_entries = sets * cfg_.indexAssoc;
        }
        chain.history = std::make_unique<HistoryBuffer>(hist_cap);
        chain.index = std::make_unique<IndexTable>(index_entries,
                                                   cfg_.indexAssoc);
        chains_.push_back(std::move(chain));
    }
}

SharedPifStorage::Chain &
SharedPifStorage::chainFor(TrapLevel tl)
{
    return chains_[(cfg_.separateTrapLevels && tl > 0) ? 1 : 0];
}

std::uint64_t
SharedPifStorage::regionsRecorded() const
{
    std::uint64_t n = 0;
    for (const Chain &c : chains_)
        n += c.history->appended();
    return n;
}

SharedPifPrefetcher::SharedPifPrefetcher(
        std::shared_ptr<SharedPifStorage> storage)
    : storage_(std::move(storage))
{
    const PifConfig &cfg = storage_->config();
    const unsigned num_chains = cfg.separateTrapLevels ? 2 : 1;
    for (unsigned c = 0; c < num_chains; ++c) {
        LocalChain lc;
        lc.spatial = std::make_unique<SpatialCompactor>(cfg);
        lc.temporal =
            std::make_unique<TemporalCompactor>(cfg.temporalEntries);
        locals_.push_back(std::move(lc));
    }
    for (unsigned s = 0; s < cfg.numSabs; ++s)
        sabs_.emplace_back(cfg.sabWindowRegions, cfg.blocksBefore);
}

void
SharedPifPrefetcher::onRetire(const RetiredInstr &instr, bool tagged)
{
    LocalChain &local = locals_[chainSlot(instr.trapLevel)];
    auto done = local.spatial->observe(instr.pc, tagged,
                                       instr.trapLevel);
    if (!done)
        return;
    if (!local.temporal->admit(*done))
        return;
    SharedPifStorage::Chain &chain =
        storage_->chainFor(instr.trapLevel);
    const std::uint64_t seq = chain.history->append(*done);
    if (done->triggerTagged)
        chain.index->insert(done->triggerPc, seq);
}

void
SharedPifPrefetcher::onRetireSameBlockRun(TrapLevel tl,
                                          std::uint32_t count)
{
    locals_[chainSlot(tl)].spatial->observeSameBlock(count);
}

void
SharedPifPrefetcher::onFetchAccess(const FetchInfo &info)
{
    scratch_.clear();
    bool in_stream = false;
    for (StreamAddressBuffer &sab : sabs_) {
        if (sab.onAccess(info.block, scratch_)) {
            in_stream = true;
            sab.touch(++sabTick_);
        }
    }

    if (info.correctPath) {
        ++total_;
        if ((info.hit && info.wasPrefetched) || in_stream ||
            queue_.contains(info.block)) {
            ++covered_;
        }
    }

    if (!(info.hit && info.wasPrefetched) && !in_stream) {
        SharedPifStorage::Chain &chain =
            storage_->chainFor(info.trapLevel);
        if (auto seq = chain.index->lookup(info.pc)) {
            if (chain.history->valid(*seq)) {
                StreamAddressBuffer *victim = &sabs_[0];
                for (StreamAddressBuffer &sab : sabs_) {
                    if (!sab.active()) {
                        victim = &sab;
                        break;
                    }
                    if (sab.lastUse() < victim->lastUse())
                        victim = &sab;
                }
                victim->allocate(chain.history.get(), *seq, scratch_);
                victim->touch(++sabTick_);
                ++sabAllocations_;
            }
        }
    }

    for (Addr b : scratch_) {
        if (queue_.push(b))
            ++issued_;
    }
}

unsigned
SharedPifPrefetcher::drainRequests(std::vector<Addr> &out, unsigned max)
{
    return queue_.drain(out, max);
}

double
SharedPifPrefetcher::coverage() const
{
    return total_ == 0 ? 0.0
                       : static_cast<double>(covered_) /
                         static_cast<double>(total_);
}

void
SharedPifPrefetcher::resetStats()
{
    Prefetcher::resetStats();
    covered_ = 0;
    total_ = 0;
    sabAllocations_ = 0;
}

void
SharedPifPrefetcher::reset()
{
    // Shared storage is owned jointly and not cleared here; reset the
    // per-core state only.
    for (LocalChain &lc : locals_) {
        lc.spatial->reset();
        lc.temporal->reset();
    }
    for (StreamAddressBuffer &sab : sabs_)
        sab.deactivate();
    sabTick_ = 0;
    queue_.clear();
    resetStats();
    issued_ = 0;
}

} // namespace pifetch
