/**
 * @file
 * Spatial-region characterization studies (Figure 3 and Figure 8 left).
 *
 * Forms trigger-anchored spatial regions over the retire-order block
 * stream and collects:
 *  - region density: unique blocks accessed per region visit
 *    (Figure 3 left);
 *  - discontinuity: number of contiguous groups of accessed blocks
 *    within a region (Figure 3 right);
 *  - trigger-offset distribution: access frequency by signed block
 *    distance from the trigger (Figure 8 left).
 */

#pragma once

#include <cstdint>

#include "common/histogram.hh"
#include "common/types.hh"

namespace pifetch {

/**
 * Region-statistics collector.
 *
 * Unlike the PIF compactor's production geometry (2+5), the studies
 * use a wide window so the distributions themselves reveal the right
 * geometry (the paper's Figure 8 argument).
 */
class RegionAnalyzer
{
  public:
    /**
     * @param blocks_before Window blocks preceding the trigger.
     * @param blocks_after Window blocks succeeding the trigger.
     */
    RegionAnalyzer(unsigned blocks_before, unsigned blocks_after);

    /** Observe a retired instruction PC (any trap level mix). */
    void observe(Addr pc);

    /** Close the in-progress region (end of trace). */
    void finish();

    /** Unique blocks accessed per region: {1, 2, 3-4, ..., 17-32}. */
    const RangeHistogram &density() const { return density_; }

    /** Contiguous accessed-block groups per region: {1, 2, ... 9-16}. */
    const RangeHistogram &groups() const { return groups_; }

    /** Per-offset access frequency (unique per region visit). */
    const LinearHistogram &offsets() const { return offsets_; }

    /** Regions observed. */
    std::uint64_t regions() const { return regions_; }

  private:
    /** Account the completed current region into the histograms. */
    void closeRegion();

    unsigned blocksBefore_;
    unsigned blocksAfter_;

    bool active_ = false;
    Addr triggerBlock_ = invalidAddr;
    std::uint64_t mask_ = 0;  //!< bit (off+blocksBefore): block accessed
    Addr lastBlock_ = invalidAddr;

    RangeHistogram density_;
    RangeHistogram groups_;
    LinearHistogram offsets_;
    std::uint64_t regions_ = 0;
};

} // namespace pifetch
