/**
 * @file
 * Declarative JSON workload specifications.
 *
 * A WorkloadSpec describes a workload in data instead of code: one or
 * more generator programs (optionally derived from a server preset),
 * plus an optional list of named phases giving per-phase instruction
 * budgets, program mixes and interrupt-load ramps. Specs lower onto
 * the existing WorkloadParams / WorkloadGenerator / Executor pipeline:
 * every program is validated through validateWorkloadParams so the
 * fuzzer's bounds (src/check/) stay the single source of truth for
 * what is simulable, and multi-program specs are linked into one flat
 * Program whose transaction-root spans the executor's phase schedule
 * dispatches over.
 *
 * The JSON surface is strict: unknown keys and wrong kinds are
 * rejected with a message naming the offending member, and
 * serialization (specToResult) emits the fully resolved canonical
 * form, so parse -> serialize is idempotent. The `workloads/` zoo at
 * the repository root holds curated specs; docs/workloads.md is the
 * schema reference.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/results.hh"
#include "trace/executor.hh"
#include "trace/generator.hh"
#include "trace/program.hh"

namespace pifetch {

/** One generator program of a spec, with fully resolved parameters. */
struct WorkloadSpecProgram
{
    /** Program name, unique within the spec. */
    std::string name;
    /** Server-preset key the params were based on ("" = defaults). */
    std::string base;
    /**
     * Resolved generator parameters: preset/default values with the
     * spec's overrides applied. params.name mirrors the program name.
     */
    WorkloadParams params;
};

/** One phase of a spec's execution schedule. */
struct WorkloadSpecPhase
{
    /** Phase name, unique within the spec. */
    std::string name;
    /** Retired-instruction budget of the phase per schedule cycle. */
    InstCount instructions = 0;
    /**
     * Program mix as (program name, weight) pairs. Empty means uniform
     * across all programs of the spec.
     */
    std::vector<std::pair<std::string, double>> mix;
    /** Interrupt rate at phase start; negative inherits the blend. */
    double interruptRate = -1.0;
    /** Interrupt rate at phase end (linear ramp); negative = constant. */
    double interruptRateEnd = -1.0;
};

/**
 * A declarative workload: programs plus an optional phase schedule.
 */
struct WorkloadSpec
{
    /** Spec key (slug: lowercase letters, digits, '-' and '_'). */
    std::string name;
    /** Human-readable title; defaults to the key. */
    std::string title;
    /** Reporting group (presets use OLTP/DSS/Web). */
    std::string group = "Zoo";
    /** Free-form description shown by `pifetch list`. */
    std::string description;
    /** Master seed; per-program seeds derive from it when not set. */
    std::uint64_t seed = 1;
    /** Generator programs (1..8). */
    std::vector<WorkloadSpecProgram> programs;
    /** Phase schedule (0..16 phases); empty = steady state. */
    std::vector<WorkloadSpecPhase> phases;
};

/** Bounds enforced on specs beyond validateWorkloadParams. */
constexpr std::size_t specMaxPrograms = 8;
constexpr std::size_t specMaxPhases = 16;
constexpr InstCount specMinPhaseInstrs = 1'000;
constexpr InstCount specMaxPhaseInstrs = 1'000'000'000;

/**
 * Validate a spec: slug well-formed, program/phase counts in range,
 * names unique, every program accepted by validateWorkloadParams,
 * phase budgets inside [specMinPhaseInstrs, specMaxPhaseInstrs], mix
 * entries referencing existing programs with finite non-negative
 * weights (positive sum), and interrupt rates inside the generator's
 * [0, 0.01] bound.
 *
 * @return nullopt when valid, else a description of the first
 *         violation.
 */
std::optional<std::string> validateWorkloadSpec(const WorkloadSpec &spec);

/** Serialize a spec in canonical resolved form. */
ResultValue specToResult(const WorkloadSpec &spec);

/**
 * Strictly decode a spec from a parsed JSON document: unknown keys,
 * wrong kinds, and missing required members fail with a message.
 * The result is validated with validateWorkloadSpec before returning.
 */
std::optional<WorkloadSpec> workloadSpecFromResult(const ResultValue &doc,
                                                   std::string *err);

/** Parse + decode + validate a spec from JSON text. */
std::optional<WorkloadSpec> parseWorkloadSpec(const std::string &text,
                                              std::string *err);

/** Load a spec from a JSON file (errors include the path). */
std::optional<WorkloadSpec> loadWorkloadSpecFile(const std::string &path,
                                                 std::string *err);

/**
 * Link several generated Programs into one flat address space:
 * block-aligned relocation per part, function indices offset, part 0's
 * dispatcher kept, roots/weights/handlers concatenated in part order.
 * The merged program passes Program::validate().
 */
Program linkPrograms(const std::vector<Program> &parts);

/**
 * A spec lowered to the generator/executor pipeline.
 *
 * Lowering is deterministic: the same spec and seed offset always
 * produce the same linked Program and executor schedule.
 */
struct LoweredWorkload
{
    WorkloadSpec spec;

    /** Spec key / title / reporting group. */
    const std::string &key() const { return spec.name; }
    const std::string &title() const { return spec.title; }
    const std::string &group() const { return spec.group; }

    /**
     * Generator parameters of program @p idx with the preset-style
     * seed fold applied for @p seed_offset (multicore variation).
     */
    WorkloadParams params(std::size_t idx,
                          std::uint64_t seed_offset = 0) const;

    /** Build, link and validate the spec's Program. */
    Program build(std::uint64_t seed_offset = 0) const;

    /** Transaction roots contributed per program (executor spans). */
    std::vector<std::uint32_t> rootSpans() const;

    /**
     * The executor phase schedule with inherited interrupt rates
     * resolved. Single-program specs without phases return an empty
     * schedule (classic bit-identical dispatch); multi-program specs
     * without phases get one synthetic uniform steady-state phase.
     */
    std::vector<ExecutorPhase> executorPhases() const;

    /** Blended (mix-weighted) base interrupt rate across programs. */
    double blendedInterruptRate() const;
};

/**
 * Lower a validated spec. Panics if the spec does not validate; call
 * validateWorkloadSpec (or the parse helpers, which do) first.
 */
LoweredWorkload lowerWorkloadSpec(WorkloadSpec spec);

/**
 * Directory scanned for zoo specs: $PIFETCH_WORKLOAD_DIR when set,
 * else the compiled-in source `workloads/` directory, else the
 * relative path "workloads".
 */
std::string workloadZooDir();

/** A zoo entry: spec key plus the file it loads from. */
struct WorkloadZooEntry
{
    std::string key;
    std::string path;
    std::string title;
    std::string description;
};

/**
 * Enumerate valid specs under workloadZooDir(), sorted by key.
 * Unreadable or invalid files are skipped (the CI smoke job loads
 * every file individually to catch those).
 */
std::vector<WorkloadZooEntry> workloadZoo();

/** Find a zoo entry by spec key (nullopt when absent). */
std::optional<WorkloadZooEntry> findZooEntry(const std::string &key);

} // namespace pifetch
