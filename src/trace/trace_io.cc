/**
 * @file
 * Trace file I/O implementation.
 */

#include "trace/trace_io.hh"

#include <cstdio>
#include <memory>

namespace pifetch {

namespace {

/** On-disk record layout (packed, little-endian host assumed). */
struct DiskRecord
{
    std::uint64_t pc;
    std::uint64_t target;
    std::uint8_t kind;
    std::uint8_t trapLevel;
    std::uint8_t taken;
    std::uint8_t pad[5];
};

static_assert(sizeof(DiskRecord) == 24, "unexpected disk record size");

struct Header
{
    std::uint32_t magic;
    std::uint32_t version;
    std::uint64_t count;
};

struct FileCloser
{
    void operator()(std::FILE *f) const { if (f) std::fclose(f); }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

} // namespace

bool
writeTrace(const std::string &path, const std::vector<RetiredInstr> &records)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        return false;

    Header h{traceMagic, traceVersion, records.size()};
    if (std::fwrite(&h, sizeof(h), 1, f.get()) != 1)
        return false;

    for (const RetiredInstr &r : records) {
        DiskRecord d{};
        d.pc = r.pc;
        d.target = r.target;
        d.kind = static_cast<std::uint8_t>(r.kind);
        d.trapLevel = r.trapLevel;
        d.taken = r.taken ? 1 : 0;
        if (std::fwrite(&d, sizeof(d), 1, f.get()) != 1)
            return false;
    }
    return true;
}

bool
readTrace(const std::string &path, std::vector<RetiredInstr> &records)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        return false;

    Header h{};
    if (std::fread(&h, sizeof(h), 1, f.get()) != 1)
        return false;
    if (h.magic != traceMagic || h.version != traceVersion)
        return false;

    records.clear();
    records.reserve(h.count);
    for (std::uint64_t i = 0; i < h.count; ++i) {
        DiskRecord d{};
        if (std::fread(&d, sizeof(d), 1, f.get()) != 1)
            return false;
        RetiredInstr r;
        r.pc = d.pc;
        r.target = d.target;
        r.kind = static_cast<InstrKind>(d.kind);
        r.trapLevel = d.trapLevel;
        r.taken = d.taken != 0;
        records.push_back(r);
    }
    return true;
}

} // namespace pifetch
