/**
 * @file
 * Trace file I/O implementation.
 *
 * Both directions stream through a fixed-size chunk buffer: one
 * fwrite/fread per chunk instead of one syscall-sized call per
 * 24-byte record, which is what makes multi-million-instruction
 * captures load fast enough to feed the parallel multicore runner.
 */

#include "trace/trace_io.hh"

#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <memory>

namespace pifetch {

namespace {

/** On-disk record layout (packed, little-endian host assumed). */
struct DiskRecord
{
    std::uint64_t pc;
    std::uint64_t target;
    std::uint8_t kind;
    std::uint8_t trapLevel;
    std::uint8_t taken;
    std::uint8_t pad[5];
};

static_assert(sizeof(DiskRecord) == 24, "unexpected disk record size");

struct Header
{
    std::uint32_t magic;
    std::uint32_t version;
    std::uint64_t count;
};

/** Records buffered per fwrite/fread call (32K records = 768 KiB). */
constexpr std::size_t chunkRecords = 32 * 1024;

struct FileCloser
{
    void operator()(std::FILE *f) const { if (f) std::fclose(f); }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

/**
 * Bytes past the header in @p f, or -1 if unknowable (not a regular
 * file). fstat rather than fseek/ftell: st_size is 64-bit where the
 * platform supports large files, so multi-GB traces stay readable.
 */
long long
payloadBytes(std::FILE *f)
{
    struct stat st;
    if (fstat(fileno(f), &st) != 0 || !S_ISREG(st.st_mode))
        return -1;
    const long long size = static_cast<long long>(st.st_size);
    if (size < static_cast<long long>(sizeof(Header)))
        return -1;
    return size - static_cast<long long>(sizeof(Header));
}

} // namespace

bool
writeTrace(const std::string &path, const std::vector<RetiredInstr> &records)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        return false;

    Header h{traceMagic, traceVersion, records.size()};
    if (std::fwrite(&h, sizeof(h), 1, f.get()) != 1)
        return false;

    std::vector<DiskRecord> chunk(
        std::min(chunkRecords, std::max<std::size_t>(records.size(), 1)));
    std::size_t pos = 0;
    while (pos < records.size()) {
        const std::size_t n =
            std::min(chunkRecords, records.size() - pos);
        for (std::size_t i = 0; i < n; ++i) {
            const RetiredInstr &r = records[pos + i];
            DiskRecord d{};
            d.pc = r.pc;
            d.target = r.target;
            d.kind = static_cast<std::uint8_t>(r.kind);
            d.trapLevel = r.trapLevel;
            d.taken = r.taken ? 1 : 0;
            chunk[i] = d;
        }
        if (std::fwrite(chunk.data(), sizeof(DiskRecord), n, f.get())
            != n) {
            return false;
        }
        pos += n;
    }

    // An ENOSPC surfacing only when buffered data hits the disk must
    // not be reported as success: flush explicitly, then close the
    // handle ourselves (FileCloser would discard fclose's result).
    if (std::fflush(f.get()) != 0)
        return false;
    return std::fclose(f.release()) == 0;
}

bool
readTrace(const std::string &path, std::vector<RetiredInstr> &records)
{
    records.clear();

    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        return false;

    Header h{};
    if (std::fread(&h, sizeof(h), 1, f.get()) != 1)
        return false;
    if (h.magic != traceMagic || h.version != traceVersion)
        return false;

    // The header's count is untrusted input: a corrupt or truncated
    // file could otherwise demand a multi-GB reserve() before the
    // first record read fails. When the payload size is knowable it
    // must hold everything the header promises; when it is not (the
    // stream is not a regular file), skip the reserve and let the
    // vector grow with the records that actually arrive.
    const long long payload = payloadBytes(f.get());
    const bool sized = payload >= 0;
    if (sized) {
        if (h.count > static_cast<unsigned long long>(payload) /
                          sizeof(DiskRecord)) {
            return false;
        }
        // The count is validated against real bytes on disk, so the
        // whole destination can be sized up front and each chunk
        // converted straight into its final slots — no push_back
        // capacity checks on the 32K-record decode path.
        records.resize(h.count);
    }
    std::vector<DiskRecord> chunk(
        std::min<std::uint64_t>(chunkRecords,
                                std::max<std::uint64_t>(h.count, 1)));
    std::uint64_t pos = 0;
    std::uint64_t remaining = h.count;
    while (remaining > 0) {
        const std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(chunkRecords, remaining));
        if (std::fread(chunk.data(), sizeof(DiskRecord), n, f.get())
            != n) {
            records.clear();
            return false;
        }
        for (std::size_t i = 0; i < n; ++i) {
            const DiskRecord &d = chunk[i];
            RetiredInstr r;
            r.pc = d.pc;
            r.target = d.target;
            r.kind = static_cast<InstrKind>(d.kind);
            r.trapLevel = d.trapLevel;
            r.taken = d.taken != 0;
            if (sized)
                records[pos + i] = r;
            else
                records.push_back(r);
        }
        pos += n;
        remaining -= n;
    }
    return true;
}

TraceWriter::~TraceWriter()
{
    if (file_) {
        std::fclose(static_cast<std::FILE *>(file_));
        file_ = nullptr;
    }
}

void
TraceWriter::fail(const std::string &msg)
{
    if (!failed_) {
        failed_ = true;
        error_ = msg;
    }
    if (file_) {
        std::fclose(static_cast<std::FILE *>(file_));
        file_ = nullptr;
    }
}

bool
TraceWriter::open(const std::string &path)
{
    if (file_ || finished_) {
        fail("trace writer: open() called twice");
        return false;
    }
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f) {
        fail("cannot create " + path);
        return false;
    }
    file_ = f;
    pending_.reserve(chunkRecords);

    // Placeholder count; finish() seeks back and writes the real one.
    Header h{traceMagic, traceVersion, 0};
    if (std::fwrite(&h, sizeof(h), 1, f) != 1) {
        fail("cannot write trace header to " + path);
        return false;
    }
    return true;
}

void
TraceWriter::add(const RetiredInstr &r)
{
    if (failed_ || finished_)
        return;
    pending_.push_back(r);
    ++count_;
    if (pending_.size() >= chunkRecords)
        flushChunk();
}

bool
TraceWriter::addBatch(const RecordBatch &batch)
{
    for (std::uint32_t i = 0; i < batch.size && !failed_; ++i)
        add(batch.get(i));
    return !failed_;
}

void
TraceWriter::flushChunk()
{
    if (pending_.empty() || failed_)
        return;
    std::vector<DiskRecord> chunk(pending_.size());
    for (std::size_t i = 0; i < pending_.size(); ++i) {
        const RetiredInstr &r = pending_[i];
        DiskRecord d{};
        d.pc = r.pc;
        d.target = r.target;
        d.kind = static_cast<std::uint8_t>(r.kind);
        d.trapLevel = r.trapLevel;
        d.taken = r.taken ? 1 : 0;
        chunk[i] = d;
    }
    if (std::fwrite(chunk.data(), sizeof(DiskRecord), chunk.size(),
                    static_cast<std::FILE *>(file_)) != chunk.size()) {
        fail("cannot write trace chunk");
        return;
    }
    pending_.clear();
}

bool
TraceWriter::finish()
{
    if (failed_)
        return false;
    if (finished_ || file_ == nullptr) {
        fail("trace writer: finish() without an open file");
        return false;
    }
    flushChunk();
    if (failed_)
        return false;
    std::FILE *f = static_cast<std::FILE *>(file_);

    Header h{traceMagic, traceVersion, count_};
    if (std::fseek(f, 0, SEEK_SET) != 0 ||
        std::fwrite(&h, sizeof(h), 1, f) != 1) {
        fail("cannot finalize trace header");
        return false;
    }
    if (std::fflush(f) != 0) {
        fail("flush failed finalizing trace");
        return false;
    }
    file_ = nullptr;
    finished_ = true;
    if (std::fclose(f) != 0) {
        failed_ = true;
        error_ = "close failed finalizing trace";
        return false;
    }
    return true;
}

bool
TraceBatchReader::open(const std::string &path)
{
    close();
    failed_ = false;
    total_ = 0;
    remaining_ = 0;
    decoded_ = 0;
    chunkPos_ = 0;
    chunkLen_ = 0;

    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        failed_ = true;
        return false;
    }
    file_ = f;

    Header h{};
    if (std::fread(&h, sizeof(h), 1, f) != 1 || h.magic != traceMagic ||
        h.version != traceVersion) {
        failed_ = true;
        close();
        return false;
    }

    // Same untrusted-count validation as readTrace(): when the payload
    // size is knowable it must hold everything the header promises.
    const long long payload = payloadBytes(f);
    if (payload >= 0 &&
        h.count > static_cast<unsigned long long>(payload) /
                      sizeof(DiskRecord)) {
        failed_ = true;
        close();
        return false;
    }

    total_ = h.count;
    remaining_ = h.count;
    chunk_.resize(sizeof(DiskRecord) *
                  std::min<std::uint64_t>(
                      chunkRecords, std::max<std::uint64_t>(h.count, 1)));
    return true;
}

void
TraceBatchReader::close()
{
    if (file_) {
        std::fclose(static_cast<std::FILE *>(file_));
        file_ = nullptr;
    }
}

void
TraceBatchReader::refill()
{
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(chunkRecords, remaining_));
    if (std::fread(chunk_.data(), sizeof(DiskRecord), n,
                   static_cast<std::FILE *>(file_)) != n) {
        failed_ = true;
        return;
    }
    chunkPos_ = 0;
    chunkLen_ = n;
    remaining_ -= n;
}

bool
TraceBatchReader::next(RecordBatch &out, std::uint32_t max)
{
    out.clear();
    if (failed_ || file_ == nullptr || max == 0)
        return false;
    out.reserve(max);

    while (out.size < max && (chunkPos_ < chunkLen_ || remaining_ > 0)) {
        if (chunkPos_ == chunkLen_) {
            refill();
            if (failed_) {
                out.clear();
                return false;
            }
        }
        const auto *recs =
            reinterpret_cast<const DiskRecord *>(chunk_.data());
        const std::uint32_t take = static_cast<std::uint32_t>(
            std::min<std::size_t>(max - out.size,
                                  chunkLen_ - chunkPos_));
        // Scatter the packed disk fields into the batch columns. One
        // pass per column keeps each destination write stream dense.
        const std::uint32_t b = out.size;
        for (std::uint32_t i = 0; i < take; ++i)
            out.pc[b + i] = recs[chunkPos_ + i].pc;
        for (std::uint32_t i = 0; i < take; ++i)
            out.target[b + i] = recs[chunkPos_ + i].target;
        for (std::uint32_t i = 0; i < take; ++i)
            out.kind[b + i] = recs[chunkPos_ + i].kind;
        for (std::uint32_t i = 0; i < take; ++i)
            out.trapLevel[b + i] = recs[chunkPos_ + i].trapLevel;
        for (std::uint32_t i = 0; i < take; ++i)
            out.taken[b + i] = recs[chunkPos_ + i].taken != 0 ? 1 : 0;
        out.size = b + take;
        chunkPos_ += take;
        decoded_ += take;
    }

    out.computeBlocks();
    return out.size > 0;
}

} // namespace pifetch
