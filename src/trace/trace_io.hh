/**
 * @file
 * Binary trace file I/O.
 *
 * Lets users capture a retire-order stream once and replay it through
 * predictors and prefetchers (the paper's trace-based methodology,
 * Section 5). The format is a fixed little-endian header followed by
 * packed records; versioned so future extensions stay readable.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/record.hh"

namespace pifetch {

/** Magic number identifying pifetch trace files ("PIFT"). */
constexpr std::uint32_t traceMagic = 0x54464950;

/** Current trace format version. */
constexpr std::uint32_t traceVersion = 1;

/**
 * Write @p records to @p path.
 *
 * Streams through a chunk buffer (one fwrite per ~32K records) and
 * flushes + closes explicitly, so a write error that only surfaces at
 * flush/close time (e.g. ENOSPC) is reported as failure, never as
 * silent data loss.
 *
 * @return true on success; false on any I/O failure.
 */
bool writeTrace(const std::string &path,
                const std::vector<RetiredInstr> &records);

/**
 * Read a trace file written by writeTrace().
 *
 * The header's record count is validated against the actual file size
 * before any allocation, so a corrupt or truncated header fails fast
 * instead of triggering a multi-GB reserve. Reads stream through the
 * same chunking as writeTrace().
 *
 * @param[out] records Replaced with the file contents on success;
 *             left empty on failure.
 * @return true on success; false on I/O error, bad magic, version
 *         mismatch, or a count that exceeds the file's payload.
 */
bool readTrace(const std::string &path,
               std::vector<RetiredInstr> &records);

} // namespace pifetch
