/**
 * @file
 * Binary trace file I/O.
 *
 * Lets users capture a retire-order stream once and replay it through
 * predictors and prefetchers (the paper's trace-based methodology,
 * Section 5). The format is a fixed little-endian header followed by
 * packed records; versioned so future extensions stay readable.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/record.hh"

namespace pifetch {

/** Magic number identifying pifetch trace files ("PIFT"). */
constexpr std::uint32_t traceMagic = 0x54464950;

/** Current trace format version. */
constexpr std::uint32_t traceVersion = 1;

/**
 * Write @p records to @p path.
 *
 * Streams through a chunk buffer (one fwrite per ~32K records) and
 * flushes + closes explicitly, so a write error that only surfaces at
 * flush/close time (e.g. ENOSPC) is reported as failure, never as
 * silent data loss.
 *
 * @return true on success; false on any I/O failure.
 */
bool writeTrace(const std::string &path,
                const std::vector<RetiredInstr> &records);

/**
 * Read a trace file written by writeTrace().
 *
 * The header's record count is validated against the actual file size
 * before any allocation, so a corrupt or truncated header fails fast
 * instead of triggering a multi-GB reserve. Reads stream through the
 * same chunking as writeTrace().
 *
 * @param[out] records Replaced with the file contents on success;
 *             left empty on failure.
 * @return true on success; false on I/O error, bad magic, version
 *         mismatch, or a count that exceeds the file's payload.
 */
bool readTrace(const std::string &path,
               std::vector<RetiredInstr> &records);

/**
 * Streaming v1 writer: the counterpart of TraceBatchReader for code
 * that produces records incrementally (e.g. `pifetch trace unpack`
 * converting a v2 corpus back to v1 chunk by chunk). Buffers one disk
 * chunk of records, writes the header with a placeholder count, and
 * finish() seeks back to finalize it — so a multi-gigabyte conversion
 * never holds more than one chunk in memory. Mirrors writeTrace()'s
 * flush-and-close error discipline.
 */
class TraceWriter
{
  public:
    TraceWriter() = default;
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Open @p path for writing. @return false on failure (error()). */
    bool open(const std::string &path);

    /** Append one record (buffered at disk-chunk granularity). */
    void add(const RetiredInstr &r);

    /** Append a decoded batch. @return false once failed() is set. */
    bool addBatch(const RecordBatch &batch);

    /** Flush the final chunk, rewrite the header with the real count,
     *  flush and close. @return false on any I/O failure. */
    bool finish();

    /** Records appended so far. */
    std::uint64_t count() const { return count_; }

    bool failed() const { return failed_; }
    const std::string &error() const { return error_; }

  private:
    void flushChunk();
    void fail(const std::string &msg);

    void *file_ = nullptr;  //!< std::FILE, opaque to the header
    std::uint64_t count_ = 0;
    std::vector<RetiredInstr> pending_;  //!< records of the open chunk
    bool failed_ = false;
    bool finished_ = false;
    std::string error_;
};

/**
 * Streaming batch decoder for trace files.
 *
 * Where readTrace() materializes the whole file as one AoS vector,
 * this reader hands out the stream one structure-of-arrays RecordBatch
 * at a time: each 32K-record disk chunk is read with a single fread
 * and its fields are scattered into the batch's parallel PC / target /
 * kind columns (block addresses precomputed), ready to feed
 * TraceEngine::replayBatch() without touching AoS form or holding more
 * than one chunk in memory. Decodes the exact record sequence
 * readTrace() produces; the trace-io test suite locks the equivalence.
 */
class TraceBatchReader
{
  public:
    TraceBatchReader() = default;
    ~TraceBatchReader() { close(); }

    TraceBatchReader(const TraceBatchReader &) = delete;
    TraceBatchReader &operator=(const TraceBatchReader &) = delete;

    /**
     * Open @p path and validate its header (magic, version, and the
     * record count against the file's actual payload size, exactly as
     * readTrace() does). @return true if the stream is ready.
     */
    bool open(const std::string &path);

    /** Records the header promises (valid after a successful open). */
    std::uint64_t count() const { return total_; }

    /** Records decoded so far. */
    std::uint64_t decoded() const { return decoded_; }

    /**
     * Decode up to @p max records into @p out (columns filled, block
     * addresses computed). @return true if @p out holds at least one
     * record; false at end of stream or on error (check failed()).
     */
    bool next(RecordBatch &out, std::uint32_t max = recordBatchLen);

    /** True once an I/O error or short read has been observed. */
    bool failed() const { return failed_; }

    /** Release the underlying file (idempotent). */
    void close();

  private:
    /** Read the next disk chunk into chunk_. Sets failed_ on error. */
    void refill();

    void *file_ = nullptr;       //!< std::FILE, opaque to the header
    std::uint64_t total_ = 0;    //!< records promised by the header
    std::uint64_t remaining_ = 0;  //!< records not yet read from disk
    std::uint64_t decoded_ = 0;
    bool failed_ = false;

    /** Raw bytes of the current disk chunk and the decode cursor. */
    std::vector<std::uint8_t> chunk_;
    std::size_t chunkPos_ = 0;  //!< next undecoded record index
    std::size_t chunkLen_ = 0;  //!< records in the current chunk
};

} // namespace pifetch
