/**
 * @file
 * Binary trace file I/O.
 *
 * Lets users capture a retire-order stream once and replay it through
 * predictors and prefetchers (the paper's trace-based methodology,
 * Section 5). The format is a fixed little-endian header followed by
 * packed records; versioned so future extensions stay readable.
 */

#ifndef PIFETCH_TRACE_TRACE_IO_HH
#define PIFETCH_TRACE_TRACE_IO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/record.hh"

namespace pifetch {

/** Magic number identifying pifetch trace files ("PIFT"). */
constexpr std::uint32_t traceMagic = 0x54464950;

/** Current trace format version. */
constexpr std::uint32_t traceVersion = 1;

/**
 * Write @p records to @p path.
 * @return true on success; false on any I/O failure.
 */
bool writeTrace(const std::string &path,
                const std::vector<RetiredInstr> &records);

/**
 * Read a trace file written by writeTrace().
 * @param[out] records Replaced with the file contents on success.
 * @return true on success; false on I/O error, bad magic, or version
 *         mismatch.
 */
bool readTrace(const std::string &path,
               std::vector<RetiredInstr> &records);

} // namespace pifetch

#endif // PIFETCH_TRACE_TRACE_IO_HH
