/**
 * @file
 * Server workload presets.
 */

#include "trace/server_suite.hh"

#include <algorithm>
#include <cctype>

#include "common/types.hh"

namespace pifetch {

const std::vector<ServerWorkload> &
allServerWorkloads()
{
    static const std::vector<ServerWorkload> all = {
        ServerWorkload::OltpDb2,   ServerWorkload::OltpOracle,
        ServerWorkload::DssQry2,   ServerWorkload::DssQry17,
        ServerWorkload::WebApache, ServerWorkload::WebZeus,
    };
    return all;
}

std::string
workloadName(ServerWorkload w)
{
    switch (w) {
      case ServerWorkload::OltpDb2:    return "DB2";
      case ServerWorkload::OltpOracle: return "Oracle";
      case ServerWorkload::DssQry2:    return "Qry 2";
      case ServerWorkload::DssQry17:   return "Qry 17";
      case ServerWorkload::WebApache:  return "Apache";
      case ServerWorkload::WebZeus:    return "Zeus";
    }
    panic("unknown workload");
}

std::string
workloadGroup(ServerWorkload w)
{
    switch (w) {
      case ServerWorkload::OltpDb2:
      case ServerWorkload::OltpOracle: return "OLTP";
      case ServerWorkload::DssQry2:
      case ServerWorkload::DssQry17:   return "DSS";
      case ServerWorkload::WebApache:
      case ServerWorkload::WebZeus:    return "Web";
    }
    panic("unknown workload");
}

std::string
workloadKey(ServerWorkload w)
{
    switch (w) {
      case ServerWorkload::OltpDb2:    return "db2";
      case ServerWorkload::OltpOracle: return "oracle";
      case ServerWorkload::DssQry2:    return "qry2";
      case ServerWorkload::DssQry17:   return "qry17";
      case ServerWorkload::WebApache:  return "apache";
      case ServerWorkload::WebZeus:    return "zeus";
    }
    panic("unknown workload");
}

std::optional<ServerWorkload>
workloadFromName(const std::string &s)
{
    // Whole-token, exact matching only: a stray suffix or surrounding
    // whitespace ("db2x", "qry2 ") must fail the parse rather than
    // fuzzy-match a workload (test_workloads.cc locks this).
    std::string key = s;
    std::transform(key.begin(), key.end(), key.begin(),
                   [](unsigned char c) {
                       return static_cast<char>(std::tolower(c));
                   });
    for (ServerWorkload w : allServerWorkloads()) {
        if (key == workloadKey(w))
            return w;
    }
    if (key.size() == 1 && key[0] >= '0' && key[0] <= '5')
        return allServerWorkloads()[static_cast<std::size_t>(
            key[0] - '0')];
    return std::nullopt;
}

WorkloadParams
workloadParams(ServerWorkload w, std::uint64_t seed_offset)
{
    WorkloadParams p;
    switch (w) {
      case ServerWorkload::OltpDb2:
        p.name = "OLTP DB2";
        p.seed = 0x0db2;
        p.appFunctions = 2400;
        p.libFunctions = 260;
        p.meanFnBlocks = 6.5;
        p.transactions = 8;
        p.callDensity = 0.09;
        p.meanAppCalls = 2.0;
        p.condDensity = 0.24;
        p.biasedFraction = 0.84;
        p.loopsPerFunction = 0.5;
        p.meanLoopIter = 6.0;
        p.zipfS = 0.45;
        p.interruptRate = 5.0e-5;
        break;

      case ServerWorkload::OltpOracle:
        p.name = "OLTP Oracle";
        p.seed = 0x0aac1e;
        p.appFunctions = 3000;
        p.libFunctions = 300;
        p.meanFnBlocks = 7.0;
        p.transactions = 10;
        p.callDensity = 0.09;
        p.meanAppCalls = 2.0;
        p.condDensity = 0.26;
        // Oracle shows the largest branch-noise loss in Fig. 2: more
        // data-dependent (unstable) branches.
        p.biasedFraction = 0.74;
        p.loopsPerFunction = 0.5;
        p.meanLoopIter = 6.0;
        p.zipfS = 0.45;
        p.interruptRate = 6.0e-5;
        break;

      case ServerWorkload::DssQry2:
        p.name = "DSS Qry 2";
        p.seed = 0xd5502;
        p.appFunctions = 2200;
        p.libFunctions = 260;
        p.meanFnBlocks = 7.5;
        p.transactions = 2;
        p.callDensity = 0.08;
        p.meanAppCalls = 2.0;
        p.condDensity = 0.22;
        p.biasedFraction = 0.88;
        // Scan/join kernels: loopier with long trip counts.
        p.loopsPerFunction = 1.2;
        p.meanLoopIter = 24.0;
        p.zipfS = 0.22;
        p.interruptRate = 2.0e-5;
        break;

      case ServerWorkload::DssQry17:
        p.name = "DSS Qry 17";
        p.seed = 0xd5517;
        p.appFunctions = 2400;
        p.libFunctions = 280;
        p.meanFnBlocks = 7.0;
        p.transactions = 3;
        p.callDensity = 0.08;
        p.meanAppCalls = 2.15;
        p.condDensity = 0.22;
        p.biasedFraction = 0.86;
        p.loopsPerFunction = 1.0;
        p.meanLoopIter = 16.0;
        p.zipfS = 0.22;
        p.interruptRate = 2.5e-5;
        break;

      case ServerWorkload::WebApache:
        p.name = "Web Apache";
        p.seed = 0xa9ac4e;
        p.appFunctions = 1700;
        p.libFunctions = 650;  // heavy shared-library/OS involvement
        p.meanFnBlocks = 5.5;
        p.transactions = 6;
        p.callDensity = 0.14;
        p.meanAppCalls = 1.9;
        p.condDensity = 0.25;
        p.biasedFraction = 0.82;
        p.loopsPerFunction = 0.4;
        p.meanLoopIter = 5.0;
        p.zipfS = 0.4;
        p.interruptRate = 1.0e-4;  // network interrupts
        break;

      case ServerWorkload::WebZeus:
        p.name = "Web Zeus";
        p.seed = 0x2e05;
        p.appFunctions = 1500;
        p.libFunctions = 550;
        p.meanFnBlocks = 5.5;
        p.transactions = 5;
        p.callDensity = 0.13;
        p.meanAppCalls = 1.9;
        p.condDensity = 0.25;
        p.biasedFraction = 0.83;
        p.loopsPerFunction = 0.4;
        p.meanLoopIter = 5.0;
        p.zipfS = 0.4;
        p.interruptRate = 9.0e-5;
        break;
    }
    p.seed = p.seed * 0x9e3779b97f4a7c15ull + seed_offset;
    return p;
}

} // namespace pifetch
