/**
 * @file
 * Workload-spec parsing, validation, lowering and the spec zoo.
 */

#include "trace/workload_spec.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <sstream>

#include "trace/server_suite.hh"

namespace pifetch {

namespace {

constexpr std::uint64_t goldenRatio = 0x9e3779b97f4a7c15ull;

/** First-error accumulator for the strict decoder. */
struct Strict
{
    std::string err;

    bool ok() const { return err.empty(); }

    bool
    fail(const std::string &msg)
    {
        if (err.empty())
            err = msg;
        return false;
    }
};

/**
 * Reject members outside the schema. This is what makes the spec
 * surface strict (unlike the scenario reader, which tolerates unknown
 * keys for forward compatibility of repro documents).
 */
void
checkKeys(const ResultValue &obj, const std::string &where,
          std::initializer_list<const char *> allowed, Strict &st)
{
    for (std::size_t i = 0; i < obj.size(); ++i) {
        const std::string &key = obj.member(i).first;
        bool known = false;
        for (const char *a : allowed)
            known |= key == a;
        if (!known)
            st.fail(where + ": unknown key '" + key + "'");
    }
}

bool
requireObject(const ResultValue *v, const std::string &where, Strict &st)
{
    if (!v || v->kind() != ResultValue::Kind::Object)
        return st.fail(where + " must be a JSON object");
    return true;
}

/** Optional string member; absent keeps @p out. */
void
getString(const ResultValue &obj, const char *key,
          const std::string &where, std::string &out, Strict &st)
{
    const ResultValue *m = obj.find(key);
    if (!m)
        return;
    if (m->kind() != ResultValue::Kind::String) {
        st.fail(where + " member '" + key + "' must be a string");
        return;
    }
    out = m->str();
}

/** Optional non-negative integer member; absent keeps @p out. */
void
getU64(const ResultValue &obj, const char *key, const std::string &where,
       std::uint64_t &out, Strict &st)
{
    const ResultValue *m = obj.find(key);
    if (!m)
        return;
    if (m->kind() == ResultValue::Kind::Uint) {
        out = m->uintValue();
    } else if (m->kind() == ResultValue::Kind::Int && m->intValue() >= 0) {
        out = static_cast<std::uint64_t>(m->intValue());
    } else {
        st.fail(where + " member '" + key +
                "' must be a non-negative integer");
    }
}

/** Optional unsigned member with a fits-in-32-bits check. */
void
getUnsigned(const ResultValue &obj, const char *key,
            const std::string &where, unsigned &out, Strict &st)
{
    std::uint64_t wide = out;
    getU64(obj, key, where, wide, st);
    if (!st.ok())
        return;
    if (wide > 0xffffffffull) {
        st.fail(where + " member '" + key + "' does not fit in 32 bits");
        return;
    }
    out = static_cast<unsigned>(wide);
}

/** Optional finite-number member; absent keeps @p out. */
void
getDouble(const ResultValue &obj, const char *key,
          const std::string &where, double &out, Strict &st)
{
    const ResultValue *m = obj.find(key);
    if (!m)
        return;
    if (!m->isNumber()) {
        st.fail(where + " member '" + key + "' must be a number");
        return;
    }
    const double v = m->number();
    if (!std::isfinite(v)) {
        st.fail(where + " member '" + key + "' must be finite");
        return;
    }
    out = v;
}

/** Optional interrupt-rate member: present values must be in range. */
void
getRate(const ResultValue &obj, const char *key, const std::string &where,
        double &out, Strict &st)
{
    if (!obj.find(key))
        return;
    double v = 0.0;
    getDouble(obj, key, where, v, st);
    if (!st.ok())
        return;
    if (v < 0.0 || v > 0.01) {
        st.fail(where + " member '" + key + "' must be in [0, 0.01]");
        return;
    }
    out = v;
}

/**
 * Decode generator-parameter overrides. Every WorkloadParams knob is
 * addressable except `name` (the program name mirrors into it).
 */
void
decodeParams(const ResultValue &obj, const std::string &where,
             WorkloadParams &p, Strict &st)
{
    checkKeys(obj, where,
              {"seed", "appFunctions", "libFunctions", "handlers",
               "meanFnBlocks", "maxFnBlocks", "meanHandlerBlocks",
               "meanBasicBlockInstrs", "callDensity", "meanAppCalls",
               "condDensity", "jumpDensity", "biasedFraction",
               "dataDepLo", "dataDepHi", "loopsPerFunction",
               "meanLoopIter", "zipfS", "callLayers", "transactions",
               "interruptRate", "maxCallDepth"},
              st);
    getU64(obj, "seed", where, p.seed, st);
    getUnsigned(obj, "appFunctions", where, p.appFunctions, st);
    getUnsigned(obj, "libFunctions", where, p.libFunctions, st);
    getUnsigned(obj, "handlers", where, p.handlers, st);
    getDouble(obj, "meanFnBlocks", where, p.meanFnBlocks, st);
    getUnsigned(obj, "maxFnBlocks", where, p.maxFnBlocks, st);
    getDouble(obj, "meanHandlerBlocks", where, p.meanHandlerBlocks, st);
    getDouble(obj, "meanBasicBlockInstrs", where, p.meanBasicBlockInstrs,
              st);
    getDouble(obj, "callDensity", where, p.callDensity, st);
    getDouble(obj, "meanAppCalls", where, p.meanAppCalls, st);
    getDouble(obj, "condDensity", where, p.condDensity, st);
    getDouble(obj, "jumpDensity", where, p.jumpDensity, st);
    getDouble(obj, "biasedFraction", where, p.biasedFraction, st);
    getDouble(obj, "dataDepLo", where, p.dataDepLo, st);
    getDouble(obj, "dataDepHi", where, p.dataDepHi, st);
    getDouble(obj, "loopsPerFunction", where, p.loopsPerFunction, st);
    getDouble(obj, "meanLoopIter", where, p.meanLoopIter, st);
    getDouble(obj, "zipfS", where, p.zipfS, st);
    getUnsigned(obj, "callLayers", where, p.callLayers, st);
    getUnsigned(obj, "transactions", where, p.transactions, st);
    getDouble(obj, "interruptRate", where, p.interruptRate, st);
    getUnsigned(obj, "maxCallDepth", where, p.maxCallDepth, st);
}

/** Serialize the resolved generator parameters (all knobs but name). */
ResultValue
paramsToSpecResult(const WorkloadParams &p)
{
    ResultValue v = ResultValue::object();
    v.set("seed", p.seed);
    v.set("appFunctions", p.appFunctions);
    v.set("libFunctions", p.libFunctions);
    v.set("handlers", p.handlers);
    v.set("meanFnBlocks", p.meanFnBlocks);
    v.set("maxFnBlocks", p.maxFnBlocks);
    v.set("meanHandlerBlocks", p.meanHandlerBlocks);
    v.set("meanBasicBlockInstrs", p.meanBasicBlockInstrs);
    v.set("callDensity", p.callDensity);
    v.set("meanAppCalls", p.meanAppCalls);
    v.set("condDensity", p.condDensity);
    v.set("jumpDensity", p.jumpDensity);
    v.set("biasedFraction", p.biasedFraction);
    v.set("dataDepLo", p.dataDepLo);
    v.set("dataDepHi", p.dataDepHi);
    v.set("loopsPerFunction", p.loopsPerFunction);
    v.set("meanLoopIter", p.meanLoopIter);
    v.set("zipfS", p.zipfS);
    v.set("callLayers", p.callLayers);
    v.set("transactions", p.transactions);
    v.set("interruptRate", p.interruptRate);
    v.set("maxCallDepth", p.maxCallDepth);
    return v;
}

bool
isSlug(const std::string &s)
{
    if (s.empty() || s.size() > 64)
        return false;
    for (char c : s) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                        c == '-' || c == '_';
        if (!ok)
            return false;
    }
    return true;
}

/** Index of a program by name, or nprogs when absent. */
std::size_t
programIndex(const WorkloadSpec &spec, const std::string &name)
{
    for (std::size_t i = 0; i < spec.programs.size(); ++i) {
        if (spec.programs[i].name == name)
            return i;
    }
    return spec.programs.size();
}

/** Effective per-program weights of a phase (uniform when empty). */
std::vector<double>
effectiveMix(const WorkloadSpec &spec, const WorkloadSpecPhase &ph)
{
    std::vector<double> w(spec.programs.size(), 0.0);
    if (ph.mix.empty()) {
        std::fill(w.begin(), w.end(), 1.0);
        return w;
    }
    for (const auto &m : ph.mix)
        w[programIndex(spec, m.first)] = m.second;
    return w;
}

/** Mix-weighted average of the programs' base interrupt rates. */
double
blendRate(const WorkloadSpec &spec, const std::vector<double> &weights)
{
    double sum = 0.0;
    double rate = 0.0;
    for (std::size_t i = 0; i < spec.programs.size(); ++i) {
        sum += weights[i];
        rate += weights[i] * spec.programs[i].params.interruptRate;
    }
    return sum > 0.0 ? rate / sum : 0.0;
}

} // namespace

std::optional<std::string>
validateWorkloadSpec(const WorkloadSpec &spec)
{
    if (!isSlug(spec.name)) {
        return std::string("spec name must be a slug of [a-z0-9_-], "
                           "1-64 chars");
    }
    if (spec.programs.empty())
        return std::string("spec has no programs");
    if (spec.programs.size() > specMaxPrograms) {
        return std::string("spec has more than ") +
               std::to_string(specMaxPrograms) + " programs";
    }
    if (spec.phases.size() > specMaxPhases) {
        return std::string("spec has more than ") +
               std::to_string(specMaxPhases) + " phases";
    }

    for (std::size_t i = 0; i < spec.programs.size(); ++i) {
        const WorkloadSpecProgram &pr = spec.programs[i];
        if (pr.name.empty())
            return std::string("program ") + std::to_string(i) +
                   " has no name";
        for (std::size_t j = 0; j < i; ++j) {
            if (spec.programs[j].name == pr.name)
                return "duplicate program name '" + pr.name + "'";
        }
        if (!pr.base.empty() && !workloadFromName(pr.base))
            return "program '" + pr.name + "': unknown base preset '" +
                   pr.base + "'";
        if (auto bad = validateWorkloadParams(pr.params))
            return *bad;
    }

    for (std::size_t i = 0; i < spec.phases.size(); ++i) {
        const WorkloadSpecPhase &ph = spec.phases[i];
        const std::string where = "phase '" + ph.name + "'";
        if (ph.name.empty())
            return std::string("phase ") + std::to_string(i) +
                   " has no name";
        for (std::size_t j = 0; j < i; ++j) {
            if (spec.phases[j].name == ph.name)
                return "duplicate phase name '" + ph.name + "'";
        }
        if (ph.instructions < specMinPhaseInstrs ||
            ph.instructions > specMaxPhaseInstrs) {
            return where + ": instructions must be in [" +
                   std::to_string(specMinPhaseInstrs) + ", " +
                   std::to_string(specMaxPhaseInstrs) + "]";
        }
        double mixSum = ph.mix.empty() ? 1.0 : 0.0;
        for (std::size_t m = 0; m < ph.mix.size(); ++m) {
            const auto &entry = ph.mix[m];
            if (programIndex(spec, entry.first) >= spec.programs.size())
                return where + ": mix references unknown program '" +
                       entry.first + "'";
            for (std::size_t n = 0; n < m; ++n) {
                if (ph.mix[n].first == entry.first)
                    return where + ": duplicate mix program '" +
                           entry.first + "'";
            }
            if (!std::isfinite(entry.second) || entry.second < 0.0)
                return where + ": mix weight for '" + entry.first +
                       "' must be finite and >= 0";
            mixSum += entry.second;
        }
        if (mixSum <= 0.0)
            return where + ": mix weights sum to zero";
        if (ph.interruptRate > 0.01)
            return where + ": interruptRate above 0.01";
        if (ph.interruptRateEnd > 0.01)
            return where + ": interruptRateEnd above 0.01";
    }

    return std::nullopt;
}

ResultValue
specToResult(const WorkloadSpec &spec)
{
    ResultValue doc = ResultValue::object();
    doc.set("name", spec.name);
    doc.set("title", spec.title.empty() ? spec.name : spec.title);
    doc.set("group", spec.group);
    doc.set("description", spec.description);
    doc.set("seed", spec.seed);

    ResultValue programs = ResultValue::array();
    for (const WorkloadSpecProgram &pr : spec.programs) {
        ResultValue p = ResultValue::object();
        p.set("name", pr.name);
        p.set("base", pr.base);
        p.set("params", paramsToSpecResult(pr.params));
        programs.push(std::move(p));
    }
    doc.set("programs", std::move(programs));

    ResultValue phases = ResultValue::array();
    for (const WorkloadSpecPhase &ph : spec.phases) {
        ResultValue p = ResultValue::object();
        p.set("name", ph.name);
        p.set("instructions", ph.instructions);
        ResultValue mix = ResultValue::object();
        const std::vector<double> weights = effectiveMix(spec, ph);
        for (std::size_t i = 0; i < spec.programs.size(); ++i)
            mix.set(spec.programs[i].name, weights[i]);
        p.set("mix", std::move(mix));
        const double rate = ph.interruptRate >= 0.0
                                ? ph.interruptRate
                                : blendRate(spec, weights);
        p.set("interruptRate", rate);
        if (ph.interruptRateEnd >= 0.0)
            p.set("interruptRateEnd", ph.interruptRateEnd);
        phases.push(std::move(p));
    }
    doc.set("phases", std::move(phases));
    return doc;
}

std::optional<WorkloadSpec>
workloadSpecFromResult(const ResultValue &doc, std::string *err)
{
    Strict st;
    WorkloadSpec spec;

    if (doc.kind() != ResultValue::Kind::Object) {
        if (err)
            *err = "workload spec root must be a JSON object";
        return std::nullopt;
    }
    checkKeys(doc, "spec",
              {"name", "title", "group", "description", "seed",
               "programs", "phases"},
              st);
    getString(doc, "name", "spec", spec.name, st);
    if (st.ok() && spec.name.empty())
        st.fail("spec: missing required member 'name'");
    getString(doc, "title", "spec", spec.title, st);
    getString(doc, "group", "spec", spec.group, st);
    getString(doc, "description", "spec", spec.description, st);
    getU64(doc, "seed", "spec", spec.seed, st);

    const ResultValue *programs = doc.find("programs");
    if (!programs || programs->kind() != ResultValue::Kind::Array ||
        programs->size() == 0) {
        st.fail("spec: 'programs' must be a non-empty array");
    }
    for (std::size_t i = 0; st.ok() && programs && i < programs->size();
         ++i) {
        const ResultValue &node = programs->at(i);
        const std::string where =
            "programs[" + std::to_string(i) + "]";
        if (!requireObject(&node, where, st))
            break;
        checkKeys(node, where, {"name", "base", "params"}, st);

        WorkloadSpecProgram pr;
        getString(node, "name", where, pr.name, st);
        if (st.ok() && pr.name.empty())
            st.fail(where + ": missing required member 'name'");
        getString(node, "base", where, pr.base, st);
        if (!st.ok())
            break;

        if (!pr.base.empty()) {
            const auto w = workloadFromName(pr.base);
            if (!w) {
                st.fail("program '" + pr.name +
                        "': unknown base preset '" + pr.base + "'");
                break;
            }
            pr.params = workloadParams(*w);
        } else {
            // Seedless bespoke programs draw distinct seeds from the
            // spec seed so sibling programs never generate identical
            // code by accident.
            pr.params.seed =
                spec.seed + (static_cast<std::uint64_t>(i) + 1) *
                                goldenRatio;
        }
        if (const ResultValue *params = node.find("params")) {
            if (requireObject(params, where + ".params", st))
                decodeParams(*params, where + ".params", pr.params, st);
        }
        pr.params.name = pr.name;
        spec.programs.push_back(std::move(pr));
    }

    const ResultValue *phases = doc.find("phases");
    if (phases && phases->kind() != ResultValue::Kind::Array)
        st.fail("spec: 'phases' must be an array");
    for (std::size_t i = 0; st.ok() && phases && i < phases->size();
         ++i) {
        const ResultValue &node = phases->at(i);
        const std::string where = "phases[" + std::to_string(i) + "]";
        if (!requireObject(&node, where, st))
            break;
        checkKeys(node, where,
                  {"name", "instructions", "mix", "interruptRate",
                   "interruptRateEnd"},
                  st);

        WorkloadSpecPhase ph;
        getString(node, "name", where, ph.name, st);
        if (st.ok() && ph.name.empty())
            st.fail(where + ": missing required member 'name'");
        if (st.ok() && !node.find("instructions"))
            st.fail(where + ": missing required member 'instructions'");
        getU64(node, "instructions", where, ph.instructions, st);
        getRate(node, "interruptRate", where, ph.interruptRate, st);
        getRate(node, "interruptRateEnd", where, ph.interruptRateEnd,
                st);
        if (const ResultValue *mix = node.find("mix")) {
            if (requireObject(mix, where + ".mix", st)) {
                for (std::size_t m = 0; m < mix->size(); ++m) {
                    const auto &member = mix->member(m);
                    if (!member.second.isNumber()) {
                        st.fail(where + ".mix member '" + member.first +
                                "' must be a number");
                        break;
                    }
                    ph.mix.emplace_back(member.first,
                                        member.second.number());
                }
            }
        }
        spec.phases.push_back(std::move(ph));
    }

    if (!st.ok()) {
        if (err)
            *err = st.err;
        return std::nullopt;
    }
    if (auto bad = validateWorkloadSpec(spec)) {
        if (err)
            *err = *bad;
        return std::nullopt;
    }
    if (spec.title.empty())
        spec.title = spec.name;
    return spec;
}

std::optional<WorkloadSpec>
parseWorkloadSpec(const std::string &text, std::string *err)
{
    std::string parse_err;
    const auto doc = parseJson(text, &parse_err);
    if (!doc) {
        if (err)
            *err = "invalid JSON: " + parse_err;
        return std::nullopt;
    }
    return workloadSpecFromResult(*doc, err);
}

std::optional<WorkloadSpec>
loadWorkloadSpecFile(const std::string &path, std::string *err)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        if (err)
            *err = path + ": cannot open";
        return std::nullopt;
    }
    std::ostringstream ss;
    ss << is.rdbuf();
    std::string inner;
    const auto spec = parseWorkloadSpec(ss.str(), &inner);
    if (!spec && err)
        *err = path + ": " + inner;
    return spec;
}

Program
linkPrograms(const std::vector<Program> &parts)
{
    if (parts.empty())
        panic("linkPrograms: no parts");
    if (parts.size() == 1) {
        // Single-program specs stay byte-identical to a direct build.
        Program merged = parts.front();
        merged.validate();
        return merged;
    }

    Program merged;
    Addr code_end = 0;
    std::uint32_t fn_off = 0;
    for (const Program &part : parts) {
        Addr delta = 0;
        if (!merged.functions.empty()) {
            Addr part_base = part.functions.front().entry;
            for (const Function &fn : part.functions)
                part_base = std::min(part_base, fn.entry);
            const Addr new_base =
                (code_end + blockBytes - 1) & ~(blockBytes - 1);
            delta = new_base - part_base;  // wrap-safe unsigned offset
        }
        for (const Function &fn : part.functions) {
            Function moved = fn;
            moved.entry += delta;
            for (BasicBlock &blk : moved.blocks) {
                blk.start += delta;
                if (blk.term == BlockTerm::Call)
                    blk.callee += fn_off;
            }
            merged.functions.push_back(std::move(moved));
        }
        for (std::uint32_t r : part.transactionRoots)
            merged.transactionRoots.push_back(r + fn_off);
        merged.transactionWeights.insert(merged.transactionWeights.end(),
                                         part.transactionWeights.begin(),
                                         part.transactionWeights.end());
        for (std::uint32_t h : part.handlers)
            merged.handlers.push_back(h + fn_off);
        code_end = std::max(code_end, part.codeEnd + delta);
        fn_off += static_cast<std::uint32_t>(part.functions.size());
    }
    merged.dispatcher = parts.front().dispatcher;
    merged.codeEnd = code_end;
    merged.validate();
    return merged;
}

WorkloadParams
LoweredWorkload::params(std::size_t idx, std::uint64_t seed_offset) const
{
    WorkloadParams p = spec.programs.at(idx).params;
    // Additive fold: offset 0 preserves the resolved seed exactly, so
    // a base-only spec builds the same Program as its preset.
    p.seed += seed_offset * goldenRatio;
    return p;
}

Program
LoweredWorkload::build(std::uint64_t seed_offset) const
{
    std::vector<Program> parts;
    parts.reserve(spec.programs.size());
    for (std::size_t i = 0; i < spec.programs.size(); ++i)
        parts.push_back(WorkloadGenerator::build(params(i, seed_offset)));
    return linkPrograms(parts);
}

std::vector<std::uint32_t>
LoweredWorkload::rootSpans() const
{
    std::vector<std::uint32_t> spans;
    spans.reserve(spec.programs.size());
    for (const WorkloadSpecProgram &pr : spec.programs)
        spans.push_back(pr.params.transactions);
    return spans;
}

double
LoweredWorkload::blendedInterruptRate() const
{
    const std::vector<double> uniform(spec.programs.size(), 1.0);
    return blendRate(spec, uniform);
}

std::vector<ExecutorPhase>
LoweredWorkload::executorPhases() const
{
    std::vector<ExecutorPhase> out;
    if (spec.phases.empty()) {
        if (spec.programs.size() <= 1)
            return out;  // classic single-mix dispatch, bit-identical
        // Multi-program steady state: one synthetic uniform phase.
        ExecutorPhase ph;
        ph.instructions = 1'000'000;
        ph.interruptRate = blendedInterruptRate();
        out.push_back(std::move(ph));
        return out;
    }
    for (const WorkloadSpecPhase &sp : spec.phases) {
        ExecutorPhase ph;
        ph.instructions = sp.instructions;
        ph.programMix = effectiveMix(spec, sp);
        ph.interruptRate = sp.interruptRate >= 0.0
                               ? sp.interruptRate
                               : blendRate(spec, ph.programMix);
        ph.interruptRateEnd = sp.interruptRateEnd;
        out.push_back(std::move(ph));
    }
    return out;
}

LoweredWorkload
lowerWorkloadSpec(WorkloadSpec spec)
{
    if (auto bad = validateWorkloadSpec(spec))
        panic("lowerWorkloadSpec: " + *bad);
    if (spec.title.empty())
        spec.title = spec.name;
    LoweredWorkload lw;
    lw.spec = std::move(spec);
    return lw;
}

std::string
workloadZooDir()
{
    if (const char *env = std::getenv("PIFETCH_WORKLOAD_DIR")) {
        if (*env)
            return env;
    }
#ifdef PIFETCH_WORKLOAD_DIR
    return PIFETCH_WORKLOAD_DIR;
#else
    return "workloads";
#endif
}

std::vector<WorkloadZooEntry>
workloadZoo()
{
    namespace fs = std::filesystem;
    std::vector<WorkloadZooEntry> zoo;
    std::error_code ec;
    fs::directory_iterator it(workloadZooDir(), ec);
    if (ec)
        return zoo;
    for (const fs::directory_entry &entry : it) {
        if (!entry.is_regular_file(ec) ||
            entry.path().extension() != ".json") {
            continue;
        }
        const auto spec =
            loadWorkloadSpecFile(entry.path().string(), nullptr);
        if (!spec)
            continue;
        zoo.push_back(WorkloadZooEntry{spec->name, entry.path().string(),
                                       spec->title, spec->description});
    }
    std::sort(zoo.begin(), zoo.end(),
              [](const WorkloadZooEntry &a, const WorkloadZooEntry &b) {
                  return a.key != b.key ? a.key < b.key
                                        : a.path < b.path;
              });
    zoo.erase(std::unique(zoo.begin(), zoo.end(),
                          [](const WorkloadZooEntry &a,
                             const WorkloadZooEntry &b) {
                              return a.key == b.key;
                          }),
              zoo.end());
    return zoo;
}

std::optional<WorkloadZooEntry>
findZooEntry(const std::string &key)
{
    for (const WorkloadZooEntry &e : workloadZoo()) {
        if (e.key == key)
            return e;
    }
    return std::nullopt;
}

} // namespace pifetch
