/**
 * @file
 * Trace format v2 implementation.
 *
 * The encoder works chunk-at-a-time through a scratch byte buffer, so
 * conversion of an arbitrarily long capture holds one chunk of
 * records in memory. Every failure path sets a distinct, actionable
 * message — the corruption battery in tests/test_trace_v2.cc locks
 * that each planted fault (truncation, flipped block bit, bad index
 * offset, stale v1 header) reports as itself, not as a generic error.
 */

#include "trace/trace_v2.hh"

#include <sys/stat.h>

#include <cstdio>
#include <memory>

#include "common/digest.hh"

namespace pifetch {

namespace {

/** v2 file header (packed, little-endian host assumed, like v1). */
struct HeaderV2
{
    std::uint32_t magic;
    std::uint32_t version;
    std::uint64_t count;
    std::uint64_t indexOffset;
    std::uint32_t chunkCount;
    std::uint32_t flags;
};

static_assert(sizeof(HeaderV2) == 32, "unexpected v2 header size");

/** Per-chunk on-disk header preceding the payload. */
struct ChunkHeader
{
    std::uint32_t records;
    std::uint32_t payloadBytes;
    std::uint64_t digest;
};

static_assert(sizeof(ChunkHeader) == 16, "unexpected chunk header size");

/** One on-disk entry of the trailing chunk index. */
struct IndexEntry
{
    std::uint64_t offset;
    std::uint64_t firstRecord;
    std::uint32_t records;
    std::uint32_t payloadBytes;
    std::uint64_t digest;
};

static_assert(sizeof(IndexEntry) == 32, "unexpected index entry size");

/** Record flag byte: kind, taken, has-target; high bits reserved 0. */
constexpr std::uint8_t flagTaken = 1u << 3;
constexpr std::uint8_t flagHasTarget = 1u << 4;
constexpr std::uint8_t flagReserved = 0xe0;

struct FileCloser
{
    void operator()(std::FILE *f) const { if (f) std::fclose(f); }
};

/** Size of @p f when it is a regular file, else nullopt. */
std::optional<std::uint64_t>
regularFileSize(std::FILE *f)
{
    struct stat st;
    if (fstat(fileno(f), &st) != 0 || !S_ISREG(st.st_mode))
        return std::nullopt;
    return static_cast<std::uint64_t>(st.st_size);
}

/** Zigzag-fold a modular difference into a small unsigned value. */
std::uint64_t
zigzag(std::uint64_t delta)
{
    return (delta << 1) ^ (0 - (delta >> 63));
}

std::uint64_t
unzigzag(std::uint64_t z)
{
    return (z >> 1) ^ (0 - (z & 1));
}

void
putVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

/**
 * Canonical LEB128 decode with hard bounds: overruns of the payload
 * and non-canonical 10th bytes (bits past 2^63) are both malformed.
 */
bool
getVarint(const std::uint8_t *payload, std::size_t &pos,
          std::size_t end, std::uint64_t &v)
{
    v = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
        if (pos >= end)
            return false;
        const std::uint8_t b = payload[pos++];
        v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
        if (!(b & 0x80))
            return shift < 63 || (b >> 1) == 0;
    }
    return false;
}

/** FNV-1a over the chunk's records, digestRetire word encoding. */
std::uint64_t
chunkDigest(const RetiredInstr *recs, std::size_t n)
{
    StreamDigest d;
    for (std::size_t i = 0; i < n; ++i)
        digestRetire(d, recs[i]);
    return d.value();
}

/** FNV-1a over the index entries (field order, 64-bit words). */
std::uint64_t
indexDigest(const std::vector<IndexEntry> &entries)
{
    StreamDigest d;
    for (const IndexEntry &e : entries) {
        d.add(e.offset);
        d.add(e.firstRecord);
        d.add((static_cast<std::uint64_t>(e.records) << 32) |
              e.payloadBytes);
        d.add(e.digest);
    }
    return d.value();
}

/** Encode @p n records into @p out (cleared first). */
void
encodeChunkPayload(const RetiredInstr *recs, std::size_t n,
                   std::vector<std::uint8_t> &out)
{
    out.clear();

    // Section A: one flag byte per record.
    for (std::size_t i = 0; i < n; ++i) {
        const RetiredInstr &r = recs[i];
        std::uint8_t flags = static_cast<std::uint8_t>(r.kind) & 0x7;
        if (r.taken)
            flags |= flagTaken;
        if (r.target != invalidAddr)
            flags |= flagHasTarget;
        out.push_back(flags);
    }

    // Section B: trap-level runs (level byte, varint run length).
    std::size_t i = 0;
    while (i < n) {
        std::size_t j = i + 1;
        while (j < n && recs[j].trapLevel == recs[i].trapLevel)
            ++j;
        out.push_back(recs[i].trapLevel);
        putVarint(out, j - i);
        i = j;
    }

    // Section C: pc as zigzag deltas from the previous pc (0 at the
    // chunk start, keeping every chunk independently decodable).
    Addr prev = 0;
    for (std::size_t k = 0; k < n; ++k) {
        putVarint(out, zigzag(recs[k].pc - prev));
        prev = recs[k].pc;
    }

    // Section D: target as a zigzag delta from the record's own pc,
    // present only where the has-target flag is set.
    for (std::size_t k = 0; k < n; ++k) {
        if (recs[k].target != invalidAddr)
            putVarint(out, zigzag(recs[k].target - recs[k].pc));
    }
}

} // namespace

// ---------------------------------------------------------- TraceV2Writer

TraceV2Writer::~TraceV2Writer()
{
    if (file_) {
        std::fclose(static_cast<std::FILE *>(file_));
        file_ = nullptr;
    }
}

void
TraceV2Writer::fail(const std::string &msg)
{
    if (!failed_) {
        failed_ = true;
        error_ = msg;
    }
    if (file_) {
        std::fclose(static_cast<std::FILE *>(file_));
        file_ = nullptr;
    }
}

bool
TraceV2Writer::open(const std::string &path)
{
    if (file_ || finished_) {
        fail("trace v2 writer: open() called twice");
        return false;
    }
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f) {
        fail("cannot create " + path);
        return false;
    }
    file_ = f;
    pending_.reserve(traceV2ChunkRecords);

    // Placeholder header; finish() seeks back and fills in the count,
    // index offset and chunk count.
    HeaderV2 h{traceMagic, traceVersion2, 0, 0, 0, 0};
    if (std::fwrite(&h, sizeof(h), 1, f) != 1) {
        fail("cannot write v2 header to " + path);
        return false;
    }
    return true;
}

void
TraceV2Writer::add(const RetiredInstr &r)
{
    if (failed_ || finished_)
        return;
    pending_.push_back(r);
    ++count_;
    if (pending_.size() >= traceV2ChunkRecords)
        flushChunk();
}

bool
TraceV2Writer::addBatch(const RecordBatch &batch)
{
    for (std::uint32_t i = 0; i < batch.size && !failed_; ++i)
        add(batch.get(i));
    return !failed_;
}

void
TraceV2Writer::flushChunk()
{
    if (pending_.empty() || failed_)
        return;
    std::FILE *f = static_cast<std::FILE *>(file_);

    encodeChunkPayload(pending_.data(), pending_.size(), payload_);

    TraceV2ChunkInfo info;
    info.offset = index_.empty()
                      ? sizeof(HeaderV2)
                      : index_.back().offset + sizeof(ChunkHeader) +
                            index_.back().payloadBytes;
    info.firstRecord = count_ - pending_.size();
    info.records = static_cast<std::uint32_t>(pending_.size());
    info.payloadBytes = static_cast<std::uint32_t>(payload_.size());
    info.digest = chunkDigest(pending_.data(), pending_.size());

    ChunkHeader ch{info.records, info.payloadBytes, info.digest};
    if (std::fwrite(&ch, sizeof(ch), 1, f) != 1 ||
        (payload_.size() > 0 &&
         std::fwrite(payload_.data(), 1, payload_.size(), f) !=
             payload_.size())) {
        fail("cannot write chunk " + std::to_string(index_.size()));
        return;
    }
    index_.push_back(info);
    pending_.clear();
}

bool
TraceV2Writer::finish()
{
    if (failed_)
        return false;
    if (finished_ || file_ == nullptr) {
        fail("trace v2 writer: finish() without an open file");
        return false;
    }
    flushChunk();
    if (failed_)
        return false;
    std::FILE *f = static_cast<std::FILE *>(file_);

    std::uint64_t index_offset = sizeof(HeaderV2);
    std::vector<IndexEntry> entries;
    entries.reserve(index_.size());
    for (const TraceV2ChunkInfo &c : index_) {
        entries.push_back(IndexEntry{c.offset, c.firstRecord, c.records,
                                     c.payloadBytes, c.digest});
        index_offset += sizeof(ChunkHeader) + c.payloadBytes;
    }
    const std::uint64_t idx_digest = indexDigest(entries);
    if ((!entries.empty() &&
         std::fwrite(entries.data(), sizeof(IndexEntry), entries.size(),
                     f) != entries.size()) ||
        std::fwrite(&idx_digest, sizeof(idx_digest), 1, f) != 1) {
        fail("cannot write chunk index");
        return false;
    }

    HeaderV2 h{traceMagic, traceVersion2, count_, index_offset,
               static_cast<std::uint32_t>(entries.size()), 0};
    if (std::fseek(f, 0, SEEK_SET) != 0 ||
        std::fwrite(&h, sizeof(h), 1, f) != 1) {
        fail("cannot finalize v2 header");
        return false;
    }

    // Flush explicitly, then close the handle ourselves so a deferred
    // write error (ENOSPC at flush/close) reports as failure.
    if (std::fflush(f) != 0) {
        fail("flush failed finalizing v2 trace");
        return false;
    }
    file_ = nullptr;
    finished_ = true;
    if (std::fclose(f) != 0) {
        failed_ = true;
        error_ = "close failed finalizing v2 trace";
        return false;
    }
    return true;
}

// ---------------------------------------------------------- TraceV2Reader

bool
TraceV2Reader::fail(const std::string &msg)
{
    failed_ = true;
    error_ = msg;
    close();
    return false;
}

void
TraceV2Reader::close()
{
    if (file_) {
        std::fclose(static_cast<std::FILE *>(file_));
        file_ = nullptr;
    }
}

bool
TraceV2Reader::open(const std::string &path)
{
    close();
    failed_ = false;
    error_.clear();
    info_ = TraceV2Info{};
    nextChunk_ = 0;

    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return fail("cannot open " + path);
    file_ = f;

    const std::optional<std::uint64_t> size = regularFileSize(f);
    if (!size)
        return fail(path + ": not a regular file (v2 needs an index)");
    info_.fileBytes = *size;

    HeaderV2 h{};
    if (info_.fileBytes < sizeof(h) ||
        std::fread(&h, sizeof(h), 1, f) != 1) {
        return fail(path + ": truncated header (" +
                    std::to_string(info_.fileBytes) + " of " +
                    std::to_string(sizeof(h)) + " bytes)");
    }
    if (h.magic != traceMagic)
        return fail(path + ": not a pifetch trace (bad magic)");
    if (h.version == traceVersion) {
        return fail(path + ": pifetch trace v1; read it with "
                    "readTrace(), or convert with `pifetch trace "
                    "pack`");
    }
    if (h.version != traceVersion2) {
        return fail(path + ": unsupported trace version " +
                    std::to_string(h.version) + " (this build reads "
                    "v1 and v2)");
    }

    // The index offset and chunk count are untrusted: both must land
    // inside the real file before anything is allocated or followed.
    const std::uint64_t index_bytes =
        static_cast<std::uint64_t>(h.chunkCount) * sizeof(IndexEntry) +
        sizeof(std::uint64_t);
    if (h.indexOffset < sizeof(HeaderV2) ||
        h.indexOffset > info_.fileBytes ||
        index_bytes > info_.fileBytes - h.indexOffset) {
        return fail(path + ": chunk index offset " +
                    std::to_string(h.indexOffset) + " (+" +
                    std::to_string(index_bytes) + " bytes, " +
                    std::to_string(h.chunkCount) + " chunks) lies "
                    "outside the " + std::to_string(info_.fileBytes) +
                    "-byte file — corrupt index offset");
    }
    info_.count = h.count;
    info_.indexOffset = h.indexOffset;

    std::vector<IndexEntry> entries(h.chunkCount);
    std::uint64_t stored_digest = 0;
    if (std::fseek(f, static_cast<long>(h.indexOffset), SEEK_SET) != 0 ||
        (h.chunkCount > 0 &&
         std::fread(entries.data(), sizeof(IndexEntry), entries.size(),
                    f) != entries.size()) ||
        std::fread(&stored_digest, sizeof(stored_digest), 1, f) != 1) {
        return fail(path + ": cannot read the chunk index");
    }
    if (stored_digest != indexDigest(entries))
        return fail(path + ": chunk index digest mismatch — the index "
                    "block is corrupt");

    // Entries must tile [header, indexOffset) in order and add up to
    // exactly the record count the header promises.
    std::uint64_t expect_offset = sizeof(HeaderV2);
    std::uint64_t expect_first = 0;
    for (std::size_t k = 0; k < entries.size(); ++k) {
        const IndexEntry &e = entries[k];
        if (e.offset != expect_offset || e.firstRecord != expect_first ||
            e.records == 0 || e.records > traceV2ChunkRecords) {
            return fail(path + ": chunk index entry " +
                        std::to_string(k) + " is inconsistent "
                        "(offset/first-record/count out of order)");
        }
        expect_offset += sizeof(ChunkHeader) + e.payloadBytes;
        if (expect_offset > h.indexOffset) {
            return fail(path + ": chunk index entry " +
                        std::to_string(k) + " overruns the index "
                        "block (payload extends past the index "
                        "offset)");
        }
        expect_first += e.records;
        info_.chunks.push_back(TraceV2ChunkInfo{
            e.offset, e.firstRecord, e.records, e.payloadBytes,
            e.digest});
    }
    if (expect_first != h.count) {
        return fail(path + ": chunk index totals " +
                    std::to_string(expect_first) + " records but the "
                    "header promises " + std::to_string(h.count));
    }
    return true;
}

bool
TraceV2Reader::decodeChunk(std::uint32_t k, RecordBatch &out)
{
    std::FILE *f = static_cast<std::FILE *>(file_);
    const TraceV2ChunkInfo &info = info_.chunks[k];
    const std::string tag = "chunk " + std::to_string(k);

    ChunkHeader ch{};
    if (std::fseek(f, static_cast<long>(info.offset), SEEK_SET) != 0 ||
        std::fread(&ch, sizeof(ch), 1, f) != 1)
        return fail(tag + ": cannot read the chunk header");
    if (ch.records != info.records ||
        ch.payloadBytes != info.payloadBytes ||
        ch.digest != info.digest) {
        return fail(tag + ": chunk header disagrees with the index "
                    "entry — corrupt chunk header or index");
    }

    payload_.resize(ch.payloadBytes);
    if (ch.payloadBytes > 0 &&
        std::fread(payload_.data(), 1, payload_.size(), f) !=
            payload_.size()) {
        return fail(tag + ": truncated payload (want " +
                    std::to_string(ch.payloadBytes) + " bytes)");
    }

    const std::uint32_t n = ch.records;
    out.clear();
    out.reserve(n);

    const std::uint8_t *p = payload_.data();
    const std::size_t end = payload_.size();
    std::size_t pos = 0;

    // Section A: flags.
    if (end < n)
        return fail(tag + ": payload too short for the flag bytes");
    for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint8_t flags = p[i];
        const std::uint8_t kind = flags & 0x7;
        if (kind > static_cast<std::uint8_t>(InstrKind::TrapReturn) ||
            (flags & flagReserved) != 0) {
            return fail(tag + ": malformed flag byte for record " +
                        std::to_string(i));
        }
        out.kind[i] = kind;
        out.taken[i] = (flags & flagTaken) ? 1 : 0;
    }
    pos = n;

    // Section B: trap-level runs.
    std::uint32_t covered = 0;
    while (covered < n) {
        if (pos >= end)
            return fail(tag + ": truncated trap-level runs");
        const std::uint8_t level = p[pos++];
        std::uint64_t run = 0;
        if (!getVarint(p, pos, end, run) || run == 0 ||
            run > n - covered)
            return fail(tag + ": malformed trap-level run length");
        for (std::uint64_t i = 0; i < run; ++i)
            out.trapLevel[covered + i] = level;
        covered += static_cast<std::uint32_t>(run);
    }

    // Section C: pc deltas.
    Addr prev = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
        std::uint64_t z = 0;
        if (!getVarint(p, pos, end, z))
            return fail(tag + ": malformed pc varint for record " +
                        std::to_string(i));
        prev += unzigzag(z);
        out.pc[i] = prev;
    }

    // Section D: targets where flagged; invalidAddr elsewhere.
    for (std::uint32_t i = 0; i < n; ++i) {
        if (p[i] & flagHasTarget) {
            std::uint64_t z = 0;
            if (!getVarint(p, pos, end, z))
                return fail(tag + ": malformed target varint for "
                            "record " + std::to_string(i));
            out.target[i] = out.pc[i] + unzigzag(z);
        } else {
            out.target[i] = invalidAddr;
        }
    }
    if (pos != end)
        return fail(tag + ": " + std::to_string(end - pos) +
                    " trailing payload bytes after the last section");

    out.size = n;
    out.computeBlocks();

    StreamDigest d;
    for (std::uint32_t i = 0; i < n; ++i) {
        const RetiredInstr r = out.get(i);
        digestRetire(d, r);
    }
    if (d.value() != ch.digest) {
        out.clear();
        return fail(tag + ": payload digest mismatch (stored " +
                    std::to_string(ch.digest) + ", decoded " +
                    std::to_string(d.value()) + ") — corrupt "
                    "compressed block");
    }
    return true;
}

bool
TraceV2Reader::next(RecordBatch &out)
{
    out.clear();
    if (failed_ || file_ == nullptr ||
        nextChunk_ >= info_.chunks.size())
        return false;
    const std::uint32_t k = nextChunk_;
    if (!decodeChunk(k, out)) {
        out.clear();
        return false;
    }
    ++nextChunk_;
    return true;
}

bool
TraceV2Reader::readChunk(std::uint32_t k, RecordBatch &out)
{
    out.clear();
    if (failed_ || file_ == nullptr)
        return false;
    if (k >= info_.chunks.size())
        return fail("chunk " + std::to_string(k) + " out of range (" +
                    std::to_string(info_.chunks.size()) + " chunks)");
    if (!decodeChunk(k, out)) {
        out.clear();
        return false;
    }
    return true;
}

// -------------------------------------------------------- free functions

bool
writeTraceV2(const std::string &path,
             const std::vector<RetiredInstr> &records, std::string *err)
{
    TraceV2Writer writer;
    if (writer.open(path)) {
        for (const RetiredInstr &r : records)
            writer.add(r);
        if (writer.finish())
            return true;
    }
    if (err)
        *err = writer.error();
    return false;
}

bool
readTraceV2(const std::string &path, std::vector<RetiredInstr> &records,
            std::string *err)
{
    records.clear();
    TraceV2Reader reader;
    if (!reader.open(path)) {
        if (err)
            *err = reader.error();
        return false;
    }
    records.reserve(reader.count());
    RecordBatch batch;
    while (reader.next(batch)) {
        for (std::uint32_t i = 0; i < batch.size; ++i)
            records.push_back(batch.get(i));
    }
    if (reader.failed()) {
        records.clear();
        if (err)
            *err = reader.error();
        return false;
    }
    return true;
}

std::optional<TraceV2Info>
traceV2Info(const std::string &path, std::string *err)
{
    TraceV2Reader reader;
    if (!reader.open(path)) {
        if (err)
            *err = reader.error();
        return std::nullopt;
    }
    return reader.info();
}

std::optional<TraceFileFormat>
probeTraceFile(const std::string &path, std::string *err)
{
    const auto fail = [&](const std::string &msg) {
        if (err)
            *err = msg;
        return std::nullopt;
    };
    std::unique_ptr<std::FILE, FileCloser> f(
        std::fopen(path.c_str(), "rb"));
    if (!f)
        return fail("cannot open " + path);
    std::uint32_t magic = 0;
    std::uint32_t version = 0;
    if (std::fread(&magic, sizeof(magic), 1, f.get()) != 1 ||
        std::fread(&version, sizeof(version), 1, f.get()) != 1)
        return fail(path + ": truncated header");
    if (magic != traceMagic)
        return fail(path + ": not a pifetch trace (bad magic)");
    if (version == traceVersion)
        return TraceFileFormat::V1;
    if (version == traceVersion2)
        return TraceFileFormat::V2;
    return fail(path + ": unsupported trace version " +
                std::to_string(version));
}

} // namespace pifetch
