/**
 * @file
 * The six-workload server suite of Table I.
 *
 * Presets approximating the paper's workload mix:
 *  - OLTP (TPC-C): DB2 and Oracle — largest instruction footprints,
 *    deep call graphs, many transaction types.
 *  - DSS (TPC-H): Qry2 and Qry17 — scan/join kernels, loop-dominated,
 *    few "transaction" (query-plan) types.
 *  - Web (SPECweb99): Apache and Zeus — heavy shared-library/OS
 *    activity and the highest interrupt rates (network I/O).
 *
 * Parameters were calibrated so the cross-workload *trends* of the
 * paper's figures reproduce (see EXPERIMENTS.md); absolute values
 * necessarily differ from the commercial software stack.
 */

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "trace/generator.hh"

namespace pifetch {

/** Identifiers for the six evaluated workloads. */
enum class ServerWorkload {
    OltpDb2,
    OltpOracle,
    DssQry2,
    DssQry17,
    WebApache,
    WebZeus,
};

/** All six workloads in the paper's presentation order. */
const std::vector<ServerWorkload> &allServerWorkloads();

/** Short display name ("DB2", "Oracle", "Qry 2", ...). */
std::string workloadName(ServerWorkload w);

/** Workload class ("OLTP", "DSS", "Web"). */
std::string workloadGroup(ServerWorkload w);

/**
 * Parse a workload from a CLI token: a short key ("db2", "oracle",
 * "qry2", "qry17", "apache", "zeus", case-insensitive) or an index
 * "0".."5" in presentation order. Matching is exact — trailing or
 * leading garbage ("db2x", "qry2 ", " zeus", "06") is rejected, so a
 * script typo can never silently select a different workload.
 * Returns nullopt on anything else.
 */
std::optional<ServerWorkload> workloadFromName(const std::string &s);

/** The short key workloadFromName accepts ("db2", "qry2", ...). */
std::string workloadKey(ServerWorkload w);

/**
 * Generator parameters for a workload.
 * @param seed_offset Folded into the preset seed so multi-"core" runs
 *        can execute distinct instances of the same workload.
 */
WorkloadParams workloadParams(ServerWorkload w,
                              std::uint64_t seed_offset = 0);

} // namespace pifetch
