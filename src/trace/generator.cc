/**
 * @file
 * Workload generator implementation.
 */

#include "trace/generator.hh"

#include <algorithm>
#include <cmath>

#include "common/rng.hh"
#include "common/types.hh"

namespace pifetch {

namespace {

/** Code layout base (leaves low addresses unused, like a real binary). */
constexpr Addr codeBase = 0x40000;

/** Align @p a up to the next cache-block boundary. */
Addr
alignToBlock(Addr a)
{
    return (a + blockBytes - 1) & ~(blockBytes - 1);
}

/**
 * Partition @p total_instrs instructions into basic blocks with
 * geometric lengths around @p mean_len.
 */
std::vector<std::uint32_t>
partitionBlocks(std::uint64_t total_instrs, double mean_len, Rng &rng)
{
    std::vector<std::uint32_t> sizes;
    std::uint64_t remaining = total_instrs;
    while (remaining > 0) {
        std::uint64_t len = std::clamp<std::uint64_t>(
            rng.geometric(mean_len), 2, 16);
        if (len >= remaining)
            len = remaining;
        // Avoid a dangling 1-instruction tail: merge it into this block.
        if (remaining - len == 1)
            len = remaining;
        sizes.push_back(static_cast<std::uint32_t>(len));
        remaining -= len;
    }
    return sizes;
}

/** Assign addresses to a function's basic blocks starting at @p entry. */
void
layoutFunction(Function &fn, Addr entry)
{
    fn.entry = entry;
    Addr a = entry;
    for (BasicBlock &b : fn.blocks) {
        b.start = a;
        a = b.end();
    }
}

/** A generated function body plus its application-call sites. */
struct FunctionDraft
{
    Function fn;
    /** Block indices whose Call terminator targets the next layer. */
    std::vector<std::size_t> appCallBlocks;
};

/**
 * Build one function body: draws size, partitions into basic blocks,
 * assigns terminators, inserts non-overlapping loops, and places call
 * sites. Callees are resolved later once the function count is known.
 *
 * @param want_app_calls Place next-layer call sites (application
 *        functions only; library and handler code calls only library
 *        helpers).
 */
FunctionDraft
buildFunctionBody(const WorkloadParams &p, double mean_blocks,
                  unsigned max_blocks, bool want_app_calls, Rng &rng)
{
    FunctionDraft draft;
    Function &fn = draft.fn;

    const std::uint64_t nblocks = std::clamp<std::uint64_t>(
        rng.geometric(mean_blocks), 1, max_blocks);
    // Fill all but the last cache block fully; the last one partially.
    const std::uint64_t total_instrs =
        (nblocks - 1) * instrsPerBlock + rng.range(6, instrsPerBlock);

    const auto sizes =
        partitionBlocks(total_instrs, p.meanBasicBlockInstrs, rng);
    fn.blocks.resize(sizes.size());
    for (std::size_t i = 0; i < sizes.size(); ++i)
        fn.blocks[i].numInstrs = sizes[i];

    const std::size_t nbb = fn.blocks.size();
    fn.blocks.back().term = BlockTerm::Return;

    // Insert tight loops first so call placement can respect them.
    // Loops never overlap (nested data-dependent trip counts would
    // multiply into unbounded execution) and never include the first
    // or last block.
    std::vector<bool> in_loop(nbb, false);
    double loops_expected = p.loopsPerFunction;
    unsigned nloops = static_cast<unsigned>(loops_expected);
    if (rng.chance(loops_expected - nloops))
        ++nloops;
    for (unsigned l = 0; l < nloops && nbb >= 3; ++l) {
        const std::size_t j = rng.range(1, nbb - 2);
        const std::size_t body = rng.range(1, std::min<std::size_t>(j, 3));
        const std::size_t i = j - body;
        bool overlaps = false;
        for (std::size_t k = i; k <= j && !overlaps; ++k)
            overlaps = in_loop[k];
        if (overlaps)
            continue;
        BasicBlock &blk = fn.blocks[j];
        blk.term = BlockTerm::LoopBranch;
        blk.targetBlock = static_cast<std::uint32_t>(i);
        blk.takenProb = 1.0 - 1.0 / std::max(1.1, p.meanLoopIter);
        for (std::size_t k = i; k <= j; ++k)
            in_loop[k] = true;
    }

    // Terminators for the remaining blocks.
    for (std::size_t b = 0; b + 1 < nbb; ++b) {
        BasicBlock &blk = fn.blocks[b];
        if (blk.term == BlockTerm::LoopBranch)
            continue;
        const double r = rng.uniform();
        // Library-helper calls: tight loops call helpers at half the
        // density of straight-line code (Section 3.1).
        const double call_d =
            in_loop[b] ? p.callDensity * 0.5 : p.callDensity;
        if (r < call_d) {
            blk.term = BlockTerm::Call;  // library callee, resolved later
        } else if (r < call_d + p.condDensity && b + 2 < nbb) {
            blk.term = BlockTerm::CondBranch;
            if (rng.chance(p.biasedFraction)) {
                // Biased: mostly-taken branches skip 1..3 blocks,
                // modelling error-handling gaps and other rarely-
                // executed code (Section 3.1); mostly-not-taken ones
                // almost never divert.
                const std::uint64_t skip = rng.range(1, 3);
                blk.targetBlock = static_cast<std::uint32_t>(
                    std::min<std::uint64_t>(b + 1 + skip, nbb - 1));
                blk.takenProb = rng.chance(0.5) ? 0.97 : 0.03;
            } else {
                // Data-dependent (unstable) branches: most resolve
                // within a couple of basic blocks, so both directions
                // usually land in the same cache blocks ("local
                // control-flow ambiguity" that spatial regions
                // absorb). Only a quarter diverge at block
                // granularity.
                const std::uint64_t skip =
                    rng.chance(0.15) ? rng.range(1, 3) : 0;
                blk.targetBlock = static_cast<std::uint32_t>(
                    std::min<std::uint64_t>(b + 1 + skip, nbb - 1));
                blk.takenProb = p.dataDepLo +
                    rng.uniform() * (p.dataDepHi - p.dataDepLo);
            }
        } else if (r < call_d + p.condDensity + p.jumpDensity &&
                   b + 2 < nbb) {
            blk.term = BlockTerm::Jump;
            blk.targetBlock = static_cast<std::uint32_t>(
                rng.range(b + 1, nbb - 1));
        } else {
            blk.term = BlockTerm::FallThrough;
        }
    }

    // Application call sites: the call-tree branching factor. Placed
    // on straight-line (non-loop) blocks so loop trip counts cannot
    // multiply whole subtrees.
    if (want_app_calls) {
        unsigned want = static_cast<unsigned>(p.meanAppCalls);
        if (rng.chance(p.meanAppCalls - want))
            ++want;
        std::vector<std::size_t> candidates;
        for (std::size_t b = 0; b + 1 < nbb; ++b) {
            if (!in_loop[b] && fn.blocks[b].term != BlockTerm::LoopBranch)
                candidates.push_back(b);
        }
        for (unsigned k = 0; k < want && !candidates.empty(); ++k) {
            const std::size_t pick = rng.below(candidates.size());
            const std::size_t b = candidates[pick];
            candidates.erase(candidates.begin() +
                             static_cast<std::ptrdiff_t>(pick));
            fn.blocks[b].term = BlockTerm::Call;
            draft.appCallBlocks.push_back(b);
        }
    }

    return draft;
}

} // namespace

std::optional<std::string>
validateWorkloadParams(const WorkloadParams &p)
{
    const auto bad = [&](const std::string &what) {
        return "workload '" + p.name + "': " + what;
    };
    const auto probability = [](double v) {
        return std::isfinite(v) && v >= 0.0 && v <= 1.0;
    };

    // Structural minima (these have always been fatal in build()).
    if (p.appFunctions < p.transactions + 2)
        return bad("appFunctions must exceed transactions + 2");
    if (p.handlers == 0)
        return bad("need at least one handler");
    if (p.libFunctions < 2)
        return bad("need at least two library functions");
    if (p.transactions == 0)
        return bad("need at least one transaction type");

    // Structural maxima: generation time and memory scale with these,
    // so a corrupt or hostile parameter point (e.g. a hand-edited
    // repro JSON with appFunctions in the billions) must fail here
    // instead of grinding build() into an OOM. The caps are two
    // orders of magnitude above the largest preset.
    if (p.appFunctions > 200'000)
        return bad("appFunctions must be <= 200000");
    if (p.libFunctions > 100'000)
        return bad("libFunctions must be <= 100000");
    if (p.handlers > 4'096)
        return bad("handlers must be <= 4096");
    if (p.transactions > 4'096)
        return bad("transactions must be <= 4096");
    if (p.maxFnBlocks > 1'024)
        return bad("maxFnBlocks must be <= 1024");

    // Sizing means: geometric draws need positive finite means, and
    // the function partitioner assumes at least one block.
    if (!std::isfinite(p.meanFnBlocks) || p.meanFnBlocks < 1.0)
        return bad("meanFnBlocks must be >= 1");
    if (p.maxFnBlocks < 1)
        return bad("maxFnBlocks must be >= 1");
    if (p.meanFnBlocks > static_cast<double>(p.maxFnBlocks))
        return bad("meanFnBlocks must not exceed maxFnBlocks");
    if (!std::isfinite(p.meanHandlerBlocks) ||
        p.meanHandlerBlocks < 1.0 || p.meanHandlerBlocks > 1024.0) {
        // Bounded like the other geometric-draw means: Rng::geometric
        // iterates O(mean) times, so an unbounded mean is a hang.
        return bad("meanHandlerBlocks must be in [1, 1024]");
    }
    if (!std::isfinite(p.meanBasicBlockInstrs) ||
        p.meanBasicBlockInstrs < 1.0 || p.meanBasicBlockInstrs > 1024.0) {
        return bad("meanBasicBlockInstrs must be in [1, 1024]");
    }

    // Densities are per-block probabilities and must co-exist: the
    // terminator draw compares a single uniform sample against their
    // partial sums.
    if (!probability(p.callDensity))
        return bad("callDensity must be a probability");
    if (!probability(p.condDensity))
        return bad("condDensity must be a probability");
    if (!probability(p.jumpDensity))
        return bad("jumpDensity must be a probability");
    if (p.callDensity + p.condDensity + p.jumpDensity > 1.0)
        return bad("callDensity + condDensity + jumpDensity must be "
                   "<= 1");
    if (!probability(p.biasedFraction))
        return bad("biasedFraction must be a probability");
    if (!probability(p.dataDepLo) || !probability(p.dataDepHi) ||
        p.dataDepLo > p.dataDepHi) {
        return bad("dataDep bounds must satisfy 0 <= lo <= hi <= 1");
    }

    if (!std::isfinite(p.loopsPerFunction) || p.loopsPerFunction < 0.0 ||
        p.loopsPerFunction > 8.0) {
        return bad("loopsPerFunction must be in [0, 8]");
    }
    if (!std::isfinite(p.meanLoopIter) || p.meanLoopIter < 1.0 ||
        p.meanLoopIter > 1024.0) {
        return bad("meanLoopIter must be in [1, 1024]");
    }
    if (!std::isfinite(p.meanAppCalls) || p.meanAppCalls < 0.0 ||
        p.meanAppCalls > 16.0) {
        return bad("meanAppCalls must be in [0, 16]");
    }
    if (!std::isfinite(p.zipfS) || p.zipfS < 0.0 || p.zipfS > 4.0)
        return bad("zipfS must be in [0, 4]");
    if (p.callLayers == 0 || p.callLayers > 64)
        return bad("callLayers must be in [1, 64]");
    if (p.maxCallDepth == 0 || p.maxCallDepth > 256)
        return bad("maxCallDepth must be in [1, 256]");
    if (!std::isfinite(p.interruptRate) || p.interruptRate < 0.0 ||
        p.interruptRate > 0.01) {
        return bad("interruptRate must be in [0, 0.01]");
    }
    return std::nullopt;
}

Program
WorkloadGenerator::build(const WorkloadParams &p)
{
    if (const auto err = validateWorkloadParams(p))
        fatalError(*err);

    Rng rng(p.seed);
    Program prog;

    // Function index map:
    //   0                        dispatcher
    //   [1, appFunctions]        application functions
    //   [lib_first, +libFunctions)  shared-library functions
    //   [handler_first, +handlers) interrupt handlers
    const std::uint32_t app_first = 1;
    const std::uint32_t lib_first = app_first + p.appFunctions;
    const std::uint32_t handler_first = lib_first + p.libFunctions;
    const std::uint32_t total_fns = handler_first + p.handlers;

    prog.functions.reserve(total_fns);
    std::vector<std::vector<std::size_t>> app_sites(total_fns);

    // Dispatcher: B0 ... Call (callee overridden at run time),
    //             B1 ... Jump -> B0.
    {
        Function d;
        d.blocks.resize(2);
        d.blocks[0].numInstrs = static_cast<std::uint32_t>(rng.range(4, 8));
        d.blocks[0].term = BlockTerm::Call;
        d.blocks[0].callee = app_first;  // placeholder; executor overrides
        d.blocks[1].numInstrs = static_cast<std::uint32_t>(rng.range(3, 6));
        d.blocks[1].term = BlockTerm::Jump;
        d.blocks[1].targetBlock = 0;
        prog.functions.push_back(std::move(d));
    }

    for (std::uint32_t f = app_first; f < lib_first; ++f) {
        FunctionDraft draft = buildFunctionBody(
            p, p.meanFnBlocks, p.maxFnBlocks, true, rng);
        app_sites[f] = std::move(draft.appCallBlocks);
        prog.functions.push_back(std::move(draft.fn));
    }
    for (std::uint32_t f = lib_first; f < handler_first; ++f) {
        // Library functions skew smaller (string ops, allocators...).
        prog.functions.push_back(buildFunctionBody(
            p, std::max(1.5, p.meanFnBlocks * 0.5), p.maxFnBlocks,
            false, rng).fn);
    }
    for (std::uint32_t f = handler_first; f < total_fns; ++f) {
        Function h = buildFunctionBody(p, p.meanHandlerBlocks,
                                       std::max(4u, p.maxFnBlocks / 2),
                                       false, rng).fn;
        h.isHandler = true;
        prog.functions.push_back(std::move(h));
    }

    // Lay out all functions contiguously, block-aligned.
    Addr cursor = codeBase;
    for (Function &fn : prog.functions) {
        cursor = alignToBlock(cursor);
        layoutFunction(fn, cursor);
        cursor = fn.end();
    }
    prog.codeEnd = alignToBlock(cursor);

    // Resolve callees through the layered call graph. An application
    // function with app-relative index i lives in layer i % callLayers
    // (so layers interleave across the address space); application
    // call sites in layer l target layer l+1, bottom-layer sites call
    // library code. Popularity within the target layer is Zipf-skewed
    // and scattered via a multiplicative permutation so hot callees
    // are not clustered at low addresses.
    const std::uint64_t perm_prime = 2654435761ull;  // odd, coprime
    const unsigned layers = std::max(1u, p.callLayers);
    auto pick_lib = [&](std::uint32_t self) -> std::uint32_t {
        std::uint64_t z = rng.zipf(p.libFunctions, p.zipfS + 0.15);
        std::uint32_t idx = lib_first +
            static_cast<std::uint32_t>((z * perm_prime) % p.libFunctions);
        // Library->library calls must ascend in index so utility call
        // chains form a DAG and always terminate.
        if (self >= lib_first && idx <= self) {
            if (self + 1 >= handler_first)
                return 0;  // none available: no call
            idx = self + 1 + static_cast<std::uint32_t>(
                rng.below(handler_first - self - 1));
        }
        return idx;
    };
    auto pick_app_in_layer = [&](unsigned layer) {
        // App-relative indices congruent to `layer` mod `layers`.
        const std::uint32_t count =
            (p.appFunctions + layers - 1 - layer) / layers;
        std::uint64_t z = rng.zipf(count, p.zipfS);
        const std::uint32_t nth =
            static_cast<std::uint32_t>((z * perm_prime) % count);
        return app_first + layer + nth * layers;
    };

    for (std::uint32_t f = app_first; f < total_fns; ++f) {
        Function &fn = prog.functions[f];
        const bool is_app = f < lib_first;
        const unsigned layer = is_app ? (f - app_first) % layers : 0;
        const auto &sites = app_sites[f];
        for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
            BasicBlock &blk = fn.blocks[b];
            if (blk.term != BlockTerm::Call)
                continue;
            const bool is_app_site = is_app &&
                std::find(sites.begin(), sites.end(), b) != sites.end();
            std::uint32_t callee;
            if (is_app_site && layer + 1 < layers) {
                callee = pick_app_in_layer(layer + 1);
            } else {
                callee = pick_lib(f);
            }
            if (callee == 0) {
                // No legal callee (end of the library DAG): demote the
                // call to a plain fall-through.
                blk.term = BlockTerm::FallThrough;
            } else {
                blk.callee = callee;
            }
        }
    }

    // Transaction roots: layer-0 functions spread across the image,
    // weighted by a Zipf-like popularity so some types dominate.
    prog.transactionRoots.reserve(p.transactions);
    prog.transactionWeights.reserve(p.transactions);
    const std::uint32_t layer0_count =
        (p.appFunctions + layers - 1) / layers;
    for (unsigned t = 0; t < p.transactions; ++t) {
        const std::uint32_t nth = static_cast<std::uint32_t>(
            (static_cast<std::uint64_t>(t) * layer0_count) /
            p.transactions);
        prog.transactionRoots.push_back(app_first + nth * layers);
        prog.transactionWeights.push_back(
            1.0 / std::pow(static_cast<double>(t + 1), 0.9));
    }

    for (std::uint32_t h = handler_first; h < total_fns; ++h)
        prog.handlers.push_back(h);
    prog.dispatcher = 0;

    prog.validate();
    return prog;
}

} // namespace pifetch
