/**
 * @file
 * Static program representation for synthetic server workloads.
 *
 * A Program is a set of functions laid out in a flat instruction
 * address space, each function a list of basic blocks with explicit
 * terminators (fall-through, conditional branch, loop back-edge, call,
 * jump, return). The generator (generator.hh) builds Programs with the
 * statistical properties the paper attributes to commercial server
 * software; the executor (executor.hh) walks them to produce the
 * retire-order instruction stream.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace pifetch {

/** Terminator class of a basic block. */
enum class BlockTerm : std::uint8_t {
    FallThrough,  //!< continue to the next block
    CondBranch,   //!< forward conditional branch within the function
    LoopBranch,   //!< backward conditional branch within the function
    Call,         //!< call another function, then fall through
    Jump,         //!< unconditional jump within the function
    Return,       //!< return to the caller
};

/**
 * A basic block: a run of straight-line instructions plus a terminator.
 *
 * The terminator is the last instruction of the block. Intra-function
 * targets are expressed as block indices, resolved to addresses through
 * the owning function's layout.
 */
struct BasicBlock
{
    /** Byte address of the first instruction. */
    Addr start = 0;
    /** Number of instructions including the terminator. */
    std::uint32_t numInstrs = 1;
    /** Terminator class. */
    BlockTerm term = BlockTerm::FallThrough;
    /** Intra-function target block (CondBranch / LoopBranch / Jump). */
    std::uint32_t targetBlock = 0;
    /** Callee function index (Call). */
    std::uint32_t callee = 0;
    /**
     * Probability the terminator is taken (CondBranch / LoopBranch).
     * Data-dependent branches have probabilities near 0.5; biased
     * branches near 0 or 1. A LoopBranch with takenProb p yields a
     * geometric trip count with mean 1/(1-p).
     */
    double takenProb = 0.0;

    /** Byte address of the terminator (last) instruction. */
    Addr
    termPc() const
    {
        return start + static_cast<Addr>(numInstrs - 1) * instrBytes;
    }

    /** Byte address one past the last instruction. */
    Addr
    end() const
    {
        return start + static_cast<Addr>(numInstrs) * instrBytes;
    }
};

/**
 * A function: contiguous basic blocks in layout order.
 */
struct Function
{
    /** Entry address (== blocks.front().start). */
    Addr entry = 0;
    /** Basic blocks in address order. */
    std::vector<BasicBlock> blocks;
    /** True for interrupt-handler functions (executed at TL1). */
    bool isHandler = false;

    /** Total instructions in the function. */
    std::uint64_t
    totalInstrs() const
    {
        std::uint64_t n = 0;
        for (const auto &b : blocks)
            n += b.numInstrs;
        return n;
    }

    /** Byte address one past the end of the function body. */
    Addr
    end() const
    {
        return blocks.empty() ? entry : blocks.back().end();
    }
};

/**
 * A complete synthetic program.
 */
struct Program
{
    /** All functions, handler functions included. */
    std::vector<Function> functions;
    /** Indices of transaction root functions (dispatch targets). */
    std::vector<std::uint32_t> transactionRoots;
    /** Relative selection weights for the transaction roots. */
    std::vector<double> transactionWeights;
    /** Indices of interrupt handler functions. */
    std::vector<std::uint32_t> handlers;
    /**
     * Index of the transaction-dispatch loop function. Its single call
     * site's callee is chosen dynamically by the executor (an indirect
     * call through the transaction table).
     */
    std::uint32_t dispatcher = 0;
    /** One past the highest code byte address. */
    Addr codeEnd = 0;

    /** Static code footprint in bytes. */
    Addr footprintBytes() const { return codeEnd; }

    /** Static code footprint in 64B blocks (rounded up). */
    Addr
    footprintBlocks() const
    {
        return (codeEnd + blockBytes - 1) >> blockShift;
    }

    /**
     * Validate structural invariants (targets in range, addresses
     * monotone, entry == first block). Calls panic() on violation;
     * used by tests and the generator's self-check.
     */
    void validate() const;
};

} // namespace pifetch
