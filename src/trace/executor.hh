/**
 * @file
 * Program executor: produces the retire-order instruction stream.
 *
 * Walks a Program's control-flow graph, resolving data-dependent
 * branches and loop trip counts with a seeded Rng, injecting
 * spontaneous interrupts (trap level 1), and dispatching transactions
 * from the dispatcher loop. The emitted RetiredInstr sequence is the
 * correct-path, retire-order stream of Section 2: it is what PIF's
 * compactor observes, and what the front-end model perturbs to derive
 * the access and miss streams.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "trace/program.hh"
#include "trace/record.hh"

namespace pifetch {

/**
 * One phase of a phased (workload-spec driven) execution schedule.
 *
 * Phases partition the retire stream into instruction-budgeted windows
 * with their own transaction mix and interrupt load; the schedule
 * cycles forever, so a spec describes one period of the workload.
 */
struct ExecutorPhase
{
    /** Retired instructions spent in this phase per cycle. */
    InstCount instructions = 1'000'000;
    /**
     * Relative dispatch weight per program part (see
     * ExecutorConfig::rootSpanSizes). Empty means uniform across parts.
     */
    std::vector<double> programMix;
    /** Interrupt rate at the start of the phase. */
    double interruptRate = 0.0;
    /**
     * Interrupt rate at the end of the phase: the executor ramps
     * linearly between the two across the phase. Negative means
     * constant at @ref interruptRate.
     */
    double interruptRateEnd = -1.0;
};

/** Runtime knobs for the executor. */
struct ExecutorConfig
{
    /** Seed for branch outcomes, dispatch and interrupts. */
    std::uint64_t seed = 7;
    /** Per-instruction probability of a spontaneous interrupt at TL0. */
    double interruptRate = 0.0;
    /** Call depth at which further calls are elided. */
    unsigned maxCallDepth = 24;
    /**
     * Partition of the program's transaction roots into per-program
     * spans (linked multi-program workloads): span p covers the next
     * rootSpanSizes[p] roots. Empty means one span covering all roots.
     * Only consulted when @ref phases is non-empty.
     */
    std::vector<std::uint32_t> rootSpanSizes;
    /**
     * Phase schedule. Empty (the default) preserves the classic
     * single-mix behavior bit for bit; non-empty switches dispatch to
     * a two-level draw (phase mix over spans, then weights within the
     * span) and makes the interrupt rate phase-dependent.
     */
    std::vector<ExecutorPhase> phases;
};

/**
 * Streaming executor: one retired instruction per next() call.
 *
 * The stream is infinite (the dispatcher loops forever); callers run it
 * for as many instructions as their experiment needs.
 */
class Executor
{
  public:
    Executor(const Program &prog, const ExecutorConfig &cfg);

    /** Produce the next retired instruction. */
    RetiredInstr next();

    /**
     * Decode up to @p n instructions (bounded by @p out's capacity)
     * into the batch's columns, including the derived block column.
     *
     * Emits exactly the sequence repeated next() calls would — the
     * batched differential suite and the golden snapshots lock that —
     * but runs of plain instructions inside one basic block are
     * written with a tight columnar loop that hoists the block lookup
     * and skips the per-instruction interrupt/phase checks whenever
     * neither can fire (TL1, or a zero interrupt rate, and no pending
     * phase boundary).
     *
     * With @p lean set, the target and taken columns of those plain
     * runs are left unspecified (plain records carry no transfer, so
     * both are constants: invalidAddr and 0). Only callers that never
     * read the two columns for plain records may opt in — the
     * unobserved replay loop does (the front-end, the retire hooks and
     * the drain all key on pc/kind/trapLevel); anything that encodes
     * or digests whole records must decode full batches.
     */
    void nextBatch(RecordBatch &out, std::uint32_t n,
                   bool lean = false);

    /** Run @p n instructions through @p sink (sink(const RetiredInstr&)). */
    template <typename Sink>
    void
    run(InstCount n, Sink &&sink)
    {
        for (InstCount i = 0; i < n; ++i)
            sink(next());
    }

    /** Instructions emitted so far. */
    InstCount retired() const { return retired_; }

    /** Interrupts delivered so far. */
    std::uint64_t interrupts() const { return interrupts_; }

    /** Transactions dispatched so far. */
    std::uint64_t transactions() const { return transactions_; }

    /** Current trap level (tests). */
    TrapLevel trapLevel() const { return tl_; }

  private:
    /** A point in the program: function / block / instruction offset. */
    struct Pos
    {
        std::uint32_t fn = 0;
        std::uint32_t blk = 0;
        std::uint32_t instr = 0;
    };

    /** Byte address of the instruction at @p pos. */
    Addr
    addrOf(const Pos &pos) const
    {
        const BasicBlock &b = prog_.functions[pos.fn].blocks[pos.blk];
        return b.start + static_cast<Addr>(pos.instr) * instrBytes;
    }

    /** Choose the next transaction root (weighted). */
    std::uint32_t pickRoot();

    /** Choose an interrupt handler (skewed toward a few hot handlers). */
    std::uint32_t pickHandler();

    /** Emit the terminator instruction of the current block. */
    RetiredInstr emitTerminator(const BasicBlock &blk);

    /** Precompute the flattened phase/ramp schedule (phased mode). */
    void buildSchedule();

    /** Step to the next schedule segment (wraps forever). */
    void advanceSegment();

    const Program &prog_;
    ExecutorConfig cfg_;
    Rng rng_;

    Pos cur_;
    std::vector<Pos> stack_;

    TrapLevel tl_ = 0;
    Pos savedCur_;            //!< interrupted position (valid at TL1)
    std::size_t trapStackBase_ = 0;

    std::vector<double> rootCdf_;  //!< cumulative transaction weights

    /**
     * Phased-mode state. A Segment is one constant-rate slice of a
     * phase (ramped phases are split into several); the schedule is
     * the concatenation of every phase's segments, cycled forever.
     * When unphased, phaseTick_ stays at its never-reached sentinel
     * and curIr_ mirrors cfg_.interruptRate, so the hot path pays one
     * predictable compare per instruction.
     */
    struct Segment
    {
        InstCount len = 0;          //!< instructions in this segment
        double interruptRate = 0.0;
        std::uint32_t phase = 0;    //!< owning phase index
    };
    bool phased_ = false;
    std::vector<std::uint32_t> spanStart_;      //!< first root of span p
    std::vector<std::vector<double>> spanCdf_;  //!< per-span root CDF
    std::vector<std::vector<double>> phaseProgCdf_;  //!< per-phase span CDF
    std::vector<Segment> schedule_;
    std::size_t segIdx_ = 0;
    InstCount phaseTick_ = ~InstCount{0};  //!< retired_ bound of segment
    double curIr_ = 0.0;                   //!< active interrupt rate

    InstCount retired_ = 0;
    std::uint64_t interrupts_ = 0;
    std::uint64_t transactions_ = 0;
};

} // namespace pifetch
