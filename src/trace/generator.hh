/**
 * @file
 * Synthetic server-workload generator.
 *
 * Builds Programs with the statistical properties the paper attributes
 * to commercial server software (Sections 1-3): multi-megabyte
 * instruction footprints spread over thousands of multi-block
 * functions, a hot transaction-dispatch loop, skewed (Zipf) function
 * popularity, shared-library calls that jump across the binary,
 * never-taken error-handling gaps inside functions, tight loops whose
 * bodies span a few cache blocks, data-dependent conditional branches,
 * and a set of compact interrupt-handler routines executed at trap
 * level 1.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "trace/program.hh"

namespace pifetch {

/**
 * Tunable knobs for workload synthesis.
 *
 * The six server presets (server_suite.hh) are instances of this
 * struct; every distribution drawn during generation is seeded from
 * @ref seed, so a given parameter set always yields the same Program.
 */
struct WorkloadParams
{
    /** Human-readable workload name ("OLTP DB2", ...). */
    std::string name = "generic";
    /** Master seed for program construction. */
    std::uint64_t seed = 1;

    /** Number of application functions. */
    unsigned appFunctions = 2000;
    /** Number of shared-library functions (hot, called from anywhere). */
    unsigned libFunctions = 200;
    /** Number of distinct interrupt-handler routines. */
    unsigned handlers = 12;

    /** Mean function size in 64B cache blocks. */
    double meanFnBlocks = 6.0;
    /** Hard cap on function size in blocks. */
    unsigned maxFnBlocks = 32;
    /** Mean handler size in blocks (handlers are compact). */
    double meanHandlerBlocks = 3.0;
    /** Mean basic-block length in instructions. */
    double meanBasicBlockInstrs = 6.0;

    /** Probability a basic block ends in a library-helper call. */
    double callDensity = 0.10;
    /**
     * Mean number of next-layer (application) call sites per
     * application function — the call-tree branching factor knob.
     * With biased branches occasionally skipping call blocks, the
     * executed branching factor is roughly 0.85x this value; values
     * near 1.8-2.2 yield transactions of tens of thousands of
     * instructions over ten layers.
     */
    double meanAppCalls = 1.9;
    /** Probability a basic block ends in a forward conditional branch. */
    double condDensity = 0.25;
    /** Probability a basic block ends in an unconditional jump. */
    double jumpDensity = 0.03;
    /**
     * Fraction of conditional branches that are strongly biased
     * (taken probability near 0 or 1); the remainder are data-dependent
     * with taken probability drawn from [dataDepLo, dataDepHi].
     */
    double biasedFraction = 0.85;
    double dataDepLo = 0.25;
    double dataDepHi = 0.75;

    /** Expected number of tight loops per function. */
    double loopsPerFunction = 0.6;
    /** Mean loop trip count (geometric). */
    double meanLoopIter = 8.0;

    /** Zipf exponent for callee popularity skew. */
    double zipfS = 0.75;
    /**
     * Application call-graph depth. Functions are assigned to layers;
     * call sites in layer l target layer l+1 (bottom-layer sites call
     * library code). This mirrors server request processing (dispatch
     * -> protocol -> business logic -> storage -> utility) and
     * guarantees acyclic, structurally repetitive transaction trees
     * whose instruction footprint scales with the branching factor.
     */
    unsigned callLayers = 10;

    /** Number of transaction types (dispatch targets). */
    unsigned transactions = 8;
    /** Per-instruction probability of a spontaneous interrupt. */
    double interruptRate = 2e-5;
    /** Call depth at which further calls are elided. */
    unsigned maxCallDepth = 24;
};

/**
 * Validate a WorkloadParams point against the generator's parameter
 * space: every probability in [0, 1], every mean/exponent finite and
 * inside the range the synthesis algorithms are defined over, and the
 * structural minima build() has always enforced (enough application
 * functions for the transaction mix, at least one handler, at least
 * two library functions).
 *
 * This is the single source of truth for "is this point simulable":
 * build() fails fast on the first violation, and the scenario fuzzer
 * (src/check/) only emits points this function accepts.
 *
 * @return nullopt when valid; otherwise a human-readable description
 *         of the first violated bound.
 */
std::optional<std::string>
validateWorkloadParams(const WorkloadParams &params);

/**
 * Builds a Program from WorkloadParams. Stateless; all randomness comes
 * from the params' seed.
 */
class WorkloadGenerator
{
  public:
    /** Generate and validate a program. */
    static Program build(const WorkloadParams &params);
};

} // namespace pifetch
