/**
 * @file
 * Retire-order instruction records.
 *
 * The executor produces the correct-path, retire-order instruction
 * stream as a sequence of RetiredInstr records. This is exactly the
 * stream PIF observes at the back-end (Section 4.1); the front-end
 * model *derives* the access and miss streams from it by re-introducing
 * branch-predictor noise and I-cache filtering (Section 2).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace pifetch {

/** Control-flow class of an instruction. */
enum class InstrKind : std::uint8_t {
    Plain,       //!< falls through to pc + 4
    CondBranch,  //!< conditional direct branch
    Jump,        //!< unconditional direct jump
    Call,        //!< direct call; target is the callee entry
    Return,      //!< return; target is the caller's resume point
    TrapEnter,   //!< asynchronous redirect into an interrupt handler
    TrapReturn,  //!< return from an interrupt handler
};

/**
 * One retired (architecturally committed) instruction.
 */
struct RetiredInstr
{
    /** Program counter of this instruction. */
    Addr pc = 0;
    /**
     * Control-flow target: taken target for branches, callee entry for
     * calls, resume address for returns and trap returns, handler entry
     * for trap entries. invalidAddr for plain instructions.
     */
    Addr target = invalidAddr;
    /** Control-flow class. */
    InstrKind kind = InstrKind::Plain;
    /** Trap level at which the instruction retired (0 = application). */
    TrapLevel trapLevel = 0;
    /** Actual direction for CondBranch; true for other transfers. */
    bool taken = false;

    /** Architectural next PC after this instruction. */
    Addr
    nextPc() const
    {
        switch (kind) {
          case InstrKind::Plain:
            return pc + instrBytes;
          case InstrKind::CondBranch:
            return taken ? target : pc + instrBytes;
          case InstrKind::Jump:
          case InstrKind::Call:
          case InstrKind::Return:
          case InstrKind::TrapEnter:
          case InstrKind::TrapReturn:
            return target;
        }
        return pc + instrBytes;
    }

    /** True for any instruction that can redirect fetch. */
    bool
    isControl() const
    {
        return kind != InstrKind::Plain;
    }

    /** True for asynchronous (unpredictable) control transfers. */
    bool
    isTrap() const
    {
        return kind == InstrKind::TrapEnter ||
               kind == InstrKind::TrapReturn;
    }
};

/**
 * Default replay batch length: long enough to amortize the batch
 * bookkeeping and keep each stage's code and data hot, short enough
 * that one batch's columns (~27 KiB at 1024 records) stay L1-resident
 * (docs/performance.md discusses the trade-off).
 */
constexpr std::uint32_t recordBatchLen = 1024;

/**
 * A structure-of-arrays batch of retired-instruction records.
 *
 * The replay hot path decodes instructions a batch at a time into
 * parallel per-field columns (the Perfetto trace_processor layout)
 * instead of materializing an array of RetiredInstr structs: each
 * pipeline stage then streams through only the columns it touches,
 * and uniform per-column loops (block derivation, field decode)
 * vectorize. Capacity is managed explicitly — reserve() sizes every
 * column once, and push() writes by index — so filling a batch does
 * no per-record capacity checks and no steady-state allocation.
 */
struct RecordBatch
{
    std::vector<Addr> pc;
    std::vector<Addr> target;
    std::vector<std::uint8_t> kind;       //!< InstrKind
    std::vector<std::uint8_t> trapLevel;
    std::vector<std::uint8_t> taken;
    /** Block address of each pc; maintained by push() and the
     * executor's columnar fill (or derivable via computeBlocks()). */
    std::vector<Addr> block;
    /**
     * 1 when the record continues its predecessor's same-block plain
     * run: kind Plain, unchanged trap level, unchanged fetch block
     * (always 0 at index 0). Maintained alongside block; the batched
     * replay loop reads this single byte per record to size its
     * bulk no-op runs instead of re-comparing three columns.
     */
    std::vector<std::uint8_t> plainCont;
    /** Records held (the columns are sized to capacity, not size). */
    std::uint32_t size = 0;

    /** Column capacity (records a full batch can hold). */
    std::uint32_t
    capacity() const
    {
        return static_cast<std::uint32_t>(pc.size());
    }

    /** Grow every column to hold @p cap records (never shrinks). */
    void
    reserve(std::uint32_t cap)
    {
        if (cap <= capacity())
            return;
        pc.resize(cap);
        target.resize(cap);
        kind.resize(cap);
        trapLevel.resize(cap);
        taken.resize(cap);
        block.resize(cap);
        plainCont.resize(cap);
    }

    /** Drop all records (capacity is retained). */
    void clear() { size = 0; }

    /** Append @p r, deriving its block/plainCont entries in place;
     * the caller guarantees size < capacity(). */
    void
    push(const RetiredInstr &r)
    {
        pc[size] = r.pc;
        target[size] = r.target;
        kind[size] = static_cast<std::uint8_t>(r.kind);
        trapLevel[size] = r.trapLevel;
        taken[size] = r.taken ? 1 : 0;
        const Addr b = blockAddr(r.pc);
        block[size] = b;
        plainCont[size] = static_cast<std::uint8_t>(
            size > 0 && r.kind == InstrKind::Plain &&
            trapLevel[size - 1] == r.trapLevel &&
            block[size - 1] == b);
        ++size;
    }

    /** Materialize record @p i as a struct (register-resident copy). */
    RetiredInstr
    get(std::uint32_t i) const
    {
        RetiredInstr r;
        r.pc = pc[i];
        r.target = target[i];
        r.kind = static_cast<InstrKind>(kind[i]);
        r.trapLevel = trapLevel[i];
        r.taken = taken[i] != 0;
        return r;
    }

    /** Derive the block and plainCont columns from the record columns
     * (two vectorizable passes, no branches). Callers that append via
     * push() — or the executor's columnar fill, which derives both
     * in place — need not call this; it exists for readers that fill
     * the raw columns directly. */
    void
    computeBlocks()
    {
        for (std::uint32_t i = 0; i < size; ++i)
            block[i] = blockAddr(pc[i]);
        if (size > 0)
            plainCont[0] = 0;
        for (std::uint32_t i = 1; i < size; ++i) {
            plainCont[i] = static_cast<std::uint8_t>(
                kind[i] == static_cast<std::uint8_t>(InstrKind::Plain) &&
                trapLevel[i] == trapLevel[i - 1] &&
                block[i] == block[i - 1]);
        }
    }
};

} // namespace pifetch
