/**
 * @file
 * Retire-order instruction records.
 *
 * The executor produces the correct-path, retire-order instruction
 * stream as a sequence of RetiredInstr records. This is exactly the
 * stream PIF observes at the back-end (Section 4.1); the front-end
 * model *derives* the access and miss streams from it by re-introducing
 * branch-predictor noise and I-cache filtering (Section 2).
 */

#pragma once

#include <cstdint>

#include "common/types.hh"

namespace pifetch {

/** Control-flow class of an instruction. */
enum class InstrKind : std::uint8_t {
    Plain,       //!< falls through to pc + 4
    CondBranch,  //!< conditional direct branch
    Jump,        //!< unconditional direct jump
    Call,        //!< direct call; target is the callee entry
    Return,      //!< return; target is the caller's resume point
    TrapEnter,   //!< asynchronous redirect into an interrupt handler
    TrapReturn,  //!< return from an interrupt handler
};

/**
 * One retired (architecturally committed) instruction.
 */
struct RetiredInstr
{
    /** Program counter of this instruction. */
    Addr pc = 0;
    /**
     * Control-flow target: taken target for branches, callee entry for
     * calls, resume address for returns and trap returns, handler entry
     * for trap entries. invalidAddr for plain instructions.
     */
    Addr target = invalidAddr;
    /** Control-flow class. */
    InstrKind kind = InstrKind::Plain;
    /** Trap level at which the instruction retired (0 = application). */
    TrapLevel trapLevel = 0;
    /** Actual direction for CondBranch; true for other transfers. */
    bool taken = false;

    /** Architectural next PC after this instruction. */
    Addr
    nextPc() const
    {
        switch (kind) {
          case InstrKind::Plain:
            return pc + instrBytes;
          case InstrKind::CondBranch:
            return taken ? target : pc + instrBytes;
          case InstrKind::Jump:
          case InstrKind::Call:
          case InstrKind::Return:
          case InstrKind::TrapEnter:
          case InstrKind::TrapReturn:
            return target;
        }
        return pc + instrBytes;
    }

    /** True for any instruction that can redirect fetch. */
    bool
    isControl() const
    {
        return kind != InstrKind::Plain;
    }

    /** True for asynchronous (unpredictable) control transfers. */
    bool
    isTrap() const
    {
        return kind == InstrKind::TrapEnter ||
               kind == InstrKind::TrapReturn;
    }
};

} // namespace pifetch
