/**
 * @file
 * Executor implementation.
 */

#include "trace/executor.hh"

#include <algorithm>

namespace pifetch {

Executor::Executor(const Program &prog, const ExecutorConfig &cfg)
    : prog_(prog), cfg_(cfg), rng_(cfg.seed)
{
    cur_ = Pos{prog_.dispatcher, 0, 0};

    double sum = 0.0;
    rootCdf_.reserve(prog_.transactionWeights.size());
    for (double w : prog_.transactionWeights) {
        sum += w;
        rootCdf_.push_back(sum);
    }
    for (double &c : rootCdf_)
        c /= sum;
}

std::uint32_t
Executor::pickRoot()
{
    const double u = rng_.uniform();
    const auto it = std::lower_bound(rootCdf_.begin(), rootCdf_.end(), u);
    const std::size_t idx = static_cast<std::size_t>(
        std::min<std::ptrdiff_t>(it - rootCdf_.begin(),
                                 static_cast<std::ptrdiff_t>(
                                     rootCdf_.size() - 1)));
    return prog_.transactionRoots[idx];
}

std::uint32_t
Executor::pickHandler()
{
    // A couple of handlers (timer, NIC) dominate; the rest are rare.
    const std::uint64_t z = rng_.zipf(prog_.handlers.size(), 1.2);
    return prog_.handlers[z];
}

RetiredInstr
Executor::emitTerminator(const BasicBlock &blk)
{
    const Function &fn = prog_.functions[cur_.fn];
    RetiredInstr r;
    r.pc = blk.termPc();
    r.trapLevel = tl_;

    switch (blk.term) {
      case BlockTerm::FallThrough:
        r.kind = InstrKind::Plain;
        cur_.blk += 1;
        cur_.instr = 0;
        break;

      case BlockTerm::CondBranch:
      case BlockTerm::LoopBranch: {
        r.kind = InstrKind::CondBranch;
        r.target = fn.blocks[blk.targetBlock].start;
        r.taken = rng_.chance(blk.takenProb);
        if (r.taken) {
            cur_.blk = blk.targetBlock;
        } else {
            cur_.blk += 1;
        }
        cur_.instr = 0;
        break;
      }

      case BlockTerm::Jump:
        r.kind = InstrKind::Jump;
        r.target = fn.blocks[blk.targetBlock].start;
        r.taken = true;
        cur_.blk = blk.targetBlock;
        cur_.instr = 0;
        break;

      case BlockTerm::Call: {
        std::uint32_t callee = blk.callee;
        if (cur_.fn == prog_.dispatcher) {
            callee = pickRoot();
            ++transactions_;
        }
        if (stack_.size() >= cfg_.maxCallDepth) {
            // Depth cap: elide the call (treat as a plain instruction).
            r.kind = InstrKind::Plain;
            cur_.blk += 1;
            cur_.instr = 0;
            break;
        }
        r.kind = InstrKind::Call;
        r.target = prog_.functions[callee].entry;
        r.taken = true;
        stack_.push_back(Pos{cur_.fn, cur_.blk + 1, 0});
        cur_ = Pos{callee, 0, 0};
        break;
      }

      case BlockTerm::Return: {
        if (tl_ > 0 && stack_.size() == trapStackBase_) {
            // Top-level return of an interrupt handler: resume the
            // interrupted application instruction.
            r.kind = InstrKind::TrapReturn;
            r.target = addrOf(savedCur_);
            r.taken = true;
            cur_ = savedCur_;
            tl_ = 0;
            break;
        }
        if (stack_.empty()) {
            // Should not happen (the dispatcher never returns), but
            // recover by restarting the dispatch loop.
            r.kind = InstrKind::Return;
            r.target = prog_.functions[prog_.dispatcher].entry;
            r.taken = true;
            cur_ = Pos{prog_.dispatcher, 0, 0};
            break;
        }
        const Pos ret = stack_.back();
        stack_.pop_back();
        r.kind = InstrKind::Return;
        r.target = addrOf(ret);
        r.taken = true;
        cur_ = ret;
        break;
      }
    }
    return r;
}

RetiredInstr
Executor::next()
{
    // Spontaneous interrupt delivery: only at TL0, between instructions.
    if (tl_ == 0 && cfg_.interruptRate > 0.0 &&
        rng_.chance(cfg_.interruptRate)) {
        ++interrupts_;
        savedCur_ = cur_;
        trapStackBase_ = stack_.size();
        tl_ = 1;
        cur_ = Pos{pickHandler(), 0, 0};
    }

    const BasicBlock &blk = prog_.functions[cur_.fn].blocks[cur_.blk];

    RetiredInstr r;
    if (cur_.instr + 1 < blk.numInstrs) {
        r.pc = blk.start + static_cast<Addr>(cur_.instr) * instrBytes;
        r.kind = InstrKind::Plain;
        r.trapLevel = tl_;
        cur_.instr += 1;
    } else {
        r = emitTerminator(blk);
    }

    ++retired_;
    return r;
}

} // namespace pifetch
