/**
 * @file
 * Executor implementation.
 */

#include "trace/executor.hh"

#include <algorithm>

namespace pifetch {

namespace {

/** Index of the first CDF entry >= u, clamped into range. */
std::size_t
cdfPick(const std::vector<double> &cdf, double u)
{
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    return static_cast<std::size_t>(
        std::min<std::ptrdiff_t>(it - cdf.begin(),
                                 static_cast<std::ptrdiff_t>(
                                     cdf.size() - 1)));
}

/** Normalize weights into a cumulative distribution. */
std::vector<double>
makeCdf(const double *w, std::size_t n)
{
    std::vector<double> cdf;
    cdf.reserve(n);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        sum += w[i];
        cdf.push_back(sum);
    }
    if (sum <= 0.0)
        panic("executor: non-positive weight sum");
    for (double &c : cdf)
        c /= sum;
    return cdf;
}

} // namespace

Executor::Executor(const Program &prog, const ExecutorConfig &cfg)
    : prog_(prog), cfg_(cfg), rng_(cfg.seed)
{
    cur_ = Pos{prog_.dispatcher, 0, 0};
    curIr_ = cfg_.interruptRate;

    rootCdf_ = makeCdf(prog_.transactionWeights.data(),
                       prog_.transactionWeights.size());

    if (!cfg_.phases.empty())
        buildSchedule();
}

void
Executor::buildSchedule()
{
    // Spans: one per program part of a linked multi-program workload.
    std::vector<std::uint32_t> spans = cfg_.rootSpanSizes;
    if (spans.empty())
        spans.push_back(static_cast<std::uint32_t>(
            prog_.transactionRoots.size()));
    std::uint64_t covered = 0;
    for (std::uint32_t n : spans)
        covered += n;
    if (covered != prog_.transactionRoots.size())
        panic("executor: rootSpanSizes do not cover transaction roots");

    std::uint32_t base = 0;
    for (std::uint32_t n : spans) {
        if (n == 0)
            panic("executor: empty root span");
        spanStart_.push_back(base);
        spanCdf_.push_back(
            makeCdf(prog_.transactionWeights.data() + base, n));
        base += n;
    }

    for (const ExecutorPhase &ph : cfg_.phases) {
        if (ph.instructions == 0)
            panic("executor: phase with zero instructions");
        std::vector<double> mix = ph.programMix;
        if (mix.empty())
            mix.assign(spans.size(), 1.0);
        if (mix.size() != spans.size())
            panic("executor: phase mix size != program parts");
        phaseProgCdf_.push_back(makeCdf(mix.data(), mix.size()));

        // Ramped phases approximate the linear interrupt-rate sweep
        // with a few constant-rate segments; constant phases are one
        // segment. Segment length stays >= 1 instruction.
        const bool ramp = ph.interruptRateEnd >= 0.0 &&
                          ph.interruptRateEnd != ph.interruptRate;
        const InstCount nseg =
            ramp ? std::min<InstCount>(8, ph.instructions) : 1;
        const std::uint32_t phase_idx =
            static_cast<std::uint32_t>(phaseProgCdf_.size() - 1);
        for (InstCount k = 0; k < nseg; ++k) {
            Segment seg;
            seg.len = ph.instructions / nseg +
                      (k + 1 == nseg ? ph.instructions % nseg : 0);
            seg.interruptRate =
                nseg == 1 ? ph.interruptRate
                          : ph.interruptRate +
                                (ph.interruptRateEnd - ph.interruptRate) *
                                    static_cast<double>(k) /
                                    static_cast<double>(nseg - 1);
            seg.phase = phase_idx;
            schedule_.push_back(seg);
        }
    }

    phased_ = true;
    segIdx_ = 0;
    curIr_ = schedule_[0].interruptRate;
    phaseTick_ = schedule_[0].len;
}

void
Executor::advanceSegment()
{
    segIdx_ = (segIdx_ + 1) % schedule_.size();
    const Segment &seg = schedule_[segIdx_];
    curIr_ = seg.interruptRate;
    phaseTick_ += seg.len;
}

std::uint32_t
Executor::pickRoot()
{
    if (!phased_)
        return prog_.transactionRoots[cdfPick(rootCdf_, rng_.uniform())];

    // Two-level draw: phase mix selects the program part, then the
    // part's own transaction weights select the root within its span.
    const std::vector<double> &mix =
        phaseProgCdf_[schedule_[segIdx_].phase];
    const std::size_t part = cdfPick(mix, rng_.uniform());
    const std::size_t idx = cdfPick(spanCdf_[part], rng_.uniform());
    return prog_.transactionRoots[spanStart_[part] + idx];
}

std::uint32_t
Executor::pickHandler()
{
    // A couple of handlers (timer, NIC) dominate; the rest are rare.
    const std::uint64_t z = rng_.zipf(prog_.handlers.size(), 1.2);
    return prog_.handlers[z];
}

RetiredInstr
Executor::emitTerminator(const BasicBlock &blk)
{
    const Function &fn = prog_.functions[cur_.fn];
    RetiredInstr r;
    r.pc = blk.termPc();
    r.trapLevel = tl_;

    switch (blk.term) {
      case BlockTerm::FallThrough:
        r.kind = InstrKind::Plain;
        cur_.blk += 1;
        cur_.instr = 0;
        break;

      case BlockTerm::CondBranch:
      case BlockTerm::LoopBranch: {
        r.kind = InstrKind::CondBranch;
        r.target = fn.blocks[blk.targetBlock].start;
        r.taken = rng_.chance(blk.takenProb);
        if (r.taken) {
            cur_.blk = blk.targetBlock;
        } else {
            cur_.blk += 1;
        }
        cur_.instr = 0;
        break;
      }

      case BlockTerm::Jump:
        r.kind = InstrKind::Jump;
        r.target = fn.blocks[blk.targetBlock].start;
        r.taken = true;
        cur_.blk = blk.targetBlock;
        cur_.instr = 0;
        break;

      case BlockTerm::Call: {
        std::uint32_t callee = blk.callee;
        if (cur_.fn == prog_.dispatcher) {
            callee = pickRoot();
            ++transactions_;
        }
        if (stack_.size() >= cfg_.maxCallDepth) {
            // Depth cap: elide the call (treat as a plain instruction).
            r.kind = InstrKind::Plain;
            cur_.blk += 1;
            cur_.instr = 0;
            break;
        }
        r.kind = InstrKind::Call;
        r.target = prog_.functions[callee].entry;
        r.taken = true;
        stack_.push_back(Pos{cur_.fn, cur_.blk + 1, 0});
        cur_ = Pos{callee, 0, 0};
        break;
      }

      case BlockTerm::Return: {
        if (tl_ > 0 && stack_.size() == trapStackBase_) {
            // Top-level return of an interrupt handler: resume the
            // interrupted application instruction.
            r.kind = InstrKind::TrapReturn;
            r.target = addrOf(savedCur_);
            r.taken = true;
            cur_ = savedCur_;
            tl_ = 0;
            break;
        }
        if (stack_.empty()) {
            // Should not happen (the dispatcher never returns), but
            // recover by restarting the dispatch loop.
            r.kind = InstrKind::Return;
            r.target = prog_.functions[prog_.dispatcher].entry;
            r.taken = true;
            cur_ = Pos{prog_.dispatcher, 0, 0};
            break;
        }
        const Pos ret = stack_.back();
        stack_.pop_back();
        r.kind = InstrKind::Return;
        r.target = addrOf(ret);
        r.taken = true;
        cur_ = ret;
        break;
      }
    }
    return r;
}

RetiredInstr
Executor::next()
{
    // Phase schedule: one predictable compare per instruction; the
    // sentinel phaseTick_ keeps unphased runs from ever taking it.
    if (retired_ >= phaseTick_)
        advanceSegment();

    // Spontaneous interrupt delivery: only at TL0, between instructions.
    if (tl_ == 0 && curIr_ > 0.0 && rng_.chance(curIr_)) {
        ++interrupts_;
        savedCur_ = cur_;
        trapStackBase_ = stack_.size();
        tl_ = 1;
        cur_ = Pos{pickHandler(), 0, 0};
    }

    const BasicBlock &blk = prog_.functions[cur_.fn].blocks[cur_.blk];

    RetiredInstr r;
    if (cur_.instr + 1 < blk.numInstrs) {
        r.pc = blk.start + static_cast<Addr>(cur_.instr) * instrBytes;
        r.kind = InstrKind::Plain;
        r.trapLevel = tl_;
        cur_.instr += 1;
    } else {
        r = emitTerminator(blk);
    }

    ++retired_;
    return r;
}

void
Executor::nextBatch(RecordBatch &out, std::uint32_t n, bool lean)
{
    out.clear();
    const std::uint32_t m = std::min(n, out.capacity());
    std::uint32_t i = 0;
    while (i < m) {
        // Columnar fast path: the next instructions are plain (not the
        // block terminator) and no asynchronous event can interleave —
        // interrupts only fire at TL0 with a positive rate, and the
        // phase schedule only at its precomputed boundary. Each such
        // run is a pure arithmetic fill of the columns.
        if ((tl_ != 0 || curIr_ <= 0.0) && retired_ < phaseTick_) {
            const BasicBlock &blk =
                prog_.functions[cur_.fn].blocks[cur_.blk];
            std::uint64_t run = cur_.instr + 1 < blk.numInstrs
                ? blk.numInstrs - 1 - cur_.instr
                : 0;
            run = std::min<std::uint64_t>(run, m - i);
            run = std::min<std::uint64_t>(run, phaseTick_ - retired_);
            if (run > 0) {
                const Addr pc0 = blk.start +
                          static_cast<Addr>(cur_.instr) * instrBytes;
                const std::uint32_t end =
                    i + static_cast<std::uint32_t>(run);
                // One pass per column: the PC ramp vectorizes and the
                // constant byte columns become memsets, instead of one
                // scalar mixed-width store group per instruction. The
                // derived columns are filled here too (rather than by a
                // trailing computeBlocks() re-read of the whole batch):
                // the run is Plain at a constant trap level, so
                // plainCont reduces to block equality, with the run's
                // first record compared against its already-decoded
                // predecessor.
                for (std::uint32_t k = i; k < end; ++k)
                    out.pc[k] = pc0 +
                        static_cast<Addr>(k - i) * instrBytes;
                for (std::uint32_t k = i; k < end; ++k)
                    out.block[k] = blockAddr(out.pc[k]);
                out.plainCont[i] = static_cast<std::uint8_t>(
                    i > 0 && out.trapLevel[i - 1] == tl_ &&
                    out.block[i - 1] == out.block[i]);
                for (std::uint32_t k = i + 1; k < end; ++k)
                    out.plainCont[k] = static_cast<std::uint8_t>(
                        out.block[k] == out.block[k - 1]);
                if (!lean) {
                    std::fill(out.target.begin() + i,
                              out.target.begin() + end, invalidAddr);
                    std::fill(out.taken.begin() + i,
                              out.taken.begin() + end, std::uint8_t{0});
                }
                std::fill(out.kind.begin() + i, out.kind.begin() + end,
                          static_cast<std::uint8_t>(InstrKind::Plain));
                std::fill(out.trapLevel.begin() + i,
                          out.trapLevel.begin() + end, tl_);
                cur_.instr += static_cast<std::uint32_t>(run);
                retired_ += run;
                i = end;
                continue;
            }
        }
        out.size = i;
        out.push(next());
        ++i;
    }
    out.size = m;
}

} // namespace pifetch
