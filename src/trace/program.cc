/**
 * @file
 * Program structural validation.
 */

#include "trace/program.hh"

#include <string>

namespace pifetch {

void
Program::validate() const
{
    if (functions.empty())
        panic("program has no functions");
    if (transactionRoots.empty())
        panic("program has no transaction roots");
    if (transactionRoots.size() != transactionWeights.size())
        panic("transaction roots/weights size mismatch");

    for (std::size_t f = 0; f < functions.size(); ++f) {
        const Function &fn = functions[f];
        if (fn.blocks.empty())
            panic("function " + std::to_string(f) + " has no blocks");
        if (fn.entry != fn.blocks.front().start)
            panic("function entry != first block start");
        Addr expect = fn.entry;
        for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
            const BasicBlock &blk = fn.blocks[b];
            if (blk.start != expect)
                panic("non-contiguous blocks in function " +
                      std::to_string(f));
            if (blk.numInstrs == 0)
                panic("empty basic block");
            expect = blk.end();

            switch (blk.term) {
              case BlockTerm::CondBranch:
              case BlockTerm::Jump:
                if (blk.targetBlock >= fn.blocks.size())
                    panic("branch target out of range");
                if (blk.term == BlockTerm::CondBranch &&
                    blk.targetBlock <= b) {
                    panic("CondBranch must target forward; use "
                          "LoopBranch for back edges");
                }
                break;
              case BlockTerm::LoopBranch:
                if (blk.targetBlock > b)
                    panic("LoopBranch must target backward");
                break;
              case BlockTerm::Call:
                if (blk.callee >= functions.size())
                    panic("callee out of range");
                if (b + 1 >= fn.blocks.size())
                    panic("call in last block would fall through off "
                          "the function on return");
                break;
              case BlockTerm::FallThrough:
                if (b + 1 >= fn.blocks.size())
                    panic("fall-through off the end of function " +
                          std::to_string(f));
                break;
              case BlockTerm::Return:
                break;
            }
        }
        // The last block may not fall through off the end of the
        // function: CondBranch/LoopBranch fall through when not taken,
        // and Call falls through after the callee returns.
        const BlockTerm last = fn.blocks.back().term;
        if (last != BlockTerm::Return && last != BlockTerm::Jump)
            panic("function " + std::to_string(f) +
                  " does not end in return/jump");
        if (fn.end() > codeEnd)
            panic("function extends past codeEnd");
    }

    for (auto r : transactionRoots) {
        if (r >= functions.size())
            panic("transaction root out of range");
    }
    for (auto h : handlers) {
        if (h >= functions.size())
            panic("handler out of range");
        if (!functions[h].isHandler)
            panic("handler index names a non-handler function");
    }
}

} // namespace pifetch
