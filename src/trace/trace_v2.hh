/**
 * @file
 * Trace container format v2: delta/varint compressed, chunk indexed.
 *
 * v1 (trace_io.hh) spends a fixed 24 bytes per record, which caps the
 * corpus the ROADMAP's billion-instruction replays can afford to keep
 * on disk. v2 stores the same RetiredInstr stream in self-contained
 * chunks of up to traceV2ChunkRecords records, each encoded
 * columnarly:
 *
 *   flags     one byte per record: kind (bits 0-2), taken (bit 3),
 *             has-target (bit 4; target != invalidAddr)
 *   trap RLE  (level byte, varint run length) pairs covering the chunk
 *   pc        zigzag varint deltas from the previous pc (0 at the
 *             chunk start, so chunks decode independently)
 *   target    zigzag varint delta from the record's own pc, only for
 *             records whose has-target flag is set
 *
 * Every chunk carries an FNV-1a digest folded over its decoded
 * records with exactly the digestRetire() word encoding the
 * cross-engine oracles use, so a flipped bit in a compressed block is
 * caught at decode time, not as a silently different replay. A
 * trailing chunk index (offset, first record, count, payload bytes,
 * digest per chunk, plus an index digest) lets readers seek straight
 * to any chunk; the header records the index offset.
 *
 * Readers hand records out one chunk at a time as structure-of-arrays
 * RecordBatch columns — the engines' batched replay input — so a v2
 * corpus never materializes the old AoS form. Failures carry distinct,
 * actionable messages (error()); docs/trace_format.md specifies the
 * wire layout byte for byte.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "trace/record.hh"
#include "trace/trace_io.hh"

namespace pifetch {

/** Trace format version written by TraceV2Writer. */
constexpr std::uint32_t traceVersion2 = 2;

/** Records per v2 chunk (the v1 chunking granularity, kept equal so
 *  pack/unpack stream chunk for chunk). */
constexpr std::uint32_t traceV2ChunkRecords = 32 * 1024;

/** One entry of the trailing chunk index. */
struct TraceV2ChunkInfo
{
    std::uint64_t offset = 0;       //!< chunk header's file offset
    std::uint64_t firstRecord = 0;  //!< stream index of its record 0
    std::uint32_t records = 0;      //!< records in the chunk
    std::uint32_t payloadBytes = 0; //!< encoded payload size
    std::uint64_t digest = 0;       //!< FNV-1a over the records
};

/** Parsed header + index of a v2 file (no payloads decoded). */
struct TraceV2Info
{
    std::uint64_t count = 0;      //!< total records
    std::uint64_t fileBytes = 0;  //!< on-disk size
    std::uint64_t indexOffset = 0;
    std::vector<TraceV2ChunkInfo> chunks;
};

/**
 * Streaming v2 writer.
 *
 * Records are buffered and encoded one chunk at a time, so a
 * multi-gigabyte capture is converted with one chunk of memory. The
 * header is finalized by finish() (count, index offset), which also
 * appends the chunk index and flushes; as with writeTrace(), an
 * ENOSPC surfacing at flush/close reports as failure, never as
 * silent loss.
 */
class TraceV2Writer
{
  public:
    TraceV2Writer() = default;
    ~TraceV2Writer();

    TraceV2Writer(const TraceV2Writer &) = delete;
    TraceV2Writer &operator=(const TraceV2Writer &) = delete;

    /** Open @p path for writing. @return false on failure (error()). */
    bool open(const std::string &path);

    /** Append one record (buffered; encoded at chunk granularity). */
    void add(const RetiredInstr &r);

    /** Append a decoded batch. @return false once failed() is set. */
    bool addBatch(const RecordBatch &batch);

    /** Encode the final partial chunk, write the index, rewrite the
     *  header, flush and close. @return false on any I/O failure. */
    bool finish();

    /** Records appended so far. */
    std::uint64_t count() const { return count_; }

    bool failed() const { return failed_; }
    const std::string &error() const { return error_; }

  private:
    void flushChunk();
    void fail(const std::string &msg);

    void *file_ = nullptr;  //!< std::FILE, opaque to the header
    std::uint64_t count_ = 0;
    std::vector<RetiredInstr> pending_;  //!< records of the open chunk
    std::vector<std::uint8_t> payload_;  //!< encode scratch
    std::vector<TraceV2ChunkInfo> index_;
    bool failed_ = false;
    bool finished_ = false;
    std::string error_;
};

/**
 * Streaming v2 reader: one self-contained chunk per next() call,
 * decoded straight into RecordBatch columns (blocks derived), digest
 * verified. Chunks are also randomly addressable through readChunk(),
 * which is what lets sharded consumers split one read-only corpus.
 */
class TraceV2Reader
{
  public:
    TraceV2Reader() = default;
    ~TraceV2Reader() { close(); }

    TraceV2Reader(const TraceV2Reader &) = delete;
    TraceV2Reader &operator=(const TraceV2Reader &) = delete;

    /**
     * Open @p path: validate the header, load and validate the chunk
     * index. A v1 file, a foreign file, a truncated header, a bad
     * index offset and a corrupt index each fail with their own
     * message. @return true if the stream is ready.
     */
    bool open(const std::string &path);

    /** Records the header promises (valid after open). */
    std::uint64_t count() const { return info_.count; }

    /** Parsed header + index (valid after open). */
    const TraceV2Info &info() const { return info_; }

    /**
     * Decode the next chunk into @p out (columns filled, blocks
     * computed, digest verified). @return true if @p out holds
     * records; false at end of stream or on error (check failed()).
     */
    bool next(RecordBatch &out);

    /** Decode chunk @p k (0-based) into @p out; does not disturb the
     *  next() cursor's chunk ordinal beyond seeking. */
    bool readChunk(std::uint32_t k, RecordBatch &out);

    bool failed() const { return failed_; }
    const std::string &error() const { return error_; }

    /** Release the underlying file (idempotent). */
    void close();

  private:
    bool decodeChunk(std::uint32_t k, RecordBatch &out);
    bool fail(const std::string &msg);

    void *file_ = nullptr;
    TraceV2Info info_;
    std::uint32_t nextChunk_ = 0;
    std::vector<std::uint8_t> payload_;  //!< decode scratch
    bool failed_ = false;
    std::string error_;
};

/** Write @p records to @p path in v2 form. Sets @p err on failure. */
bool writeTraceV2(const std::string &path,
                  const std::vector<RetiredInstr> &records,
                  std::string *err = nullptr);

/**
 * Read a whole v2 file into an AoS vector (conversion and test use;
 * replay paths should stream batches through TraceV2Reader instead).
 * On failure @p records is left empty and @p err describes the cause.
 */
bool readTraceV2(const std::string &path,
                 std::vector<RetiredInstr> &records,
                 std::string *err = nullptr);

/** Header + chunk index of a v2 file, without decoding any payload. */
std::optional<TraceV2Info> traceV2Info(const std::string &path,
                                       std::string *err = nullptr);

/** Container format of a trace file, from its magic + version. */
enum class TraceFileFormat { V1, V2 };

/**
 * Identify @p path as a v1 or v2 pifetch trace. Distinguishes "not a
 * pifetch trace", "truncated header" and "unsupported future version"
 * in @p err.
 */
std::optional<TraceFileFormat> probeTraceFile(const std::string &path,
                                              std::string *err = nullptr);

} // namespace pifetch
