/**
 * @file
 * Sharded sweep execution: shard runner, journal, merge, scheduler.
 */

#include "sweep/runner.hh"

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>

#include "common/parallel.hh"

namespace pifetch {

namespace {

bool
setErr(std::string *err, const std::string &msg)
{
    if (err)
        *err = msg;
    return false;
}

/** FNV-1a over raw bytes (the journal's point-file digest). */
std::uint64_t
bytesDigest(const std::string &bytes)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

std::string
digestHex(std::uint64_t h)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

/** mkdir -p: create @p path and any missing ancestors. */
bool
ensureDir(const std::string &path, std::string *err)
{
    std::string prefix;
    std::size_t pos = 0;
    while (pos <= path.size()) {
        const std::size_t slash = path.find('/', pos);
        prefix = slash == std::string::npos ? path
                                            : path.substr(0, slash);
        pos = slash == std::string::npos ? path.size() + 1 : slash + 1;
        if (prefix.empty() || prefix == ".")
            continue;
        if (mkdir(prefix.c_str(), 0777) != 0 && errno != EEXIST)
            return setErr(err, "cannot create directory " + prefix);
    }
    return true;
}

bool
readFileBytes(const std::string &path, std::string &out)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    std::ostringstream buf;
    buf << is.rdbuf();
    out = buf.str();
    return !is.bad();
}

bool
writeFileBytes(const std::string &path, const std::string &bytes,
               std::string *err)
{
    std::ofstream os(path, std::ios::binary);
    os << bytes;
    os.close();
    if (!os)
        return setErr(err, "cannot write " + path);
    return true;
}

/**
 * The PIFETCH_SWEEP_KILL_AFTER self-test hook: nonzero count when the
 * hook targets shard @p k, meaning "SIGKILL after that many points".
 */
std::uint64_t
killAfterForShard(unsigned k)
{
    const char *env = std::getenv("PIFETCH_SWEEP_KILL_AFTER");
    if (!env)
        return 0;
    unsigned shard = 0;
    unsigned long long count = 0;
    if (std::sscanf(env, "%u:%llu", &shard, &count) != 2)
        return 0;
    return shard == k ? count : 0;
}

} // namespace

std::string
sweepManifestPath(const std::string &dir)
{
    return dir + "/manifest.json";
}

std::string
sweepShardDir(const std::string &dir, unsigned k)
{
    return dir + "/shards/shard-" + std::to_string(k);
}

std::string
sweepPointPath(const std::string &dir, const SweepManifest &m,
               std::uint64_t p)
{
    return sweepShardDir(dir, sweepPointShard(p, m.shards)) +
           "/point-" + std::to_string(p) + ".json";
}

std::string
sweepJournalPath(const std::string &dir, unsigned k)
{
    return sweepShardDir(dir, k) + "/journal.jsonl";
}

std::string
sweepMergedPath(const std::string &dir)
{
    return dir + "/merged.json";
}

bool
initSweepDir(const std::string &dir, const SweepManifest &m,
             std::string *err)
{
    if (!ensureDir(dir, err))
        return false;
    return saveManifest(m, sweepManifestPath(dir), err);
}

std::optional<RunOptions>
sweepBaseOptions(const ExperimentSpec &spec, const SweepManifest &m,
                 std::string *err)
{
    RunOptions base;
    base.budget = spec.defaultBudget;
    if (m.warmup)
        base.budget->warmup = *m.warmup;
    if (m.measure)
        base.budget->measure = *m.measure;

    for (const SweepWorkloadRef &w : m.workloads) {
        if (!w.isFile) {
            if (const auto preset = workloadFromName(w.value)) {
                base.workloads.push_back(WorkloadRef(*preset));
                continue;
            }
        }
        // Zoo entries and explicit files both load a spec file.
        std::string path = w.value;
        if (!w.isFile) {
            const auto entry = findZooEntry(w.value);
            if (!entry) {
                setErr(err, "unknown workload '" + w.value + "'");
                return std::nullopt;
            }
            path = entry->path;
        }
        std::string spec_err;
        auto loaded = loadWorkloadSpecFile(path, &spec_err);
        if (!loaded) {
            setErr(err, spec_err);
            return std::nullopt;
        }
        base.workloads.push_back(workloadRefFromSpec(std::move(*loaded)));
    }

    for (const auto &[key, value] : m.overrides) {
        if (!applyConfigOverride(base.cfg, key, value)) {
            setErr(err, "bad config override " + key + "=" + value);
            return std::nullopt;
        }
    }
    return base;
}

ResultValue
runSweepPoint(const ExperimentSpec &spec, const RunOptions &base,
              const SweepManifest &m, std::uint64_t p)
{
    RunOptions point = base;
    point.cfg.threads = 1;
    for (const auto &[key, value] : sweepPointParams(m, p))
        applyConfigOverride(point.cfg, key, value);
    return runExperiment(spec, point);
}

ResultValue
assembleSweepDoc(const SweepManifest &m, std::vector<ResultValue> docs)
{
    ResultValue runs = ResultValue::array();
    for (std::uint64_t p = 0; p < docs.size(); ++p) {
        ResultValue params = ResultValue::object();
        for (const auto &[key, value] : sweepPointParams(m, p))
            params.set(key, value);
        ResultValue entry = ResultValue::object();
        entry.set("params", std::move(params));
        entry.set("result", std::move(docs[p]));
        runs.push(std::move(entry));
    }
    ResultValue doc = ResultValue::object();
    doc.set("experiment", m.experiment);
    doc.set("sweep", true);
    doc.set("points", sweepPointCount(m));
    doc.set("runs", std::move(runs));
    return doc;
}

std::vector<std::uint64_t>
journaledCompletePoints(const std::string &dir, const SweepManifest &m,
                        unsigned k)
{
    std::vector<std::uint64_t> complete;
    std::ifstream is(sweepJournalPath(dir, k), std::ios::binary);
    if (!is)
        return complete;

    const std::uint64_t total = sweepPointCount(m);
    std::set<std::uint64_t> seen;
    std::string line;
    while (std::getline(is, line)) {
        // Each line must parse, name a point this shard owns, and
        // match the point file's actual bytes. A torn final line from
        // a crash, a truncated file, or a hand-edited digest all fall
        // through to "not complete" and the point re-runs.
        const auto doc = parseJson(line);
        if (!doc)
            continue;
        const ResultValue *point = doc->find("point");
        const ResultValue *digest = doc->find("digest");
        if (!point || point->kind() != ResultValue::Kind::Uint ||
            !digest || digest->kind() != ResultValue::Kind::String)
            continue;
        const std::uint64_t p = point->uintValue();
        if (p >= total || sweepPointShard(p, m.shards) != k ||
            seen.count(p))
            continue;
        std::string bytes;
        if (!readFileBytes(sweepPointPath(dir, m, p), bytes))
            continue;
        if (digestHex(bytesDigest(bytes)) != digest->str())
            continue;
        seen.insert(p);
        complete.push_back(p);
    }
    return complete;
}

bool
runSweepShard(const std::string &dir, const SweepManifest &m,
              unsigned k, bool resume, std::string *err)
{
    if (k >= m.shards)
        return setErr(err, "shard " + std::to_string(k) +
                           " out of range (" +
                           std::to_string(m.shards) + " shards)");
    const ExperimentSpec *spec = findExperiment(m.experiment);
    if (!spec)
        return setErr(err, "unknown experiment '" + m.experiment + "'");
    const auto base = sweepBaseOptions(*spec, m, err);
    if (!base)
        return false;
    if (!ensureDir(sweepShardDir(dir, k), err))
        return false;

    std::set<std::uint64_t> done;
    if (resume) {
        for (const std::uint64_t p : journaledCompletePoints(dir, m, k))
            done.insert(p);
    }

    // Append when resuming (the valid prefix stays authoritative);
    // truncate on a fresh run so stale entries cannot satisfy a
    // future resume.
    std::FILE *journal = std::fopen(sweepJournalPath(dir, k).c_str(),
                                    resume ? "ab" : "wb");
    if (!journal)
        return setErr(err, "cannot open " + sweepJournalPath(dir, k));

    const std::uint64_t kill_after = killAfterForShard(k);
    std::uint64_t completed = 0;
    for (const std::uint64_t p : sweepShardPoints(m, k)) {
        if (done.count(p))
            continue;
        const ResultValue doc = runSweepPoint(*spec, *base, m, p);
        const std::string bytes = toJson(doc, 2) + "\n";
        if (!writeFileBytes(sweepPointPath(dir, m, p), bytes, err)) {
            std::fclose(journal);
            return false;
        }
        // Journal only after the point file is durably closed: a
        // crash between the two leaves an unjournaled (re-runnable)
        // point, never a journaled lie.
        const std::string line =
            "{\"point\":" + std::to_string(p) + ",\"digest\":\"" +
            digestHex(bytesDigest(bytes)) + "\"}\n";
        if (std::fwrite(line.data(), 1, line.size(), journal) !=
                line.size() ||
            std::fflush(journal) != 0) {
            std::fclose(journal);
            return setErr(err, "cannot append to " +
                                   sweepJournalPath(dir, k));
        }
        ++completed;
        if (kill_after != 0 && completed >= kill_after) {
            // Self-test hook: die exactly as a crashed worker would —
            // no cleanup, no flushing beyond what already happened.
            std::raise(SIGKILL);
        }
    }
    if (std::fclose(journal) != 0)
        return setErr(err, "cannot close " + sweepJournalPath(dir, k));
    return true;
}

std::optional<ResultValue>
mergeShardedSweep(const std::string &dir, const SweepManifest &m,
                  std::string *err)
{
    const std::uint64_t total = sweepPointCount(m);
    std::vector<ResultValue> docs(total);
    for (std::uint64_t p = 0; p < total; ++p) {
        const std::string path = sweepPointPath(dir, m, p);
        std::string bytes;
        if (!readFileBytes(path, bytes)) {
            setErr(err, "point " + std::to_string(p) + " (shard " +
                       std::to_string(sweepPointShard(p, m.shards)) +
                       ") has no result at " + path +
                       "; re-run with --resume");
            return std::nullopt;
        }
        std::string parse_err;
        auto doc = parseJson(bytes, &parse_err);
        if (!doc) {
            setErr(err, path + ": " + parse_err +
                       "; re-run with --resume");
            return std::nullopt;
        }
        docs[p] = std::move(*doc);
    }
    return assembleSweepDoc(m, std::move(docs));
}

bool
runShardedSweep(const std::string &dir, const SweepManifest &m,
                const std::string &exe, unsigned threads, bool resume,
                std::string *err)
{
    const unsigned width = std::max(
        1u, std::min(resolveThreads(threads), m.shards));

    std::vector<std::pair<pid_t, unsigned>> running;
    std::vector<unsigned> failed;
    unsigned next = 0;
    while (next < m.shards || !running.empty()) {
        while (running.size() < width && next < m.shards) {
            const unsigned k = next++;
            const std::string shard_arg = std::to_string(k);
            const pid_t pid = fork();
            if (pid < 0)
                return setErr(err, "fork failed launching shard " +
                                       shard_arg);
            if (pid == 0) {
                std::vector<const char *> args = {
                    exe.c_str(), "sweep", "--dir", dir.c_str(),
                    "--shard", shard_arg.c_str()};
                if (resume)
                    args.push_back("--resume");
                args.push_back(nullptr);
                execv(exe.c_str(),
                      const_cast<char *const *>(args.data()));
                // Only reached when exec itself failed.
                std::fprintf(stderr, "pifetch sweep: cannot exec %s\n",
                             exe.c_str());
                _exit(127);
            }
            running.emplace_back(pid, k);
        }

        int status = 0;
        const pid_t pid = waitpid(-1, &status, 0);
        if (pid < 0)
            return setErr(err, "waitpid failed");
        const auto it = std::find_if(
            running.begin(), running.end(),
            [pid](const auto &r) { return r.first == pid; });
        if (it == running.end())
            continue;
        const unsigned k = it->second;
        running.erase(it);
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0)
            failed.push_back(k);
    }

    if (!failed.empty()) {
        std::sort(failed.begin(), failed.end());
        std::string msg = "shard";
        if (failed.size() > 1)
            msg += "s";
        for (const unsigned k : failed)
            msg += " " + std::to_string(k);
        msg += " did not complete (crashed or exited nonzero); "
               "completed points are "
               "journaled — re-run with --resume";
        return setErr(err, msg);
    }
    return true;
}

std::string
selfExePath()
{
    char buf[4096];
    const ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        return "";
    buf[n] = '\0';
    return buf;
}

} // namespace pifetch
