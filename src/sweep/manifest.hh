/**
 * @file
 * Canonical sweep manifests: one JSON document that pins a cartesian
 * parameter sweep — experiment, axes, base options and shard count —
 * precisely enough that any process (or machine) holding the manifest
 * enumerates the exact same grid points in the exact same order and
 * agrees on which shard owns each point.
 *
 * The manifest is the contract between the sweep scheduler and its
 * worker processes (runner.hh): the scheduler writes
 * `<dir>/manifest.json` once, every worker re-derives its point list
 * from it, and the merge step re-derives the full enumeration to
 * assemble the canonical results tree. Nothing about the partition is
 * passed on the command line except the shard ordinal, so a crashed
 * sweep resumes from the manifest alone.
 *
 * Point enumeration is the CLI's historical order: the first axis is
 * outermost, the last axis varies fastest. Shard assignment is round
 * robin (`point % shards`), which balances work when later grid points
 * are systematically heavier (e.g. a degree axis).
 */

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/results.hh"

namespace pifetch {

/** One sweep axis: a config-override key and its value list. */
struct SweepAxis
{
    std::string key;
    std::vector<std::string> values;
};

/** One base workload reference, kept in CLI form so workers re-resolve
 *  it exactly as the parent would have. */
struct SweepWorkloadRef
{
    /** Preset / zoo-spec name, or a spec file path when isFile. */
    std::string value;
    bool isFile = false;
};

/**
 * A fully pinned sweep: everything `pifetch sweep` was told, in a
 * process-independent form.
 */
struct SweepManifest
{
    std::string experiment;
    std::vector<SweepAxis> axes;
    /** Shard count the grid is partitioned into (>= 1). */
    unsigned shards = 1;

    /** Base workload set (empty = the experiment's default set). */
    std::vector<SweepWorkloadRef> workloads;
    /** Base config overrides (--seed / --set), in CLI order. */
    std::vector<std::pair<std::string, std::string>> overrides;
    /** Budget overrides; absent fields keep the experiment default. */
    std::optional<std::uint64_t> warmup;
    std::optional<std::uint64_t> measure;
};

/** Total grid points (product of the axis sizes; 0 without axes). */
std::uint64_t sweepPointCount(const SweepManifest &m);

/**
 * Parameter assignment of grid point @p p: one (key, value) pair per
 * axis, first axis outermost. @p p must be < sweepPointCount().
 */
std::vector<std::pair<std::string, std::string>>
sweepPointParams(const SweepManifest &m, std::uint64_t p);

/** Owning shard of point @p p (round robin). */
unsigned sweepPointShard(std::uint64_t p, unsigned shards);

/** The points shard @p k owns, ascending. */
std::vector<std::uint64_t> sweepShardPoints(const SweepManifest &m,
                                            unsigned k);

/** Serialize @p m as the canonical manifest document. */
ResultValue manifestToResult(const SweepManifest &m);

/**
 * Parse a manifest document (schema pifetch-sweep-manifest-v1).
 * Returns nullopt and sets @p err on a malformed or inconsistent
 * document (unknown schema, empty axes, shards == 0, ...).
 */
std::optional<SweepManifest>
manifestFromResult(const ResultValue &doc, std::string *err = nullptr);

/** Canonical on-disk bytes of @p m (2-space JSON + newline). */
std::string manifestJson(const SweepManifest &m);

/** Write @p m to @p path in canonical form. */
bool saveManifest(const SweepManifest &m, const std::string &path,
                  std::string *err = nullptr);

/** Load and validate a manifest file. */
std::optional<SweepManifest> loadManifest(const std::string &path,
                                          std::string *err = nullptr);

} // namespace pifetch
