/**
 * @file
 * Sharded, resumable sweep execution over a manifest (manifest.hh).
 *
 * Layout of a sweep directory:
 *
 *   <dir>/manifest.json            the pinned sweep (canonical JSON)
 *   <dir>/shards/shard-<K>/
 *       point-<P>.json             one experiment document per point
 *       journal.jsonl              one line per completed point:
 *                                  {"point":P,"digest":"<fnv64 hex>"}
 *   <dir>/merged.json              the canonical sweep document
 *
 * The journal is the crash contract: a point file is fully written
 * and closed *before* its journal line is appended and flushed, so
 * after a crash (or SIGKILL) every journaled point provably has its
 * bytes on disk. Resume re-validates each journal line — parse, shard
 * ownership, and the digest of the point file's actual bytes — and
 * re-runs anything that does not check out, so a torn journal line or
 * a corrupted point file is re-run rather than trusted.
 *
 * Every point runs with threads pinned to 1 and the shared document
 * assembly below, which is what makes a merged sharded sweep
 * byte-identical to `pifetch sweep` run in one process — the goldens
 * and tests/test_sweep_shard.cc lock this.
 *
 * Self-test hook (mirroring `pifetch check --inject-fault`): setting
 * PIFETCH_SWEEP_KILL_AFTER="<shard>:<n>" makes runSweepShard() for
 * that shard raise SIGKILL immediately after journaling its n-th
 * completed point, simulating a mid-sweep crash for the resume tests
 * and the CI sweep-resume smoke job.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/registry.hh"
#include "sweep/manifest.hh"

namespace pifetch {

/** `<dir>/manifest.json`. */
std::string sweepManifestPath(const std::string &dir);

/** `<dir>/shards/shard-<k>`. */
std::string sweepShardDir(const std::string &dir, unsigned k);

/** `<dir>/shards/shard-<owner of p>/point-<p>.json`. */
std::string sweepPointPath(const std::string &dir,
                           const SweepManifest &m, std::uint64_t p);

/** `<dir>/shards/shard-<k>/journal.jsonl`. */
std::string sweepJournalPath(const std::string &dir, unsigned k);

/** `<dir>/merged.json`. */
std::string sweepMergedPath(const std::string &dir);

/**
 * Create @p dir (and ancestors) and write the canonical
 * `<dir>/manifest.json`. The scheduler calls this once before
 * launching workers; a resume validates the command line against the
 * manifest on disk instead.
 */
bool initSweepDir(const std::string &dir, const SweepManifest &m,
                  std::string *err = nullptr);

/**
 * Resolve the manifest's base options (workloads, overrides, budget)
 * against the experiment's defaults, exactly as the CLI would.
 * Returns nullopt and sets @p err when a workload or override no
 * longer resolves.
 */
std::optional<RunOptions> sweepBaseOptions(const ExperimentSpec &spec,
                                           const SweepManifest &m,
                                           std::string *err = nullptr);

/**
 * Run grid point @p p: base options plus the point's axis assignment,
 * threads pinned to 1 so the result is identical no matter which
 * process or pool lane executes it.
 */
ResultValue runSweepPoint(const ExperimentSpec &spec,
                          const RunOptions &base, const SweepManifest &m,
                          std::uint64_t p);

/**
 * Assemble the canonical sweep document from per-point documents
 * (@p docs indexed by point ordinal). Both the in-process sweep and
 * the sharded merge go through this one function, so their output
 * cannot drift apart.
 */
ResultValue assembleSweepDoc(const SweepManifest &m,
                             std::vector<ResultValue> docs);

/**
 * Points of shard @p k whose journal entries are valid: the line
 * parses, the point belongs to the shard, and the point file's bytes
 * digest to the journaled value. Invalid or duplicate lines are
 * ignored (their points re-run).
 */
std::vector<std::uint64_t>
journaledCompletePoints(const std::string &dir, const SweepManifest &m,
                        unsigned k);

/**
 * Run every point shard @p k owns, writing point files and the
 * completion journal under `<dir>/shards/shard-<k>`. With @p resume,
 * journaled-complete points are skipped; without it the shard starts
 * from a fresh journal. @return false on failure (@p err set).
 */
bool runSweepShard(const std::string &dir, const SweepManifest &m,
                   unsigned k, bool resume, std::string *err = nullptr);

/**
 * Assemble the merged document from a sweep directory whose shards
 * have all completed. Fails (with the missing point named) when any
 * point file is absent or unparsable — the caller should re-run with
 * resume.
 */
std::optional<ResultValue>
mergeShardedSweep(const std::string &dir, const SweepManifest &m,
                  std::string *err = nullptr);

/**
 * The scheduler: launch one child process per shard (at most
 * resolveThreads(@p threads) concurrently, so PIFETCH_THREADS bounds
 * the fan-out), each invoking `<exe> sweep --dir <dir> --shard <k>`
 * (plus --resume when @p resume). @return false when any shard exits
 * nonzero or dies to a signal; @p err then names the failed shards.
 */
bool runShardedSweep(const std::string &dir, const SweepManifest &m,
                     const std::string &exe, unsigned threads,
                     bool resume, std::string *err = nullptr);

/** Path of the running executable (/proc/self/exe). */
std::string selfExePath();

} // namespace pifetch
