/**
 * @file
 * Sweep manifest serialization and grid arithmetic.
 */

#include "sweep/manifest.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace pifetch {

namespace {

constexpr const char *manifestSchema = "pifetch-sweep-manifest-v1";

bool
setErr(std::string *err, const std::string &msg)
{
    if (err)
        *err = msg;
    return false;
}

/** Member of @p doc as a string, or nullopt. */
std::optional<std::string>
memberString(const ResultValue &doc, const std::string &key)
{
    const ResultValue *v = doc.find(key);
    if (!v || v->kind() != ResultValue::Kind::String)
        return std::nullopt;
    return v->str();
}

/** Member of @p doc as a non-negative integer, or nullopt. */
std::optional<std::uint64_t>
memberUint(const ResultValue &doc, const std::string &key)
{
    const ResultValue *v = doc.find(key);
    if (!v || v->kind() != ResultValue::Kind::Uint)
        return std::nullopt;
    return v->uintValue();
}

} // namespace

std::uint64_t
sweepPointCount(const SweepManifest &m)
{
    if (m.axes.empty())
        return 0;
    std::uint64_t points = 1;
    for (const SweepAxis &axis : m.axes)
        points *= axis.values.size();
    return points;
}

std::vector<std::pair<std::string, std::string>>
sweepPointParams(const SweepManifest &m, std::uint64_t p)
{
    // Mixed-radix decode, last axis fastest (the CLI's historical
    // cartesian order): peel digits from the innermost axis outward,
    // then restore declaration order.
    std::vector<std::pair<std::string, std::string>> params;
    params.reserve(m.axes.size());
    std::uint64_t rest = p;
    for (auto it = m.axes.rbegin(); it != m.axes.rend(); ++it) {
        const std::uint64_t n = it->values.size();
        params.emplace_back(it->key, it->values[rest % n]);
        rest /= n;
    }
    std::reverse(params.begin(), params.end());
    return params;
}

unsigned
sweepPointShard(std::uint64_t p, unsigned shards)
{
    return shards == 0 ? 0 : static_cast<unsigned>(p % shards);
}

std::vector<std::uint64_t>
sweepShardPoints(const SweepManifest &m, unsigned k)
{
    std::vector<std::uint64_t> points;
    const std::uint64_t total = sweepPointCount(m);
    for (std::uint64_t p = k; p < total; p += m.shards)
        points.push_back(p);
    return points;
}

ResultValue
manifestToResult(const SweepManifest &m)
{
    ResultValue doc = ResultValue::object();
    doc.set("schema", manifestSchema);
    doc.set("experiment", m.experiment);

    ResultValue axes = ResultValue::array();
    for (const SweepAxis &axis : m.axes) {
        ResultValue values = ResultValue::array();
        for (const std::string &v : axis.values)
            values.push(v);
        ResultValue entry = ResultValue::object();
        entry.set("key", axis.key);
        entry.set("values", std::move(values));
        axes.push(std::move(entry));
    }
    doc.set("axes", std::move(axes));
    doc.set("points", sweepPointCount(m));
    doc.set("shards", static_cast<std::uint64_t>(m.shards));

    ResultValue workloads = ResultValue::array();
    for (const SweepWorkloadRef &w : m.workloads) {
        ResultValue entry = ResultValue::object();
        entry.set(w.isFile ? "file" : "name", w.value);
        workloads.push(std::move(entry));
    }
    doc.set("workloads", std::move(workloads));

    ResultValue overrides = ResultValue::array();
    for (const auto &[key, value] : m.overrides) {
        ResultValue entry = ResultValue::object();
        entry.set("key", key);
        entry.set("value", value);
        overrides.push(std::move(entry));
    }
    doc.set("overrides", std::move(overrides));

    if (m.warmup)
        doc.set("warmup", *m.warmup);
    if (m.measure)
        doc.set("measure", *m.measure);
    return doc;
}

std::optional<SweepManifest>
manifestFromResult(const ResultValue &doc, std::string *err)
{
    const auto bad = [&](const std::string &msg)
        -> std::optional<SweepManifest> {
        setErr(err, "sweep manifest: " + msg);
        return std::nullopt;
    };

    const auto schema = memberString(doc, "schema");
    if (!schema || *schema != manifestSchema)
        return bad("unknown schema (want " +
                   std::string(manifestSchema) + ")");

    SweepManifest m;
    const auto experiment = memberString(doc, "experiment");
    if (!experiment || experiment->empty())
        return bad("missing experiment name");
    m.experiment = *experiment;

    const ResultValue *axes = doc.find("axes");
    if (!axes || axes->kind() != ResultValue::Kind::Array ||
        axes->size() == 0)
        return bad("missing or empty axes");
    for (std::size_t i = 0; i < axes->size(); ++i) {
        const ResultValue &entry = axes->at(i);
        SweepAxis axis;
        const auto key = memberString(entry, "key");
        if (!key || key->empty())
            return bad("axis " + std::to_string(i) + " has no key");
        axis.key = *key;
        const ResultValue *values = entry.find("values");
        if (!values || values->kind() != ResultValue::Kind::Array ||
            values->size() == 0)
            return bad("axis '" + axis.key + "' has no values");
        for (std::size_t j = 0; j < values->size(); ++j) {
            if (values->at(j).kind() != ResultValue::Kind::String)
                return bad("axis '" + axis.key +
                           "' has a non-string value");
            axis.values.push_back(values->at(j).str());
        }
        m.axes.push_back(std::move(axis));
    }

    const auto shards = memberUint(doc, "shards");
    if (!shards || *shards == 0 || *shards > 1u << 20)
        return bad("shards must be an integer >= 1");
    m.shards = static_cast<unsigned>(*shards);

    const auto points = memberUint(doc, "points");
    if (!points || *points != sweepPointCount(m))
        return bad("point count disagrees with the axes (stated " +
                   std::to_string(points ? *points : 0) + ", axes "
                   "give " + std::to_string(sweepPointCount(m)) + ")");

    if (const ResultValue *workloads = doc.find("workloads")) {
        if (workloads->kind() != ResultValue::Kind::Array)
            return bad("workloads must be an array");
        for (std::size_t i = 0; i < workloads->size(); ++i) {
            const ResultValue &entry = workloads->at(i);
            SweepWorkloadRef w;
            if (const auto name = memberString(entry, "name")) {
                w.value = *name;
            } else if (const auto file = memberString(entry, "file")) {
                w.value = *file;
                w.isFile = true;
            } else {
                return bad("workload " + std::to_string(i) +
                           " needs a name or file member");
            }
            m.workloads.push_back(std::move(w));
        }
    }

    if (const ResultValue *overrides = doc.find("overrides")) {
        if (overrides->kind() != ResultValue::Kind::Array)
            return bad("overrides must be an array");
        for (std::size_t i = 0; i < overrides->size(); ++i) {
            const ResultValue &entry = overrides->at(i);
            const auto key = memberString(entry, "key");
            const auto value = memberString(entry, "value");
            if (!key || !value)
                return bad("override " + std::to_string(i) +
                           " needs key and value members");
            m.overrides.emplace_back(*key, *value);
        }
    }

    m.warmup = memberUint(doc, "warmup");
    m.measure = memberUint(doc, "measure");
    if ((doc.find("warmup") && !m.warmup) ||
        (doc.find("measure") && !m.measure))
        return bad("warmup/measure must be non-negative integers");
    return m;
}

std::string
manifestJson(const SweepManifest &m)
{
    return toJson(manifestToResult(m), 2) + "\n";
}

bool
saveManifest(const SweepManifest &m, const std::string &path,
             std::string *err)
{
    std::ofstream os(path, std::ios::binary);
    os << manifestJson(m);
    os.close();
    if (!os)
        return setErr(err, "cannot write " + path);
    return true;
}

std::optional<SweepManifest>
loadManifest(const std::string &path, std::string *err)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        setErr(err, "cannot open " + path);
        return std::nullopt;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    std::string parse_err;
    const auto doc = parseJson(buf.str(), &parse_err);
    if (!doc) {
        setErr(err, path + ": " + parse_err);
        return std::nullopt;
    }
    auto m = manifestFromResult(*doc, err);
    if (!m && err)
        *err = path + ": " + *err;
    return m;
}

} // namespace pifetch
