/**
 * @file
 * Jump-distance study (Section 5.1, Figure 7).
 *
 * Measures the number of history elements between two occurrences of
 * the same temporal stream, weighted by the correct predictions the
 * recurrence produced. Long tails in this distribution are the paper's
 * argument for deep history storage.
 */

#pragma once

#include "common/histogram.hh"
#include "streams/temporal_predictor.hh"

namespace pifetch {

/**
 * Runs an unbounded temporal predictor over a block-address stream and
 * accumulates the coverage-weighted jump-distance histogram.
 */
class JumpDistanceStudy
{
  public:
    explicit JumpDistanceStudy(unsigned max_log2 = 30);

    /** Feed the next block address of the observation stream. */
    void observe(Addr block);

    /** Close open episodes (call once at end of trace). */
    void finish();

    /** log2-bucketed histogram, weight = correct predictions. */
    const Log2Histogram &histogram() const { return hist_; }

    /** Underlying predictor (for aggregate stats). */
    const TemporalStreamPredictor &predictor() const { return pred_; }

  private:
    TemporalStreamPredictor pred_;
    Log2Histogram hist_;
};

} // namespace pifetch
