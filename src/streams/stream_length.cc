/**
 * @file
 * Stream-length study implementation.
 */

#include "streams/stream_length.hh"

namespace pifetch {

namespace {

TemporalPredictorConfig
studyConfig()
{
    TemporalPredictorConfig cfg;
    cfg.historyCapacity = 0;
    cfg.indexEntries = 0;
    cfg.numStreams = 4;
    cfg.window = 16;
    return cfg;
}

} // namespace

StreamLengthStudy::StreamLengthStudy(unsigned max_log2)
    : pred_(studyConfig()), hist_(max_log2)
{
    pred_.onEpisodeEnd([this](const StreamEpisode &ep) {
        if (ep.matched > 0) {
            hist_.add(ep.length, static_cast<double>(ep.matched));
        }
    });
}

void
StreamLengthStudy::observe(Addr element)
{
    pred_.observe(element);
}

void
StreamLengthStudy::finish()
{
    pred_.finish();
}

} // namespace pifetch
