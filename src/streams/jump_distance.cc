/**
 * @file
 * Jump-distance study implementation.
 */

#include "streams/jump_distance.hh"

namespace pifetch {

namespace {

TemporalPredictorConfig
studyConfig()
{
    TemporalPredictorConfig cfg;
    cfg.historyCapacity = 0;  // unbounded: measure the full distribution
    cfg.indexEntries = 0;
    cfg.numStreams = 4;
    cfg.window = 16;
    return cfg;
}

} // namespace

JumpDistanceStudy::JumpDistanceStudy(unsigned max_log2)
    : pred_(studyConfig()), hist_(max_log2)
{
    pred_.onEpisodeEnd([this](const StreamEpisode &ep) {
        if (ep.matched > 0) {
            hist_.add(ep.jumpDistance,
                      static_cast<double>(ep.matched));
        }
    });
}

void
JumpDistanceStudy::observe(Addr block)
{
    pred_.observe(block);
}

void
JumpDistanceStudy::finish()
{
    pred_.finish();
}

} // namespace pifetch
