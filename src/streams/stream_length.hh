/**
 * @file
 * Temporal stream-length study (Section 5.3, Figure 9 left).
 *
 * Measures how long replayed temporal streams run before dying,
 * weighted by the correct predictions each stream contributed. The
 * observation stream is the compacted spatial-region trigger sequence,
 * so lengths are in 8-block regions as in the paper.
 */

#pragma once

#include "common/histogram.hh"
#include "streams/temporal_predictor.hh"

namespace pifetch {

/**
 * Coverage-weighted stream-length histogram over an element stream.
 */
class StreamLengthStudy
{
  public:
    explicit StreamLengthStudy(unsigned max_log2 = 24);

    /** Feed the next element (region trigger block). */
    void observe(Addr element);

    /** Close open episodes. */
    void finish();

    /** log2-bucketed stream lengths, weight = correct predictions. */
    const Log2Histogram &histogram() const { return hist_; }

    /** Underlying predictor (for aggregate stats). */
    const TemporalStreamPredictor &predictor() const { return pred_; }

  private:
    TemporalStreamPredictor pred_;
    Log2Histogram hist_;
};

} // namespace pifetch
