/**
 * @file
 * Temporal stream predictor implementation.
 */

#include "streams/temporal_predictor.hh"

namespace pifetch {

TemporalStreamPredictor::TemporalStreamPredictor(
        const TemporalPredictorConfig &cfg)
    : cfg_(cfg),
      index_(cfg.indexEntries, cfg.indexAssoc),
      streams_(cfg.numStreams)
{
    if (cfg_.historyCapacity > 0)
        ring_.resize(cfg_.historyCapacity);
}

bool
TemporalStreamPredictor::histValid(std::uint64_t seq) const
{
    if (seq >= tail_)
        return false;
    return cfg_.historyCapacity == 0 ||
           tail_ - seq <= cfg_.historyCapacity;
}

Addr
TemporalStreamPredictor::histAt(std::uint64_t seq) const
{
    return cfg_.historyCapacity == 0
        ? ring_[seq]
        : ring_[seq % cfg_.historyCapacity];
}

void
TemporalStreamPredictor::append(Addr a)
{
    const std::uint64_t seq = tail_++;
    if (cfg_.historyCapacity == 0) {
        ring_.push_back(a);
    } else {
        ring_[seq % cfg_.historyCapacity] = a;
    }
    index_.insert(a, seq);
}

void
TemporalStreamPredictor::refill(Stream &s)
{
    while (s.window.size() < cfg_.window && histValid(s.ptr)) {
        s.window.push_back(histAt(s.ptr));
        ++s.ptr;
    }
    if (s.window.empty())
        s.active = false;
}

void
TemporalStreamPredictor::closeEpisode(Stream &s)
{
    if (!s.active)
        return;
    if (episodeHook_)
        episodeHook_(s.episode);
    s.active = false;
    s.window.clear();
    s.episode = StreamEpisode{};
}

bool
TemporalStreamPredictor::covered(Addr a) const
{
    for (const Stream &s : streams_) {
        if (!s.active)
            continue;
        for (Addr w : s.window) {
            if (w == a)
                return true;
        }
    }
    return false;
}

TemporalStreamPredictor::Outcome
TemporalStreamPredictor::observe(Addr a)
{
    ++observations_;
    Outcome out;

    // 1. Match against active windows; advance the matching stream.
    for (Stream &s : streams_) {
        if (!s.active)
            continue;
        for (std::size_t i = 0; i < s.window.size(); ++i) {
            if (s.window[i] != a)
                continue;
            s.window.erase(s.window.begin(),
                           s.window.begin() +
                               static_cast<std::ptrdiff_t>(i + 1));
            s.episode.length += i + 1;
            s.episode.matched += 1;
            s.lastUse = ++tick_;
            refill(s);
            out.predicted = true;
            break;
        }
        if (out.predicted)
            break;
    }

    if (out.predicted) {
        ++predicted_;
        append(a);
        return out;
    }

    // 2. Trigger a new stream when the element recurs in the index.
    if (auto seq = index_.lookup(a)) {
        if (histValid(*seq + 1)) {
            Stream *victim = &streams_[0];
            for (Stream &s : streams_) {
                if (!s.active) {
                    victim = &s;
                    break;
                }
                if (s.lastUse < victim->lastUse)
                    victim = &s;
            }
            closeEpisode(*victim);
            victim->active = true;
            victim->ptr = *seq + 1;
            victim->window.clear();
            victim->lastUse = ++tick_;
            victim->episode = StreamEpisode{};
            victim->episode.jumpDistance = tail_ - *seq;
            refill(*victim);
            if (victim->active) {
                out.triggered = true;
                ++triggers_;
            }
        }
    }

    append(a);
    return out;
}

void
TemporalStreamPredictor::finish()
{
    for (Stream &s : streams_)
        closeEpisode(s);
}

void
TemporalStreamPredictor::reset()
{
    if (cfg_.historyCapacity == 0)
        ring_.clear();
    tail_ = 0;
    index_.reset();
    for (Stream &s : streams_)
        s = Stream{};
    tick_ = 0;
    observations_ = 0;
    predicted_ = 0;
    triggers_ = 0;
}

} // namespace pifetch
