/**
 * @file
 * Generic temporal-stream predictor for the observation-point studies.
 *
 * Section 2 (Figure 2) evaluates the same record-and-replay predictor
 * over four different observation streams (Miss, Access, Retire,
 * RetireSep). This class implements that predictor over an arbitrary
 * element stream: an append-only history, an index from element to its
 * most recent history position, and a small pool of replay streams
 * with a bounded lookahead window. Per-stream episode statistics feed
 * the jump-distance (Figure 7) and stream-length (Figure 9 left)
 * studies.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/types.hh"
#include "pif/index_table.hh"

namespace pifetch {

/** Sizing for TemporalStreamPredictor. */
struct TemporalPredictorConfig
{
    /** History elements retained; 0 = unbounded. */
    std::uint64_t historyCapacity = 0;
    /** Index entries; 0 = unbounded. */
    unsigned indexEntries = 0;
    unsigned indexAssoc = 4;
    /** Concurrent replay streams. */
    unsigned numStreams = 4;
    /** Lookahead window (elements) per stream. */
    unsigned window = 16;
};

/**
 * Statistics of one replay episode (stream allocation to death).
 */
struct StreamEpisode
{
    /** History distance from the recurring head to the tail at trigger
     * time ("jump distance", Figure 7). */
    std::uint64_t jumpDistance = 0;
    /** Elements of the stream consumed (its replayed length). */
    std::uint64_t length = 0;
    /** Observations correctly predicted by this stream. */
    std::uint64_t matched = 0;
};

/**
 * Record-and-replay temporal stream predictor over Addr elements.
 */
class TemporalStreamPredictor
{
  public:
    explicit TemporalStreamPredictor(const TemporalPredictorConfig &cfg);

    /** Result of one observation. */
    struct Outcome
    {
        /** The element was found in an active stream window. */
        bool predicted = false;
        /** A new replay stream was triggered from the index. */
        bool triggered = false;
    };

    /**
     * Feed the next element of this predictor's observation stream:
     * checks active windows, advances on a match, triggers a new
     * stream from the index otherwise, then records the element.
     */
    Outcome observe(Addr a);

    /**
     * True if @p a lies in any active stream window. Pure query: used
     * to attribute coverage of events that belong to a *different*
     * observation stream (e.g. asking the retire-stream predictor
     * about an L1-I miss).
     */
    bool covered(Addr a) const;

    /** Install a hook invoked whenever a replay episode ends. */
    void
    onEpisodeEnd(std::function<void(const StreamEpisode &)> hook)
    {
        episodeHook_ = std::move(hook);
    }

    /** Close all active episodes (end of measurement). */
    void finish();

    /** Elements recorded. */
    std::uint64_t recorded() const { return tail_; }

    /** Elements observed. */
    std::uint64_t observations() const { return observations_; }

    /** Observations predicted by an active stream. */
    std::uint64_t predictedCount() const { return predicted_; }

    /** Streams triggered. */
    std::uint64_t triggers() const { return triggers_; }

    /** Reset all state. */
    void reset();

  private:
    struct Stream
    {
        bool active = false;
        std::uint64_t ptr = 0;    //!< next history position to load
        std::deque<Addr> window;  //!< upcoming elements
        std::uint64_t lastUse = 0;
        StreamEpisode episode;
    };

    bool histValid(std::uint64_t seq) const;
    Addr histAt(std::uint64_t seq) const;
    void append(Addr a);
    void refill(Stream &s);
    void closeEpisode(Stream &s);

    TemporalPredictorConfig cfg_;
    std::vector<Addr> ring_;
    std::uint64_t tail_ = 0;
    IndexTable index_;
    std::vector<Stream> streams_;
    std::uint64_t tick_ = 0;

    std::function<void(const StreamEpisode &)> episodeHook_;

    std::uint64_t observations_ = 0;
    std::uint64_t predicted_ = 0;
    std::uint64_t triggers_ = 0;
};

} // namespace pifetch
