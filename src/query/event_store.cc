/**
 * @file
 * Columnar event store implementation and dump round trip.
 */

#include "query/event_store.hh"

namespace pifetch {

namespace {

const char *schemaTag = "pifetch-events-v1";

std::string
badDump(const std::string &what, std::string *err)
{
    if (err)
        *err = what;
    return what;
}

/** Pull member @p key of object @p v as a uint column, or fail. */
bool
column(const ResultValue &v, const std::string &key,
       std::vector<std::uint64_t> &out, std::string *err)
{
    const ResultValue *m = v.find(key);
    if (!m) {
        badDump("event dump: missing column '" + key + "'", err);
        return false;
    }
    auto parsed = uintArrayFromResult(*m);
    if (!parsed) {
        badDump("event dump: column '" + key +
                "' is not an unsigned-integer array", err);
        return false;
    }
    out = std::move(*parsed);
    return true;
}

/** Narrow a uint column into @p out, enforcing value < limit. */
bool
narrowColumn(const std::vector<std::uint64_t> &in, std::uint64_t limit,
             const std::string &key, std::vector<std::uint8_t> &out,
             std::string *err)
{
    out.reserve(in.size());
    for (std::uint64_t v : in) {
        if (v >= limit) {
            badDump("event dump: column '" + key + "' value " +
                    std::to_string(v) + " out of range", err);
            return false;
        }
        out.push_back(static_cast<std::uint8_t>(v));
    }
    return true;
}

} // namespace

std::string
eventKindKey(EventKind kind)
{
    switch (kind) {
      case EventKind::Retire:
        return "retire";
      case EventKind::Fetch:
        return "fetch";
      case EventKind::Prefetch:
        return "prefetch";
    }
    return "?";
}

std::optional<EventKind>
eventKindFromKey(const std::string &s)
{
    for (unsigned i = 0; i < numEventKinds; ++i) {
        const auto kind = static_cast<EventKind>(i);
        if (s == eventKindKey(kind))
            return kind;
    }
    return std::nullopt;
}

std::string
eventCounterKey(EventCounter counter)
{
    switch (counter) {
      case EventCounter::Accesses:
        return "accesses";
      case EventCounter::Misses:
        return "misses";
      case EventCounter::WrongPathFetches:
        return "wrong_path_fetches";
      case EventCounter::Mispredicts:
        return "mispredicts";
      case EventCounter::Interrupts:
        return "interrupts";
      case EventCounter::PrefetchFills:
        return "prefetch_fills";
    }
    return "?";
}

std::optional<EventCounter>
eventCounterFromKey(const std::string &s)
{
    for (unsigned i = 0; i < numEventCounters; ++i) {
        const auto counter = static_cast<EventCounter>(i);
        if (s == eventCounterKey(counter))
            return counter;
    }
    return std::nullopt;
}

std::uint64_t
CounterSnapshot::of(EventCounter counter) const
{
    switch (counter) {
      case EventCounter::Accesses:
        return accesses;
      case EventCounter::Misses:
        return misses;
      case EventCounter::WrongPathFetches:
        return wrongPathFetches;
      case EventCounter::Mispredicts:
        return mispredicts;
      case EventCounter::Interrupts:
        return interrupts;
      case EventCounter::PrefetchFills:
        return prefetchFills;
    }
    return 0;
}

EventStore::EventStore(EventStoreOptions opts) : opts_(opts) {}

void
EventStore::pushSlice(InstCount instr, Addr pc, Addr block, EventKind kind,
                      unsigned core, TrapLevel trap, bool hit,
                      bool prefetched, bool correct)
{
    if (sliceInstr_.size() >= opts_.maxSlices) {
        ++droppedSlices_;
        return;
    }
    sliceInstr_.push_back(instr);
    slicePc_.push_back(pc);
    sliceBlock_.push_back(block);
    sliceKind_.push_back(static_cast<std::uint8_t>(kind));
    sliceCore_.push_back(static_cast<std::uint8_t>(core));
    sliceTrap_.push_back(trap);
    sliceHit_.push_back(hit ? 1 : 0);
    slicePrefetched_.push_back(prefetched ? 1 : 0);
    sliceCorrect_.push_back(correct ? 1 : 0);
}

void
EventStore::recordRetire(unsigned core, const RetiredInstr &instr)
{
    if (core >= retiredPerCore_.size())
        retiredPerCore_.resize(core + 1, 0);
    const InstCount idx = ++retiredPerCore_[core];
    if (opts_.recordRetires)
        pushSlice(idx, instr.pc, blockAddr(instr.pc), EventKind::Retire,
                  core, instr.trapLevel, false, false, true);
}

void
EventStore::recordAccess(unsigned core, const FetchAccess &access, Addr pc)
{
    if (!opts_.recordFetches)
        return;
    const InstCount idx =
        core < retiredPerCore_.size() ? retiredPerCore_[core] : 0;
    pushSlice(idx, pc, access.block, EventKind::Fetch, core,
              access.trapLevel, access.hit, access.wasPrefetched,
              access.correctPath);
}

void
EventStore::recordPrefetchFill(unsigned core, Addr block)
{
    if (!opts_.recordPrefetches)
        return;
    const InstCount idx =
        core < retiredPerCore_.size() ? retiredPerCore_[core] : 0;
    pushSlice(idx, blockBase(block), block, EventKind::Prefetch, core, 0,
              false, false, true);
}

bool
EventStore::counterSampleDue(unsigned core) const
{
    if (opts_.counterWindow == 0 || core >= retiredPerCore_.size())
        return false;
    const InstCount n = retiredPerCore_[core];
    return n != 0 && n % opts_.counterWindow == 0;
}

void
EventStore::sampleCounters(unsigned core, const CounterSnapshot &snap)
{
    const InstCount idx =
        core < retiredPerCore_.size() ? retiredPerCore_[core] : 0;
    for (unsigned c = 0; c < numEventCounters; ++c) {
        counterInstr_.push_back(idx);
        counterCore_.push_back(static_cast<std::uint8_t>(core));
        counterId_.push_back(static_cast<std::uint8_t>(c));
        counterValue_.push_back(snap.of(static_cast<EventCounter>(c)));
    }
}

void
EventStore::clear()
{
    *this = EventStore(opts_);
}

InstCount
EventStore::retired(unsigned core) const
{
    return core < retiredPerCore_.size() ? retiredPerCore_[core] : 0;
}

std::optional<InstCount>
EventStore::injectCounterSkew(EventCounter counter, std::size_t ordinal,
                              std::uint64_t delta)
{
    const auto id = static_cast<std::uint8_t>(counter);
    std::vector<std::size_t> rows;
    for (std::size_t i = 0; i < counterId_.size(); ++i)
        if (counterId_[i] == id)
            rows.push_back(i);
    if (rows.empty())
        return std::nullopt;
    const std::size_t row =
        rows[ordinal < rows.size() ? ordinal : rows.size() - 1];
    counterValue_[row] += delta;
    return counterInstr_[row];
}

ResultValue
toResult(const EventStore &store)
{
    const EventStoreOptions &o = store.options();
    ResultValue options = ResultValue::object();
    options.set("counter_window", o.counterWindow);
    options.set("max_slices", o.maxSlices);
    options.set("record_retires", o.recordRetires);
    options.set("record_fetches", o.recordFetches);
    options.set("record_prefetches", o.recordPrefetches);

    ResultValue slices = ResultValue::object();
    slices.set("instr", toResultArray(store.sliceInstr()));
    slices.set("pc", toResultArray(store.slicePc()));
    slices.set("block", toResultArray(store.sliceBlock()));
    slices.set("kind", toResultArray(store.sliceKind()));
    slices.set("core", toResultArray(store.sliceCore()));
    slices.set("trap", toResultArray(store.sliceTrap()));
    slices.set("hit", toResultArray(store.sliceHit()));
    slices.set("prefetched", toResultArray(store.slicePrefetched()));
    slices.set("correct", toResultArray(store.sliceCorrect()));

    ResultValue counters = ResultValue::object();
    counters.set("instr", toResultArray(store.counterInstr()));
    counters.set("core", toResultArray(store.counterCore()));
    counters.set("counter", toResultArray(store.counterId()));
    counters.set("value", toResultArray(store.counterValue()));

    std::vector<InstCount> retiredCol;
    retiredCol.reserve(store.coresSeen());
    for (unsigned c = 0; c < store.coresSeen(); ++c)
        retiredCol.push_back(store.retired(c));

    ResultValue out = ResultValue::object();
    out.set("schema", schemaTag);
    out.set("options", std::move(options));
    out.set("slices", std::move(slices));
    out.set("counters", std::move(counters));
    out.set("dropped_slices", store.droppedSlices());
    out.set("retired", toResultArray(retiredCol));
    return out;
}

std::optional<EventStore>
eventStoreFromResult(const ResultValue &v, std::string *err)
{
    if (v.kind() != ResultValue::Kind::Object) {
        badDump("event dump: not a JSON object", err);
        return std::nullopt;
    }
    const ResultValue *schema = v.find("schema");
    if (!schema || schema->kind() != ResultValue::Kind::String ||
        schema->str() != schemaTag) {
        badDump(std::string("event dump: missing or unsupported schema "
                            "(want \"") + schemaTag + "\")", err);
        return std::nullopt;
    }

    EventStoreOptions opts;
    const ResultValue *options = v.find("options");
    if (!options || options->kind() != ResultValue::Kind::Object) {
        badDump("event dump: missing 'options' object", err);
        return std::nullopt;
    }
    const auto optUint = [&](const char *key, std::uint64_t &out) {
        const ResultValue *m = options->find(key);
        if (!m || m->kind() != ResultValue::Kind::Uint)
            return false;
        out = m->uintValue();
        return true;
    };
    const auto optBool = [&](const char *key, bool &out) {
        const ResultValue *m = options->find(key);
        if (!m || m->kind() != ResultValue::Kind::Bool)
            return false;
        out = m->boolean();
        return true;
    };
    if (!optUint("counter_window", opts.counterWindow) ||
        !optUint("max_slices", opts.maxSlices) ||
        !optBool("record_retires", opts.recordRetires) ||
        !optBool("record_fetches", opts.recordFetches) ||
        !optBool("record_prefetches", opts.recordPrefetches)) {
        badDump("event dump: malformed 'options'", err);
        return std::nullopt;
    }

    const ResultValue *slices = v.find("slices");
    const ResultValue *counters = v.find("counters");
    if (!slices || slices->kind() != ResultValue::Kind::Object ||
        !counters || counters->kind() != ResultValue::Kind::Object) {
        badDump("event dump: missing 'slices' or 'counters' table", err);
        return std::nullopt;
    }

    EventStore store(opts);

    std::vector<std::uint64_t> kind, core, trap, hit, prefetched, correct;
    if (!column(*slices, "instr", store.sliceInstr_, err) ||
        !column(*slices, "pc", store.slicePc_, err) ||
        !column(*slices, "block", store.sliceBlock_, err) ||
        !column(*slices, "kind", kind, err) ||
        !column(*slices, "core", core, err) ||
        !column(*slices, "trap", trap, err) ||
        !column(*slices, "hit", hit, err) ||
        !column(*slices, "prefetched", prefetched, err) ||
        !column(*slices, "correct", correct, err))
        return std::nullopt;
    if (!narrowColumn(kind, numEventKinds, "kind", store.sliceKind_,
                      err) ||
        !narrowColumn(core, 256, "core", store.sliceCore_, err) ||
        !narrowColumn(trap, 256, "trap", store.sliceTrap_, err) ||
        !narrowColumn(hit, 2, "hit", store.sliceHit_, err) ||
        !narrowColumn(prefetched, 2, "prefetched",
                      store.slicePrefetched_, err) ||
        !narrowColumn(correct, 2, "correct", store.sliceCorrect_, err))
        return std::nullopt;
    const std::size_t nSlices = store.sliceInstr().size();
    if (store.slicePc().size() != nSlices ||
        store.sliceBlock().size() != nSlices ||
        store.sliceKind().size() != nSlices ||
        store.sliceCore().size() != nSlices ||
        store.sliceTrap().size() != nSlices ||
        store.sliceHit().size() != nSlices ||
        store.slicePrefetched().size() != nSlices ||
        store.sliceCorrect().size() != nSlices) {
        badDump("event dump: slices columns have unequal lengths", err);
        return std::nullopt;
    }

    std::vector<std::uint64_t> cCore, cId;
    if (!column(*counters, "instr", store.counterInstr_, err) ||
        !column(*counters, "core", cCore, err) ||
        !column(*counters, "counter", cId, err) ||
        !column(*counters, "value", store.counterValue_, err))
        return std::nullopt;
    if (!narrowColumn(cCore, 256, "core", store.counterCore_, err) ||
        !narrowColumn(cId, numEventCounters, "counter",
                      store.counterId_, err))
        return std::nullopt;
    const std::size_t nCounters = store.counterInstr().size();
    if (store.counterCore().size() != nCounters ||
        store.counterId().size() != nCounters ||
        store.counterValue().size() != nCounters) {
        badDump("event dump: counters columns have unequal lengths", err);
        return std::nullopt;
    }

    const ResultValue *dropped = v.find("dropped_slices");
    if (!dropped || dropped->kind() != ResultValue::Kind::Uint) {
        badDump("event dump: missing 'dropped_slices'", err);
        return std::nullopt;
    }
    store.droppedSlices_ = dropped->uintValue();

    const ResultValue *retired = v.find("retired");
    if (!retired) {
        badDump("event dump: missing 'retired'", err);
        return std::nullopt;
    }
    auto retiredCol = uintArrayFromResult(*retired);
    if (!retiredCol) {
        badDump("event dump: 'retired' is not an unsigned-integer array",
                err);
        return std::nullopt;
    }
    store.retiredPerCore_ = std::move(*retiredCol);

    return store;
}

} // namespace pifetch
