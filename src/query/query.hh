/**
 * @file
 * Filter-aggregate query engine over the columnar event store.
 *
 * A deliberately small SQL-flavoured surface, following the Perfetto
 * trace_processor idiom of querying slices/counters tables instead of
 * re-running the simulator:
 *
 *   select <item>(, <item>)* from <table>
 *       [where <pred> (and <pred>)*]
 *       [group by <col>(, <col>)*]
 *       [window N]
 *
 * with items `col`, `count()`, `sum(col)`, `min(col)`, `max(col)`,
 * `avg(col)`; predicates `col (== | != | < | <= | > | >=) literal`;
 * literals unsigned integers, event-kind names for the kind column,
 * counter names for the counter column, and true/false for the flag
 * columns. `window N` derives a window column (instr / N) usable in
 * select/where/group by, which is what the windowed differential
 * oracle groups by.
 *
 * Tables and columns:
 *   slices:   seq instr pc block region kind core trap hit
 *             prefetched correct [window]
 *   counters: seq instr core counter value [window]
 *
 * `region` is the block address divided by 8 — the paper's 8-block
 * (512 B) spatial region granularity. Results come back as a
 * canonical ResultValue table {title, columns, rows} so the existing
 * JSON/CSV/text renderers apply unchanged; grouped rows are emitted
 * in lexicographic group-key order, making output byte-stable and
 * thread-count independent.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/results.hh"
#include "query/event_store.hh"

namespace pifetch {

/** Which event-store table a query scans. */
enum class QueryTable : std::uint8_t { Slices, Counters };

/** Aggregate function of a select item. */
enum class QueryAgg : std::uint8_t { Count, Sum, Min, Max, Avg };

/** Comparison operator of a where predicate. */
enum class QueryCmp : std::uint8_t { Eq, Ne, Lt, Le, Gt, Ge };

/** One select item: a plain column or an aggregate over one. */
struct QuerySelect
{
    bool aggregate = false;
    QueryAgg agg = QueryAgg::Count;
    /** Source column; empty for count(). */
    std::string column;
};

/** One conjunct of the where clause. */
struct QueryPredicate
{
    std::string column;
    QueryCmp op = QueryCmp::Eq;
    /** Literal, resolved to the column's numeric encoding. */
    std::uint64_t value = 0;
};

/** A parsed query. */
struct Query
{
    QueryTable table = QueryTable::Slices;
    std::vector<QuerySelect> select;
    std::vector<QueryPredicate> where;
    std::vector<std::string> groupBy;
    /** Window size in retired instructions; 0 = no window clause. */
    InstCount window = 0;
};

/**
 * Parse the grammar above (keywords and column names are lowercase).
 * Returns nullopt and sets @p err on a syntax error, an unknown
 * table/column/aggregate, or a literal that does not fit its column.
 */
std::optional<Query> parseQuery(const std::string &text,
                                std::string *err = nullptr);

/** Canonical textual rendering (parses back to an equal query). */
std::string queryText(const Query &q);

/**
 * Run @p q against @p store. Returns a {title, columns, rows} table
 * (title = queryText, one column per select item); nullopt and sets
 * @p err on semantic errors: a window column without a window clause,
 * a plain select item missing from group by when aggregating, or a
 * group by without any aggregate.
 */
std::optional<ResultValue> runQuery(const EventStore &store,
                                    const Query &q,
                                    std::string *err = nullptr);

/**
 * Canned report reproducing the paper's Fig. 2-style stream-length
 * profile from stored Fetch slices alone: correct-path fetches are
 * scanned per core in record order, consecutive misses form streams,
 * and stream lengths are bucketed by power of two — once counting
 * streams, once weighted by the misses they contain.
 */
ResultValue missStreamLengthTable(const EventStore &store);

} // namespace pifetch
