/**
 * @file
 * In-memory columnar event store for per-run trace analytics.
 *
 * Both simulation engines can optionally populate an EventStore
 * through the unified observer API (ObserverConfig::events, see
 * sim/observer.hh): when no store is attached, the replay hot path
 * pays one predictable branch per instruction and nothing else (the
 * perf gate locks that). When
 * attached, every retired instruction, block-granularity fetch access
 * and prefetch fill appends a row to the *slices* table, and the
 * engine samples its cumulative counters into the *counters* table at
 * fixed retired-instruction windows.
 *
 * The layout follows the Perfetto trace_processor idiom: parallel
 * per-column vectors (slices + counters tables) instead of an array
 * of structs, so the filter/aggregate query layer (query.hh) scans
 * only the columns a query touches. A store serializes to a canonical
 * columnar JSON dump (`pifetch query --dump`) and loads back exactly,
 * so a run becomes a queryable dataset without re-simulating.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/results.hh"
#include "common/types.hh"
#include "core/frontend.hh"
#include "trace/record.hh"

namespace pifetch {

/** Row class of a slices-table entry. */
enum class EventKind : std::uint8_t {
    Retire = 0,    //!< one retired instruction (off by default)
    Fetch = 1,     //!< one block-granularity fetch access
    Prefetch = 2,  //!< one prefetch fill installed into the L1-I
};

/** Number of distinct EventKind values. */
constexpr unsigned numEventKinds = 3;

/** Cumulative run counters sampled into the counters table. */
enum class EventCounter : std::uint8_t {
    Accesses = 0,         //!< correct-path block fetches
    Misses = 1,           //!< correct-path L1-I misses
    WrongPathFetches = 2, //!< wrong-path burst fetches
    Mispredicts = 3,      //!< mispredicted control transfers
    Interrupts = 4,       //!< spontaneous interrupts delivered
    PrefetchFills = 5,    //!< prefetch fills installed
};

/** Number of distinct EventCounter values. */
constexpr unsigned numEventCounters = 6;

/** Stable CLI/JSON token for an event kind ("retire", "fetch"...). */
std::string eventKindKey(EventKind kind);

/** Parse an eventKindKey() token (exact match; nullopt otherwise). */
std::optional<EventKind> eventKindFromKey(const std::string &s);

/** Stable CLI/JSON token for a counter ("accesses", "misses"...). */
std::string eventCounterKey(EventCounter counter);

/** Parse an eventCounterKey() token (exact match; nullopt otherwise). */
std::optional<EventCounter> eventCounterFromKey(const std::string &s);

/** What an attached engine records, and how much. */
struct EventStoreOptions
{
    /**
     * Counter-sample stride in retired instructions: a row per
     * counter lands in the counters table every `counterWindow`
     * retires (per core). 0 disables counter sampling.
     */
    InstCount counterWindow = 4096;

    /**
     * Overflow cap on the slices table. Appends beyond the cap are
     * dropped (and counted in droppedSlices()) instead of growing
     * without bound; counter samples are tiny and never capped.
     */
    std::uint64_t maxSlices = std::uint64_t{1} << 22;

    /** Record a Retire slice per retired instruction (verbose). */
    bool recordRetires = false;
    /** Record a Fetch slice per block-granularity fetch access. */
    bool recordFetches = true;
    /** Record a Prefetch slice per prefetch fill. */
    bool recordPrefetches = true;
};

/**
 * One snapshot of an engine's cumulative counters, taken at a
 * counter-window boundary. Both engines fill it from the identical
 * sources (front-end, executor, L1-I), so samples at the same retired
 * instruction index are directly comparable across engines.
 */
struct CounterSnapshot
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
    std::uint64_t wrongPathFetches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t interrupts = 0;
    std::uint64_t prefetchFills = 0;

    /** The field selected by @p counter. */
    std::uint64_t of(EventCounter counter) const;
};

/**
 * Columnar event store: a slices table (one row per retire / fetch /
 * prefetch event) and a counters table (cumulative counter samples at
 * fixed retired-instruction windows), both as parallel per-column
 * vectors.
 *
 * Recording is single-threaded by design: one store belongs to one
 * engine (or one interleaving of engines on the same thread). The
 * multicore runners attach one store per core and tag rows with the
 * core column.
 */
class EventStore final
{
  public:
    explicit EventStore(EventStoreOptions opts = EventStoreOptions{});

    const EventStoreOptions &options() const { return opts_; }

    // ------------------------------------------- recording (engines)

    /**
     * Record the retirement of @p instr on @p core. Always advances
     * the per-core instruction index (which drives the instr column
     * and counter-sample scheduling), and appends a Retire slice when
     * options().recordRetires is set.
     */
    void recordRetire(unsigned core, const RetiredInstr &instr);

    /**
     * Record one block-granularity fetch access triggered by the
     * current instruction. @p pc is the triggering instruction's PC;
     * wrong-path rows store the block base instead (the same
     * convention as FetchInfo::pc).
     */
    void recordAccess(unsigned core, const FetchAccess &access, Addr pc);

    /** Record a prefetch fill of @p block into the L1-I. */
    void recordPrefetchFill(unsigned core, Addr block);

    /**
     * True when the last recordRetire() landed on a counter-window
     * boundary and a sample should be taken for @p core.
     */
    bool counterSampleDue(unsigned core) const;

    /** Append one row per counter with @p core's current snapshot. */
    void sampleCounters(unsigned core, const CounterSnapshot &snap);

    /** Reset to a freshly-constructed (empty) store. */
    void clear();

    // -------------------------------------------- the slices table

    std::size_t sliceCount() const { return sliceInstr_.size(); }
    const std::vector<InstCount> &sliceInstr() const { return sliceInstr_; }
    const std::vector<Addr> &slicePc() const { return slicePc_; }
    const std::vector<Addr> &sliceBlock() const { return sliceBlock_; }
    const std::vector<std::uint8_t> &sliceKind() const { return sliceKind_; }
    const std::vector<std::uint8_t> &sliceCore() const { return sliceCore_; }
    const std::vector<std::uint8_t> &sliceTrap() const { return sliceTrap_; }
    const std::vector<std::uint8_t> &sliceHit() const { return sliceHit_; }
    const std::vector<std::uint8_t> &slicePrefetched() const
    {
        return slicePrefetched_;
    }
    const std::vector<std::uint8_t> &sliceCorrect() const
    {
        return sliceCorrect_;
    }

    /** Slices dropped after the maxSlices cap filled up. */
    std::uint64_t droppedSlices() const { return droppedSlices_; }

    // ------------------------------------------- the counters table

    std::size_t counterCount() const { return counterInstr_.size(); }
    const std::vector<InstCount> &counterInstr() const
    {
        return counterInstr_;
    }
    const std::vector<std::uint8_t> &counterCore() const
    {
        return counterCore_;
    }
    const std::vector<std::uint8_t> &counterId() const
    {
        return counterId_;
    }
    const std::vector<std::uint64_t> &counterValue() const
    {
        return counterValue_;
    }

    /** Instructions recorded for @p core (0 if the core never ran). */
    InstCount retired(unsigned core) const;

    /** Cores that recorded at least one instruction. */
    unsigned coresSeen() const
    {
        return static_cast<unsigned>(retiredPerCore_.size());
    }

    /**
     * Harness fault injection (mirrors checker.hh's post-run stat
     * perturbations): add @p delta to the value of the @p ordinal-th
     * sample of @p counter (clamped to the last sample), leaving the
     * simulator and every other row untouched. Returns the instr
     * index of the perturbed sample, or nullopt when no sample of
     * that counter exists.
     */
    std::optional<InstCount> injectCounterSkew(EventCounter counter,
                                               std::size_t ordinal,
                                               std::uint64_t delta);

  private:
    /** The dump loader rebuilds the columns in place. */
    friend std::optional<EventStore>
    eventStoreFromResult(const ResultValue &v, std::string *err);

    /** Append one slices row (drops and counts past the cap). */
    void pushSlice(InstCount instr, Addr pc, Addr block, EventKind kind,
                   unsigned core, TrapLevel trap, bool hit,
                   bool prefetched, bool correct);

    EventStoreOptions opts_;

    // slices table (parallel columns)
    std::vector<InstCount> sliceInstr_;
    std::vector<Addr> slicePc_;
    std::vector<Addr> sliceBlock_;
    std::vector<std::uint8_t> sliceKind_;
    std::vector<std::uint8_t> sliceCore_;
    std::vector<std::uint8_t> sliceTrap_;
    std::vector<std::uint8_t> sliceHit_;
    std::vector<std::uint8_t> slicePrefetched_;
    std::vector<std::uint8_t> sliceCorrect_;
    std::uint64_t droppedSlices_ = 0;

    // counters table (parallel columns)
    std::vector<InstCount> counterInstr_;
    std::vector<std::uint8_t> counterCore_;
    std::vector<std::uint8_t> counterId_;
    std::vector<std::uint64_t> counterValue_;

    /** Per-core retired-instruction indices (grown on demand). */
    std::vector<InstCount> retiredPerCore_;
};

/**
 * Canonical columnar JSON dump of a store: schema tag, options, both
 * tables as per-column arrays, drop/retire bookkeeping. Byte-stable
 * for identical stores; eventStoreFromResult() round-trips exactly.
 */
ResultValue toResult(const EventStore &store);

/**
 * Parse a dump produced by toResult(). Validates the schema tag,
 * column lengths and enum ranges; returns nullopt and sets @p err on
 * malformed input.
 */
std::optional<EventStore> eventStoreFromResult(const ResultValue &v,
                                               std::string *err = nullptr);

} // namespace pifetch
