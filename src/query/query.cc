/**
 * @file
 * Query parser and executor for the columnar event store.
 */

#include "query/query.hh"

#include <algorithm>
#include <map>

namespace pifetch {

namespace {

/** How a column's values parse (as literals) and render (in rows). */
enum class ColType : std::uint8_t {
    Uint,     //!< plain unsigned integer
    Kind,     //!< EventKind, rendered via eventKindKey
    Counter,  //!< EventCounter, rendered via eventCounterKey
    Flag,     //!< boolean, rendered true/false
};

struct ColumnDef
{
    const char *name;
    ColType type;
};

constexpr ColumnDef slicesColumns[] = {
    {"seq", ColType::Uint},        {"instr", ColType::Uint},
    {"pc", ColType::Uint},         {"block", ColType::Uint},
    {"region", ColType::Uint},     {"kind", ColType::Kind},
    {"core", ColType::Uint},       {"trap", ColType::Uint},
    {"hit", ColType::Flag},        {"prefetched", ColType::Flag},
    {"correct", ColType::Flag},    {"window", ColType::Uint},
};

constexpr ColumnDef countersColumns[] = {
    {"seq", ColType::Uint},      {"instr", ColType::Uint},
    {"core", ColType::Uint},     {"counter", ColType::Counter},
    {"value", ColType::Uint},    {"window", ColType::Uint},
};

/** 8 blocks (512 B) per spatial region, the paper's granularity. */
constexpr unsigned regionShift = 3;

int
columnIndex(QueryTable table, const std::string &name)
{
    const ColumnDef *defs =
        table == QueryTable::Slices ? slicesColumns : countersColumns;
    const int n = table == QueryTable::Slices
                      ? static_cast<int>(std::size(slicesColumns))
                      : static_cast<int>(std::size(countersColumns));
    for (int i = 0; i < n; ++i)
        if (name == defs[i].name)
            return i;
    return -1;
}

ColType
columnType(QueryTable table, int col)
{
    return (table == QueryTable::Slices ? slicesColumns
                                        : countersColumns)[col].type;
}

std::uint64_t
cellValue(const EventStore &s, QueryTable table, int col,
          std::size_t row, InstCount window)
{
    if (table == QueryTable::Slices) {
        switch (col) {
          case 0:
            return row;
          case 1:
            return s.sliceInstr()[row];
          case 2:
            return s.slicePc()[row];
          case 3:
            return s.sliceBlock()[row];
          case 4:
            return s.sliceBlock()[row] >> regionShift;
          case 5:
            return s.sliceKind()[row];
          case 6:
            return s.sliceCore()[row];
          case 7:
            return s.sliceTrap()[row];
          case 8:
            return s.sliceHit()[row];
          case 9:
            return s.slicePrefetched()[row];
          case 10:
            return s.sliceCorrect()[row];
          case 11:
            return s.sliceInstr()[row] / window;
        }
    } else {
        switch (col) {
          case 0:
            return row;
          case 1:
            return s.counterInstr()[row];
          case 2:
            return s.counterCore()[row];
          case 3:
            return s.counterId()[row];
          case 4:
            return s.counterValue()[row];
          case 5:
            return s.counterInstr()[row] / window;
        }
    }
    panic("query: cellValue on unknown column");
}

/** Render a plain column value with the column's native type. */
ResultValue
renderValue(ColType type, std::uint64_t v)
{
    switch (type) {
      case ColType::Uint:
        return ResultValue(v);
      case ColType::Kind:
        return ResultValue(eventKindKey(static_cast<EventKind>(v)));
      case ColType::Counter:
        return ResultValue(eventCounterKey(static_cast<EventCounter>(v)));
      case ColType::Flag:
        return ResultValue(v != 0);
    }
    return ResultValue(v);
}

/** Render a literal in query text (inverse of literal parsing). */
std::string
literalText(ColType type, std::uint64_t v)
{
    switch (type) {
      case ColType::Uint:
        return std::to_string(v);
      case ColType::Kind:
        return v < numEventKinds
                   ? eventKindKey(static_cast<EventKind>(v))
                   : std::to_string(v);
      case ColType::Counter:
        return v < numEventCounters
                   ? eventCounterKey(static_cast<EventCounter>(v))
                   : std::to_string(v);
      case ColType::Flag:
        return v ? "true" : "false";
    }
    return std::to_string(v);
}

const char *
aggName(QueryAgg agg)
{
    switch (agg) {
      case QueryAgg::Count:
        return "count";
      case QueryAgg::Sum:
        return "sum";
      case QueryAgg::Min:
        return "min";
      case QueryAgg::Max:
        return "max";
      case QueryAgg::Avg:
        return "avg";
    }
    return "?";
}

std::optional<QueryAgg>
aggFromName(const std::string &s)
{
    for (QueryAgg a : {QueryAgg::Count, QueryAgg::Sum, QueryAgg::Min,
                       QueryAgg::Max, QueryAgg::Avg})
        if (s == aggName(a))
            return a;
    return std::nullopt;
}

const char *
cmpText(QueryCmp op)
{
    switch (op) {
      case QueryCmp::Eq:
        return "==";
      case QueryCmp::Ne:
        return "!=";
      case QueryCmp::Lt:
        return "<";
      case QueryCmp::Le:
        return "<=";
      case QueryCmp::Gt:
        return ">";
      case QueryCmp::Ge:
        return ">=";
    }
    return "?";
}

std::optional<QueryCmp>
cmpFromText(const std::string &s)
{
    for (QueryCmp op : {QueryCmp::Eq, QueryCmp::Ne, QueryCmp::Lt,
                        QueryCmp::Le, QueryCmp::Gt, QueryCmp::Ge})
        if (s == cmpText(op))
            return op;
    return std::nullopt;
}

bool
compare(std::uint64_t lhs, QueryCmp op, std::uint64_t rhs)
{
    switch (op) {
      case QueryCmp::Eq:
        return lhs == rhs;
      case QueryCmp::Ne:
        return lhs != rhs;
      case QueryCmp::Lt:
        return lhs < rhs;
      case QueryCmp::Le:
        return lhs <= rhs;
      case QueryCmp::Gt:
        return lhs > rhs;
      case QueryCmp::Ge:
        return lhs >= rhs;
    }
    return false;
}

bool
isWordChar(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_';
}

std::optional<std::vector<std::string>>
tokenize(const std::string &text, std::string *err)
{
    std::vector<std::string> toks;
    std::size_t i = 0;
    while (i < text.size()) {
        const char c = text[i];
        if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
            ++i;
        } else if (c == ',' || c == '(' || c == ')') {
            toks.emplace_back(1, c);
            ++i;
        } else if (c == '=' || c == '!' || c == '<' || c == '>') {
            if (i + 1 < text.size() && text[i + 1] == '=') {
                toks.push_back(text.substr(i, 2));
                i += 2;
            } else if (c == '<' || c == '>') {
                toks.emplace_back(1, c);
                ++i;
            } else {
                if (err)
                    *err = std::string("query: stray '") + c + "'";
                return std::nullopt;
            }
        } else if (isWordChar(c)) {
            std::size_t j = i;
            while (j < text.size() && isWordChar(text[j]))
                ++j;
            toks.push_back(text.substr(i, j - i));
            i = j;
        } else {
            if (err)
                *err = std::string("query: unexpected character '") + c +
                       "'";
            return std::nullopt;
        }
    }
    return toks;
}

std::optional<std::uint64_t>
parseUint(const std::string &s)
{
    if (s.empty())
        return std::nullopt;
    std::uint64_t v = 0;
    for (char c : s) {
        if (c < '0' || c > '9')
            return std::nullopt;
        const std::uint64_t next = v * 10 + static_cast<unsigned>(c - '0');
        if (next < v)
            return std::nullopt;
        v = next;
    }
    return v;
}

/** Parse a literal token against the column's type. */
std::optional<std::uint64_t>
parseLiteral(ColType type, const std::string &tok)
{
    switch (type) {
      case ColType::Uint:
        return parseUint(tok);
      case ColType::Kind:
        if (auto k = eventKindFromKey(tok))
            return static_cast<std::uint64_t>(*k);
        if (auto n = parseUint(tok); n && *n < numEventKinds)
            return n;
        return std::nullopt;
      case ColType::Counter:
        if (auto c = eventCounterFromKey(tok))
            return static_cast<std::uint64_t>(*c);
        if (auto n = parseUint(tok); n && *n < numEventCounters)
            return n;
        return std::nullopt;
      case ColType::Flag:
        if (tok == "true")
            return 1;
        if (tok == "false")
            return 0;
        if (auto n = parseUint(tok); n && *n < 2)
            return n;
        return std::nullopt;
    }
    return std::nullopt;
}

std::string
itemText(const QuerySelect &item)
{
    if (!item.aggregate)
        return item.column;
    if (item.agg == QueryAgg::Count)
        return "count()";
    return std::string(aggName(item.agg)) + "(" + item.column + ")";
}

/** Running aggregate state for one select item within one group. */
struct AggState
{
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
};

} // namespace

std::optional<Query>
parseQuery(const std::string &text, std::string *err)
{
    const auto fail = [&](const std::string &what) {
        if (err)
            *err = what;
        return std::nullopt;
    };

    auto toks = tokenize(text, err);
    if (!toks)
        return std::nullopt;
    const std::vector<std::string> &t = *toks;
    std::size_t pos = 0;

    const auto peek = [&]() -> const std::string & {
        static const std::string empty;
        return pos < t.size() ? t[pos] : empty;
    };
    const auto eat = [&](const std::string &tok) {
        if (peek() != tok)
            return false;
        ++pos;
        return true;
    };

    Query q;
    if (!eat("select"))
        return fail("query: expected 'select'");

    // Select items (column names validated after 'from').
    do {
        const std::string head = peek();
        if (head.empty() || head == "from")
            return fail("query: expected a select item");
        ++pos;
        QuerySelect item;
        if (eat("(")) {
            const auto agg = aggFromName(head);
            if (!agg)
                return fail("query: unknown aggregate '" + head + "'");
            item.aggregate = true;
            item.agg = *agg;
            if (*agg == QueryAgg::Count) {
                if (!eat(")"))
                    return fail("query: count() takes no column");
            } else {
                item.column = peek();
                if (item.column.empty() || !isWordChar(item.column[0]))
                    return fail("query: expected a column in " +
                                std::string(aggName(*agg)) + "(...)");
                ++pos;
                if (!eat(")"))
                    return fail("query: expected ')' after " +
                                std::string(aggName(*agg)) + "(" +
                                item.column);
            }
        } else {
            item.column = head;
        }
        q.select.push_back(std::move(item));
    } while (eat(","));

    if (!eat("from"))
        return fail("query: expected 'from'");
    const std::string table = peek();
    if (table == "slices") {
        q.table = QueryTable::Slices;
    } else if (table == "counters") {
        q.table = QueryTable::Counters;
    } else {
        return fail("query: unknown table '" + table +
                    "' (want slices or counters)");
    }
    ++pos;

    if (eat("where")) {
        do {
            QueryPredicate pred;
            pred.column = peek();
            const int col = columnIndex(q.table, pred.column);
            if (col < 0)
                return fail("query: unknown column '" + pred.column +
                            "' in where");
            ++pos;
            const auto op = cmpFromText(peek());
            if (!op)
                return fail("query: expected a comparison after '" +
                            pred.column + "'");
            pred.op = *op;
            ++pos;
            const std::string lit = peek();
            const auto value = parseLiteral(columnType(q.table, col), lit);
            if (!value)
                return fail("query: bad literal '" + lit +
                            "' for column '" + pred.column + "'");
            pred.value = *value;
            ++pos;
            q.where.push_back(std::move(pred));
        } while (eat("and"));
    }

    if (eat("group")) {
        if (!eat("by"))
            return fail("query: expected 'by' after 'group'");
        do {
            const std::string col = peek();
            if (columnIndex(q.table, col) < 0)
                return fail("query: unknown column '" + col +
                            "' in group by");
            ++pos;
            q.groupBy.push_back(col);
        } while (eat(","));
    }

    if (eat("window")) {
        const auto n = parseUint(peek());
        if (!n || *n == 0)
            return fail("query: window wants a positive instruction "
                        "count");
        q.window = *n;
        ++pos;
    }

    if (pos != t.size())
        return fail("query: trailing input at '" + peek() + "'");

    // Validate select / group-by columns now that the table is known.
    for (const QuerySelect &item : q.select)
        if (!(item.aggregate && item.agg == QueryAgg::Count) &&
            columnIndex(q.table, item.column) < 0)
            return fail("query: unknown column '" + item.column + "'");

    return q;
}

std::string
queryText(const Query &q)
{
    std::string out = "select ";
    for (std::size_t i = 0; i < q.select.size(); ++i) {
        if (i)
            out += ", ";
        out += itemText(q.select[i]);
    }
    out += " from ";
    out += q.table == QueryTable::Slices ? "slices" : "counters";
    for (std::size_t i = 0; i < q.where.size(); ++i) {
        out += i ? " and " : " where ";
        const QueryPredicate &p = q.where[i];
        const int col = columnIndex(q.table, p.column);
        const ColType type =
            col >= 0 ? columnType(q.table, col) : ColType::Uint;
        out += p.column;
        out += " ";
        out += cmpText(p.op);
        out += " ";
        out += literalText(type, p.value);
    }
    for (std::size_t i = 0; i < q.groupBy.size(); ++i) {
        out += i ? ", " : " group by ";
        out += q.groupBy[i];
    }
    if (q.window) {
        out += " window ";
        out += std::to_string(q.window);
    }
    return out;
}

std::optional<ResultValue>
runQuery(const EventStore &store, const Query &q, std::string *err)
{
    const auto fail = [&](const std::string &what) {
        if (err)
            *err = what;
        return std::nullopt;
    };

    if (q.select.empty())
        return fail("query: empty select list");

    // Resolve every referenced column up front (hand-built Query
    // structs take the same path as parsed ones).
    const auto resolve = [&](const std::string &name,
                             int &out) -> std::optional<std::string> {
        out = columnIndex(q.table, name);
        if (out < 0)
            return "query: unknown column '" + name + "'";
        const bool isWindow =
            std::string((q.table == QueryTable::Slices
                             ? slicesColumns
                             : countersColumns)[out].name) == "window";
        if (isWindow && q.window == 0)
            return std::string("query: the window column needs a "
                               "'window N' clause");
        return std::nullopt;
    };

    bool anyAggregate = false;
    std::vector<int> selectCols(q.select.size(), -1);
    for (std::size_t i = 0; i < q.select.size(); ++i) {
        const QuerySelect &item = q.select[i];
        anyAggregate = anyAggregate || item.aggregate;
        if (item.aggregate && item.agg == QueryAgg::Count)
            continue;
        if (auto e = resolve(item.column, selectCols[i]))
            return fail(*e);
    }
    std::vector<int> groupCols(q.groupBy.size(), -1);
    for (std::size_t i = 0; i < q.groupBy.size(); ++i)
        if (auto e = resolve(q.groupBy[i], groupCols[i]))
            return fail(*e);
    std::vector<int> whereCols(q.where.size(), -1);
    for (std::size_t i = 0; i < q.where.size(); ++i)
        if (auto e = resolve(q.where[i].column, whereCols[i]))
            return fail(*e);

    if (!q.groupBy.empty() && !anyAggregate)
        return fail("query: group by needs an aggregate select item");
    // Map plain select items onto group-by positions when aggregating.
    std::vector<std::size_t> plainGroupSlot(q.select.size(), 0);
    if (anyAggregate) {
        for (std::size_t i = 0; i < q.select.size(); ++i) {
            if (q.select[i].aggregate)
                continue;
            const auto it = std::find(q.groupBy.begin(), q.groupBy.end(),
                                      q.select[i].column);
            if (it == q.groupBy.end())
                return fail("query: plain select item '" +
                            q.select[i].column +
                            "' must appear in group by");
            plainGroupSlot[i] =
                static_cast<std::size_t>(it - q.groupBy.begin());
        }
    }

    const std::size_t rows = q.table == QueryTable::Slices
                                 ? store.sliceCount()
                                 : store.counterCount();
    const auto cell = [&](int col, std::size_t row) {
        return cellValue(store, q.table, col, row, q.window);
    };
    const auto passes = [&](std::size_t row) {
        for (std::size_t i = 0; i < q.where.size(); ++i)
            if (!compare(cell(whereCols[i], row), q.where[i].op,
                         q.where[i].value))
                return false;
        return true;
    };

    std::vector<std::string> columns;
    columns.reserve(q.select.size());
    for (const QuerySelect &item : q.select)
        columns.push_back(itemText(item));
    ResultValue table = makeTable(queryText(q), columns);
    ResultValue *out = table.find("rows");

    if (!anyAggregate) {
        // Projection: matching rows in record order.
        for (std::size_t row = 0; row < rows; ++row) {
            if (!passes(row))
                continue;
            ResultValue r = ResultValue::array();
            for (std::size_t i = 0; i < q.select.size(); ++i)
                r.push(renderValue(columnType(q.table, selectCols[i]),
                                   cell(selectCols[i], row)));
            out->push(std::move(r));
        }
        return table;
    }

    // Aggregation: std::map keys give deterministic lexicographic
    // group order regardless of record order.
    std::map<std::vector<std::uint64_t>, std::vector<AggState>> groups;
    for (std::size_t row = 0; row < rows; ++row) {
        if (!passes(row))
            continue;
        std::vector<std::uint64_t> key;
        key.reserve(groupCols.size());
        for (int col : groupCols)
            key.push_back(cell(col, row));
        const auto it =
            groups.try_emplace(std::move(key), q.select.size()).first;
        for (std::size_t i = 0; i < q.select.size(); ++i) {
            const QuerySelect &item = q.select[i];
            if (!item.aggregate)
                continue;
            AggState &st = it->second[i];
            const std::uint64_t v = item.agg == QueryAgg::Count
                                        ? 0
                                        : cell(selectCols[i], row);
            if (st.count == 0) {
                st.min = v;
                st.max = v;
            } else {
                st.min = std::min(st.min, v);
                st.max = std::max(st.max, v);
            }
            ++st.count;
            st.sum += v;
        }
    }

    for (const auto &[key, states] : groups) {
        ResultValue r = ResultValue::array();
        for (std::size_t i = 0; i < q.select.size(); ++i) {
            const QuerySelect &item = q.select[i];
            if (!item.aggregate) {
                const std::size_t slot = plainGroupSlot[i];
                r.push(renderValue(columnType(q.table, groupCols[slot]),
                                   key[slot]));
                continue;
            }
            const AggState &st = states[i];
            switch (item.agg) {
              case QueryAgg::Count:
                r.push(st.count);
                break;
              case QueryAgg::Sum:
                r.push(st.sum);
                break;
              case QueryAgg::Min:
                r.push(st.min);
                break;
              case QueryAgg::Max:
                r.push(st.max);
                break;
              case QueryAgg::Avg:
                r.push(static_cast<double>(st.sum) /
                       static_cast<double>(st.count));
                break;
            }
        }
        out->push(std::move(r));
    }
    return table;
}

ResultValue
missStreamLengthTable(const EventStore &store)
{
    Log2Histogram streams(32);
    Log2Histogram missWeighted(32);
    std::vector<std::uint64_t> run;

    const auto endStream = [&](std::uint64_t &len) {
        if (len == 0)
            return;
        streams.add(len, 1.0);
        missWeighted.add(len, static_cast<double>(len));
        len = 0;
    };

    const std::size_t n = store.sliceCount();
    for (std::size_t i = 0; i < n; ++i) {
        if (store.sliceKind()[i] !=
                static_cast<std::uint8_t>(EventKind::Fetch) ||
            !store.sliceCorrect()[i])
            continue;
        const unsigned core = store.sliceCore()[i];
        if (core >= run.size())
            run.resize(core + 1, 0);
        if (!store.sliceHit()[i])
            ++run[core];
        else
            endStream(run[core]);
    }
    for (std::uint64_t &len : run)
        endStream(len);

    ResultValue table =
        makeTable("Miss-stream lengths (correct-path fetch slices)",
                  {"log2_len", "streams", "misses", "stream_fraction",
                   "miss_fraction"});
    ResultValue *rows = table.find("rows");
    const unsigned hi =
        std::max(streams.highestBucket(), missWeighted.highestBucket());
    if (streams.totalWeight() > 0.0) {
        for (unsigned b = 0; b <= hi; ++b) {
            ResultValue r = ResultValue::array();
            r.push(b);
            r.push(static_cast<std::uint64_t>(streams.weightAt(b)));
            r.push(static_cast<std::uint64_t>(missWeighted.weightAt(b)));
            r.push(streams.fractionAt(b));
            r.push(missWeighted.fractionAt(b));
            rows->push(std::move(r));
        }
    }
    return table;
}

} // namespace pifetch
