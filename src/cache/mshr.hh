/**
 * @file
 * Miss status holding registers for the cycle-level engine.
 *
 * Tracks in-flight block fills with their completion cycles. Demand
 * misses and prefetches share the file (Table I: 32 MSHRs on L1-I);
 * a full file back-pressures both.
 */

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace pifetch {

/**
 * A bounded set of outstanding misses keyed by block address.
 */
class MshrFile
{
  public:
    /** One outstanding fill. */
    struct Entry
    {
        Addr block = invalidAddr;
        Cycle readyAt = 0;
        bool isPrefetch = false;
        /** A demand access arrived while the fill was in flight. */
        bool demandHit = false;
    };

    explicit MshrFile(unsigned capacity);

    /** True when no further allocations are possible. */
    bool full() const { return entries_.size() >= capacity_; }

    /** True if a fill for @p block is already outstanding. */
    bool contains(Addr block) const
    {
        return entries_.count(block) != 0;
    }

    /**
     * Allocate an entry for @p block completing at @p ready_at.
     * @return false if the file is full or the block already present.
     */
    bool allocate(Addr block, Cycle ready_at, bool is_prefetch);

    /**
     * Record a demand access to an in-flight block (a prefetch that is
     * "caught" by demand becomes partially useful: the core waits only
     * the residual latency).
     * @return the completion cycle of the in-flight fill.
     */
    Cycle noteDemand(Addr block);

    /**
     * Remove and return all entries whose fills complete at or before
     * @p now, in completion order.
     */
    std::vector<Entry> drainReady(Cycle now);

    /** Outstanding entry count. */
    std::size_t size() const { return entries_.size(); }

    unsigned capacity() const { return capacity_; }

    /** Drop all entries. */
    void clear() { entries_.clear(); }

  private:
    unsigned capacity_;
    std::unordered_map<Addr, Entry> entries_;
};

} // namespace pifetch
