/**
 * @file
 * Set-associative cache implementation.
 */

#include "cache/cache.hh"

#include "common/bitops.hh"

namespace pifetch {

Cache::Cache(const CacheConfig &cfg, ReplacementKind repl,
             std::uint64_t seed)
    : sets_(cfg.sets()),
      ways_(cfg.assoc),
      stats_(cfg.name),
      hits_(stats_, "hits", "demand hits"),
      misses_(stats_, "misses", "demand misses"),
      prefetchFills_(stats_, "prefetch_fills", "lines filled by prefetch"),
      usefulPrefetches_(stats_, "useful_prefetches",
                        "first demand touches of prefetched lines"),
      unusedPrefetches_(stats_, "unused_prefetches",
                        "prefetched lines evicted untouched"),
      evictions_(stats_, "evictions", "valid lines evicted")
{
    if (sets_ == 0 || (sets_ & (sets_ - 1)) != 0)
        fatalError("cache '" + cfg.name + "': set count must be a power "
                   "of two (size/assoc/block mismatch)");
    if (ways_ == 0)
        fatalError("cache '" + cfg.name + "': associativity must be >= 1");
    setShift_ = static_cast<unsigned>(bits::countrZero(sets_));
    lines_.resize(sets_ * ways_);
    repl_ = makeReplacement(repl, sets_, ways_, seed);
}

unsigned
Cache::findWay(std::uint64_t set, Addr tag) const
{
    const std::uint64_t base = set * ways_;
    for (unsigned w = 0; w < ways_; ++w) {
        const Line &line = lines_[base + w];
        if (line.valid && line.tag == tag)
            return w;
    }
    return ways_;
}

Cache::AccessResult
Cache::access(Addr block)
{
    const std::uint64_t set = setOf(block);
    const Addr tag = tagOf(block);
    const unsigned way = findWay(set, tag);

    AccessResult res;
    if (way == ways_) {
        ++misses_;
        return res;
    }

    Line &line = lines_[set * ways_ + way];
    res.hit = true;
    if (line.prefetched) {
        res.firstDemandOfPrefetch = true;
        line.prefetched = false;
        ++usefulPrefetches_;
    }
    repl_->touch(set, way);
    ++hits_;
    return res;
}

bool
Cache::probe(Addr block) const
{
    return findWay(setOf(block), tagOf(block)) != ways_;
}

Addr
Cache::fill(Addr block, bool prefetched)
{
    const std::uint64_t set = setOf(block);
    const Addr tag = tagOf(block);
    unsigned way = findWay(set, tag);

    if (way != ways_) {
        // Already present (e.g. demand fill racing a prefetch): just
        // refresh recency; do not downgrade an existing demand line to
        // prefetched state.
        Line &line = lines_[set * ways_ + way];
        line.prefetched = line.prefetched && prefetched;
        repl_->touch(set, way);
        return invalidAddr;
    }

    // Prefer an invalid way before consulting the replacement policy.
    const std::uint64_t base = set * ways_;
    way = ways_;
    for (unsigned w = 0; w < ways_; ++w) {
        if (!lines_[base + w].valid) {
            way = w;
            break;
        }
    }

    Addr victim = invalidAddr;
    if (way == ways_) {
        way = repl_->victim(set);
        Line &old = lines_[base + way];
        victim = (old.tag << setShift_) | set;
        if (old.prefetched)
            ++unusedPrefetches_;
        ++evictions_;
    }

    Line &line = lines_[base + way];
    line.tag = tag;
    line.valid = true;
    line.prefetched = prefetched;
    if (prefetched)
        ++prefetchFills_;
    repl_->touch(set, way);
    return victim;
}

bool
Cache::invalidate(Addr block)
{
    const std::uint64_t set = setOf(block);
    const unsigned way = findWay(set, tagOf(block));
    if (way == ways_)
        return false;
    Line &line = lines_[set * ways_ + way];
    if (line.prefetched)
        ++unusedPrefetches_;
    line.valid = false;
    line.prefetched = false;
    line.tag = invalidAddr;
    return true;
}

bool
Cache::isPrefetched(Addr block) const
{
    const std::uint64_t set = setOf(block);
    const unsigned way = findWay(set, tagOf(block));
    if (way == ways_)
        return false;
    return lines_[set * ways_ + way].prefetched;
}

void
Cache::flush()
{
    for (Line &line : lines_)
        line = Line{};
    repl_->reset();
}

std::uint64_t
Cache::validLines() const
{
    std::uint64_t n = 0;
    for (const Line &line : lines_)
        n += line.valid ? 1 : 0;
    return n;
}

} // namespace pifetch
