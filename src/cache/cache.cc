/**
 * @file
 * Set-associative cache implementation.
 */

#include "cache/cache.hh"

#include <algorithm>

#include "common/bitops.hh"

namespace pifetch {

Cache::Cache(const CacheConfig &cfg, ReplacementKind repl,
             std::uint64_t seed)
    : sets_(cfg.sets()),
      ways_(cfg.assoc),
      stats_(cfg.name),
      hits_(stats_, "hits", "demand hits"),
      misses_(stats_, "misses", "demand misses"),
      prefetchFills_(stats_, "prefetch_fills", "lines filled by prefetch"),
      usefulPrefetches_(stats_, "useful_prefetches",
                        "first demand touches of prefetched lines"),
      unusedPrefetches_(stats_, "unused_prefetches",
                        "prefetched lines evicted untouched"),
      evictions_(stats_, "evictions", "valid lines evicted")
{
    if (sets_ == 0 || (sets_ & (sets_ - 1)) != 0)
        fatalError("cache '" + cfg.name + "': set count must be a power "
                   "of two (size/assoc/block mismatch)");
    if (ways_ == 0)
        fatalError("cache '" + cfg.name + "': associativity must be >= 1");
    setShift_ = static_cast<unsigned>(bits::countrZero(sets_));
    tags_.assign(sets_ * ways_, invalidAddr);
    valid_.assign(sets_ * ways_, 0);
    prefetched_.assign(sets_ * ways_, 0);
    if (repl == ReplacementKind::LRU)
        stamp_.assign(sets_ * ways_, 0);
    else
        repl_ = makeReplacement(repl, sets_, ways_, seed);
}

Cache::AccessResult
Cache::access(Addr block)
{
    const std::uint64_t set = setOf(block);
    const Addr tag = tagOf(block);
    const unsigned way = findWay(set, tag);

    AccessResult res;
    if (way == ways_) {
        ++misses_;
        return res;
    }

    const std::uint64_t idx = set * ways_ + way;
    res.hit = true;
    if (prefetched_[idx]) {
        res.firstDemandOfPrefetch = true;
        prefetched_[idx] = 0;
        ++usefulPrefetches_;
    }
    touchWay(set, way);
    ++hits_;
    return res;
}

Addr
Cache::fill(Addr block, bool prefetched)
{
    const std::uint64_t set = setOf(block);
    const Addr tag = tagOf(block);
    unsigned way = findWay(set, tag);
    const std::uint64_t base = set * ways_;

    if (way != ways_) {
        // Already present (e.g. demand fill racing a prefetch): just
        // refresh recency; do not downgrade an existing demand line to
        // prefetched state.
        prefetched_[base + way] =
            prefetched_[base + way] && prefetched ? 1 : 0;
        touchWay(set, way);
        return invalidAddr;
    }

    // Prefer an invalid way before consulting the replacement policy.
    way = ways_;
    for (unsigned w = 0; w < ways_; ++w) {
        if (!valid_[base + w]) {
            way = w;
            break;
        }
    }

    Addr victim = invalidAddr;
    if (way == ways_) {
        way = victimWay(set);
        victim = (tags_[base + way] << setShift_) | set;
        if (prefetched_[base + way])
            ++unusedPrefetches_;
        ++evictions_;
    }

    tags_[base + way] = tag;
    valid_[base + way] = 1;
    prefetched_[base + way] = prefetched ? 1 : 0;
    if (prefetched)
        ++prefetchFills_;
    touchWay(set, way);
    return victim;
}

bool
Cache::invalidate(Addr block)
{
    const std::uint64_t set = setOf(block);
    const unsigned way = findWay(set, tagOf(block));
    if (way == ways_)
        return false;
    const std::uint64_t idx = set * ways_ + way;
    if (prefetched_[idx])
        ++unusedPrefetches_;
    valid_[idx] = 0;
    prefetched_[idx] = 0;
    tags_[idx] = invalidAddr;
    return true;
}

bool
Cache::isPrefetched(Addr block) const
{
    const std::uint64_t set = setOf(block);
    const unsigned way = findWay(set, tagOf(block));
    if (way == ways_)
        return false;
    return prefetched_[set * ways_ + way] != 0;
}

void
Cache::flush()
{
    std::fill(tags_.begin(), tags_.end(), invalidAddr);
    std::fill(valid_.begin(), valid_.end(), 0);
    std::fill(prefetched_.begin(), prefetched_.end(), 0);
    std::fill(stamp_.begin(), stamp_.end(), 0);
    tick_ = 0;
    if (repl_)
        repl_->reset();
}

std::uint64_t
Cache::validLines() const
{
    std::uint64_t n = 0;
    for (std::uint8_t v : valid_)
        n += v ? 1 : 0;
    return n;
}

} // namespace pifetch
