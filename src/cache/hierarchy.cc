/**
 * @file
 * Memory hierarchy implementation.
 */

#include "cache/hierarchy.hh"

namespace pifetch {

namespace {

CacheConfig
l2Config(const MemoryConfig &cfg)
{
    CacheConfig c;
    c.name = "l2";
    c.sizeBytes = cfg.l2SizeBytes;
    c.assoc = cfg.l2Assoc;
    c.blockBytes = 64;
    c.hitLatency = cfg.l2HitLatency;
    c.mshrs = cfg.l2Mshrs;
    return c;
}

} // namespace

MemoryHierarchy::MemoryHierarchy(const MemoryConfig &cfg)
    : l2HitLatency_(cfg.l2HitLatency + cfg.interconnectLatency),
      memLatency_(cfg.memLatency + cfg.interconnectLatency),
      l2_(l2Config(cfg), ReplacementKind::LRU)
{
}

Cycle
MemoryHierarchy::request(Addr block)
{
    if (l2_.access(block).hit)
        return l2HitLatency_;
    l2_.fill(block, false);
    return memLatency_;
}

} // namespace pifetch
