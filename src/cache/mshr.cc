/**
 * @file
 * MSHR file implementation.
 */

#include "cache/mshr.hh"

#include <algorithm>

namespace pifetch {

MshrFile::MshrFile(unsigned capacity)
    : capacity_(capacity)
{
    entries_.reserve(capacity);
}

bool
MshrFile::allocate(Addr block, Cycle ready_at, bool is_prefetch)
{
    if (full() || contains(block))
        return false;
    Entry e;
    e.block = block;
    e.readyAt = ready_at;
    e.isPrefetch = is_prefetch;
    entries_.emplace(block, e);
    return true;
}

Cycle
MshrFile::noteDemand(Addr block)
{
    auto it = entries_.find(block);
    if (it == entries_.end())
        panic("noteDemand on block with no outstanding fill");
    it->second.demandHit = true;
    return it->second.readyAt;
}

std::vector<MshrFile::Entry>
MshrFile::drainReady(Cycle now)
{
    std::vector<Entry> ready;
    // lint:allow(D-unordered-iter): drain order normalized by the sort below
    for (auto it = entries_.begin(); it != entries_.end();) {
        if (it->second.readyAt <= now) {
            ready.push_back(it->second);
            it = entries_.erase(it);
        } else {
            ++it;
        }
    }
    std::sort(ready.begin(), ready.end(),
              [](const Entry &a, const Entry &b) {
                  return a.readyAt < b.readyAt ||
                         (a.readyAt == b.readyAt && a.block < b.block);
              });
    return ready;
}

} // namespace pifetch
