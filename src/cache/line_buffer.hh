/**
 * @file
 * Line buffer between the core and the L1 instruction cache.
 *
 * Section 4.3: "a line buffer between the core and the L1 instruction
 * cache ensures ample bandwidth to the instruction cache tags for both
 * the instruction-fetch and prefetch mechanisms without the need to
 * duplicate the instruction-cache tags." Functionally it also absorbs
 * repeated fetches to the current block, which is how we use it: the
 * front-end consults the line buffer first and only touches the cache
 * on a block transition.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace pifetch {

/**
 * Small fully-associative FIFO of recently delivered block addresses.
 */
class LineBuffer
{
  public:
    explicit LineBuffer(unsigned entries = 2)
        : entries_(entries), slots_(entries, invalidAddr)
    {
    }

    /** True if @p block is currently buffered. */
    bool
    contains(Addr block) const
    {
        for (Addr a : slots_) {
            if (a == block)
                return true;
        }
        return false;
    }

    /** Insert @p block, displacing the oldest entry. */
    void
    insert(Addr block)
    {
        if (contains(block))
            return;
        slots_[head_] = block;
        head_ = (head_ + 1) % entries_;
    }

    /** Remove @p block if present (e.g. on invalidation). */
    void
    remove(Addr block)
    {
        for (Addr &a : slots_) {
            if (a == block)
                a = invalidAddr;
        }
    }

    /** Drop all entries. */
    void
    clear()
    {
        for (Addr &a : slots_)
            a = invalidAddr;
        head_ = 0;
    }

    unsigned entries() const { return entries_; }

  private:
    unsigned entries_;
    unsigned head_ = 0;
    std::vector<Addr> slots_;
};

} // namespace pifetch
