/**
 * @file
 * Replacement policies for the set-associative cache model.
 *
 * The paper's central observation (Section 2.1) is that block-granular
 * replacement fragments temporal instruction streams: victim selection
 * ignores which blocks are accessed together. We provide true LRU (the
 * evaluated configuration) plus random replacement for ablation and
 * testing.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hh"

namespace pifetch {

/**
 * Abstract per-set replacement state.
 *
 * The cache calls touch() on every hit or fill and victim() when it
 * needs to evict. Ways are identified by index within the set.
 */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** Record a use of @p way in @p set. */
    virtual void touch(std::uint64_t set, unsigned way) = 0;

    /** Choose a victim way in @p set (valid lines only, caller decides). */
    virtual unsigned victim(std::uint64_t set) = 0;

    /** Reset all recency state. */
    virtual void reset() = 0;
};

/** True LRU via per-line monotonic timestamps. */
class LruPolicy final : public ReplacementPolicy
{
  public:
    LruPolicy(std::uint64_t sets, unsigned ways);

    void touch(std::uint64_t set, unsigned way) override;
    unsigned victim(std::uint64_t set) override;
    void reset() override;

  private:
    unsigned ways_;
    std::uint64_t tick_ = 0;
    std::vector<std::uint64_t> stamp_;  //!< sets x ways, last-use tick
};

/** Uniform-random victim selection (deterministic via seeded Rng). */
class RandomPolicy final : public ReplacementPolicy
{
  public:
    RandomPolicy(std::uint64_t sets, unsigned ways,
                 std::uint64_t seed = 0xc0ffee);

    void touch(std::uint64_t set, unsigned way) override;
    unsigned victim(std::uint64_t set) override;
    void reset() override;

  private:
    unsigned ways_;
    std::uint64_t seed_;
    Rng rng_;
};

/** Replacement policy selector. */
enum class ReplacementKind { LRU, Random };

/** Factory for replacement policies. */
std::unique_ptr<ReplacementPolicy>
makeReplacement(ReplacementKind kind, std::uint64_t sets, unsigned ways,
                std::uint64_t seed = 0xc0ffee);

} // namespace pifetch
