/**
 * @file
 * Set-associative cache model operating on block addresses.
 *
 * The model is functional (tag array only): it answers hit/miss, tracks
 * the prefetched bit per line (needed by PIF's index-table insertion
 * rule, Section 4.2), and exposes explicit fill/invalidate so engines
 * can model miss latency themselves. Timing lives in the engines, not
 * here, matching the paper's split between trace studies and
 * cycle-accurate runs.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/replacement.hh"
#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace pifetch {

/**
 * A single-level, set-associative, block-addressed cache.
 *
 * All addresses passed to this class are block addresses
 * (byte address >> blockShift).
 */
class Cache
{
  public:
    /** Result of a demand access. */
    struct AccessResult
    {
        bool hit = false;
        /**
         * On a hit: whether the line was brought in by a prefetch and
         * this is the first demand touch (PIF tags such instructions as
         * "prefetched"; untagged triggers insert into the index table).
         */
        bool firstDemandOfPrefetch = false;
    };

    Cache(const CacheConfig &cfg,
          ReplacementKind repl = ReplacementKind::LRU,
          std::uint64_t seed = 0xc0ffee);

    /**
     * Demand access to @p block. Updates recency on hit; on miss the
     * caller is responsible for calling fill() (possibly later, to model
     * latency). Clears the line's prefetched bit on first demand touch.
     */
    AccessResult access(Addr block);

    /** Tag probe with no state change (used by prefetch filtering). */
    bool probe(Addr block) const;

    /**
     * Install @p block. Evicts the replacement victim if the set is
     * full. @p prefetched marks the line as prefetch-installed.
     * @return the evicted block address, or invalidAddr if none.
     */
    Addr fill(Addr block, bool prefetched = false);

    /** Remove @p block if present. @return true if it was present. */
    bool invalidate(Addr block);

    /** True if @p block is present and still carries the prefetch bit. */
    bool isPrefetched(Addr block) const;

    /** Drop all lines and recency state. */
    void flush();

    /** Number of currently valid lines. */
    std::uint64_t validLines() const;

    std::uint64_t sets() const { return sets_; }
    unsigned ways() const { return ways_; }

    /** Demand hits observed. */
    std::uint64_t hits() const { return hits_.value(); }
    /** Demand misses observed. */
    std::uint64_t misses() const { return misses_.value(); }
    /** Lines installed by prefetch. */
    std::uint64_t prefetchFills() const { return prefetchFills_.value(); }
    /** Prefetched lines evicted without any demand touch. */
    std::uint64_t unusedPrefetches() const
    {
        return unusedPrefetches_.value();
    }
    /** Demand hits on prefetched lines (first touch). */
    std::uint64_t usefulPrefetches() const
    {
        return usefulPrefetches_.value();
    }

    /** Demand miss ratio. */
    double missRatio() const
    {
        return ratio(misses_.value(), hits_.value() + misses_.value());
    }

    /** Statistics group for reporting. */
    const StatGroup &stats() const { return stats_; }

    /** Zero all statistics (cache contents are preserved). */
    void resetStats() { stats_.resetAll(); }

  private:
    struct Line
    {
        Addr tag = invalidAddr;
        bool valid = false;
        bool prefetched = false;
    };

    std::uint64_t setOf(Addr block) const { return block & (sets_ - 1); }
    Addr tagOf(Addr block) const { return block >> setShift_; }

    /** Find the way holding @p block in its set, or ways() if absent. */
    unsigned findWay(std::uint64_t set, Addr tag) const;

    std::uint64_t sets_;
    unsigned ways_;
    unsigned setShift_;
    std::vector<Line> lines_;
    std::unique_ptr<ReplacementPolicy> repl_;

    StatGroup stats_;
    Counter hits_;
    Counter misses_;
    Counter prefetchFills_;
    Counter usefulPrefetches_;
    Counter unusedPrefetches_;
    Counter evictions_;
};

} // namespace pifetch
