/**
 * @file
 * Set-associative cache model operating on block addresses.
 *
 * The model is functional (tag array only): it answers hit/miss, tracks
 * the prefetched bit per line (needed by PIF's index-table insertion
 * rule, Section 4.2), and exposes explicit fill/invalidate so engines
 * can model miss latency themselves. Timing lives in the engines, not
 * here, matching the paper's split between trace studies and
 * cycle-accurate runs.
 *
 * The tag store is structure-of-arrays: tags, valid bits and prefetch
 * bits live in parallel vectors so the way scan in probe()/access() —
 * the hottest loop in batched replay — reads one dense tag run per set
 * and resolves the match with a conditional move instead of an early
 * exit branch per way. LRU recency is kept inline (per-line stamps)
 * with semantics identical to LruPolicy; the virtual policy object is
 * instantiated only for Random replacement.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/replacement.hh"
#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace pifetch {

/**
 * A single-level, set-associative, block-addressed cache.
 *
 * All addresses passed to this class are block addresses
 * (byte address >> blockShift).
 */
class Cache
{
  public:
    /** Result of a demand access. */
    struct AccessResult
    {
        bool hit = false;
        /**
         * On a hit: whether the line was brought in by a prefetch and
         * this is the first demand touch (PIF tags such instructions as
         * "prefetched"; untagged triggers insert into the index table).
         */
        bool firstDemandOfPrefetch = false;
    };

    Cache(const CacheConfig &cfg,
          ReplacementKind repl = ReplacementKind::LRU,
          std::uint64_t seed = 0xc0ffee);

    /**
     * Demand access to @p block. Updates recency on hit; on miss the
     * caller is responsible for calling fill() (possibly later, to model
     * latency). Clears the line's prefetched bit on first demand touch.
     */
    AccessResult access(Addr block);

    /** Tag probe with no state change (used by prefetch filtering). */
    bool
    probe(Addr block) const
    {
        const std::uint64_t set = setOf(block);
        return findWay(set, tagOf(block)) != ways_;
    }

    /**
     * Install @p block. Evicts the replacement victim if the set is
     * full. @p prefetched marks the line as prefetch-installed.
     * @return the evicted block address, or invalidAddr if none.
     */
    Addr fill(Addr block, bool prefetched = false);

    /** Remove @p block if present. @return true if it was present. */
    bool invalidate(Addr block);

    /** True if @p block is present and still carries the prefetch bit. */
    bool isPrefetched(Addr block) const;

    /** Drop all lines and recency state. */
    void flush();

    /** Number of currently valid lines. */
    std::uint64_t validLines() const;

    std::uint64_t sets() const { return sets_; }
    unsigned ways() const { return ways_; }

    /** Demand hits observed. */
    std::uint64_t hits() const { return hits_.value(); }
    /** Demand misses observed. */
    std::uint64_t misses() const { return misses_.value(); }
    /** Lines installed by prefetch. */
    std::uint64_t prefetchFills() const { return prefetchFills_.value(); }
    /** Prefetched lines evicted without any demand touch. */
    std::uint64_t unusedPrefetches() const
    {
        return unusedPrefetches_.value();
    }
    /** Demand hits on prefetched lines (first touch). */
    std::uint64_t usefulPrefetches() const
    {
        return usefulPrefetches_.value();
    }

    /** Demand miss ratio. */
    double missRatio() const
    {
        return ratio(misses_.value(), hits_.value() + misses_.value());
    }

    /** Statistics group for reporting. */
    const StatGroup &stats() const { return stats_; }

    /** Zero all statistics (cache contents are preserved). */
    void resetStats() { stats_.resetAll(); }

  private:
    std::uint64_t setOf(Addr block) const { return block & (sets_ - 1); }
    Addr tagOf(Addr block) const { return block >> setShift_; }

    /**
     * Find the way holding @p tag in @p set, or ways() if absent.
     *
     * Branch-light: scans the full set unconditionally and selects the
     * matching way with a conditional move (tags are unique within a
     * set, so last-writer-wins is exact). The explicit valid test is
     * ANDed into the compare rather than relying on an invalid-tag
     * sentinel so degenerate one-set configurations cannot alias.
     */
    unsigned
    findWay(std::uint64_t set, Addr tag) const
    {
        const std::uint64_t base = set * ways_;
        unsigned way = ways_;
        for (unsigned w = 0; w < ways_; ++w) {
            const bool match =
                (valid_[base + w] != 0) & (tags_[base + w] == tag);
            way = match ? w : way;
        }
        return way;
    }

    /** Record a use of @p way (inline LRU stamp or policy object). */
    void
    touchWay(std::uint64_t set, unsigned way)
    {
        if (repl_)
            repl_->touch(set, way);
        else
            stamp_[set * ways_ + way] = ++tick_;
    }

    /** Choose the eviction victim way in @p set. */
    unsigned
    victimWay(std::uint64_t set)
    {
        if (repl_)
            return repl_->victim(set);
        // Inline true-LRU: lowest stamp wins, first index on ties —
        // exactly LruPolicy::victim.
        const std::uint64_t base = set * ways_;
        unsigned best = 0;
        std::uint64_t best_stamp = stamp_[base];
        for (unsigned w = 1; w < ways_; ++w) {
            if (stamp_[base + w] < best_stamp) {
                best_stamp = stamp_[base + w];
                best = w;
            }
        }
        return best;
    }

    std::uint64_t sets_;
    unsigned ways_;
    unsigned setShift_;

    /** Parallel per-line arrays, indexed set * ways_ + way. */
    std::vector<Addr> tags_;
    std::vector<std::uint8_t> valid_;
    std::vector<std::uint8_t> prefetched_;

    /** Inline LRU state (unused when a policy object is installed). */
    std::vector<std::uint64_t> stamp_;
    std::uint64_t tick_ = 0;

    /** Non-LRU replacement only (null selects the inline LRU). */
    std::unique_ptr<ReplacementPolicy> repl_;

    StatGroup stats_;
    Counter hits_;
    Counter misses_;
    Counter prefetchFills_;
    Counter usefulPrefetches_;
    Counter unusedPrefetches_;
    Counter evictions_;
};

} // namespace pifetch
