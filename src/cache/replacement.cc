/**
 * @file
 * Replacement policy implementations.
 */

#include "cache/replacement.hh"

#include <algorithm>

#include "common/types.hh"

namespace pifetch {

LruPolicy::LruPolicy(std::uint64_t sets, unsigned ways)
    : ways_(ways), stamp_(sets * ways, 0)
{
}

void
LruPolicy::touch(std::uint64_t set, unsigned way)
{
    stamp_[set * ways_ + way] = ++tick_;
}

unsigned
LruPolicy::victim(std::uint64_t set)
{
    const std::uint64_t base = set * ways_;
    unsigned best = 0;
    std::uint64_t best_stamp = stamp_[base];
    for (unsigned w = 1; w < ways_; ++w) {
        if (stamp_[base + w] < best_stamp) {
            best_stamp = stamp_[base + w];
            best = w;
        }
    }
    return best;
}

void
LruPolicy::reset()
{
    std::fill(stamp_.begin(), stamp_.end(), 0);
    tick_ = 0;
}

RandomPolicy::RandomPolicy(std::uint64_t sets, unsigned ways,
                           std::uint64_t seed)
    : ways_(ways), seed_(seed), rng_(seed)
{
    (void)sets;
}

void
RandomPolicy::touch(std::uint64_t set, unsigned way)
{
    (void)set;
    (void)way;
}

unsigned
RandomPolicy::victim(std::uint64_t set)
{
    (void)set;
    return static_cast<unsigned>(rng_.below(ways_));
}

void
RandomPolicy::reset()
{
    rng_ = Rng(seed_);
}

std::unique_ptr<ReplacementPolicy>
makeReplacement(ReplacementKind kind, std::uint64_t sets, unsigned ways,
                std::uint64_t seed)
{
    switch (kind) {
      case ReplacementKind::LRU:
        return std::make_unique<LruPolicy>(sets, ways);
      case ReplacementKind::Random:
        return std::make_unique<RandomPolicy>(sets, ways, seed);
    }
    panic("unknown replacement kind");
}

} // namespace pifetch
