/**
 * @file
 * Backing memory hierarchy below the L1 instruction cache.
 *
 * Models the unified L2 NUCA cache and main memory of Table I as a
 * latency oracle: given a block address, it returns the fill latency
 * (L2 hit or memory) and updates L2 contents. Instruction blocks from
 * both demand misses and prefetches flow through here, so prefetch
 * traffic warms (and can pollute) the L2 exactly as in the paper's
 * simulated machine. Inter-core interconnect contention is folded into
 * the L2 hit latency (see DESIGN.md substitution #3).
 */

#pragma once

#include <cstdint>

#include "cache/cache.hh"
#include "common/config.hh"
#include "common/types.hh"

namespace pifetch {

/**
 * L2 + memory latency model shared by demand and prefetch requests.
 */
class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(const MemoryConfig &cfg);

    /**
     * Request instruction block @p block.
     *
     * Probes and updates the L2; on an L2 miss the block is installed.
     * @return the fill latency in cycles (L2 hit or memory access).
     */
    Cycle request(Addr block);

    /** Tag-only probe of the L2 (no state change). */
    bool inL2(Addr block) const { return l2_.probe(block); }

    /** L2 demand hits. */
    std::uint64_t l2Hits() const { return l2_.hits(); }
    /** L2 misses (memory accesses). */
    std::uint64_t l2Misses() const { return l2_.misses(); }

    /** Access the underlying L2 model (tests, warmup). */
    Cache &l2() { return l2_; }

    /** Drop L2 contents. */
    void flush() { l2_.flush(); }

  private:
    Cycle l2HitLatency_;
    Cycle memLatency_;
    Cache l2_;
};

} // namespace pifetch
