/**
 * @file
 * Timing model implementation.
 */

#include "core/cycle_core.hh"

namespace pifetch {

TimingModel::TimingModel(const CoreConfig &cfg, std::uint64_t seed)
    : cfg_(cfg), rng_(seed)
{
}

void
TimingModel::instruction(TrapLevel tl)
{
    ++instrs_;
    if (tl == 0)
        ++userInstrs_;

    if (++dispatchSlot_ >= cfg_.dispatchWidth) {
        dispatchSlot_ = 0;
        ++cycles_;
    }

    // Back-end data stalls: a small fraction of instructions behaves
    // like an L2/memory-bound load that blocks retirement. The OoO
    // window hides part of the latency; we charge the unhidden half.
    if (cfg_.dataStallFraction > 0.0 &&
        rng_.chance(cfg_.dataStallFraction)) {
        cycles_ += cfg_.dataStallCycles / 2;
    }
}

void
TimingModel::fetchStall(Cycle latency)
{
    // ROB buffering hides a few cycles of fetch latency: the back-end
    // keeps retiring from buffered instructions while fetch waits.
    // With a 96-entry ROB at 3-wide retirement full hiding would be
    // 32 cycles, but the ROB is rarely full on fetch-bound workloads
    // (Section 2.3 notes it is typically *empty* after handler
    // returns); we credit a small fixed allowance.
    const Cycle hide = cfg_.robEntries / (cfg_.retireWidth * 8);
    const Cycle exposed = latency > hide ? latency - hide : 0;
    cycles_ += exposed;
    fetchStallCycles_ += exposed;
}

void
TimingModel::mispredict()
{
    // Front-end refill plus the data-dependent resolution delay; the
    // OoO window overlaps roughly half of the resolution with useful
    // work ahead of the branch.
    const Cycle resolve = rng_.range(cfg_.minResolveCycles,
                                     cfg_.maxResolveCycles);
    const Cycle penalty = cfg_.frontendDepth + resolve / 2;
    cycles_ += penalty;
    branchPenaltyCycles_ += penalty;
}

void
TimingModel::resetStats()
{
    cycles_ = 0;
    dispatchSlot_ = 0;
    instrs_ = 0;
    userInstrs_ = 0;
    fetchStallCycles_ = 0;
    branchPenaltyCycles_ = 0;
}

} // namespace pifetch
