/**
 * @file
 * Functional front-end model: derives the fetch-access stream (with
 * branch-predictor noise) and the miss stream from the retire-order
 * stream.
 *
 * This component recreates, mechanistically, the two stream-corrupting
 * effects of Section 2:
 *  - Branch-predictor noise (Section 2.2): every control transfer is
 *    predicted with the Table I hybrid predictor + BTB + RAS; on a
 *    misprediction the front-end injects a burst of sequential
 *    wrong-path block fetches whose length is set by a data-dependent
 *    resolution delay, then redirects.
 *  - Cache filtering (Section 2.1): every block-granularity fetch
 *    probes (and on a miss, fills) the L1-I, so the resulting miss
 *    stream is the access stream as fragmented by LRU replacement.
 *
 * Spontaneous interrupts (Section 2.3) appear in the retire stream as
 * trap-level changes; the front-end treats them as asynchronous
 * redirects (flush, no wrong-path burst, no predictor training).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "branch/btb.hh"
#include "branch/hybrid.hh"
#include "branch/ras.hh"
#include "cache/cache.hh"
#include "cache/line_buffer.hh"
#include "common/config.hh"
#include "common/rng.hh"
#include "trace/record.hh"

namespace pifetch {

/** One block-granularity fetch access produced by the front-end. */
struct FetchAccess
{
    /** Block address fetched. */
    Addr block = 0;
    /** True for correct-path fetches; false for wrong-path bursts. */
    bool correctPath = true;
    /** Trap level of the fetch. */
    TrapLevel trapLevel = 0;
    /** L1-I (or line-buffer) hit. */
    bool hit = false;
    /** Hit on a prefetched line (first demand touch clears the bit). */
    bool wasPrefetched = false;
};

/**
 * Functional front-end fetch model.
 *
 * Owns the branch predictor, BTB, RAS and line buffer; operates on a
 * caller-owned L1-I cache so engines can share the cache with the
 * prefetch fill path. For each retired instruction fed to step(), the
 * front-end appends the block-granularity fetch accesses it performs
 * (correct-path access plus any wrong-path burst) to an event list the
 * caller consumes.
 */
class Frontend
{
  public:
    /**
     * @param cfg System configuration (core + branch sizing).
     * @param l1i The instruction cache (shared with prefetch fills).
     * @param seed Seed for data-dependent resolution delays.
     */
    Frontend(const SystemConfig &cfg, Cache &l1i, std::uint64_t seed);

    /**
     * Process one retired instruction.
     *
     * Appends the resulting fetch accesses to @p events (not cleared).
     * The first event, if any, is the correct-path fetch of
     * @p instr's block (only present on a block transition); any
     * following events are wrong-path burst fetches triggered by a
     * misprediction of @p instr.
     *
     * @return true if the instruction was delivered from a block that
     *         was NOT explicitly prefetched ("tagged", Section 4.2).
     */
    bool step(const RetiredInstr &instr, std::vector<FetchAccess> &events);

    /**
     * True when step() would change no front-end state and emit no
     * events for an instruction with these fields: a plain instruction
     * at an unchanged trap level delivered from the current block.
     * The batched engines use this to skip the out-of-line step()
     * call; currentBlockTagged() then supplies its return value.
     */
    bool
    stepIsNoop(Addr block, InstrKind kind, TrapLevel tl) const
    {
        return kind == InstrKind::Plain && tl == prevTl_ &&
               block == curBlock_;
    }

    /** Sticky tag of the current block's delivery (see stepIsNoop). */
    bool currentBlockTagged() const { return curBlockTagged_; }

    /** Mispredicted control transfers observed. */
    std::uint64_t mispredicts() const { return mispredicts_; }
    /** Control transfers predicted. */
    std::uint64_t predictions() const { return predictions_; }
    /** Wrong-path block fetches injected. */
    std::uint64_t wrongPathFetches() const { return wrongPathFetches_; }
    /** Correct-path block fetches issued. */
    std::uint64_t correctPathFetches() const
    {
        return correctPathFetches_;
    }
    /** Correct-path fetches that missed in the L1-I. */
    std::uint64_t correctPathMisses() const { return correctPathMisses_; }

    /** The line buffer between core and L1-I (tests). */
    LineBuffer &lineBuffer() { return lineBuffer_; }

    /** Reset predictor and fetch state (cache is not touched). */
    void reset();

  private:
    /**
     * Perform one block fetch: line-buffer check, L1-I access, fill on
     * miss, event emission.
     * @return the emitted event (also appended to @p events).
     */
    FetchAccess fetchBlock(Addr block, bool correct_path, TrapLevel tl,
                           std::vector<FetchAccess> &events);

    /** Inject a wrong-path burst starting at byte address @p start_pc. */
    void injectWrongPath(Addr start_pc, TrapLevel tl,
                         std::vector<FetchAccess> &events);

    /**
     * Predict the control transfer of @p instr.
     * @param[out] wrong_path_pc Where fetch would go on this prediction
     *             if it is wrong (the not-taken path, predicted target,
     *             or sequential fall-through).
     * @return true if the prediction redirects fetch correctly.
     */
    bool predictTransfer(const RetiredInstr &instr, Addr &wrong_path_pc);

    const CoreConfig coreCfg_;
    Cache &l1i_;
    LineBuffer lineBuffer_;
    HybridPredictor direction_;
    Btb btb_;
    ReturnAddressStack ras_;
    Rng rng_;

    /** Block of the most recent correct-path fetch (collapse filter). */
    Addr curBlock_ = invalidAddr;
    /** Tag state of the current block's delivery. */
    bool curBlockTagged_ = true;
    /** Trap level of the previous retired instruction. */
    TrapLevel prevTl_ = 0;

    std::uint64_t predictions_ = 0;
    std::uint64_t mispredicts_ = 0;
    std::uint64_t wrongPathFetches_ = 0;
    std::uint64_t correctPathFetches_ = 0;
    std::uint64_t correctPathMisses_ = 0;
};

} // namespace pifetch
