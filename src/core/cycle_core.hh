/**
 * @file
 * Simplified out-of-order timing model.
 *
 * Accumulates cycles from four sources, mirroring the first-order
 * performance behaviour of the Table I core:
 *  - dispatch bandwidth (dispatchWidth instructions per cycle);
 *  - instruction-fetch stalls (I-cache miss latency, partially hidden
 *    by ROB buffering);
 *  - branch misprediction penalties (front-end refill plus the
 *    data-dependent resolution delay);
 *  - back-end data stalls (a configurable fraction of instructions
 *    behaves like a long-latency load blocking retirement).
 *
 * This is intentionally a model, not a pipeline simulator: per
 * DESIGN.md substitution #1, the paper's Figure 10 (right) compares
 * configurations whose only difference is how many fetch-stall cycles
 * remain exposed, which this model captures directly. UIPC counts
 * trap-level-0 instructions only, matching the paper's user-IPC
 * metric.
 */

#pragma once

#include <cstdint>

#include "common/config.hh"
#include "common/rng.hh"
#include "common/types.hh"

namespace pifetch {

/**
 * Cycle accumulator for the simplified OoO core.
 */
class TimingModel
{
  public:
    TimingModel(const CoreConfig &cfg, std::uint64_t seed);

    /**
     * Account one retired instruction at trap level @p tl.
     * Applies dispatch bandwidth and the stochastic data-stall model.
     */
    void instruction(TrapLevel tl);

    /**
     * Account an instruction-fetch stall of @p latency cycles.
     *
     * The ROB hides the first robEntries/retireWidth cycles' worth of
     * buffered work only when it is full; we approximate partial
     * hiding with a fixed hide allowance per stall.
     */
    void fetchStall(Cycle latency);

    /** Account one branch misprediction. */
    void mispredict();

    /** Current cycle count. */
    Cycle cycles() const { return cycles_; }

    /** Retired instructions (all trap levels). */
    InstCount instructions() const { return instrs_; }

    /** Retired user (TL0) instructions. */
    InstCount userInstructions() const { return userInstrs_; }

    /** Cycles lost to instruction-fetch stalls. */
    Cycle fetchStallCycles() const { return fetchStallCycles_; }

    /** Cycles lost to misprediction penalties. */
    Cycle branchPenaltyCycles() const { return branchPenaltyCycles_; }

    /** User instructions per cycle. */
    double
    uipc() const
    {
        return cycles_ == 0
            ? 0.0
            : static_cast<double>(userInstrs_) /
              static_cast<double>(cycles_);
    }

    /** Zero all counters (predictive state has none). */
    void resetStats();

  private:
    CoreConfig cfg_;
    Rng rng_;

    Cycle cycles_ = 0;
    unsigned dispatchSlot_ = 0;
    InstCount instrs_ = 0;
    InstCount userInstrs_ = 0;
    Cycle fetchStallCycles_ = 0;
    Cycle branchPenaltyCycles_ = 0;
};

} // namespace pifetch
