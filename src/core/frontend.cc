/**
 * @file
 * Functional front-end implementation.
 */

#include "core/frontend.hh"

namespace pifetch {

Frontend::Frontend(const SystemConfig &cfg, Cache &l1i, std::uint64_t seed)
    : coreCfg_(cfg.core),
      l1i_(l1i),
      lineBuffer_(2),
      direction_(cfg.branch),
      btb_(cfg.branch),
      ras_(cfg.branch.rasEntries),
      rng_(seed)
{
}

FetchAccess
Frontend::fetchBlock(Addr block, bool correct_path, TrapLevel tl,
                     std::vector<FetchAccess> &events)
{
    FetchAccess ev;
    ev.block = block;
    ev.correctPath = correct_path;
    ev.trapLevel = tl;

    if (lineBuffer_.contains(block)) {
        ev.hit = true;
        ev.wasPrefetched = false;
    } else {
        const Cache::AccessResult res = l1i_.access(block);
        ev.hit = res.hit;
        ev.wasPrefetched = res.firstDemandOfPrefetch;
        if (!res.hit) {
            // Functional fill: latency accounting is engine-side.
            // Wrong-path misses fill too, exactly as in a real machine
            // (they are the pollution/filtering source of Section 2).
            l1i_.fill(block, false);
        }
        lineBuffer_.insert(block);
    }

    if (correct_path) {
        ++correctPathFetches_;
        if (!ev.hit)
            ++correctPathMisses_;
    } else {
        ++wrongPathFetches_;
    }

    events.push_back(ev);
    return ev;
}

void
Frontend::injectWrongPath(Addr start_pc, TrapLevel tl,
                          std::vector<FetchAccess> &events)
{
    // Data-dependent resolution delay (Section 2.2): the longer the
    // mispredicted branch takes to resolve, the more wrong-path blocks
    // the front-end fetches. Occasional long-latency data stalls extend
    // the window substantially.
    Cycle resolve = rng_.range(coreCfg_.minResolveCycles,
                               coreCfg_.maxResolveCycles);
    if (rng_.chance(coreCfg_.dataStallFraction))
        resolve += coreCfg_.dataStallCycles;

    const std::uint64_t wrong_instrs =
        resolve * coreCfg_.dispatchWidth;
    const Addr first_block = blockAddr(start_pc);
    const Addr last_byte =
        start_pc + (wrong_instrs > 0 ? wrong_instrs - 1 : 0) * instrBytes;
    const Addr last_block = blockAddr(last_byte);

    for (Addr b = first_block; b <= last_block; ++b)
        fetchBlock(b, false, tl, events);
}

bool
Frontend::predictTransfer(const RetiredInstr &instr, Addr &wrong_path_pc)
{
    const Addr fallthrough = instr.pc + instrBytes;

    switch (instr.kind) {
      case InstrKind::CondBranch: {
        bool pred_taken = direction_.predictAndUpdate(instr.pc,
                                                      instr.taken);
        Addr pred_target = invalidAddr;
        if (pred_taken) {
            pred_target = btb_.lookup(instr.pc);
            if (pred_target == invalidAddr) {
                // Predicted taken but no target known: fetch cannot
                // redirect, so it proceeds sequentially.
                pred_taken = false;
            }
        }
        if (instr.taken)
            btb_.update(instr.pc, instr.target);

        if (pred_taken == instr.taken) {
            if (!instr.taken)
                return true;
            // Direct branches have stable targets, so a BTB hit is a
            // correct target.
            return true;
        }
        wrong_path_pc = instr.taken ? fallthrough : instr.target;
        return false;
      }

      case InstrKind::Jump:
      case InstrKind::Call: {
        const Addr pred_target = btb_.lookup(instr.pc);
        btb_.update(instr.pc, instr.target);
        if (instr.kind == InstrKind::Call)
            ras_.push(fallthrough);
        if (pred_target == instr.target)
            return true;
        // BTB miss (or stale target): sequential wrong path until
        // resolution.
        wrong_path_pc =
            pred_target == invalidAddr ? fallthrough : pred_target;
        return false;
      }

      case InstrKind::Return: {
        const Addr pred = ras_.pop();
        if (pred == instr.target)
            return true;
        wrong_path_pc = pred == invalidAddr ? fallthrough : pred;
        return false;
      }

      case InstrKind::TrapReturn:
      case InstrKind::TrapEnter:
      case InstrKind::Plain:
        return true;
    }
    return true;
}

bool
Frontend::step(const RetiredInstr &instr, std::vector<FetchAccess> &events)
{
    // Asynchronous trap-level change: the pipeline is flushed and fetch
    // restarts at the new location, refetching its block.
    if (instr.trapLevel != prevTl_)
        curBlock_ = invalidAddr;

    const Addr block = blockAddr(instr.pc);
    if (block != curBlock_) {
        const FetchAccess ev = fetchBlock(block, true, instr.trapLevel,
                                          events);
        curBlock_ = block;
        // Tagged = not delivered from an explicitly prefetched line
        // (Section 4.2). The tag is sticky for all instructions
        // delivered from this block fetch.
        curBlockTagged_ = !(ev.hit && ev.wasPrefetched);
    }
    const bool tagged = curBlockTagged_;

    switch (instr.kind) {
      case InstrKind::CondBranch:
      case InstrKind::Jump:
      case InstrKind::Call:
      case InstrKind::Return: {
        ++predictions_;
        Addr wrong_pc = invalidAddr;
        if (!predictTransfer(instr, wrong_pc)) {
            ++mispredicts_;
            injectWrongPath(wrong_pc, instr.trapLevel, events);
            // After the squash, fetch refetches the resume block.
            curBlock_ = invalidAddr;
        }
        break;
      }
      case InstrKind::TrapReturn:
        // Dedicated trap-return redirect: flush, no misprediction.
        curBlock_ = invalidAddr;
        break;
      case InstrKind::TrapEnter:
      case InstrKind::Plain:
        break;
    }

    prevTl_ = instr.trapLevel;
    return tagged;
}

void
Frontend::reset()
{
    lineBuffer_.clear();
    direction_.reset();
    btb_.reset();
    ras_.reset();
    curBlock_ = invalidAddr;
    curBlockTagged_ = true;
    prevTl_ = 0;
    predictions_ = 0;
    mispredicts_ = 0;
    wrongPathFetches_ = 0;
    correctPathFetches_ = 0;
    correctPathMisses_ = 0;
}

} // namespace pifetch
