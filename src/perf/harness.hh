/**
 * @file
 * Measurement protocol for the perf kernels.
 *
 * Every kernel runs under the same warm-up/repeat protocol: a fixed
 * number of untimed warm-up repetitions (populating caches, page
 * tables and branch predictors of the *host*), then N timed
 * repetitions. The reported throughput is computed from the median
 * repetition, which is robust against one-off scheduling noise in a
 * way a mean is not. Op counts are a pure function of the kernel
 * parameters — only the timings vary between runs — so regression
 * tooling can compare ops/sec across builds of the same machine.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/results.hh"
#include "perf/timer.hh"

namespace pifetch {

/** Warm-up/repeat protocol shared by every kernel. */
struct PerfProtocol
{
    /** Untimed repetitions before measurement begins. */
    unsigned warmupReps = 1;
    /** Timed repetitions; the median is reported. */
    unsigned reps = 5;
};

/** Timing result of one kernel under the protocol. */
struct KernelTiming
{
    std::string name;
    /** Operations performed per repetition (instructions, records...). */
    std::uint64_t opsPerRep = 0;
    /** Bytes processed per repetition (0 = not meaningful). */
    std::uint64_t bytesPerRep = 0;
    /** The protocol that produced repSeconds. */
    PerfProtocol protocol;
    /** Wall-clock seconds of each timed repetition, in run order. */
    std::vector<double> repSeconds;

    /** Median repetition time in seconds (0 when nothing ran). */
    double medianSeconds() const;

    /** opsPerRep / medianSeconds (0 when unmeasurable). */
    double opsPerSec() const;

    /** bytesPerRep / medianSeconds (0 when unmeasurable). */
    double bytesPerSec() const;
};

/**
 * Run @p fn under @p protocol and record per-repetition timings.
 *
 * @p fn must perform exactly @p ops_per_rep operations per call; it is
 * invoked protocol.warmupReps + protocol.reps times in total.
 */
template <typename Fn>
KernelTiming
measureKernel(const std::string &name, const PerfProtocol &protocol,
              std::uint64_t ops_per_rep, std::uint64_t bytes_per_rep,
              Fn &&fn)
{
    KernelTiming t;
    t.name = name;
    t.opsPerRep = ops_per_rep;
    t.bytesPerRep = bytes_per_rep;
    t.protocol = protocol;
    for (unsigned r = 0; r < protocol.warmupReps; ++r)
        fn();
    t.repSeconds.reserve(protocol.reps);
    StopWatch watch;
    for (unsigned r = 0; r < protocol.reps; ++r) {
        watch.restart();
        fn();
        t.repSeconds.push_back(watch.elapsedSeconds());
    }
    return t;
}

/**
 * Serialize one kernel timing as the BENCH_*.json kernel entry:
 * {name, ops, bytes, reps, warmup_reps, median_sec, ops_per_sec,
 *  bytes_per_sec, rep_seconds}. The key set is locked by
 * tests/test_perf.cc and consumed by scripts/perf_compare.py.
 */
ResultValue toResult(const KernelTiming &t);

} // namespace pifetch
