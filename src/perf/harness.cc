/**
 * @file
 * Perf harness implementation.
 */

#include "perf/harness.hh"

#include <algorithm>

namespace pifetch {

double
KernelTiming::medianSeconds() const
{
    if (repSeconds.empty())
        return 0.0;
    std::vector<double> sorted = repSeconds;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t n = sorted.size();
    // Even count: the mean of the middle pair, so one outlier on
    // either side of the split cannot move the report.
    if (n % 2 == 0)
        return (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0;
    return sorted[n / 2];
}

double
KernelTiming::opsPerSec() const
{
    const double med = medianSeconds();
    return med > 0.0 ? static_cast<double>(opsPerRep) / med : 0.0;
}

double
KernelTiming::bytesPerSec() const
{
    const double med = medianSeconds();
    return med > 0.0 ? static_cast<double>(bytesPerRep) / med : 0.0;
}

ResultValue
toResult(const KernelTiming &t)
{
    ResultValue out = ResultValue::object();
    out.set("name", t.name);
    out.set("ops", t.opsPerRep);
    out.set("bytes", t.bytesPerRep);
    out.set("reps", t.protocol.reps);
    out.set("warmup_reps", t.protocol.warmupReps);
    out.set("median_sec", t.medianSeconds());
    out.set("ops_per_sec", t.opsPerSec());
    out.set("bytes_per_sec", t.bytesPerSec());
    ResultValue reps = ResultValue::array();
    for (double s : t.repSeconds)
        reps.push(s);
    out.set("rep_seconds", std::move(reps));
    return out;
}

} // namespace pifetch
