/**
 * @file
 * Steady-clock timing primitives for the perf harness.
 *
 * All wall-clock measurement in the perf subsystem goes through this
 * header so the clock choice is made exactly once: steady_clock,
 * which is monotonic (never steps backwards on NTP adjustment) and is
 * the highest-resolution monotonic clock the standard guarantees.
 */

#pragma once

#include <chrono>

namespace pifetch {

/** Monotonic timestamp in seconds since an arbitrary epoch. */
inline double
monotonicSeconds()
{
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now.time_since_epoch())
        .count();
}

/**
 * A restartable stopwatch over the steady clock.
 *
 * elapsedSeconds() is non-decreasing between restarts: consecutive
 * calls without an intervening restart() never report a smaller
 * elapsed time (locked by tests/test_perf.cc).
 */
class StopWatch
{
  public:
    StopWatch() : start_(std::chrono::steady_clock::now()) {}

    /** Reset the epoch to now. */
    void restart() { start_ = std::chrono::steady_clock::now(); }

    /** Seconds since construction or the last restart(). */
    double
    elapsedSeconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

} // namespace pifetch
