/**
 * @file
 * The perf kernel registry: the simulator's throughput-critical loops
 * as named, individually-runnable benchmarks.
 *
 * Each kernel isolates one layer of the replay stack:
 *
 *   trace-decode        chunked binary trace read (trace/trace_io)
 *   trace-decode-soa    streamed v1 decode into SoA record batches
 *   trace-decode-v2     compressed v2 chunk decode into SoA batches
 *                       (trace/trace_v2; bytes = on-disk compressed)
 *   trace-replay        full functional engine with PIF attached
 *                       (executor -> front-end -> L1-I -> prefetcher)
 *   pif-train           PIF train+predict driven directly with a
 *                       pre-generated retire stream (src/pif hot path)
 *   cache-lookup        L1-I access / L2 fill loop (src/cache)
 *   fig10-multicore-t1  the Figure 10 multicore fan-out, 1 worker
 *   fig10-multicore-t2  ... 2 workers
 *   fig10-multicore-t4  ... 4 workers
 *
 * `pifetch perf` runs these under the warm-up/repeat protocol of
 * perf/harness.hh and emits the BENCH_*.json document consumed by
 * scripts/perf_compare.py (the CI perf-regression gate). See
 * docs/performance.md for the measurement protocol.
 */

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/results.hh"
#include "perf/harness.hh"
#include "trace/server_suite.hh"

namespace pifetch {

/** Options for one `pifetch perf` invocation. */
struct PerfOptions
{
    /** Warm-up/repeat protocol applied to every kernel. */
    PerfProtocol protocol;

    /** Kernel names to run; empty means every registered kernel. */
    std::vector<std::string> kernels;

    /** Workload driving the kernels' instruction streams. */
    ServerWorkload workload = ServerWorkload::OltpDb2;

    /**
     * Multiplier on every kernel's per-repetition op count (> 0).
     * Timings scale with it; the op counts themselves stay a pure
     * function of (kernel, scale), which is what makes cross-build
     * ops/sec comparison meaningful.
     */
    double scale = 1.0;

    /** Master seed for the generated instruction streams. */
    std::uint64_t seed = 42;
};

/** One registered perf kernel. */
struct PerfKernelSpec
{
    std::string name;         //!< registry key, e.g. "trace-replay"
    std::string description;  //!< one line for `pifetch perf --list`
    std::function<KernelTiming(const PerfOptions &)> run;
};

/** All registered kernels, in presentation order. */
const std::vector<PerfKernelSpec> &perfKernels();

/** Look up a kernel by name (nullptr when absent). */
const PerfKernelSpec *findPerfKernel(const std::string &name);

/**
 * Run the selected kernels and wrap the timings in the standard
 * experiment-document convention:
 * {
 *   "experiment": "perf",
 *   "meta":    { git, reps, warmup_reps, scale, workload, seed },
 *   "kernels": [ <toResult(KernelTiming)>... ],
 *   "tables":  [ one human-readable throughput table ]
 * }
 * The document renders through renderText/toJson/toCsv like any other
 * experiment result; `pifetch perf --json` writes it verbatim.
 */
ResultValue runPerfSuite(const PerfOptions &opts);

} // namespace pifetch
