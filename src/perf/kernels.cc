/**
 * @file
 * Perf kernel implementations.
 *
 * Kernel state (programs, engines, pre-generated streams) is built
 * once per kernel invocation, outside the timed region; repetitions
 * then run back to back under measureKernel's protocol. Engines keep
 * their state across repetitions — that matches steady-state replay,
 * which is the regime the ROADMAP's throughput goal cares about.
 */

#include "perf/kernels.hh"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "cache/hierarchy.hh"
#include "pif/pif_prefetcher.hh"
#include "sim/multicore.hh"
#include "sim/registry.hh"
#include "sim/trace_engine.hh"
#include "sim/workloads.hh"
#include "trace/trace_io.hh"
#include "trace/trace_v2.hh"

namespace pifetch {

namespace {

/** Scale a base op count, keeping at least one op. */
std::uint64_t
scaled(std::uint64_t base, double scale)
{
    const double v = static_cast<double>(base) * scale;
    return v < 1.0 ? 1 : static_cast<std::uint64_t>(v);
}

/** Pre-generate @p n retire-order records for @p opts' workload. */
std::vector<RetiredInstr>
generateStream(const PerfOptions &opts, std::uint64_t n)
{
    const Program prog = buildWorkloadProgram(opts.workload);
    ExecutorConfig ecfg = executorConfigFor(opts.workload);
    ecfg.seed ^= opts.seed;
    Executor exec(prog, ecfg);
    std::vector<RetiredInstr> records;
    records.reserve(n);
    exec.run(n, [&](const RetiredInstr &r) { records.push_back(r); });
    return records;
}

// ------------------------------------------------------ trace-decode

KernelTiming
runTraceDecode(const PerfOptions &opts)
{
    const std::uint64_t n = scaled(512 * 1024, opts.scale);
    const std::vector<RetiredInstr> records = generateStream(opts, n);

    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("pifetch-perf-" + std::to_string(::getpid()) + ".trace"))
            .string();
    if (!writeTrace(path, records))
        fatalError("perf: cannot write scratch trace " + path);
    const std::uint64_t bytes = std::filesystem::file_size(path);

    std::vector<RetiredInstr> decoded;
    KernelTiming t = measureKernel(
        "trace-decode", opts.protocol, n, bytes, [&] {
            if (!readTrace(path, decoded) || decoded.size() != n)
                fatalError("perf: trace decode failed mid-benchmark");
        });
    std::remove(path.c_str());
    return t;
}

// -------------------------------------------------- trace-decode-soa

KernelTiming
runTraceDecodeSoa(const PerfOptions &opts)
{
    const std::uint64_t n = scaled(512 * 1024, opts.scale);
    const std::vector<RetiredInstr> records = generateStream(opts, n);

    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("pifetch-perf-" + std::to_string(::getpid()) + "-soa.trace"))
            .string();
    if (!writeTrace(path, records))
        fatalError("perf: cannot write scratch trace " + path);
    const std::uint64_t bytes = std::filesystem::file_size(path);

    RecordBatch batch;
    KernelTiming t = measureKernel(
        "trace-decode-soa", opts.protocol, n, bytes, [&] {
            TraceBatchReader reader;
            if (!reader.open(path))
                fatalError("perf: cannot reopen scratch trace " + path);
            std::uint64_t seen = 0;
            while (reader.next(batch))
                seen += batch.size;
            if (seen != n || reader.failed())
                fatalError("perf: SoA trace decode failed mid-benchmark");
        });
    std::remove(path.c_str());
    return t;
}

// --------------------------------------------------- trace-decode-v2

KernelTiming
runTraceDecodeV2(const PerfOptions &opts)
{
    const std::uint64_t n = scaled(512 * 1024, opts.scale);
    const std::vector<RetiredInstr> records = generateStream(opts, n);

    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("pifetch-perf-" + std::to_string(::getpid()) + "-v2.trace"))
            .string();
    std::string err;
    if (!writeTraceV2(path, records, &err))
        fatalError("perf: cannot write scratch v2 trace: " + err);
    const std::uint64_t bytes = std::filesystem::file_size(path);

    // Ops are records and bytes are the *compressed* on-disk size, so
    // the ops/sec column compares decode throughput against
    // trace-decode-soa directly while bytes/sec shows the I/O saved.
    RecordBatch batch;
    KernelTiming t = measureKernel(
        "trace-decode-v2", opts.protocol, n, bytes, [&] {
            TraceV2Reader reader;
            if (!reader.open(path))
                fatalError("perf: cannot reopen scratch v2 trace " +
                           path);
            std::uint64_t seen = 0;
            while (reader.next(batch))
                seen += batch.size;
            if (seen != n || reader.failed())
                fatalError("perf: v2 trace decode failed "
                           "mid-benchmark");
        });
    std::remove(path.c_str());
    return t;
}

// ------------------------------------------------------ trace-replay

KernelTiming
runTraceReplay(const PerfOptions &opts)
{
    const std::uint64_t instrs = scaled(400 * 1024, opts.scale);
    SystemConfig cfg;
    cfg.seed = opts.seed;
    const Program prog = buildWorkloadProgram(opts.workload);
    TraceEngine engine(cfg, prog, executorConfigFor(opts.workload),
                       std::make_unique<PifPrefetcher>(cfg.pif));
    // Prime predictors and the L1-I so repetitions measure
    // steady-state replay, not cold-start ramp.
    engine.advance(scaled(100 * 1024, opts.scale));
    return measureKernel("trace-replay", opts.protocol, instrs,
                         instrs * instrBytes,
                         [&] { engine.advance(instrs); });
}

// ---------------------------------------------------- replay-batched

KernelTiming
runReplayBatched(const PerfOptions &opts)
{
    const std::uint64_t instrs = scaled(400 * 1024, opts.scale);
    const std::vector<RetiredInstr> records =
        generateStream(opts, instrs);

    // Pre-pack the stream into SoA batches so the timed region
    // measures the batched pipeline itself (replayBatch), with decode
    // taken out of the loop — the executor-integrated counterpart is
    // trace-replay.
    std::vector<RecordBatch> batches;
    batches.reserve(instrs / recordBatchLen + 1);
    std::size_t pos = 0;
    while (pos < records.size()) {
        RecordBatch b;
        b.reserve(recordBatchLen);
        const std::size_t n =
            std::min<std::size_t>(recordBatchLen, records.size() - pos);
        for (std::size_t i = 0; i < n; ++i)
            b.push(records[pos + i]);
        b.computeBlocks();
        batches.push_back(std::move(b));
        pos += n;
    }

    SystemConfig cfg;
    cfg.seed = opts.seed;
    const Program prog = buildWorkloadProgram(opts.workload);
    TraceEngine engine(cfg, prog, executorConfigFor(opts.workload),
                       std::make_unique<PifPrefetcher>(cfg.pif));
    // Prime predictors and the L1-I with one untimed pass.
    for (const RecordBatch &b : batches)
        engine.replayBatch(b);
    return measureKernel("replay-batched", opts.protocol, instrs,
                         instrs * instrBytes, [&] {
                             for (const RecordBatch &b : batches)
                                 engine.replayBatch(b);
                         });
}

// --------------------------------------------------------- pif-train

KernelTiming
runPifTrain(const PerfOptions &opts)
{
    const std::uint64_t n = scaled(600 * 1024, opts.scale);
    const std::vector<RetiredInstr> records = generateStream(opts, n);

    SystemConfig cfg;
    cfg.seed = opts.seed;
    PifPrefetcher pif(cfg.pif);
    std::vector<Addr> drain;
    drain.reserve(16);

    // Drive the prefetcher exactly as the engine does, minus the
    // front-end and cache: a fetch access per block transition, a
    // retire per record, a bounded drain per step.
    return measureKernel("pif-train", opts.protocol, n, 0, [&] {
        Addr cur_block = invalidAddr;
        for (const RetiredInstr &r : records) {
            const Addr block = blockAddr(r.pc);
            if (block != cur_block) {
                FetchInfo info;
                info.block = block;
                info.pc = r.pc;
                info.hit = true;
                info.trapLevel = r.trapLevel;
                pif.onFetchAccess(info);
                cur_block = block;
            }
            pif.onRetire(r, true);
            drain.clear();
            pif.drainRequests(drain, 16);
        }
    });
}

// ------------------------------------------------------ cache-lookup

KernelTiming
runCacheLookup(const PerfOptions &opts)
{
    const std::uint64_t n = scaled(1024 * 1024, opts.scale);

    // The fetch-block sequence of the workload: one entry per block
    // transition of the retire stream.
    const Program prog = buildWorkloadProgram(opts.workload);
    ExecutorConfig ecfg = executorConfigFor(opts.workload);
    ecfg.seed ^= opts.seed;
    Executor exec(prog, ecfg);
    std::vector<Addr> blocks;
    blocks.reserve(n);
    Addr prev = invalidAddr;
    while (blocks.size() < n) {
        const Addr b = blockAddr(exec.next().pc);
        if (b != prev) {
            blocks.push_back(b);
            prev = b;
        }
    }

    SystemConfig cfg;
    Cache l1i(cfg.l1i, ReplacementKind::LRU, opts.seed);
    MemoryHierarchy hierarchy(cfg.memory);
    return measureKernel("cache-lookup", opts.protocol, n,
                         n * blockBytes, [&] {
                             for (Addr b : blocks) {
                                 if (!l1i.access(b).hit) {
                                     hierarchy.request(b);
                                     l1i.fill(b, false);
                                 }
                             }
                         });
}

// -------------------------------------------- fig10 multicore fan-out

KernelTiming
runMulticoreFanout(const PerfOptions &opts, unsigned threads)
{
    constexpr unsigned cores = 4;
    const InstCount warmup = scaled(40 * 1024, opts.scale);
    const InstCount measure = scaled(120 * 1024, opts.scale);
    SystemConfig cfg;
    cfg.seed = opts.seed;
    cfg.threads = threads;
    const std::uint64_t ops = cores * (warmup + measure);
    return measureKernel(
        "fig10-multicore-t" + std::to_string(threads), opts.protocol,
        ops, 0, [&, warmup, measure] {
            const MulticoreTraceResult res = runMulticoreTrace(
                opts.workload, PrefetcherKind::Pif, cores, warmup,
                measure, cfg);
            if (res.perCore.size() != cores)
                fatalError("perf: multicore fan-out lost cores");
        });
}

} // namespace

const std::vector<PerfKernelSpec> &
perfKernels()
{
    static const std::vector<PerfKernelSpec> kernels = {
        {"trace-decode",
         "chunked binary trace read (records/sec, bytes/sec)",
         runTraceDecode},
        {"trace-decode-soa",
         "streamed trace decode into SoA record batches",
         runTraceDecodeSoa},
        {"trace-decode-v2",
         "compressed v2 chunk decode into SoA record batches",
         runTraceDecodeV2},
        {"trace-replay",
         "functional engine + PIF steady-state replay (instrs/sec)",
         runTraceReplay},
        {"replay-batched",
         "batched pipeline on pre-decoded SoA batches (instrs/sec)",
         runReplayBatched},
        {"pif-train",
         "PIF train+predict on a pre-generated retire stream",
         runPifTrain},
        {"cache-lookup",
         "L1-I access / L2 fill loop on the fetch-block stream",
         runCacheLookup},
        {"fig10-multicore-t1",
         "4-core Figure 10 trace fan-out on 1 worker",
         [](const PerfOptions &o) { return runMulticoreFanout(o, 1); }},
        {"fig10-multicore-t2",
         "4-core Figure 10 trace fan-out on 2 workers",
         [](const PerfOptions &o) { return runMulticoreFanout(o, 2); }},
        {"fig10-multicore-t4",
         "4-core Figure 10 trace fan-out on 4 workers",
         [](const PerfOptions &o) { return runMulticoreFanout(o, 4); }},
    };
    return kernels;
}

const PerfKernelSpec *
findPerfKernel(const std::string &name)
{
    for (const PerfKernelSpec &k : perfKernels()) {
        if (k.name == name)
            return &k;
    }
    return nullptr;
}

ResultValue
runPerfSuite(const PerfOptions &opts)
{
    // The CLI validates too, but the library surface must not let a
    // non-finite or huge scale reach the uint64 op-count cast (UB).
    if (!(opts.scale > 0.0) || !(opts.scale <= 1e6))
        fatalError("perf: scale must be in (0, 1e6]");

    std::vector<const PerfKernelSpec *> selected;
    if (opts.kernels.empty()) {
        for (const PerfKernelSpec &k : perfKernels())
            selected.push_back(&k);
    } else {
        for (const std::string &name : opts.kernels) {
            const PerfKernelSpec *k = findPerfKernel(name);
            if (!k)
                fatalError("perf: unknown kernel '" + name + "'");
            selected.push_back(k);
        }
    }

    ResultValue kernels = ResultValue::array();
    ResultValue table = makeTable(
        "Kernel throughput (median of repeats)",
        {"kernel", "ops", "reps", "median_ms", "mops_per_sec",
         "mbytes_per_sec"});
    ResultValue &rows = *table.find("rows");
    for (const PerfKernelSpec *spec : selected) {
        const KernelTiming t = spec->run(opts);
        ResultValue row = ResultValue::array();
        row.push(t.name);
        row.push(t.opsPerRep);
        row.push(t.protocol.reps);
        row.push(t.medianSeconds() * 1e3);
        row.push(t.opsPerSec() / 1e6);
        row.push(t.bytesPerSec() / 1e6);
        rows.push(std::move(row));
        kernels.push(toResult(t));
    }

    ResultValue meta = ResultValue::object();
    meta.set("git", gitDescribe());
    meta.set("reps", opts.protocol.reps);
    meta.set("warmup_reps", opts.protocol.warmupReps);
    meta.set("scale", opts.scale);
    meta.set("workload", workloadKey(opts.workload));
    meta.set("seed", opts.seed);

    ResultValue doc = ResultValue::object();
    doc.set("experiment", "perf");
    doc.set("description",
            "Wall-clock throughput of the simulator's hot kernels");
    doc.set("meta", std::move(meta));
    doc.set("kernels", std::move(kernels));
    doc.set("tables", ResultValue::array().push(std::move(table)));
    return doc;
}

} // namespace pifetch
