/**
 * @file
 * Statistics implementation.
 */

#include "common/stats.hh"

#include <algorithm>
#include <cstdio>

namespace pifetch {

Counter::Counter(StatGroup &group, std::string name, std::string desc)
    : group_(&group), name_(std::move(name)), desc_(std::move(desc))
{
    group.enroll(this);
}

Counter::~Counter()
{
    if (group_)
        group_->unenroll(this);
}

Counter::Counter(Counter &&other) noexcept
    : group_(other.group_), name_(std::move(other.name_)),
      desc_(std::move(other.desc_)), value_(other.value_)
{
    if (group_) {
        group_->reenroll(&other, this);
        other.group_ = nullptr;
    }
    other.value_ = 0;
}

Counter &
Counter::operator=(Counter &&other) noexcept
{
    if (this == &other)
        return *this;
    if (group_)
        group_->unenroll(this);
    group_ = other.group_;
    name_ = std::move(other.name_);
    desc_ = std::move(other.desc_);
    value_ = other.value_;
    if (group_) {
        group_->reenroll(&other, this);
        other.group_ = nullptr;
    }
    other.value_ = 0;
    return *this;
}

void
StatGroup::unenroll(const Counter *c)
{
    counters_.erase(std::remove(counters_.begin(), counters_.end(), c),
                    counters_.end());
}

void
StatGroup::reenroll(const Counter *from, Counter *to)
{
    for (Counter *&slot : counters_) {
        if (slot == from)
            slot = to;
    }
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const Counter *c : counters_) {
        os << name_ << '.' << c->name() << ' ' << c->value()
           << "  # " << c->desc() << '\n';
    }
}

void
StatGroup::resetAll()
{
    for (Counter *c : counters_)
        c->reset();
}

std::string
percent(double fraction)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f%%", fraction * 100.0);
    return buf;
}

} // namespace pifetch
