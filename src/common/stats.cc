/**
 * @file
 * Statistics implementation.
 */

#include "common/stats.hh"

#include <cstdio>

namespace pifetch {

Counter::Counter(StatGroup &group, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    group.enroll(this);
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const Counter *c : counters_) {
        os << name_ << '.' << c->name() << ' ' << c->value()
           << "  # " << c->desc() << '\n';
    }
}

void
StatGroup::resetAll()
{
    for (Counter *c : counters_)
        c->reset();
}

std::string
percent(double fraction)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f%%", fraction * 100.0);
    return buf;
}

} // namespace pifetch
