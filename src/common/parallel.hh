/**
 * @file
 * Fixed-size worker pool and data-parallel loop primitive.
 *
 * The simulator's outer loops (one engine per simulated core, one
 * engine per prefetcher configuration) are embarrassingly parallel:
 * every task constructs its own Program, SystemConfig, RNG and
 * predictor state, so nothing is shared but read-only inputs. This
 * subsystem makes that isolation explicit. parallelFor(n, fn) runs
 * fn(0..n-1) across a fixed set of std::thread workers and guarantees
 * that results placed into per-index slots are bit-identical to a
 * serial execution — the schedule may differ, the work may not.
 *
 * Thread-count resolution (resolveThreads): an explicit request wins;
 * a request of 0 means "auto", which honours the PIFETCH_THREADS
 * environment variable (CI pins 1 for strict serialism) and otherwise
 * uses std::thread::hardware_concurrency(). At threads <= 1 every
 * primitive degrades to a plain serial loop on the calling thread —
 * no pool, no synchronization.
 */

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pifetch {

/**
 * Number of workers used when a caller asks for "auto" (threads == 0):
 * PIFETCH_THREADS if set to a positive integer, otherwise
 * std::thread::hardware_concurrency(), and at least 1.
 */
unsigned defaultThreads();

/** Map a requested thread count to an effective one (0 -> auto). */
unsigned resolveThreads(unsigned requested);

/**
 * A fixed-size pool of std::thread workers executing indexed loops.
 *
 * One pool owns (threads - 1) long-lived workers; the calling thread
 * participates in every loop, so a pool built with threads == T uses
 * exactly T concurrent lanes. Construction with threads <= 1 creates
 * no workers at all and parallelFor() becomes a serial loop.
 *
 * The pool is reusable: parallelFor() may be called any number of
 * times, but not concurrently from several threads and not
 * re-entrantly from inside a task.
 */
class ThreadPool
{
  public:
    /** @param threads Total lanes; 0 means resolveThreads(0). */
    explicit ThreadPool(unsigned threads = 0);

    /** Joins all workers; pending work must have completed. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total concurrent lanes (workers + the calling thread). */
    unsigned threads() const { return threads_; }

    /**
     * Run fn(i) for every i in [0, n), distributed over the lanes.
     *
     * Blocks until every index has completed. Indices are claimed
     * from a shared atomic counter, so tasks should be coarse enough
     * to amortize one fetch_add each (an engine run easily is). If a
     * task throws, the first exception is rethrown on the calling
     * thread after the loop drains.
     */
    void parallelFor(std::uint64_t n,
                     const std::function<void(std::uint64_t)> &fn);

  private:
    void workerLoop();
    void runJob();

    unsigned threads_ = 1;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable wake_;     //!< workers: new job or stop
    std::condition_variable jobDone_;  //!< caller: all indices finished
    bool stop_ = false;
    bool jobOpen_ = false;             //!< a job is accepting workers
    unsigned activeWorkers_ = 0;       //!< workers inside runJob()
    std::uint64_t generation_ = 0;     //!< bumps once per job

    // Current job (valid while busyWorkers_ may be nonzero).
    std::uint64_t jobSize_ = 0;
    const std::function<void(std::uint64_t)> *jobFn_ = nullptr;
    std::atomic<std::uint64_t> nextIndex_{0};
    std::atomic<std::uint64_t> doneCount_{0};
    std::exception_ptr firstError_;
};

/**
 * One-shot convenience: run fn(0..n-1) on @p threads lanes
 * (0 = auto). Serial at threads <= 1 or n <= 1; otherwise spins up a
 * transient ThreadPool. Callers with several loops should keep their
 * own ThreadPool instead.
 */
void parallelFor(unsigned threads, std::uint64_t n,
                 const std::function<void(std::uint64_t)> &fn);

} // namespace pifetch
