/**
 * @file
 * Histogram implementations.
 */

#include "common/histogram.hh"

#include <algorithm>
#include "common/bitops.hh"

#include "common/types.hh"

namespace pifetch {

Log2Histogram::Log2Histogram(unsigned max_log2)
    : w_(max_log2 + 1, 0.0)
{
}

void
Log2Histogram::add(std::uint64_t value, double weight)
{
    unsigned b = 0;
    if (value > 1)
        b = 63 - static_cast<unsigned>(bits::countlZero(value));
    if (b >= w_.size())
        b = static_cast<unsigned>(w_.size()) - 1;
    w_[b] += weight;
    total_ += weight;
}

double
Log2Histogram::fractionAt(unsigned b) const
{
    return total_ > 0.0 ? w_.at(b) / total_ : 0.0;
}

double
Log2Histogram::cumulativeAt(unsigned b) const
{
    if (total_ <= 0.0)
        return 0.0;
    double sum = 0.0;
    for (unsigned i = 0; i <= b && i < w_.size(); ++i)
        sum += w_[i];
    return sum / total_;
}

unsigned
Log2Histogram::highestBucket() const
{
    for (unsigned i = static_cast<unsigned>(w_.size()); i-- > 0;) {
        if (w_[i] > 0.0)
            return i;
    }
    return 0;
}

void
Log2Histogram::clear()
{
    std::fill(w_.begin(), w_.end(), 0.0);
    total_ = 0.0;
}

RangeHistogram::RangeHistogram(std::vector<std::uint64_t> upper_bounds)
    : bounds_(std::move(upper_bounds)), w_(bounds_.size(), 0.0)
{
    if (bounds_.empty())
        panic("RangeHistogram needs at least one range");
    for (size_t i = 1; i < bounds_.size(); ++i) {
        if (bounds_[i] <= bounds_[i - 1])
            panic("RangeHistogram bounds must be strictly increasing");
    }
}

void
RangeHistogram::add(std::uint64_t value, double weight)
{
    unsigned r = static_cast<unsigned>(bounds_.size()) - 1;
    for (unsigned i = 0; i < bounds_.size(); ++i) {
        if (value <= bounds_[i]) {
            r = i;
            break;
        }
    }
    w_[r] += weight;
    total_ += weight;
}

double
RangeHistogram::fractionAt(unsigned r) const
{
    return total_ > 0.0 ? w_.at(r) / total_ : 0.0;
}

std::string
RangeHistogram::labelAt(unsigned r) const
{
    const std::uint64_t hi = bounds_.at(r);
    const std::uint64_t lo = (r == 0) ? 1 : bounds_[r - 1] + 1;
    if (lo == hi)
        return std::to_string(lo);
    return std::to_string(lo) + "-" + std::to_string(hi);
}

void
RangeHistogram::clear()
{
    std::fill(w_.begin(), w_.end(), 0.0);
    total_ = 0.0;
}

LinearHistogram::LinearHistogram(int lo, int hi)
    : lo_(lo), hi_(hi), w_(static_cast<size_t>(hi - lo + 1), 0.0)
{
    if (hi < lo)
        panic("LinearHistogram requires hi >= lo");
}

void
LinearHistogram::add(int value, double weight)
{
    if (value < lo_ || value > hi_) {
        dropped_ += weight;
        return;
    }
    w_[static_cast<size_t>(value - lo_)] += weight;
    total_ += weight;
}

double
LinearHistogram::weightAt(int v) const
{
    return w_.at(static_cast<size_t>(v - lo_));
}

double
LinearHistogram::fractionAt(int v) const
{
    return total_ > 0.0 ? weightAt(v) / total_ : 0.0;
}

void
LinearHistogram::clear()
{
    std::fill(w_.begin(), w_.end(), 0.0);
    total_ = 0.0;
    dropped_ = 0.0;
}

} // namespace pifetch
