/**
 * @file
 * Fundamental types and address arithmetic shared by every module.
 *
 * The simulated machine follows Table I of the paper: 64-byte cache
 * blocks throughout the hierarchy. Instruction addresses are byte
 * addresses; most predictor structures operate on block addresses
 * (byte address >> 6).
 */

#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace pifetch {

/** Byte address in the simulated instruction address space. */
using Addr = std::uint64_t;

/** Simulated clock cycle count. */
using Cycle = std::uint64_t;

/** Count of dynamic instructions. */
using InstCount = std::uint64_t;

/** Log2 of the cache block size (64B blocks, Table I). */
constexpr unsigned blockShift = 6;

/** Cache block size in bytes. */
constexpr Addr blockBytes = Addr{1} << blockShift;

/** Fixed instruction size (SPARC-like fixed 4-byte encoding). */
constexpr Addr instrBytes = 4;

/** Instructions per cache block. */
constexpr unsigned instrsPerBlock =
    static_cast<unsigned>(blockBytes / instrBytes);

/** An invalid / sentinel address. */
constexpr Addr invalidAddr = ~Addr{0};

/** Convert a byte address to a block address (block index). */
constexpr Addr
blockAddr(Addr byte_addr)
{
    return byte_addr >> blockShift;
}

/** Convert a block address back to the byte address of its first byte. */
constexpr Addr
blockBase(Addr block_addr)
{
    return block_addr << blockShift;
}

/** True if two byte addresses fall in the same cache block. */
constexpr bool
sameBlock(Addr a, Addr b)
{
    return blockAddr(a) == blockAddr(b);
}

/** Processor trap level of an instruction (0 = application, 1+ = handler). */
using TrapLevel = std::uint8_t;

/** Maximum trap nesting depth that the recorders separate (paper uses 2). */
constexpr TrapLevel maxTrapLevels = 2;

/**
 * Abort the process on an internal invariant violation.
 *
 * Mirrors gem5's panic(): this is for simulator bugs, never for user
 * configuration errors (those use fatalError()).
 */
[[noreturn]] inline void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

/** Exit with an error for invalid user configuration. */
[[noreturn]] inline void
fatalError(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

} // namespace pifetch
