/**
 * @file
 * Open-addressing hash containers for address keys.
 *
 * The prefetchers' hot loops consult small address sets on every
 * fetch access (prefetch-queue dedup) and, in the unbounded-storage
 * studies, a PC -> sequence map on every untagged fetch. The
 * node-based std::unordered_* containers pay a pointer chase and an
 * allocation per element on those paths; these flat, linear-probing
 * tables keep the whole structure in one contiguous allocation.
 *
 * Semantics match the std containers for the operations offered
 * (exact membership, last-write-wins assignment), so swapping them in
 * cannot move simulation results — the golden suite locks that.
 * Deletion uses backward-shift (no tombstones), so lookup cost never
 * degrades with churn; correctness against a std::unordered_set
 * reference is locked by tests/test_flat_hash.cc.
 *
 * Constraint: the key invalidAddr (all ones) is the empty-slot
 * sentinel and must never be inserted. Every simulated address that
 * reaches these tables is a block address or PC far below it.
 */

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace pifetch {

namespace flat_hash_detail {

/** SplitMix64 finalizer: full-avalanche mixing of an address key. */
inline std::uint64_t
mixAddr(Addr k)
{
    k ^= k >> 33;
    k *= 0xff51afd7ed558ccdull;
    k ^= k >> 33;
    k *= 0xc4ceb9fe1a85ec53ull;
    k ^= k >> 33;
    return k;
}

} // namespace flat_hash_detail

/**
 * Flat hash set of addresses (linear probing, power-of-two capacity,
 * <= 50% load). Grows on demand; clear() keeps the allocation so a
 * reused set stops allocating in steady state.
 */
class AddrSet
{
  public:
    AddrSet() = default;

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    bool
    contains(Addr k) const
    {
        if (slots_.empty())
            return false;
        std::size_t i = flat_hash_detail::mixAddr(k) & mask_;
        while (slots_[i] != invalidAddr) {
            if (slots_[i] == k)
                return true;
            i = (i + 1) & mask_;
        }
        return false;
    }

    /** std-container-compatible membership count (0 or 1). */
    std::size_t count(Addr k) const { return contains(k) ? 1 : 0; }

    /** Insert @p k. @return true if it was not already present. */
    bool
    insert(Addr k)
    {
        if (k == invalidAddr)
            panic("AddrSet: the sentinel key cannot be inserted");
        if ((size_ + 1) * 2 > slots_.size())
            grow();
        std::size_t i = flat_hash_detail::mixAddr(k) & mask_;
        while (slots_[i] != invalidAddr) {
            if (slots_[i] == k)
                return false;
            i = (i + 1) & mask_;
        }
        slots_[i] = k;
        ++size_;
        return true;
    }

    /** Remove @p k. @return true if it was present. */
    bool
    erase(Addr k)
    {
        if (slots_.empty())
            return false;
        std::size_t i = flat_hash_detail::mixAddr(k) & mask_;
        while (true) {
            if (slots_[i] == invalidAddr)
                return false;
            if (slots_[i] == k)
                break;
            i = (i + 1) & mask_;
        }
        shiftErase(i);
        --size_;
        return true;
    }

    /** Drop every element, keeping the allocation. */
    void
    clear()
    {
        std::fill(slots_.begin(), slots_.end(), invalidAddr);
        size_ = 0;
    }

  private:
    /**
     * Close the hole at @p hole by shifting displaced cluster members
     * back (the tombstone-free linear-probing deletion): walk the
     * cluster; an element at j may fill the hole iff its ideal slot
     * does not lie cyclically in (hole, j].
     */
    void
    shiftErase(std::size_t hole)
    {
        std::size_t j = hole;
        while (true) {
            j = (j + 1) & mask_;
            if (slots_[j] == invalidAddr)
                break;
            const std::size_t ideal =
                flat_hash_detail::mixAddr(slots_[j]) & mask_;
            const bool in_range = hole <= j
                ? (hole < ideal && ideal <= j)
                : (hole < ideal || ideal <= j);
            if (!in_range) {
                slots_[hole] = slots_[j];
                hole = j;
            }
        }
        slots_[hole] = invalidAddr;
    }

    void
    grow()
    {
        const std::size_t cap =
            slots_.empty() ? 64 : slots_.size() * 2;
        std::vector<Addr> old = std::move(slots_);
        slots_.assign(cap, invalidAddr);
        mask_ = cap - 1;
        for (Addr k : old) {
            if (k == invalidAddr)
                continue;
            std::size_t i = flat_hash_detail::mixAddr(k) & mask_;
            while (slots_[i] != invalidAddr)
                i = (i + 1) & mask_;
            slots_[i] = k;
        }
    }

    std::vector<Addr> slots_;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
};

/**
 * Flat hash map from addresses to @p Value (same probing scheme and
 * key constraint as AddrSet; no deletion — the one consumer, the
 * unbounded index table, only ever assigns and clears).
 */
template <typename Value>
class AddrMap
{
  public:
    AddrMap() = default;

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Pointer to the value mapped to @p k, or nullptr. */
    const Value *
    find(Addr k) const
    {
        if (keys_.empty())
            return nullptr;
        std::size_t i = flat_hash_detail::mixAddr(k) & mask_;
        while (keys_[i] != invalidAddr) {
            if (keys_[i] == k)
                return &values_[i];
            i = (i + 1) & mask_;
        }
        return nullptr;
    }

    /** Map @p k to @p v, overwriting any existing mapping. */
    void
    insertOrAssign(Addr k, const Value &v)
    {
        if (k == invalidAddr)
            panic("AddrMap: the sentinel key cannot be inserted");
        if ((size_ + 1) * 2 > keys_.size())
            grow();
        std::size_t i = flat_hash_detail::mixAddr(k) & mask_;
        while (keys_[i] != invalidAddr) {
            if (keys_[i] == k) {
                values_[i] = v;
                return;
            }
            i = (i + 1) & mask_;
        }
        keys_[i] = k;
        values_[i] = v;
        ++size_;
    }

    /** Drop every mapping, keeping the allocation. */
    void
    clear()
    {
        std::fill(keys_.begin(), keys_.end(), invalidAddr);
        size_ = 0;
    }

  private:
    void
    grow()
    {
        const std::size_t cap = keys_.empty() ? 64 : keys_.size() * 2;
        std::vector<Addr> old_keys = std::move(keys_);
        std::vector<Value> old_values = std::move(values_);
        keys_.assign(cap, invalidAddr);
        values_.assign(cap, Value{});
        mask_ = cap - 1;
        for (std::size_t s = 0; s < old_keys.size(); ++s) {
            if (old_keys[s] == invalidAddr)
                continue;
            std::size_t i =
                flat_hash_detail::mixAddr(old_keys[s]) & mask_;
            while (keys_[i] != invalidAddr)
                i = (i + 1) & mask_;
            keys_[i] = old_keys[s];
            values_[i] = old_values[s];
        }
    }

    std::vector<Addr> keys_;
    std::vector<Value> values_;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
};

} // namespace pifetch
