/**
 * @file
 * Order-sensitive stream digests.
 *
 * The validation subsystem (src/check/) cross-checks the TraceEngine
 * and CycleEngine by comparing the exact sequence of retired
 * instructions and fetch accesses each engine produced. Storing the
 * streams would cost gigabytes; instead the engines can fold every
 * element into a 64-bit FNV-1a digest, and two digests are equal iff
 * the streams (almost certainly) were. Digest collection is off by
 * default so the replay hot path pays nothing beyond one predictable
 * branch per instruction.
 */

#pragma once

#include <cstdint>

namespace pifetch {

/**
 * 64-bit FNV-1a accumulator over a sequence of 64-bit words.
 *
 * Order-sensitive by construction: add(a); add(b) and add(b); add(a)
 * produce different values, which is exactly what a stream comparison
 * needs.
 */
class StreamDigest
{
  public:
    /** Fold one word into the digest. */
    void
    add(std::uint64_t word)
    {
        // Mix the word byte-wise through FNV-1a so single-bit
        // differences in any byte avalanche through the state.
        for (int b = 0; b < 64; b += 8) {
            hash_ ^= (word >> b) & 0xff;
            hash_ *= prime;
        }
    }

    /** Current digest value. */
    std::uint64_t value() const { return hash_; }

    /** Restore the initial (empty-stream) state. */
    void reset() { hash_ = offsetBasis; }

  private:
    static constexpr std::uint64_t offsetBasis = 0xcbf29ce484222325ull;
    static constexpr std::uint64_t prime = 0x100000001b3ull;

    std::uint64_t hash_ = offsetBasis;
};

/**
 * The one word encoding of a retired instruction (RetiredInstr-shaped:
 * pc, target, kind, trapLevel, taken). Both engines must fold the
 * exact same words or the cross-engine digest oracle is meaningless —
 * which is why this lives here, once, instead of in each replay loop.
 */
template <typename Instr>
inline void
digestRetire(StreamDigest &digest, const Instr &instr)
{
    digest.add(instr.pc);
    digest.add(instr.target);
    digest.add((static_cast<std::uint64_t>(instr.kind) << 16) |
               (static_cast<std::uint64_t>(instr.trapLevel) << 8) |
               (instr.taken ? 1 : 0));
}

/**
 * The one word encoding of a fetch access (FetchAccess-shaped: block,
 * trapLevel, correctPath). hit/wasPrefetched are deliberately
 * excluded — fill timing legitimately differs across engines; the
 * fetch *sequence* must not.
 */
template <typename Access>
inline void
digestAccess(StreamDigest &digest, const Access &access)
{
    digest.add((access.block << 8) |
               (static_cast<std::uint64_t>(access.trapLevel) << 1) |
               (access.correctPath ? 1 : 0));
}

} // namespace pifetch
