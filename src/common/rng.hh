/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic element of the simulator (workload generation,
 * data-dependent branch outcomes, interrupt arrivals, resolution
 * latencies) draws from an explicitly seeded Rng instance so that every
 * figure in EXPERIMENTS.md regenerates bit-identically. We use the
 * xoshiro256** generator: fast, high quality, and trivially seedable.
 */

#pragma once

#include <cmath>
#include <cstdint>

namespace pifetch {

/**
 * Deterministic random number generator (xoshiro256**).
 *
 * Not thread-safe; each simulated component owns its own instance.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed, expanded via splitmix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            // splitmix64 seeding as recommended by the xoshiro authors.
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Modulo bias is negligible for the bounds used here (< 2^32).
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /**
     * Geometric positive integer with the given mean (at least 1).
     *
     * Used for loop trip counts and burst lengths. The tail is capped at
     * 64x the mean to keep workload generation bounded.
     */
    std::uint64_t
    geometric(double mean)
    {
        if (mean <= 1.0)
            return 1;
        const double p = 1.0 / mean;
        std::uint64_t n = 1;
        while (n < 64 * static_cast<std::uint64_t>(mean) && !chance(p))
            ++n;
        return n;
    }

    /**
     * Zipf-distributed index in [0, n) with exponent s > 0.
     *
     * Server code is famously skewed: a few hot functions dominate while
     * a long tail is touched rarely. Uses the inverse-CDF of the
     * continuous bounded Pareto envelope, which is a standard and fast
     * approximation of the discrete Zipf for workload synthesis. The
     * harmonic case (s near 1, where the general form divides by
     * 1 - s = 0) uses the log-form inverse CDF x = n^u instead.
     */
    std::uint64_t
    zipf(std::uint64_t n, double s)
    {
        if (n <= 1)
            return 0;
        const double one_minus_s = 1.0 - s;
        const double nn = static_cast<double>(n);
        const double u = uniform();
        double x;
        if (std::fabs(one_minus_s) < 1e-9) {
            // Density 1/x on [1, n]: CDF = ln(x)/ln(n), inverse n^u.
            x = std::exp(u * std::log(nn));
        } else {
            x = std::pow(u * (std::pow(nn, one_minus_s) - 1.0) + 1.0,
                         1.0 / one_minus_s);
        }
        std::uint64_t k = static_cast<std::uint64_t>(x);
        if (k >= n)
            k = n - 1;
        return k;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace pifetch
