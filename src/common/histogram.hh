/**
 * @file
 * Histogram utilities used by the figure-reproduction studies.
 *
 * The paper's figures bucket quantities either linearly (Fig. 8 left:
 * block offset from trigger) or by power-of-two magnitude (Fig. 7 jump
 * distance, Fig. 9 stream length). Both flavours live here.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pifetch {

/**
 * Histogram with power-of-two buckets.
 *
 * Bucket i counts samples with floor(log2(value)) == i; values of zero
 * land in bucket 0 alongside value 1. Supports weighted samples so that
 * Fig. 7 ("jumps weighted by coverage") and Fig. 9 (left) can be
 * produced directly.
 */
class Log2Histogram
{
  public:
    /** Create a histogram covering log2 values [0, max_log2]. */
    explicit Log2Histogram(unsigned max_log2 = 40);

    /** Add a sample with the given weight. */
    void add(std::uint64_t value, double weight = 1.0);

    /** Number of buckets. */
    unsigned buckets() const { return static_cast<unsigned>(w_.size()); }

    /** Total weight in bucket b. */
    double weightAt(unsigned b) const { return w_.at(b); }

    /** Total weight across all buckets. */
    double totalWeight() const { return total_; }

    /** Fraction of total weight in bucket b (0 if histogram empty). */
    double fractionAt(unsigned b) const;

    /** Cumulative fraction of weight in buckets [0, b]. */
    double cumulativeAt(unsigned b) const;

    /** Index of the highest non-empty bucket (0 if empty). */
    unsigned highestBucket() const;

    /** Reset to empty. */
    void clear();

  private:
    std::vector<double> w_;
    double total_ = 0.0;
};

/**
 * Histogram with caller-defined contiguous integer ranges.
 *
 * Fig. 3 buckets region densities as {1, 2, 3-4, 5-8, 9-16, 17-32}; this
 * class takes the upper bound of each range and reports per-range
 * fractions with printable labels.
 */
class RangeHistogram
{
  public:
    /**
     * @param upper_bounds Inclusive upper bound of each range; the lower
     *        bound of range i is upper_bounds[i-1]+1 (or 1 for i==0).
     *        Values above the last bound are clamped into the last range.
     */
    explicit RangeHistogram(std::vector<std::uint64_t> upper_bounds);

    /** Add a sample with the given weight. */
    void add(std::uint64_t value, double weight = 1.0);

    /** Number of ranges. */
    unsigned ranges() const { return static_cast<unsigned>(w_.size()); }

    /** Total weight in range r. */
    double weightAt(unsigned r) const { return w_.at(r); }

    /** Fraction of total weight in range r (0 if empty). */
    double fractionAt(unsigned r) const;

    /** Printable label for range r, e.g. "3-4" or "2". */
    std::string labelAt(unsigned r) const;

    /** Total weight across all ranges. */
    double totalWeight() const { return total_; }

    /** Reset to empty. */
    void clear();

  private:
    std::vector<std::uint64_t> bounds_;
    std::vector<double> w_;
    double total_ = 0.0;
};

/**
 * Histogram over a signed linear domain [lo, hi].
 *
 * Fig. 8 (left) plots reference frequency versus signed block distance
 * from the trigger access (-4 .. +12); out-of-range samples are dropped
 * but counted, so callers can report truncation.
 */
class LinearHistogram
{
  public:
    LinearHistogram(int lo, int hi);

    /** Add a sample; out-of-range samples increment dropped(). */
    void add(int value, double weight = 1.0);

    int lo() const { return lo_; }
    int hi() const { return hi_; }

    /** Weight at domain value v (must be within [lo, hi]). */
    double weightAt(int v) const;

    /** Fraction of in-range weight at value v. */
    double fractionAt(int v) const;

    /** Total in-range weight. */
    double totalWeight() const { return total_; }

    /** Total weight of dropped (out-of-range) samples. */
    double dropped() const { return dropped_; }

    /** Reset to empty. */
    void clear();

  private:
    int lo_;
    int hi_;
    std::vector<double> w_;
    double total_ = 0.0;
    double dropped_ = 0.0;
};

} // namespace pifetch
