/**
 * @file
 * Structured result serialization (JSON / CSV / text tables).
 */

#include "common/results.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace pifetch {

namespace {

/**
 * Shortest decimal form of @p d that strtod parses back to the same
 * bits, forced to keep a '.' or exponent so it re-parses as Real.
 * Non-finite values fall under the JSON policy: "null".
 */
std::string
formatReal(double d)
{
    if (std::isnan(d) || std::isinf(d))
        return "null";
    char buf[40];
    for (int prec = 1; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, d);
        if (std::strtod(buf, nullptr) == d)
            break;
    }
    std::string s = buf;
    if (s.find_first_of(".eE") == std::string::npos)
        s += ".0";
    return s;
}

bool
numericEqual(const ResultValue &a, const ResultValue &b)
{
    using Kind = ResultValue::Kind;
    if (a.kind() == Kind::Real || b.kind() == Kind::Real)
        return a.number() == b.number();
    // Both integral: compare signed-aware.
    const bool a_neg = a.kind() == Kind::Int && a.intValue() < 0;
    const bool b_neg = b.kind() == Kind::Int && b.intValue() < 0;
    if (a_neg != b_neg)
        return false;
    if (a_neg)
        return a.intValue() == b.intValue();
    const std::uint64_t ua = a.kind() == Kind::Int
        ? static_cast<std::uint64_t>(a.intValue()) : a.uintValue();
    const std::uint64_t ub = b.kind() == Kind::Int
        ? static_cast<std::uint64_t>(b.intValue()) : b.uintValue();
    return ua == ub;
}

/** True when every element of @p v (an array) is a scalar. */
bool
allScalar(const ResultValue &v)
{
    for (std::size_t i = 0; i < v.size(); ++i) {
        const ResultValue::Kind k = v.at(i).kind();
        if (k == ResultValue::Kind::Array ||
            k == ResultValue::Kind::Object)
            return false;
    }
    return true;
}

void
jsonScalar(const ResultValue &v, std::string &out)
{
    switch (v.kind()) {
      case ResultValue::Kind::Null:
        out += "null";
        break;
      case ResultValue::Kind::Bool:
        out += v.boolean() ? "true" : "false";
        break;
      case ResultValue::Kind::Int:
        out += std::to_string(v.intValue());
        break;
      case ResultValue::Kind::Uint:
        out += std::to_string(v.uintValue());
        break;
      case ResultValue::Kind::Real:
        out += formatReal(v.number());
        break;
      case ResultValue::Kind::String:
        out += '"';
        out += jsonEscape(v.str());
        out += '"';
        break;
      default:
        break;
    }
}

void
jsonWrite(const ResultValue &v, unsigned indent, unsigned depth,
          std::string &out)
{
    // Scalars never need the indent strings; build them lazily so the
    // common per-cell calls stay allocation-free.
    const auto pad = [&] {
        return std::string(static_cast<std::size_t>(indent) *
                           (depth + 1), ' ');
    };
    const auto close = [&] {
        return std::string(static_cast<std::size_t>(indent) * depth,
                           ' ');
    };
    const char *nl = indent ? "\n" : "";

    switch (v.kind()) {
      case ResultValue::Kind::Array:
        if (v.size() == 0) {
            out += "[]";
            return;
        }
        // Scalar-only arrays (table rows, size sweeps) stay on one
        // line so snapshots remain reviewable.
        if (allScalar(v)) {
            out += '[';
            for (std::size_t i = 0; i < v.size(); ++i) {
                if (i)
                    out += indent ? ", " : ",";
                jsonScalar(v.at(i), out);
            }
            out += ']';
            return;
        }
        out += '[';
        out += nl;
        for (std::size_t i = 0; i < v.size(); ++i) {
            if (i) {
                out += ',';
                out += nl;
            }
            if (indent)
                out += pad();
            jsonWrite(v.at(i), indent, depth + 1, out);
        }
        out += nl;
        if (indent)
            out += close();
        out += ']';
        return;
      case ResultValue::Kind::Object:
        if (v.size() == 0) {
            out += "{}";
            return;
        }
        out += '{';
        out += nl;
        for (std::size_t i = 0; i < v.size(); ++i) {
            if (i) {
                out += ',';
                out += nl;
            }
            const auto &m = v.member(i);
            if (indent)
                out += pad();
            out += '"';
            out += jsonEscape(m.first);
            out += indent ? "\": " : "\":";
            jsonWrite(m.second, indent, depth + 1, out);
        }
        out += nl;
        if (indent)
            out += close();
        out += '}';
        return;
      default:
        jsonScalar(v, out);
        return;
    }
}

} // namespace

ResultValue
ResultValue::array()
{
    ResultValue v;
    v.kind_ = Kind::Array;
    return v;
}

ResultValue
ResultValue::object()
{
    ResultValue v;
    v.kind_ = Kind::Object;
    return v;
}

double
ResultValue::number() const
{
    switch (kind_) {
      case Kind::Int: return static_cast<double>(i_);
      case Kind::Uint: return static_cast<double>(u_);
      case Kind::Real: return d_;
      default: return 0.0;
    }
}

std::size_t
ResultValue::size() const
{
    if (kind_ == Kind::Array)
        return arr_.size();
    if (kind_ == Kind::Object)
        return obj_.size();
    return 0;
}

ResultValue &
ResultValue::push(ResultValue v)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Array;
    arr_.push_back(std::move(v));
    return *this;
}

ResultValue &
ResultValue::set(const std::string &key, ResultValue v)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Object;
    for (auto &m : obj_) {
        if (m.first == key) {
            m.second = std::move(v);
            return *this;
        }
    }
    obj_.emplace_back(key, std::move(v));
    return *this;
}

const ResultValue *
ResultValue::find(const std::string &key) const
{
    for (const auto &m : obj_) {
        if (m.first == key)
            return &m.second;
    }
    return nullptr;
}

bool
ResultValue::operator==(const ResultValue &o) const
{
    if (isNumber() && o.isNumber())
        return numericEqual(*this, o);
    if (kind_ != o.kind_)
        return false;
    switch (kind_) {
      case Kind::Null: return true;
      case Kind::Bool: return b_ == o.b_;
      case Kind::String: return s_ == o.s_;
      case Kind::Array: return arr_ == o.arr_;
      case Kind::Object: return obj_ == o.obj_;
      default: return false;
    }
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char ch : s) {
        const unsigned char c = static_cast<unsigned char>(ch);
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

std::string
toJson(const ResultValue &v, unsigned indent)
{
    std::string out;
    jsonWrite(v, indent, 0, out);
    return out;
}

// ------------------------------------------------------------- parsing

namespace {

/** Recursive-descent parser over the toJson subset. */
class JsonParser
{
  public:
    JsonParser(const std::string &text, std::string *err)
        : text_(text), err_(err)
    {
    }

    std::optional<ResultValue>
    parse()
    {
        std::optional<ResultValue> v = value(0);
        if (!v)
            return std::nullopt;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after document");
        return v;
    }

  private:
    std::optional<ResultValue>
    fail(const std::string &why)
    {
        if (err_ && err_->empty()) {
            *err_ = why + " at offset " + std::to_string(pos_);
        }
        return std::nullopt;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::strlen(word);
        if (text_.compare(pos_, n, word) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    std::optional<ResultValue>
    value(unsigned depth)
    {
        if (depth > 200)
            return fail("nesting too deep");
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        const char c = text_[pos_];
        if (c == '{')
            return object(depth);
        if (c == '[')
            return array(depth);
        if (c == '"')
            return string();
        if (literal("null"))
            return ResultValue();
        if (literal("true"))
            return ResultValue(true);
        if (literal("false"))
            return ResultValue(false);
        return number();
    }

    std::optional<ResultValue>
    object(unsigned depth)
    {
        consume('{');
        ResultValue out = ResultValue::object();
        skipWs();
        if (consume('}'))
            return out;
        while (true) {
            skipWs();
            std::optional<ResultValue> key = string();
            if (!key)
                return std::nullopt;
            skipWs();
            if (!consume(':'))
                return fail("expected ':' in object");
            std::optional<ResultValue> v = value(depth + 1);
            if (!v)
                return std::nullopt;
            out.set(key->str(), std::move(*v));
            skipWs();
            if (consume(','))
                continue;
            if (consume('}'))
                return out;
            return fail("expected ',' or '}' in object");
        }
    }

    std::optional<ResultValue>
    array(unsigned depth)
    {
        consume('[');
        ResultValue out = ResultValue::array();
        skipWs();
        if (consume(']'))
            return out;
        while (true) {
            std::optional<ResultValue> v = value(depth + 1);
            if (!v)
                return std::nullopt;
            out.push(std::move(*v));
            skipWs();
            if (consume(','))
                continue;
            if (consume(']'))
                return out;
            return fail("expected ',' or ']' in array");
        }
    }

    /** Append code point @p cp to @p out as UTF-8. */
    static void
    appendUtf8(unsigned long cp, std::string &out)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
            out += static_cast<char>(0xf0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        }
    }

    std::optional<unsigned long>
    hex4()
    {
        if (pos_ + 4 > text_.size())
            return std::nullopt;
        unsigned long v = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_++];
            v <<= 4;
            if (c >= '0' && c <= '9')
                v |= static_cast<unsigned long>(c - '0');
            else if (c >= 'a' && c <= 'f')
                v |= static_cast<unsigned long>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                v |= static_cast<unsigned long>(c - 'A' + 10);
            else
                return std::nullopt;
        }
        return v;
    }

    std::optional<ResultValue>
    string()
    {
        if (!consume('"'))
            return fail("expected string");
        std::string out;
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return ResultValue(std::move(out));
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            const char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                std::optional<unsigned long> cp = hex4();
                if (!cp)
                    return fail("bad \\u escape");
                // Surrogate pair.
                if (*cp >= 0xd800 && *cp <= 0xdbff &&
                    text_.compare(pos_, 2, "\\u") == 0) {
                    pos_ += 2;
                    std::optional<unsigned long> lo = hex4();
                    if (!lo || *lo < 0xdc00 || *lo > 0xdfff)
                        return fail("bad surrogate pair");
                    appendUtf8(0x10000 + ((*cp - 0xd800) << 10) +
                                   (*lo - 0xdc00),
                               out);
                } else {
                    appendUtf8(*cp, out);
                }
                break;
              }
              default:
                return fail("bad escape character");
            }
        }
        return fail("unterminated string");
    }

    std::optional<ResultValue>
    number()
    {
        const std::size_t start = pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if ((c >= '0' && c <= '9') || c == '-' || c == '+' ||
                c == '.' || c == 'e' || c == 'E') {
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start)
            return fail("expected a value");
        const std::string tok = text_.substr(start, pos_ - start);
        if (tok.find_first_of(".eE") == std::string::npos) {
            errno = 0;
            if (tok[0] == '-') {
                char *end = nullptr;
                const long long v = std::strtoll(tok.c_str(), &end, 10);
                if (errno == 0 && end && *end == '\0')
                    return ResultValue(v);
            } else {
                char *end = nullptr;
                const unsigned long long v =
                    std::strtoull(tok.c_str(), &end, 10);
                if (errno == 0 && end && *end == '\0')
                    return ResultValue(v);
            }
        }
        char *end = nullptr;
        const double d = std::strtod(tok.c_str(), &end);
        if (!end || *end != '\0')
            return fail("malformed number");
        return ResultValue(d);
    }

    const std::string &text_;
    std::string *err_;
    std::size_t pos_ = 0;
};

} // namespace

std::optional<ResultValue>
parseJson(const std::string &text, std::string *err)
{
    if (err)
        err->clear();
    return JsonParser(text, err).parse();
}

// ----------------------------------------------------------- CSV / text

std::string
csvEscape(const std::string &field)
{
    if (field.find_first_of(",\"\r\n") == std::string::npos)
        return field;
    std::string out = "\"";
    for (const char c : field) {
        if (c == '"')
            out += '"';  // RFC 4180: embedded quotes are doubled
        out += c;
    }
    out += '"';
    return out;
}

namespace {

/** Scalar cell for CSV / text rendering (empty for null/non-finite). */
std::string
cellString(const ResultValue &v)
{
    switch (v.kind()) {
      case ResultValue::Kind::Null:
        return "";
      case ResultValue::Kind::Bool:
        return v.boolean() ? "true" : "false";
      case ResultValue::Kind::Int:
        return std::to_string(v.intValue());
      case ResultValue::Kind::Uint:
        return std::to_string(v.uintValue());
      case ResultValue::Kind::Real: {
        const std::string s = formatReal(v.number());
        return s == "null" ? "" : s;
      }
      case ResultValue::Kind::String:
        return v.str();
      default:
        return toJson(v, 0);
    }
}

/** Collect the table nodes of a result document (see toCsv docs). */
std::vector<const ResultValue *>
collectTables(const ResultValue &v)
{
    std::vector<const ResultValue *> tables;
    const ResultValue *arr = nullptr;
    if (v.kind() == ResultValue::Kind::Array)
        arr = &v;
    else if (v.find("tables"))
        arr = v.find("tables");
    else if (v.find("columns"))
        tables.push_back(&v);
    if (arr) {
        for (std::size_t i = 0; i < arr->size(); ++i)
            tables.push_back(&arr->at(i));
    }
    return tables;
}

void
csvTable(const ResultValue &t, std::string &out)
{
    const ResultValue *title = t.find("title");
    const ResultValue *cols = t.find("columns");
    const ResultValue *rows = t.find("rows");
    if (title && !title->str().empty())
        out += "# " + title->str() + "\n";
    if (cols) {
        for (std::size_t c = 0; c < cols->size(); ++c) {
            if (c)
                out += ',';
            out += csvEscape(cellString(cols->at(c)));
        }
        out += '\n';
    }
    if (rows) {
        for (std::size_t r = 0; r < rows->size(); ++r) {
            const ResultValue &row = rows->at(r);
            for (std::size_t c = 0; c < row.size(); ++c) {
                if (c)
                    out += ',';
                out += csvEscape(cellString(row.at(c)));
            }
            out += '\n';
        }
    }
}

/** Human-friendly cell: reals trimmed to a readable precision. */
std::string
textCell(const ResultValue &v)
{
    if (v.kind() == ResultValue::Kind::Real) {
        const double d = v.number();
        if (std::isnan(d) || std::isinf(d))
            return "-";
        char buf[40];
        if (d != 0.0 && (std::fabs(d) >= 100000.0 ||
                         std::fabs(d) < 0.0001)) {
            std::snprintf(buf, sizeof(buf), "%.4g", d);
        } else {
            std::snprintf(buf, sizeof(buf), "%.4f", d);
        }
        return buf;
    }
    return cellString(v);
}

void
textTable(const ResultValue &t, std::string &out)
{
    const ResultValue *title = t.find("title");
    const ResultValue *cols = t.find("columns");
    const ResultValue *rows = t.find("rows");
    if (title && !title->str().empty())
        out += "-- " + title->str() + " --\n";

    // Materialize every cell, then pad columns to their max width.
    std::vector<std::vector<std::string>> grid;
    if (cols) {
        grid.emplace_back();
        for (std::size_t c = 0; c < cols->size(); ++c)
            grid.back().push_back(cellString(cols->at(c)));
    }
    if (rows) {
        for (std::size_t r = 0; r < rows->size(); ++r) {
            const ResultValue &row = rows->at(r);
            grid.emplace_back();
            for (std::size_t c = 0; c < row.size(); ++c)
                grid.back().push_back(textCell(row.at(c)));
        }
    }
    std::vector<std::size_t> width;
    for (const auto &row : grid) {
        if (width.size() < row.size())
            width.resize(row.size(), 0);
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }
    for (const auto &row : grid) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                out += "  ";
            out += row[c];
            if (c + 1 < row.size())
                out.append(width[c] - row[c].size(), ' ');
        }
        out += '\n';
    }
}

} // namespace

std::string
toCsv(const ResultValue &v)
{
    std::string out;
    const std::vector<const ResultValue *> tables = collectTables(v);
    for (std::size_t i = 0; i < tables.size(); ++i) {
        if (i)
            out += '\n';
        csvTable(*tables[i], out);
    }
    return out;
}

std::string
renderText(const ResultValue &v)
{
    std::string out;
    const ResultValue *name = v.find("experiment");
    const ResultValue *desc = v.find("description");
    if (name) {
        out += "=== " + name->str();
        if (desc && !desc->str().empty())
            out += ": " + desc->str();
        out += " ===\n";
    }
    const ResultValue *meta = v.find("meta");
    if (meta && meta->kind() == ResultValue::Kind::Object) {
        // Scalars only; the nested config lives in the JSON output.
        std::string line;
        for (std::size_t i = 0; i < meta->size(); ++i) {
            const auto &m = meta->member(i);
            const ResultValue::Kind k = m.second.kind();
            if (k == ResultValue::Kind::Array ||
                k == ResultValue::Kind::Object)
                continue;
            if (!line.empty())
                line += ", ";
            line += m.first + " " + cellString(m.second);
        }
        if (!line.empty())
            out += "(" + line + ")\n";
    }
    const std::vector<const ResultValue *> tables = collectTables(v);
    for (const ResultValue *t : tables) {
        out += '\n';
        textTable(*t, out);
    }
    const ResultValue *notes = v.find("notes");
    if (notes && notes->size() > 0) {
        out += '\n';
        for (std::size_t i = 0; i < notes->size(); ++i)
            out += notes->at(i).str() + "\n";
    }
    return out;
}

ResultValue
makeTable(const std::string &title,
          const std::vector<std::string> &columns)
{
    ResultValue cols = ResultValue::array();
    for (const std::string &c : columns)
        cols.push(c);
    ResultValue t = ResultValue::object();
    t.set("title", title);
    t.set("columns", std::move(cols));
    t.set("rows", ResultValue::array());
    return t;
}

// -------------------------------------------------- domain serializers

ResultValue
toResult(const Log2Histogram &h)
{
    ResultValue buckets = ResultValue::array();
    if (h.totalWeight() > 0.0) {
        for (unsigned b = 0; b <= h.highestBucket(); ++b) {
            ResultValue e = ResultValue::object();
            e.set("log2", b);
            e.set("weight", h.weightAt(b));
            e.set("fraction", h.fractionAt(b));
            e.set("cumulative", h.cumulativeAt(b));
            buckets.push(std::move(e));
        }
    }
    ResultValue out = ResultValue::object();
    out.set("kind", "log2");
    out.set("total_weight", h.totalWeight());
    out.set("buckets", std::move(buckets));
    return out;
}

ResultValue
toResult(const RangeHistogram &h)
{
    ResultValue buckets = ResultValue::array();
    for (unsigned r = 0; r < h.ranges(); ++r) {
        ResultValue e = ResultValue::object();
        e.set("label", h.labelAt(r));
        e.set("weight", h.weightAt(r));
        e.set("fraction", h.fractionAt(r));
        buckets.push(std::move(e));
    }
    ResultValue out = ResultValue::object();
    out.set("kind", "range");
    out.set("total_weight", h.totalWeight());
    out.set("buckets", std::move(buckets));
    return out;
}

ResultValue
toResult(const LinearHistogram &h)
{
    ResultValue buckets = ResultValue::array();
    for (int v = h.lo(); v <= h.hi(); ++v) {
        ResultValue e = ResultValue::object();
        e.set("value", v);
        e.set("weight", h.weightAt(v));
        e.set("fraction", h.fractionAt(v));
        buckets.push(std::move(e));
    }
    ResultValue out = ResultValue::object();
    out.set("kind", "linear");
    out.set("lo", h.lo());
    out.set("hi", h.hi());
    out.set("total_weight", h.totalWeight());
    out.set("dropped_weight", h.dropped());
    out.set("buckets", std::move(buckets));
    return out;
}

std::optional<std::vector<std::uint64_t>>
uintArrayFromResult(const ResultValue &v)
{
    if (v.kind() != ResultValue::Kind::Array)
        return std::nullopt;
    std::vector<std::uint64_t> out;
    out.reserve(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) {
        const ResultValue &e = v.at(i);
        if (e.kind() == ResultValue::Kind::Uint) {
            out.push_back(e.uintValue());
        } else if (e.kind() == ResultValue::Kind::Int &&
                   e.intValue() >= 0) {
            out.push_back(static_cast<std::uint64_t>(e.intValue()));
        } else {
            return std::nullopt;
        }
    }
    return out;
}

ResultValue
toResult(const StatGroup &g)
{
    ResultValue counters = ResultValue::object();
    for (const Counter *c : g.counters())
        counters.set(c->name(), c->value());
    ResultValue out = ResultValue::object();
    out.set("group", g.name());
    out.set("counters", std::move(counters));
    return out;
}

} // namespace pifetch
