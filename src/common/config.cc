/**
 * @file
 * Configuration printing (Table I reproduction support).
 */

#include "common/config.hh"

#include "common/parallel.hh"

namespace pifetch {

namespace {

void
printCache(const CacheConfig &c, std::ostream &os)
{
    os << "  " << c.name << ": " << (c.sizeBytes / 1024) << "KB, "
       << c.assoc << "-way, " << c.blockBytes << "B blocks, "
       << c.hitLatency << "-cycle load-to-use, " << c.mshrs << " MSHRs\n";
}

} // namespace

void
printSystemConfig(const SystemConfig &cfg, std::ostream &os)
{
    os << "Processing nodes\n"
       << "  " << cfg.numCores << " OoO cores, "
       << cfg.core.dispatchWidth << "-wide dispatch / "
       << cfg.core.retireWidth << "-wide retirement\n"
       << "  " << cfg.core.robEntries << "-entry ROB, "
       << cfg.core.fetchQueueEntries << "-entry pre-dispatch queue\n";
    os << "I-fetch unit\n";
    printCache(cfg.l1i, os);
    os << "  hybrid branch predictor: " << cfg.branch.gshareEntries
       << " gshare + " << cfg.branch.bimodalEntries << " bimodal, "
       << cfg.branch.btbEntries << "-entry BTB, "
       << cfg.branch.rasEntries << "-entry RAS\n";
    os << "L1-D cache\n";
    printCache(cfg.l1d, os);
    os << "L2 NUCA cache\n"
       << "  unified " << (cfg.memory.l2SizeBytes / (1024 * 1024))
       << "MB total (" << (cfg.memory.l2SizeBytes / 1024 / cfg.numCores)
       << "KB per core), " << cfg.memory.l2Assoc << "-way, "
       << cfg.memory.l2HitLatency << "-cycle hit latency, "
       << cfg.memory.l2Mshrs << " MSHRs\n";
    os << "Main memory\n"
       << "  " << cfg.memory.memLatency << "-cycle access latency\n";
    os << "PIF\n"
       << "  spatial region: " << cfg.pif.blocksBefore << " blocks before + "
       << "trigger + " << cfg.pif.blocksAfter << " after ("
       << cfg.pif.regionBlocks() << " total)\n"
       << "  temporal compactor: " << cfg.pif.temporalEntries
       << " entries (LRU)\n"
       << "  history buffer: " << cfg.pif.historyRegions << " regions\n"
       << "  index table: " << cfg.pif.indexEntries << " entries, "
       << cfg.pif.indexAssoc << "-way\n"
       << "  SABs: " << cfg.pif.numSabs << " x "
       << cfg.pif.sabWindowRegions << "-region window\n";
    os << "Host execution\n"
       << "  " << resolveThreads(cfg.threads) << " worker threads"
       << (cfg.threads == 0 ? " (auto)" : "") << ", seed "
       << cfg.seed << "\n";
}

} // namespace pifetch
