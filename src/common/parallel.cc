/**
 * @file
 * Worker-pool implementation.
 *
 * Synchronization scheme: all job fields are written under mutex_ in
 * parallelFor() before the generation counter is bumped; a worker
 * only touches them after observing the new generation under the same
 * mutex, so the writes happen-before every read. activeWorkers_
 * counts workers currently inside runJob(); parallelFor() refuses to
 * return (and to reset the job fields) until it drops to zero, so a
 * late-waking worker can never see a half-torn-down job. A worker
 * that wakes after its job already finished finds the claim counter
 * exhausted and leaves immediately.
 */

#include "common/parallel.hh"

#include <algorithm>
#include <cstdlib>

namespace pifetch {

namespace {

/**
 * Serial loop with the same exception contract as the pool path:
 * drain every index, then rethrow the first failure — so observable
 * side effects do not depend on the thread count.
 */
void
serialFor(std::uint64_t n, const std::function<void(std::uint64_t)> &fn)
{
    std::exception_ptr first;
    for (std::uint64_t i = 0; i < n; ++i) {
        try {
            fn(i);
        } catch (...) {
            if (!first)
                first = std::current_exception();
        }
    }
    if (first)
        std::rethrow_exception(first);
}

} // namespace

/** Hard ceiling on pool width: no simulation fans wider than this,
 * and it keeps a fat-fingered PIFETCH_THREADS from attempting
 * millions of std::thread spawns. */
constexpr unsigned maxPoolThreads = 256;

unsigned
defaultThreads()
{
    if (const char *env = std::getenv("PIFETCH_THREADS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v > 0) {
            return static_cast<unsigned>(
                std::min<long>(v, maxPoolThreads));
        }
        return 1;  // malformed or non-positive: be strictly serial
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

unsigned
resolveThreads(unsigned requested)
{
    if (requested > 0)
        return std::min(requested, maxPoolThreads);
    return defaultThreads();
}

ThreadPool::ThreadPool(unsigned threads)
    : threads_(resolveThreads(threads))
{
    // The calling thread is lane 0; spawn the rest. If a spawn fails
    // partway (thread limits), join what already started before
    // rethrowing — destroying a joinable std::thread would terminate.
    try {
        for (unsigned i = 1; i < threads_; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    } catch (...) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        wake_.notify_all();
        for (std::thread &t : workers_)
            t.join();
        throw;
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            // Only enter a job that is still open: a worker sleeping
            // through an entire job must not wake into its teardown
            // (it would steal a claim index from the next job).
            wake_.wait(lock, [&] {
                return stop_ || (jobOpen_ && generation_ != seen);
            });
            if (stop_)
                return;
            seen = generation_;
            ++activeWorkers_;
        }
        runJob();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --activeWorkers_;
        }
        jobDone_.notify_all();
    }
}

void
ThreadPool::runJob()
{
    const std::uint64_t n = jobSize_;
    for (;;) {
        const std::uint64_t i =
            nextIndex_.fetch_add(1, std::memory_order_relaxed);
        if (i >= n)
            break;
        try {
            (*jobFn_)(i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        if (doneCount_.fetch_add(1, std::memory_order_acq_rel) + 1
            == n) {
            // Empty critical section: orders this notify after the
            // caller has actually entered its wait, closing the
            // check-then-sleep window.
            { std::lock_guard<std::mutex> lock(mutex_); }
            jobDone_.notify_all();
        }
    }
}

void
ThreadPool::parallelFor(std::uint64_t n,
                        const std::function<void(std::uint64_t)> &fn)
{
    if (n == 0)
        return;
    if (threads_ <= 1 || n == 1) {
        serialFor(n, fn);
        return;
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        jobSize_ = n;
        jobFn_ = &fn;
        nextIndex_.store(0, std::memory_order_relaxed);
        doneCount_.store(0, std::memory_order_relaxed);
        firstError_ = nullptr;
        jobOpen_ = true;
        ++generation_;
    }
    wake_.notify_all();

    runJob();  // the caller is a lane too

    std::exception_ptr err;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        jobDone_.wait(lock, [&] {
            return doneCount_.load(std::memory_order_acquire) == n
                && activeWorkers_ == 0;
        });
        // Tear the job down while still holding the lock so a worker
        // waking late sees a closed job, not a dangling callable.
        jobOpen_ = false;
        jobFn_ = nullptr;
        jobSize_ = 0;
        err = firstError_;
        firstError_ = nullptr;
    }
    if (err)
        std::rethrow_exception(err);
}

void
parallelFor(unsigned threads, std::uint64_t n,
            const std::function<void(std::uint64_t)> &fn)
{
    const unsigned t = resolveThreads(threads);
    if (t <= 1 || n <= 1) {
        serialFor(n, fn);
        return;
    }
    // No point spawning more lanes than tasks: each extra worker
    // would wake, find the claim counter exhausted, and exit.
    ThreadPool pool(static_cast<unsigned>(
        std::min<std::uint64_t>(t, n)));
    pool.parallelFor(n, fn);
}

} // namespace pifetch
