/**
 * @file
 * Lightweight statistics counters with named registration.
 *
 * Components own a StatGroup; counters register themselves with a name
 * and description so that engines can dump a full machine-readable
 * report after a run (mirroring gem5's stats package in miniature).
 */

#ifndef PIFETCH_COMMON_STATS_HH
#define PIFETCH_COMMON_STATS_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace pifetch {

class StatGroup;

/**
 * A named 64-bit event counter.
 *
 * Counters are value types owned by components; registration with a
 * StatGroup is optional but enables bulk reporting.
 */
class Counter
{
  public:
    Counter() = default;

    /** Register the counter under @p group with a name and description. */
    Counter(StatGroup &group, std::string name, std::string desc);

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }

    /** Current count. */
    std::uint64_t value() const { return value_; }

    /** Reset to zero. */
    void reset() { value_ = 0; }

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

  private:
    std::string name_;
    std::string desc_;
    std::uint64_t value_ = 0;
};

/**
 * A collection of counters belonging to one component.
 *
 * The group stores non-owning pointers; counters must outlive the group
 * uses (components own both, so lifetimes coincide naturally).
 */
class StatGroup
{
  public:
    /** @param name Prefix printed before each counter ("l1i", "pif"...). */
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Called by Counter's registering constructor. */
    void enroll(Counter *c) { counters_.push_back(c); }

    /** Dump "group.counter value # desc" lines to @p os. */
    void dump(std::ostream &os) const;

    /** Reset every registered counter. */
    void resetAll();

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::vector<Counter *> counters_;
};

/** Safe ratio: returns 0 when the denominator is zero. */
inline double
ratio(std::uint64_t num, std::uint64_t den)
{
    return den == 0 ? 0.0 : static_cast<double>(num) /
                            static_cast<double>(den);
}

/** Format a fraction as a percentage string with two decimals. */
std::string percent(double fraction);

} // namespace pifetch

#endif // PIFETCH_COMMON_STATS_HH
