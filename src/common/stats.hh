/**
 * @file
 * Lightweight statistics counters with named registration.
 *
 * Components own a StatGroup; counters register themselves with a name
 * and description so that engines can dump a full machine-readable
 * report after a run (mirroring gem5's stats package in miniature).
 */

#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace pifetch {

class StatGroup;

/**
 * A named 64-bit event counter.
 *
 * Counters are value types owned by components; registration with a
 * StatGroup is optional but enables bulk reporting. A registered
 * counter keeps its enrollment consistent across its lifetime: moving
 * it re-enrolls the new object in place of the old (so containers of
 * counters may reallocate safely) and destroying it unenrolls.
 * Copying is disabled — a copy would either dangle or double-report
 * under the same name. The owning StatGroup must outlive its
 * registered counters; declare the group before the counters so
 * members destruct in the right order.
 */
class Counter
{
  public:
    Counter() = default;

    /** Register the counter under @p group with a name and description. */
    Counter(StatGroup &group, std::string name, std::string desc);

    ~Counter();

    Counter(const Counter &) = delete;
    Counter &operator=(const Counter &) = delete;

    /** Transfers the enrollment: @p other leaves its group. */
    Counter(Counter &&other) noexcept;
    Counter &operator=(Counter &&other) noexcept;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }

    /** Current count. */
    std::uint64_t value() const { return value_; }

    /** Reset to zero. */
    void reset() { value_ = 0; }

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** The group this counter is enrolled in (nullptr if none). */
    const StatGroup *group() const { return group_; }

  private:
    StatGroup *group_ = nullptr;
    std::string name_;
    std::string desc_;
    std::uint64_t value_ = 0;
};

/**
 * A collection of counters belonging to one component.
 *
 * The group stores non-owning pointers that the counters themselves
 * keep up to date (see Counter). The group is pinned: counters hold a
 * back-pointer to it, so it can be neither copied nor moved.
 */
class StatGroup
{
  public:
    /** @param name Prefix printed before each counter ("l1i", "pif"...). */
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Called by Counter's registering constructor. */
    void enroll(Counter *c) { counters_.push_back(c); }

    /** Called by Counter's destructor; removes @p c if present. */
    void unenroll(const Counter *c);

    /** Called by Counter's move operations: @p to replaces @p from. */
    void reenroll(const Counter *from, Counter *to);

    /** Dump "group.counter value # desc" lines to @p os. */
    void dump(std::ostream &os) const;

    /** Reset every registered counter. */
    void resetAll();

    const std::string &name() const { return name_; }

    /** The registered counters, in enrollment order. */
    const std::vector<Counter *> &counters() const { return counters_; }

  private:
    std::string name_;
    std::vector<Counter *> counters_;
};

/** Safe ratio: returns 0 when the denominator is zero. */
inline double
ratio(std::uint64_t num, std::uint64_t den)
{
    return den == 0 ? 0.0 : static_cast<double>(num) /
                            static_cast<double>(den);
}

/** Format a fraction as a percentage string with two decimals. */
std::string percent(double fraction);

} // namespace pifetch
