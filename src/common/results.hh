/**
 * @file
 * Structured result values with JSON and CSV serialization.
 *
 * Every experiment in the registry returns a ResultValue tree instead
 * of printing free-form rows: the same tree renders as human-readable
 * tables, machine-readable JSON (the `pifetch run --json` artifact and
 * the golden-snapshot fixtures) and CSV. The tree is a small ordered
 * JSON document model; objects preserve insertion order so that
 * serialization is deterministic and snapshot-comparable byte for
 * byte.
 *
 * Serialization policy (locked by tests/test_results.cc):
 *  - Doubles print with the shortest decimal form that parses back to
 *    the identical bits, and always carry a '.' or exponent so the
 *    kind survives a round trip.
 *  - NaN and +/-Inf are not representable in JSON and serialize as
 *    null (CSV: empty field).
 *  - Strings escape the two JSON specials and all control characters
 *    (as \uXXXX).
 *  - CSV fields containing a comma, quote, CR or LF are quoted with
 *    embedded quotes doubled (RFC 4180).
 */

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.hh"
#include "common/stats.hh"

namespace pifetch {

/**
 * One node of a structured result document.
 *
 * A tagged union over the JSON kinds, with signed/unsigned integers
 * kept distinct from doubles so counters serialize exactly.
 */
class ResultValue
{
  public:
    enum class Kind { Null, Bool, Int, Uint, Real, String, Array, Object };

    ResultValue() = default;
    ResultValue(std::nullptr_t) {}
    ResultValue(bool b) : kind_(Kind::Bool), b_(b) {}
    ResultValue(int v) : kind_(Kind::Int), i_(v) {}
    ResultValue(long v) : kind_(Kind::Int), i_(v) {}
    ResultValue(long long v) : kind_(Kind::Int), i_(v) {}
    ResultValue(unsigned v) : kind_(Kind::Uint), u_(v) {}
    ResultValue(unsigned long v) : kind_(Kind::Uint), u_(v) {}
    ResultValue(unsigned long long v) : kind_(Kind::Uint), u_(v) {}
    ResultValue(double v) : kind_(Kind::Real), d_(v) {}
    ResultValue(const char *s) : kind_(Kind::String), s_(s) {}
    ResultValue(std::string s) : kind_(Kind::String), s_(std::move(s)) {}

    /** An empty array ([] serializes even with no elements). */
    static ResultValue array();

    /** An empty object ({} serializes even with no members). */
    static ResultValue object();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isNumber() const
    {
        return kind_ == Kind::Int || kind_ == Kind::Uint ||
               kind_ == Kind::Real;
    }

    /** Scalar accessors; only valid for the matching kind. */
    bool boolean() const { return b_; }
    std::int64_t intValue() const { return i_; }
    std::uint64_t uintValue() const { return u_; }

    /** Any numeric kind widened to double (0.0 otherwise). */
    double number() const;

    const std::string &str() const { return s_; }

    /** Elements (array) or members (object); 0 for scalars. */
    std::size_t size() const;

    /** Append to an array; returns *this for chaining. */
    ResultValue &push(ResultValue v);

    /** Array element i. */
    const ResultValue &at(std::size_t i) const { return arr_.at(i); }

    /**
     * Set (or overwrite) an object member, preserving first-insertion
     * order; returns *this for chaining.
     */
    ResultValue &set(const std::string &key, ResultValue v);

    /** Object member by key, or nullptr when absent / not an object. */
    const ResultValue *find(const std::string &key) const;

    ResultValue *
    find(const std::string &key)
    {
        return const_cast<ResultValue *>(
            static_cast<const ResultValue *>(this)->find(key));
    }

    /** Object member i as (key, value). */
    const std::pair<std::string, ResultValue> &
    member(std::size_t i) const
    {
        return obj_.at(i);
    }

    /**
     * Deep structural equality. Doubles compare by value (so NaN
     * never equals anything, matching IEEE); Int/Uint/Real compare
     * across kinds when numerically identical, so a parsed document
     * equals its source.
     */
    bool operator==(const ResultValue &o) const;
    bool operator!=(const ResultValue &o) const { return !(*this == o); }

  private:
    Kind kind_ = Kind::Null;
    bool b_ = false;
    std::int64_t i_ = 0;
    std::uint64_t u_ = 0;
    double d_ = 0.0;
    std::string s_;
    std::vector<ResultValue> arr_;
    std::vector<std::pair<std::string, ResultValue>> obj_;
};

/** JSON-escape @p s (quotes, backslash, control characters). */
std::string jsonEscape(const std::string &s);

/**
 * Serialize @p v as JSON. @p indent is spaces per nesting level; 0
 * produces a compact single line. The output always ends without a
 * trailing newline.
 */
std::string toJson(const ResultValue &v, unsigned indent = 2);

/**
 * Parse a JSON document (the subset toJson emits plus insignificant
 * whitespace). Returns nullopt and sets @p err on malformed input.
 * Numbers without '.'/exponent parse as Int (negative) or Uint;
 * anything else parses as Real.
 */
std::optional<ResultValue> parseJson(const std::string &text,
                                     std::string *err = nullptr);

/** RFC-4180 CSV field escaping. */
std::string csvEscape(const std::string &field);

/**
 * Render the `tables` of an experiment result document as CSV: for
 * each table a `# title` comment, the header row, then data rows,
 * with a blank line between tables. Also accepts a single table
 * object or a bare array of tables.
 */
std::string toCsv(const ResultValue &v);

/**
 * Render the experiment-document convention (meta / tables / notes)
 * as the human-readable report the bench binaries print.
 */
std::string renderText(const ResultValue &v);

/** Convention helper: a table node {title, columns, rows:[]}. */
ResultValue makeTable(const std::string &title,
                      const std::vector<std::string> &columns);

/** Serialize a Log2Histogram (buckets up to the highest non-empty). */
ResultValue toResult(const Log2Histogram &h);

/** Serialize a RangeHistogram with its range labels. */
ResultValue toResult(const RangeHistogram &h);

/** Serialize a LinearHistogram including the dropped weight. */
ResultValue toResult(const LinearHistogram &h);

/** Serialize a StatGroup's counters as {<group>.<name>: value}. */
ResultValue toResult(const StatGroup &g);

/**
 * Serialize an unsigned-integer column as a JSON array. The columnar
 * dump format (src/query/) stores each table column this way.
 */
template <typename T>
ResultValue
toResultArray(const std::vector<T> &column)
{
    ResultValue arr = ResultValue::array();
    for (const T &v : column)
        arr.push(static_cast<std::uint64_t>(v));
    return arr;
}

/**
 * Parse an array of non-negative integers back into a column.
 * Returns nullopt when @p v is not an array or any element is not a
 * non-negative integer (Real/negative elements are rejected so a
 * column round-trips exactly).
 */
std::optional<std::vector<std::uint64_t>>
uintArrayFromResult(const ResultValue &v);

} // namespace pifetch
