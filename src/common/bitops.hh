/**
 * @file
 * C++17 replacements for the C++20 <bit> helpers used across the
 * codebase (the library builds with -std=c++17, where std::popcount
 * and friends are unavailable).
 */

#pragma once

#include <cstdint>

namespace pifetch {
namespace bits {

/** Number of set bits in @p v. */
constexpr int
popcount(std::uint64_t v) noexcept
{
    return __builtin_popcountll(v);
}

/** Leading-zero count over 64 bits; 64 when @p v == 0. */
constexpr int
countlZero(std::uint64_t v) noexcept
{
    return v == 0 ? 64 : __builtin_clzll(v);
}

/** Trailing-zero count over 64 bits; 64 when @p v == 0. */
constexpr int
countrZero(std::uint64_t v) noexcept
{
    return v == 0 ? 64 : __builtin_ctzll(v);
}

} // namespace bits
} // namespace pifetch
