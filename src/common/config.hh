/**
 * @file
 * Configuration structures for the simulated system.
 *
 * Defaults reproduce Table I of the paper (the 16-core UltraSPARC-III-
 * like CMP) and the PIF design parameters from Section 4 / Section 5
 * (2+5 block spatial regions, 4-entry temporal compactor, 32K-region
 * history buffer, 4 SABs with a 7-region window).
 */

#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "common/types.hh"

namespace pifetch {

/** Geometry and timing of one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 64 * 1024;
    unsigned assoc = 2;
    unsigned blockBytes = 64;
    Cycle hitLatency = 2;   //!< load-to-use latency on a hit
    unsigned mshrs = 32;    //!< outstanding misses supported

    /** Number of sets implied by the geometry. */
    std::uint64_t sets() const
    {
        return sizeBytes / (static_cast<std::uint64_t>(assoc) * blockBytes);
    }
};

/** Hybrid branch predictor sizing (Table I: 16K gshare + 16K bimodal). */
struct BranchConfig
{
    unsigned gshareEntries = 16 * 1024;
    unsigned bimodalEntries = 16 * 1024;
    unsigned chooserEntries = 16 * 1024;
    unsigned historyBits = 14;
    unsigned btbEntries = 4 * 1024;
    unsigned btbAssoc = 4;
    unsigned rasEntries = 32;
};

/** Out-of-order core parameters (Table I). */
struct CoreConfig
{
    unsigned dispatchWidth = 3;
    unsigned retireWidth = 3;
    unsigned robEntries = 96;
    unsigned fetchQueueEntries = 24;  //!< pre-dispatch queue
    unsigned frontendDepth = 5;       //!< fetch-to-dispatch stages
    /**
     * Branch misprediction resolution delay (cycles between fetching a
     * mispredicted branch and the redirect). Data-dependent in real
     * machines (Section 2.2); modelled as a uniform draw in
     * [minResolveCycles, maxResolveCycles].
     */
    Cycle minResolveCycles = 6;
    Cycle maxResolveCycles = 24;
    /**
     * Fraction of instructions that stall retirement as if waiting on a
     * long-latency data access, and the stall magnitude. This produces
     * the pipeline-occupancy variance the paper blames for the variable
     * number of wrong-path fetches.
     */
    double dataStallFraction = 0.02;
    Cycle dataStallCycles = 40;
};

/** Shared L2 and main memory timing (Table I: NUCA L2, 45ns memory). */
struct MemoryConfig
{
    std::uint64_t l2SizeBytes = 8ull * 1024 * 1024;  //!< 512KB x 16 cores
    unsigned l2Assoc = 16;
    Cycle l2HitLatency = 15;
    unsigned l2Mshrs = 64;
    Cycle memLatency = 90;   //!< 45 ns at 2 GHz
    /**
     * Average 2D-mesh round-trip added to every request leaving the
     * core (Table I's 4x4 mesh interconnect; the paper folds NUCA
     * bank distance into access latency the same way).
     */
    Cycle interconnectLatency = 10;
};

/** Proactive Instruction Fetch parameters (Sections 4 and 5). */
struct PifConfig
{
    unsigned blocksBefore = 2;   //!< spatial-region blocks preceding trigger
    unsigned blocksAfter = 5;    //!< spatial-region blocks succeeding trigger
    unsigned temporalEntries = 4;   //!< temporal compactor MRU depth
    std::uint64_t historyRegions = 32 * 1024;  //!< history buffer capacity
    unsigned indexEntries = 8 * 1024;
    unsigned indexAssoc = 4;
    unsigned numSabs = 4;        //!< concurrent stream address buffers
    unsigned sabWindowRegions = 7;  //!< lookahead window per SAB
    bool separateTrapLevels = true; //!< record per-trap-level streams

    /** Total blocks covered by one spatial region record. */
    unsigned regionBlocks() const { return blocksBefore + 1 + blocksAfter; }
};

/** TIFS baseline parameters (miss-stream temporal streaming). */
struct TifsConfig
{
    std::uint64_t historyEntries = 32 * 1024;
    unsigned indexEntries = 8 * 1024;
    unsigned indexAssoc = 4;
    unsigned numSabs = 4;
    unsigned sabWindowBlocks = 12;
    bool unbounded = false;  //!< Fig. 10 uses no storage limitation
};

/** Next-line prefetcher parameters. */
struct NextLineConfig
{
    unsigned degree = 4;  //!< blocks prefetched past the accessed block
};

/** Interrupt (trap) injection parameters for the workload executor. */
struct TrapConfig
{
    double perInstrProbability = 2e-5;  //!< spontaneous interrupt rate
    unsigned handlerCount = 12;         //!< distinct handler routines
};

/** Complete single-core system configuration. */
struct SystemConfig
{
    CacheConfig l1i{"l1i", 64 * 1024, 2, 64, 2, 32};
    CacheConfig l1d{"l1d", 64 * 1024, 2, 64, 2, 32};
    BranchConfig branch;
    CoreConfig core;
    MemoryConfig memory;
    PifConfig pif;
    TifsConfig tifs;
    NextLineConfig nextLine;
    TrapConfig trap;
    unsigned numCores = 16;   //!< documented; engines simulate per core
    std::uint64_t seed = 42;  //!< master seed for deterministic runs
    /**
     * Host worker threads for the multicore/experiment runners
     * (0 = auto: PIFETCH_THREADS env var, else hardware concurrency).
     * Results are bit-identical at any value; this is purely a
     * wall-clock knob.
     */
    unsigned threads = 0;
};

/** Print a human-readable rendition of Table I for this config. */
void printSystemConfig(const SystemConfig &cfg, std::ostream &os);

} // namespace pifetch
