/**
 * @file
 * Instruction prefetcher interface.
 *
 * Engines drive prefetchers through three hooks mirroring the hardware
 * attachment points in Figure 4 of the paper:
 *  - onFetchAccess(): the core's front-end accessed the L1-I (PIF's
 *    SABs monitor these to advance active streams; next-line and TIFS
 *    trigger from them);
 *  - onRetire(): an instruction retired from the back-end (PIF's
 *    compactor input);
 *  - drainRequests(): the engine collects prefetch candidates, probes
 *    the L1-I (Section 4.3's line-buffer tag path), and performs fills.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "trace/record.hh"

namespace pifetch {

/** Everything a prefetcher may observe about one L1-I fetch access. */
struct FetchInfo
{
    /** Block address accessed. */
    Addr block = 0;
    /** PC of the first instruction fetched by this access. */
    Addr pc = 0;
    /** The access hit in the L1-I (or line buffer). */
    bool hit = false;
    /** Hit on a prefetched line (first demand touch). */
    bool wasPrefetched = false;
    /** False for wrong-path (speculative) fetches. */
    bool correctPath = true;
    /** Trap level of the fetch. */
    TrapLevel trapLevel = 0;
};

/**
 * Abstract instruction prefetcher.
 *
 * All addresses are block addresses. Implementations enqueue candidate
 * blocks internally; the engine pulls them with drainRequests() and is
 * responsible for cache probing, dedup, and fill timing.
 */
class Prefetcher
{
  public:
    virtual ~Prefetcher() = default;

    /** Display name for reports. */
    virtual std::string name() const = 0;

    /** The core's front-end issued a demand fetch (see FetchInfo). */
    virtual void onFetchAccess(const FetchInfo &info) { (void)info; }

    /**
     * An instruction retired.
     *
     * @param instr The retired instruction record.
     * @param tagged True if the instruction was NOT delivered from an
     *        explicitly prefetched block (Section 4.2's fetch-stage tag);
     *        PIF gates index-table insertion on this.
     */
    virtual void
    onRetire(const RetiredInstr &instr, bool tagged)
    {
        (void)instr; (void)tagged;
    }

    /**
     * A run of @p count consecutive instructions retired, all plain,
     * all at trap level @p tl, and all fetched from the same block as
     * the immediately preceding retire. Semantically equivalent to
     * @p count onRetire() calls whose PCs stay inside that block; the
     * batched replay loop uses it to collapse same-block runs when no
     * observers are attached.
     *
     * The default matches the default onRetire() (a no-op).
     * Implementations that override onRetire() with behaviour beyond a
     * same-block collapse must override this hook consistently — the
     * batched-vs-scalar differential suite locks the equivalence for
     * every shipped prefetcher.
     */
    virtual void
    onRetireSameBlockRun(TrapLevel tl, std::uint32_t count)
    {
        (void)tl; (void)count;
    }

    /**
     * Move up to @p max pending prefetch candidates into @p out.
     * @return the number of candidates produced.
     */
    virtual unsigned drainRequests(std::vector<Addr> &out,
                                   unsigned max) = 0;

    /** Reset all predictor state. */
    virtual void reset() = 0;

    /** Zero measurement counters without touching predictor state
     * (called by engines at the warmup/measurement boundary). */
    virtual void resetStats() { issued_ = 0; }

    /** Total candidates ever enqueued (before engine-side filtering). */
    std::uint64_t issued() const { return issued_; }

  protected:
    /** Implementations bump this when enqueueing a candidate. */
    std::uint64_t issued_ = 0;
};

/**
 * Null prefetcher: the no-prefetch baseline of Figure 10.
 */
class NullPrefetcher final : public Prefetcher
{
  public:
    std::string name() const override { return "None"; }

    unsigned
    drainRequests(std::vector<Addr> &out, unsigned max) override
    {
        (void)out; (void)max;
        return 0;
    }

    void reset() override {}
};

} // namespace pifetch
