/**
 * @file
 * Discontinuity prefetcher implementation.
 */

#include "prefetch/discontinuity.hh"

#include "common/types.hh"

namespace pifetch {

namespace {
constexpr std::size_t queueCap = 64;
} // namespace

DiscontinuityPrefetcher::DiscontinuityPrefetcher(
        const DiscontinuityConfig &cfg)
    : cfg_(cfg)
{
    if (cfg_.tableAssoc == 0 ||
        cfg_.tableEntries % cfg_.tableAssoc != 0) {
        fatalError("discontinuity table entries must be a multiple of "
                   "assoc");
    }
    const std::uint64_t sets = cfg_.tableEntries / cfg_.tableAssoc;
    if ((sets & (sets - 1)) != 0)
        fatalError("discontinuity table sets must be a power of two");
    setMask_ = sets - 1;
    table_.resize(cfg_.tableEntries);
}

void
DiscontinuityPrefetcher::enqueue(Addr block)
{
    if (queued_.count(block) || queue_.size() >= queueCap)
        return;
    queue_.push_back(block);
    queued_.insert(block);
    ++issued_;
}

void
DiscontinuityPrefetcher::install(Addr src, Addr dst)
{
    const std::uint64_t base = (src & setMask_) * cfg_.tableAssoc;
    Entry *victim = nullptr;
    for (unsigned w = 0; w < cfg_.tableAssoc; ++w) {
        Entry &e = table_[base + w];
        if (e.valid && e.src == src) {
            e.dst = dst;
            e.stamp = ++tick_;
            return;
        }
        if (!e.valid) {
            if (!victim || victim->valid)
                victim = &e;
        } else if (!victim ||
                   (victim->valid && e.stamp < victim->stamp)) {
            victim = &e;
        }
    }
    victim->src = src;
    victim->dst = dst;
    victim->valid = true;
    victim->stamp = ++tick_;
}

Addr
DiscontinuityPrefetcher::lookup(Addr src)
{
    const std::uint64_t base = (src & setMask_) * cfg_.tableAssoc;
    for (unsigned w = 0; w < cfg_.tableAssoc; ++w) {
        Entry &e = table_[base + w];
        if (e.valid && e.src == src) {
            e.stamp = ++tick_;
            return e.dst;
        }
    }
    return invalidAddr;
}

void
DiscontinuityPrefetcher::onFetchAccess(const FetchInfo &info)
{
    if (info.block == lastBlock_)
        return;

    // Learn non-sequential transitions between consecutive fetches.
    if (lastBlock_ != invalidAddr && info.block != lastBlock_ + 1)
        install(lastBlock_, info.block);

    // Predict: the recorded discontinuity out of this block, plus a
    // shallow next-line tail behind both points.
    const Addr dst = lookup(info.block);
    for (unsigned d = 1; d <= cfg_.nextLineDegree; ++d)
        enqueue(info.block + d);
    if (dst != invalidAddr) {
        enqueue(dst);
        for (unsigned d = 1; d <= cfg_.nextLineDegree; ++d)
            enqueue(dst + d);
    }

    lastBlock_ = info.block;
}

unsigned
DiscontinuityPrefetcher::drainRequests(std::vector<Addr> &out,
                                       unsigned max)
{
    unsigned n = 0;
    while (n < max && !queue_.empty()) {
        const Addr b = queue_.front();
        queue_.pop_front();
        queued_.erase(b);
        out.push_back(b);
        ++n;
    }
    return n;
}

void
DiscontinuityPrefetcher::reset()
{
    for (Entry &e : table_)
        e = Entry{};
    tick_ = 0;
    lastBlock_ = invalidAddr;
    queue_.clear();
    queued_.clear();
    issued_ = 0;
}

} // namespace pifetch
