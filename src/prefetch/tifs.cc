/**
 * @file
 * TIFS implementation.
 */

#include "prefetch/tifs.hh"

namespace pifetch {

namespace {
constexpr std::size_t queueCap = 256;
} // namespace

TifsPrefetcher::TifsPrefetcher(const TifsConfig &cfg)
    : cfg_(cfg),
      index_(cfg.unbounded ? 0 : cfg.indexEntries, cfg.indexAssoc),
      streams_(cfg.numSabs)
{
    if (!cfg_.unbounded)
        ring_.resize(cfg_.historyEntries);
}

void
TifsPrefetcher::record(Addr block)
{
    const std::uint64_t seq = tail_++;
    if (cfg_.unbounded) {
        ring_.push_back(block);
    } else {
        ring_[seq % cfg_.historyEntries] = block;
    }
    index_.insert(block, seq);
}

bool
TifsPrefetcher::valid(std::uint64_t seq) const
{
    if (seq >= tail_)
        return false;
    return cfg_.unbounded || tail_ - seq <= cfg_.historyEntries;
}

Addr
TifsPrefetcher::at(std::uint64_t seq) const
{
    return cfg_.unbounded ? ring_[seq] : ring_[seq % cfg_.historyEntries];
}

void
TifsPrefetcher::enqueue(Addr block)
{
    if (queued_.count(block) || queue_.size() >= queueCap)
        return;
    queue_.push_back(block);
    queued_.insert(block);
    ++issued_;
}

void
TifsPrefetcher::refill(Stream &s)
{
    while (s.window.size() < cfg_.sabWindowBlocks && valid(s.ptr)) {
        const Addr b = at(s.ptr);
        ++s.ptr;
        s.window.push_back(b);
        enqueue(b);
    }
    if (s.window.empty())
        s.active = false;
}

void
TifsPrefetcher::onFetchAccess(const FetchInfo &info)
{
    // Advance active streams on every front-end fetch.
    bool in_stream = false;
    for (Stream &s : streams_) {
        if (!s.active)
            continue;
        for (std::size_t i = 0; i < s.window.size(); ++i) {
            if (s.window[i] != info.block)
                continue;
            s.window.erase(s.window.begin(),
                           s.window.begin() +
                               static_cast<std::ptrdiff_t>(i + 1));
            refill(s);
            s.lastUse = ++tick_;
            in_stream = true;
            break;
        }
        if (in_stream)
            break;
    }

    if (info.hit)
        return;

    // A miss: record it in the miss history, and if it matches a
    // recorded stream head, start replaying that stream.
    if (!in_stream) {
        if (auto seq = index_.lookup(info.block)) {
            if (valid(*seq)) {
                Stream *victim = &streams_[0];
                for (Stream &s : streams_) {
                    if (!s.active) {
                        victim = &s;
                        break;
                    }
                    if (s.lastUse < victim->lastUse)
                        victim = &s;
                }
                victim->active = true;
                victim->ptr = *seq + 1;
                victim->window.clear();
                victim->lastUse = ++tick_;
                refill(*victim);
            }
        }
    }

    record(info.block);
}

unsigned
TifsPrefetcher::drainRequests(std::vector<Addr> &out, unsigned max)
{
    unsigned n = 0;
    while (n < max && !queue_.empty()) {
        const Addr b = queue_.front();
        queue_.pop_front();
        queued_.erase(b);
        out.push_back(b);
        ++n;
    }
    return n;
}

void
TifsPrefetcher::reset()
{
    if (cfg_.unbounded)
        ring_.clear();
    tail_ = 0;
    index_.reset();
    for (Stream &s : streams_)
        s = Stream{};
    tick_ = 0;
    queue_.clear();
    queued_.clear();
    issued_ = 0;
}

} // namespace pifetch
