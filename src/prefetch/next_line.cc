/**
 * @file
 * Next-line prefetcher implementation.
 */

#include "prefetch/next_line.hh"

namespace pifetch {

namespace {
constexpr std::size_t queueCap = 64;
} // namespace

NextLinePrefetcher::NextLinePrefetcher(const NextLineConfig &cfg)
    : degree_(cfg.degree)
{
}

void
NextLinePrefetcher::onFetchAccess(const FetchInfo &info)
{
    // Re-triggering on every access to the same block adds nothing.
    if (info.block == lastBlock_)
        return;
    lastBlock_ = info.block;

    for (unsigned d = 1; d <= degree_; ++d) {
        const Addr b = info.block + d;
        if (queued_.count(b) || queue_.size() >= queueCap)
            continue;
        queue_.push_back(b);
        queued_.insert(b);
        ++issued_;
    }
}

unsigned
NextLinePrefetcher::drainRequests(std::vector<Addr> &out, unsigned max)
{
    unsigned n = 0;
    while (n < max && !queue_.empty()) {
        const Addr b = queue_.front();
        queue_.pop_front();
        queued_.erase(b);
        out.push_back(b);
        ++n;
    }
    return n;
}

void
NextLinePrefetcher::reset()
{
    lastBlock_ = invalidAddr;
    queue_.clear();
    queued_.clear();
    issued_ = 0;
}

} // namespace pifetch
