/**
 * @file
 * Aggressive next-line instruction prefetcher (Figure 10 baseline).
 *
 * On every demand fetch, enqueues the next `degree` sequential blocks.
 * Captures spatially contiguous accesses but none of the discontinuous
 * control transfers, and over-fetches past the end of each accessed
 * region (Section 6).
 */

#pragma once

#include <deque>

#include "common/config.hh"
#include "common/flat_hash.hh"
#include "prefetch/prefetcher.hh"

namespace pifetch {

/**
 * Next-N-line prefetcher triggered by every fetch access.
 */
class NextLinePrefetcher final : public Prefetcher
{
  public:
    explicit NextLinePrefetcher(const NextLineConfig &cfg);

    std::string name() const override { return "Next-Line"; }

    void onFetchAccess(const FetchInfo &info) override;
    unsigned drainRequests(std::vector<Addr> &out, unsigned max) override;
    void reset() override;

  private:
    unsigned degree_;
    Addr lastBlock_ = invalidAddr;
    std::deque<Addr> queue_;
    AddrSet queued_;
};

} // namespace pifetch
