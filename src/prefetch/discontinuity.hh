/**
 * @file
 * Discontinuity prefetcher (Spracklen et al., HPCA 2005) — extension
 * baseline discussed in Section 6.
 *
 * Records one non-sequential transition per source block in a table;
 * on a fetch that hits the table, prefetches the recorded target and a
 * few next lines behind both the demand and the target. Lookahead is
 * limited to one discontinuity at a time, which is exactly the
 * limitation the paper contrasts PIF against.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/flat_hash.hh"
#include "prefetch/prefetcher.hh"

namespace pifetch {

/** Sizing for the discontinuity prefetcher. */
struct DiscontinuityConfig
{
    unsigned tableEntries = 8 * 1024;
    unsigned tableAssoc = 4;
    unsigned nextLineDegree = 2;  //!< sequential depth behind each point
};

/**
 * Discontinuity-table instruction prefetcher.
 */
class DiscontinuityPrefetcher final : public Prefetcher
{
  public:
    explicit DiscontinuityPrefetcher(const DiscontinuityConfig &cfg);

    std::string name() const override { return "Discontinuity"; }

    void onFetchAccess(const FetchInfo &info) override;
    unsigned drainRequests(std::vector<Addr> &out, unsigned max) override;
    void reset() override;

  private:
    struct Entry
    {
        Addr src = invalidAddr;
        Addr dst = invalidAddr;
        std::uint64_t stamp = 0;
        bool valid = false;
    };

    void enqueue(Addr block);
    void install(Addr src, Addr dst);
    Addr lookup(Addr src);

    DiscontinuityConfig cfg_;
    std::uint64_t setMask_;
    std::uint64_t tick_ = 0;
    std::vector<Entry> table_;

    Addr lastBlock_ = invalidAddr;
    std::deque<Addr> queue_;
    AddrSet queued_;
};

} // namespace pifetch
