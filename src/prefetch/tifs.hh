/**
 * @file
 * Temporal Instruction Fetch Streaming (TIFS) baseline.
 *
 * Reimplementation of Ferdman et al., MICRO 2008, as characterized in
 * this paper's Sections 2 and 5.5: a temporal streaming prefetcher
 * that records the L1-I *miss* stream (individual block addresses, no
 * compaction) and replays the most recent stream when a miss to a
 * recorded head recurs. Because the recorded stream is the cache-
 * filtered, wrong-path-polluted miss sequence, its coverage saturates
 * at 65-90% (Figure 10 left).
 */

#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/config.hh"
#include "common/flat_hash.hh"
#include "pif/index_table.hh"
#include "prefetch/prefetcher.hh"

namespace pifetch {

/**
 * TIFS: miss-stream temporal streaming at block granularity.
 */
class TifsPrefetcher final : public Prefetcher
{
  public:
    explicit TifsPrefetcher(const TifsConfig &cfg);

    std::string name() const override { return "TIFS"; }

    void onFetchAccess(const FetchInfo &info) override;
    unsigned drainRequests(std::vector<Addr> &out, unsigned max) override;
    void reset() override;

    /** Miss-history entries recorded. */
    std::uint64_t recorded() const { return tail_; }

  private:
    /** One active replay stream over the miss history. */
    struct Stream
    {
        bool active = false;
        std::uint64_t ptr = 0;     //!< next history position to load
        std::deque<Addr> window;   //!< upcoming blocks
        std::uint64_t lastUse = 0;
    };

    /** Append a miss block to the circular history. */
    void record(Addr block);

    /** True if @p seq is still retained. */
    bool valid(std::uint64_t seq) const;

    /** Read history at @p seq. */
    Addr at(std::uint64_t seq) const;

    /** Refill @p s's window, enqueueing newly loaded blocks. */
    void refill(Stream &s);

    void enqueue(Addr block);

    TifsConfig cfg_;
    std::vector<Addr> ring_;
    std::uint64_t tail_ = 0;
    IndexTable index_;

    std::vector<Stream> streams_;
    std::uint64_t tick_ = 0;

    std::deque<Addr> queue_;
    AddrSet queued_;
};

} // namespace pifetch
