# Resolve a gtest-compatible test framework, preferring real
# GoogleTest but never requiring network access.
#
# Defines:
#   pifetch_testmain        INTERFACE target: framework headers, libs,
#                           and a main() for gtest-style suites
#   PIFETCH_TEST_FRAMEWORK  "system-gtest" | "fetched-gtest" | "minitest"
#
# Resolution order (first hit wins):
#   1. PIFETCH_FORCE_MINITEST=ON  -> vendored tests/minitest.hh
#   2. find_package(GTest)        -> installed GoogleTest
#   3. FetchContent GoogleTest    -> only if PIFETCH_ALLOW_FETCHCONTENT
#                                    and a quick connectivity probe
#                                    succeeds (so offline configures
#                                    fall through instead of failing)
#   4. vendored tests/minitest.hh -> always works, no dependencies

set(PIFETCH_TEST_FRAMEWORK "")

if (NOT PIFETCH_FORCE_MINITEST)
  find_package(GTest QUIET)
  if (GTest_FOUND)
    add_library(pifetch_testmain INTERFACE)
    target_link_libraries(pifetch_testmain INTERFACE
      GTest::gtest GTest::gtest_main)
    set(PIFETCH_TEST_FRAMEWORK "system-gtest")
  endif()
endif()

if (NOT PIFETCH_TEST_FRAMEWORK AND NOT PIFETCH_FORCE_MINITEST
    AND PIFETCH_ALLOW_FETCHCONTENT)
  # Cheap connectivity probe; FetchContent aborts the configure on
  # download failure, which would leave offline machines broken. The
  # result is cached so reconfigures don't re-pay the offline timeout.
  if (NOT DEFINED PIFETCH_NET_PROBE_RESULT)
    file(DOWNLOAD "https://github.com"
      "${CMAKE_CURRENT_BINARY_DIR}/pifetch_net_probe"
      TIMEOUT 10 INACTIVITY_TIMEOUT 10 STATUS pifetch_net_status)
    list(GET pifetch_net_status 0 pifetch_net_code)
    file(REMOVE "${CMAKE_CURRENT_BINARY_DIR}/pifetch_net_probe")
    set(PIFETCH_NET_PROBE_RESULT "${pifetch_net_code}" CACHE INTERNAL
      "Cached connectivity probe exit code (0 = online)")
  endif()
  if (PIFETCH_NET_PROBE_RESULT EQUAL 0)
    include(FetchContent)
    FetchContent_Declare(googletest
      URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
      URL_HASH SHA256=8ad598c73ad796e0d8280b082cebd82a630d73e73cd3c70057938a6501bba5d7
      DOWNLOAD_EXTRACT_TIMESTAMP TRUE)
    FetchContent_MakeAvailable(googletest)
    add_library(pifetch_testmain INTERFACE)
    target_link_libraries(pifetch_testmain INTERFACE gtest gtest_main)
    set(PIFETCH_TEST_FRAMEWORK "fetched-gtest")
  endif()
endif()

if (NOT PIFETCH_TEST_FRAMEWORK)
  # Vendored single-header fallback: tests/minitest/gtest/gtest.h
  # redirects <gtest/gtest.h> to tests/minitest.hh, and
  # tests/minitest_main.cc supplies the auto-main.
  add_library(pifetch_minitest_main STATIC
    ${CMAKE_CURRENT_SOURCE_DIR}/tests/minitest_main.cc)
  target_include_directories(pifetch_minitest_main PUBLIC
    ${CMAKE_CURRENT_SOURCE_DIR}/tests/minitest)
  target_link_libraries(pifetch_minitest_main PRIVATE pifetch_warnings)
  add_library(pifetch_testmain INTERFACE)
  target_link_libraries(pifetch_testmain INTERFACE pifetch_minitest_main)
  set(PIFETCH_TEST_FRAMEWORK "minitest")
endif()

message(STATUS "pifetch: test framework: ${PIFETCH_TEST_FRAMEWORK}")

# CI (and anyone pinning a path) can assert which framework resolved,
# so a silent fallback can't masquerade as coverage of the real one.
if (PIFETCH_REQUIRE_TEST_FRAMEWORK AND
    NOT PIFETCH_TEST_FRAMEWORK STREQUAL PIFETCH_REQUIRE_TEST_FRAMEWORK)
  message(FATAL_ERROR "pifetch: resolved test framework "
    "'${PIFETCH_TEST_FRAMEWORK}' but PIFETCH_REQUIRE_TEST_FRAMEWORK="
    "'${PIFETCH_REQUIRE_TEST_FRAMEWORK}'")
endif()
